"""The paper's headline experiment in miniature (Figures 11 and 12).

Run with::

    python examples/materialization_tradeoffs.py [scale]

Sweeps the shipdate predicate's selectivity over the paper's selection and
aggregation queries, for each LINENUM encoding, printing runtime per strategy
and where the winner flips. Shows the paper's conclusions live:

* low selectivity or aggregation or light-weight compression -> late
  materialization;
* high-selectivity plain selection over uncompressed data -> early
  materialization (EM-parallel).
"""

from __future__ import annotations

import sys
import tempfile

from repro import AggSpec, Database, Predicate, SelectQuery, Strategy, load_tpch
from repro.errors import UnsupportedOperationError
from repro.tpch.generator import SHIPDATE_MAX, SHIPDATE_MIN

SWEEP = (0.05, 0.25, 0.5, 0.75, 0.95)


def make_query(selectivity: float, encoding: str, aggregate: bool) -> SelectQuery:
    x = int(SHIPDATE_MIN + selectivity * (SHIPDATE_MAX + 1 - SHIPDATE_MIN))
    predicates = (
        Predicate("shipdate", "<", x),
        Predicate("linenum", "<", 7),
    )
    if aggregate:
        return SelectQuery(
            projection="lineitem",
            select=("shipdate", "sum(linenum)"),
            predicates=predicates,
            group_by="shipdate",
            aggregates=(AggSpec("sum", "linenum"),),
            encodings=(("linenum", encoding),),
        )
    return SelectQuery(
        projection="lineitem",
        select=("shipdate", "linenum"),
        predicates=predicates,
        encodings=(("linenum", encoding),),
    )


def sweep(db: Database, encoding: str, aggregate: bool) -> None:
    kind = "aggregation" if aggregate else "selection"
    print(f"\n{kind} query, LINENUM stored {encoding} (model-replay ms):")
    print(f"{'sel':>6} " + " ".join(f"{s.value:>14}" for s in Strategy)
          + f" {'winner':>14}")
    for selectivity in SWEEP:
        cells = []
        best_name, best_ms = None, float("inf")
        for strategy in Strategy:
            try:
                r = db.query(
                    make_query(selectivity, encoding, aggregate),
                    strategy=strategy,
                    cold=True,
                )
            except UnsupportedOperationError:
                cells.append(f"{'n/a':>14}")
                continue
            cells.append(f"{r.simulated_ms:>14.1f}")
            if r.simulated_ms < best_ms:
                best_name, best_ms = strategy.value, r.simulated_ms
        print(f"{selectivity:>6.2f} " + " ".join(cells) + f" {best_name:>14}")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02
    root = tempfile.mkdtemp(prefix="repro_tradeoffs_")
    db = Database(root)
    print(f"Loading scale {scale} ({int(6_000_000 * scale)} lineitem rows)...")
    load_tpch(db.catalog, scale=scale)

    for aggregate in (False, True):
        for encoding in ("uncompressed", "rle", "bitvector"):
            sweep(db, encoding, aggregate)

    print(
        "\nPaper heuristic check (Section 6): aggregated output, low"
        " selectivity, or light-weight compression favour LATE"
        " materialization; high-selectivity, non-aggregated, uncompressed"
        " favours EARLY materialization."
    )


if __name__ == "__main__":
    main()
