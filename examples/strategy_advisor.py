"""Using the analytical model as a query-optimizer component (Section 6).

Run with::

    python examples/strategy_advisor.py

The paper concludes that "using an analytical model to predict query
performance can facilitate materialization strategy decision-making". This
example puts that to work: for a mixed workload it prints each strategy's
predicted cost, the model's pick, the observed cost of every strategy, and
the regret (chosen vs best observed).
"""

from __future__ import annotations

import tempfile

from repro import (
    AggSpec,
    Database,
    Predicate,
    SelectQuery,
    Strategy,
    load_tpch,
)
from repro.errors import UnsupportedOperationError
from repro.tpch.generator import SHIPDATE_MAX, SHIPDATE_MIN


def shipdate(selectivity: float) -> int:
    return int(SHIPDATE_MIN + selectivity * (SHIPDATE_MAX + 1 - SHIPDATE_MIN))


def workload() -> list[tuple[str, SelectQuery]]:
    base = dict(projection="lineitem")
    return [
        (
            "needle-in-haystack selection",
            SelectQuery(
                select=("shipdate", "linenum"),
                predicates=(
                    Predicate("shipdate", "<", shipdate(0.03)),
                    Predicate("linenum", "<", 7),
                ),
                **base,
            ),
        ),
        (
            "wide-open selection (uncompressed)",
            SelectQuery(
                select=("shipdate", "linenum"),
                predicates=(
                    Predicate("shipdate", "<", shipdate(0.95)),
                    Predicate("linenum", "<", 7),
                ),
                **base,
            ),
        ),
        (
            "aggregation over RLE data",
            SelectQuery(
                select=("shipdate", "sum(linenum)"),
                predicates=(
                    Predicate("shipdate", "<", shipdate(0.8)),
                    Predicate("linenum", "<", 7),
                ),
                group_by="shipdate",
                aggregates=(AggSpec("sum", "linenum"),),
                encodings=(("linenum", "rle"),),
                **base,
            ),
        ),
        (
            "bit-vector scan",
            SelectQuery(
                select=("shipdate", "linenum"),
                predicates=(
                    Predicate("shipdate", "<", shipdate(0.5)),
                    Predicate("linenum", "=", 3),
                ),
                encodings=(("linenum", "bitvector"),),
                **base,
            ),
        ),
    ]


def main() -> None:
    db = Database(tempfile.mkdtemp(prefix="repro_advisor_"))
    load_tpch(db.catalog, scale=0.02)

    for title, query in workload():
        print(f"\n=== {title} " + "=" * max(0, 50 - len(title)))
        explain = db.explain(query)
        for name, ms in sorted(
            explain["predictions"].items(), key=lambda kv: kv[1]
        ):
            marker = "  <- chosen" if name == explain["chosen"] else ""
            print(f"  predicted {name:>13}: {ms:8.2f} ms{marker}")

        observed = {}
        for strategy in Strategy:
            try:
                r = db.query(query, strategy=strategy, cold=True)
            except UnsupportedOperationError:
                continue
            observed[strategy.value] = r.simulated_ms
        best = min(observed, key=observed.get)
        chosen_ms = observed[explain["chosen"]]
        print(f"  observed best: {best} ({observed[best]:.2f} ms); "
              f"chosen runs at {chosen_ms:.2f} ms "
              f"(regret {chosen_ms / observed[best]:.2f}x)")


if __name__ == "__main__":
    main()
