"""Inner-table materialization strategies for joins (Figure 13).

Run with::

    python examples/join_strategies.py [scale]

Runs the paper's star-schema join between orders and customer, varying the
orders-side predicate selectivity, with the customer (inner) side delivered
to the join three ways: pre-materialized tuples, an unmaterialized
multi-column, or just the join-key column ("pure" late materialization).
The pure-LM variant pays an out-of-order positional fetch for the inner
payload columns — visible in both wall-clock and model-replay time.
"""

from __future__ import annotations

import sys
import tempfile

from repro import Database, JoinQuery, Predicate, RightTableStrategy, load_tpch


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02
    root = tempfile.mkdtemp(prefix="repro_join_")
    db = Database(root)
    load_tpch(db.catalog, scale=scale)
    n_customer = db.projection("customer").n_rows
    n_orders = db.projection("orders").n_rows
    print(f"orders={n_orders} rows, customer={n_customer} rows (PK 1..n)")

    print(
        f"\n{'sel':>5} {'right-side input':>18} {'rows':>8} {'wall ms':>8} "
        f"{'replay ms':>10} {'out-of-order fetches':>21}"
    )
    for selectivity in (0.1, 0.5, 0.9):
        x = int(selectivity * n_customer) + 1
        query = JoinQuery(
            left="orders",
            right="customer",
            left_key="custkey",
            right_key="custkey",
            left_select=("shipdate",),
            right_select=("nationcode",),
            left_predicates=(Predicate("custkey", "<", x),),
        )
        for strategy in RightTableStrategy:
            r = db.query(query, strategy=strategy, cold=True)
            ooo = r.stats.extra.get("out_of_order_gathers", 0)
            print(
                f"{selectivity:>5.1f} {strategy.value:>18} {r.n_rows:>8} "
                f"{r.wall_ms:>8.1f} {r.simulated_ms:>10.1f} {ooo:>21}"
            )

    print(
        "\nAs in the paper: materialized and multi-column inner inputs are"
        " comparable for an FK-PK join (every inner match materializes"
        " anyway); sending only the join column forces the expensive"
        " out-of-order positional fetch."
    )


if __name__ == "__main__":
    main()
