"""Using the engine on your own data: a telemetry warehouse example.

Run with::

    python examples/custom_dataset.py

Shows the library as a downstream user would adopt it, away from TPC-H:

1. define a projection schema over telemetry readings (device, day, metric,
   reading), with a sort order chosen for compression;
2. load numpy arrays into the catalog with per-column encodings;
3. inspect the physical layout (blocks, runs, compression ratios);
4. query through SQL and the programmatic API, letting the model pick the
   materialization strategy.
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro import Database, INT16, INT32, UINT8, ColumnSchema


def generate_telemetry(n: int, seed: int = 0) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        "device": rng.integers(0, 50, size=n).astype(np.int16),
        "day": rng.integers(0, 365, size=n).astype(np.int16),
        "metric": rng.integers(0, 6, size=n).astype(np.uint8),
        "reading": rng.integers(0, 10_000, size=n).astype(np.int32),
    }


def main() -> None:
    db = Database(tempfile.mkdtemp(prefix="repro_telemetry_"))
    n = 200_000
    print(f"Generating {n} telemetry readings...")
    data = generate_telemetry(n)

    schemas = {
        "device": ColumnSchema("device", INT16),
        "day": ColumnSchema("day", INT16),
        "metric": ColumnSchema(
            "metric",
            UINT8,
            dictionary=("temp", "vibration", "load", "rpm", "volts", "amps"),
        ),
        "reading": ColumnSchema("reading", INT32),
    }
    # Sorting by (device, day, metric) gives the prefix columns long runs —
    # the same design judgement as the paper's lineitem projection.
    projection = db.catalog.create_projection(
        "telemetry",
        data,
        schemas=schemas,
        sort_keys=["device", "day", "metric"],
        encodings={
            "device": ["rle"],
            "day": ["rle"],
            "metric": ["bitvector", "uncompressed"],
            "reading": ["uncompressed"],
        },
    )

    print("\nPhysical layout:")
    raw_bytes = {c: data[c].nbytes for c in data}
    for name in projection.column_names:
        col = projection.column(name)
        for encoding in col.encodings:
            cf = col.file(encoding)
            ratio = cf.size_bytes() / max(raw_bytes[name], 1)
            print(
                f"  {name:>8} [{encoding:>12}]: {cf.n_blocks:>3} blocks, "
                f"avg run {cf.avg_run_length:8.1f}, "
                f"{cf.size_bytes():>9} bytes ({ratio:5.2f}x raw)"
            )

    print("\nSQL: average load reading per day for one device")
    result = db.sql(
        "SELECT day, AVG(reading) FROM telemetry "
        "WHERE device = 7 AND metric = 'load' GROUP BY day",
        strategy="auto",
    )
    print(f"  strategy={result.strategy}, groups={result.n_rows}")
    for row in result.decoded_rows()[:5]:
        print("  ", row)

    print("\nProgrammatic API with explicit strategy and encoding choice:")
    from repro import AggSpec, Predicate, SelectQuery

    query = SelectQuery(
        projection="telemetry",
        select=("device", "max(reading)"),
        predicates=(Predicate("metric", "=", 1),),  # vibration
        group_by="device",
        aggregates=(AggSpec("max", "reading"),),
        encodings=(("metric", "bitvector"),),
    )
    result = db.query(query, strategy="lm-parallel")
    print(f"  devices={result.n_rows}, first rows: {result.rows()[:3]}")

    explain = db.explain(query)
    print(f"  model would choose: {explain['chosen']}")


if __name__ == "__main__":
    main()
