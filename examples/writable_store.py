"""The writable store: inserts, merge-on-read, and the tuple mover.

Run with::

    python examples/writable_store.py

C-Store pairs its read-optimized store with a small writable store (WS) and
a "tuple mover" that folds WS into the sorted, compressed projections. This
example inserts fresh orders, shows queries seeing them immediately
(merge-on-read, including correctly merged aggregates), then runs the tuple
mover and shows the rows landing in sort position with rebuilt encodings,
index, and statistics.
"""

from __future__ import annotations

import tempfile
from datetime import date

from repro import Database, load_tpch


def main() -> None:
    db = Database(tempfile.mkdtemp(prefix="repro_ws_"))
    load_tpch(db.catalog, scale=0.005)
    lineitem = db.projection("lineitem")
    print(f"lineitem: {lineitem.n_rows} rows in the read store")

    agg_sql = (
        "SELECT linenum, SUM(quantity), AVG(quantity) FROM lineitem "
        "WHERE linenum = 7 GROUP BY linenum"
    )
    print("\nbefore inserts: ", db.sql(agg_sql).rows())

    rows = [
        {
            "shipdate": date(1999, 3, 1),
            "linenum": 7,
            "quantity": 41 + i,
            "returnflag": "N",
        }
        for i in range(5)
    ]
    db.insert("lineitem", rows)
    print(f"inserted {db.pending('lineitem')} rows into the writable store")

    print("after inserts:  ", db.sql(agg_sql).rows())
    newest = db.sql(
        "SELECT shipdate, quantity FROM lineitem "
        "WHERE shipdate > '1999-01-01' ORDER BY quantity DESC"
    )
    print("merge-on-read selection:", newest.decoded_rows())

    print("\nJoins require the tuple mover first:")
    db.insert("orders", [{"shipdate": date(1999, 3, 2), "custkey": 3}])
    join_sql = (
        "SELECT o.shipdate, c.nationcode FROM orders o, customer c "
        "WHERE o.custkey = c.custkey AND o.custkey < 5"
    )
    try:
        db.sql(join_sql)
    except Exception as exc:  # noqa: BLE001 - demonstration
        print(f"  with pending orders rows: {type(exc).__name__}: {exc}")
    db.merge("orders")
    print(f"  after merging orders: {db.sql(join_sql).n_rows} join rows")

    moved = db.merge("lineitem")
    print(f"\ntuple mover folded {moved} rows into the read store")
    print(f"lineitem now: {db.projection('lineitem').n_rows} rows, "
          f"{db.pending('lineitem')} pending")
    print("after merge:    ", db.sql(agg_sql).rows())

    quantity = db.projection("lineitem").column("quantity").file()
    print(
        f"rebuilt statistics: histogram over {quantity.histogram.n_values} "
        f"values, {quantity.n_blocks} blocks, checksummed"
    )


if __name__ == "__main__":
    main()
