"""Physical design: one table, several projections, model-routed queries.

Run with::

    python examples/projection_design.py

C-Store's physical-design story: store a logical table as several
projections, each sorted for a different query family, and let the optimizer
route each query to the projection whose sort order (and therefore
compression, clustered index, and block-skipping behaviour) fits it. This
example builds a web-requests table twice — sorted by time and sorted by
(status, time) — and shows the router picking per query.
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro import Database, INT16, INT32, INT64, ColumnSchema
from repro.planner import resolve_projection
from repro.sql import bind, parse


def build(db: Database) -> None:
    rng = np.random.default_rng(11)
    n = 400_000
    data = {
        "ts": np.sort(rng.integers(0, 86_400, size=n)).astype(np.int64),
        "status": rng.choice(
            [200, 301, 404, 500], size=n, p=[0.9, 0.04, 0.05, 0.01]
        ).astype(np.int16),
        "latency_ms": rng.integers(1, 2_000, size=n).astype(np.int32),
    }
    schemas = {
        "ts": ColumnSchema("ts", INT64),
        "status": ColumnSchema("status", INT16),
        "latency_ms": ColumnSchema("latency_ms", INT32),
    }
    db.catalog.create_projection(
        "requests_by_time",
        data,
        schemas=schemas,
        sort_keys=["ts"],
        encodings={
            "ts": ["for", "uncompressed"],
            "status": ["dictionary"],
            "latency_ms": ["uncompressed"],
        },
        presorted=True,
        anchor="requests",
    )
    db.catalog.create_projection(
        "requests_by_status",
        data,
        schemas=schemas,
        sort_keys=["status", "ts"],
        encodings={
            "status": ["rle"],
            "ts": ["for", "uncompressed"],
            "latency_ms": ["uncompressed"],
        },
        anchor="requests",
    )


QUERIES = [
    (
        "recent-window scan",
        "SELECT ts, latency_ms FROM requests WHERE ts > 80000",
    ),
    (
        "error drill-down",
        "SELECT ts, latency_ms FROM requests WHERE status = 500",
    ),
    (
        "hourly error counts",
        "SELECT status, COUNT(status) FROM requests "
        "WHERE ts BETWEEN 40000 AND 50000 GROUP BY status",
    ),
    (
        "slowest errors",
        "SELECT ts, latency_ms FROM requests WHERE status = 404 "
        "ORDER BY latency_ms DESC LIMIT 5",
    ),
]


def main() -> None:
    db = Database(tempfile.mkdtemp(prefix="repro_design_"))
    print("Building two projections of the 'requests' table (400k rows)...")
    build(db)

    for name in ("requests_by_time", "requests_by_status"):
        proj = db.projection(name)
        print(f"\n{name} (sorted by {', '.join(proj.sort_keys)}):")
        for col in proj.column_names:
            pc = proj.column(col)
            sizes = ", ".join(
                f"{enc}={pc.file(enc).size_bytes() // 1024}KB"
                for enc in pc.encodings
            )
            idx = " +index" if pc.index_path else ""
            print(f"   {col:>11}: {sizes}{idx}")

    print("\nRouting queries against the 'requests' anchor:")
    for title, sql_text in QUERIES:
        query = bind(parse(sql_text), db.catalog)
        chosen = resolve_projection(db.catalog, query)
        result = db.query(query, strategy="auto", cold=True)
        print(
            f"  {title:<22} -> {chosen.name:<19} "
            f"[{result.strategy:>13}] {result.n_rows:>6} rows, "
            f"{result.simulated_ms:7.1f} ms replay"
        )

    print(
        "\nTime-windowed queries land on requests_by_time (FOR-packed ts,"
        " clustered index); status-filtered queries land on"
        " requests_by_status (RLE status, 4-run column)."
    )


if __name__ == "__main__":
    main()
