"""Quickstart: load data, run the paper's queries, compare strategies.

Run with::

    python examples/quickstart.py

Builds a small TPC-H-style database in a temporary directory, runs the
paper's selection / aggregation / join queries through the SQL front-end,
and shows how the four materialization strategies differ on the same query.
"""

from __future__ import annotations

import tempfile

from repro import Database, Strategy, load_tpch


def main() -> None:
    root = tempfile.mkdtemp(prefix="repro_quickstart_")
    db = Database(root)
    print(f"Loading TPC-H-style data (scale 0.01 = 60k lineitem rows) at {root}")
    load_tpch(db.catalog, scale=0.01)

    print("\n-- Selection (the paper's Section 4.1 query) ------------------")
    result = db.sql(
        "SELECT shipdate, linenum FROM lineitem "
        "WHERE shipdate < '1994-01-01' AND linenum < 7"
    )
    print(f"strategy={result.strategy}  rows={result.n_rows}  "
          f"wall={result.wall_ms:.1f} ms  model-replay={result.simulated_ms:.1f} ms")
    for row in result.decoded_rows()[:3]:
        print("  ", row)

    print("\n-- Same query, every strategy ---------------------------------")
    for strategy in Strategy:
        r = db.sql(
            "SELECT shipdate, linenum FROM lineitem "
            "WHERE shipdate < '1994-01-01' AND linenum < 7",
            strategy=strategy,
            cold=True,
        )
        print(
            f"  {strategy.value:>13}: wall {r.wall_ms:6.1f} ms, "
            f"replay {r.simulated_ms:6.1f} ms, "
            f"tuples constructed {r.stats.tuples_constructed:>7}, "
            f"blocks read {r.stats.block_reads}"
        )

    print("\n-- Aggregation (Section 4.2) ----------------------------------")
    result = db.sql(
        "SELECT shipdate, SUM(linenum) FROM lineitem "
        "WHERE shipdate < '1994-01-01' AND linenum < 7 GROUP BY shipdate",
        strategy="lm-parallel",
    )
    print(f"groups={result.n_rows}, first: {result.decoded_rows()[0]}")

    print("\n-- FK-PK join (Section 4.3) -----------------------------------")
    result = db.sql(
        "SELECT o.shipdate, c.nationcode FROM orders o, customer c "
        "WHERE o.custkey = c.custkey AND o.custkey < 100",
        strategy="multi-column",
    )
    print(f"rows={result.n_rows}, first: {result.decoded_rows()[0]}")

    print("\n-- Model-driven strategy choice -------------------------------")
    from repro import Predicate, SelectQuery

    query = SelectQuery(
        projection="lineitem",
        select=("shipdate", "linenum"),
        predicates=(
            Predicate("shipdate", "<", 8500),
            Predicate("linenum", "<", 7),
        ),
    )
    plan = db.explain(query)
    print(f"optimizer chose: {plan['chosen']}")
    for name, ms in sorted(plan["predictions"].items(), key=lambda kv: kv[1]):
        print(f"  predicted {name:>13}: {ms:7.2f} ms")


if __name__ == "__main__":
    main()
