"""Observability: explain, describe, and trace one query end to end.

Run with::

    python examples/observability.py

Shows the lenses the engine offers on a single query:

1. ``explain`` — the analytical model's predicted cost per strategy (what
   the optimizer sees *before* running anything);
2. ``describe`` — the chosen strategy's physical operator tree;
3. ``trace`` — what actually happened, operator by operator, with observed
   cardinalities, next to the executed query's counter-level statistics;
4. ``explain --analyze`` — the span tree: per-operator wall-clock and
   model-replay attribution (exclusive times sum exactly to the query's
   ``simulated_ms``), plus I/O and decode-cache counters;
5. the process-wide metrics registry — counters, latency histograms and the
   slow-query log accumulated across everything the example ran.
"""

from __future__ import annotations

import tempfile

from repro import REGISTRY, Database, Predicate, SelectQuery, load_tpch


def main() -> None:
    db = Database(tempfile.mkdtemp(prefix="repro_obs_"))
    load_tpch(db.catalog, scale=0.01)
    query = SelectQuery(
        projection="lineitem",
        select=("shipdate", "linenum"),
        predicates=(
            Predicate("shipdate", "<", 8700),
            Predicate("linenum", "<", 4),
        ),
    )

    print("1) explain — model predictions per strategy")
    plan = db.explain(query)
    for name, ms in sorted(plan["predictions"].items(), key=lambda kv: kv[1]):
        marker = "   <- chosen" if name == plan["chosen"] else ""
        print(f"   {name:>13}: {ms:7.2f} ms predicted{marker}")

    print("\n2) describe — the chosen strategy's physical plan")
    for line in db.describe(query, plan["chosen"]).splitlines():
        print("   " + line)

    print("\n3) trace — observed execution, operator by operator")
    result = db.query(query, strategy=plan["chosen"], cold=True, trace=True)
    for op, detail in result.trace:
        pretty = ", ".join(f"{k}={v}" for k, v in detail.items())
        print(f"   {op:<11} {pretty}")

    stats = result.stats
    print(
        f"\n   -> {result.n_rows} rows in {result.wall_ms:.1f} ms wall / "
        f"{result.simulated_ms:.1f} ms model-replay"
    )
    print(
        f"   counters: {stats.block_reads} block reads, "
        f"{stats.disk_seeks} seeks, {stats.blocks_skipped} blocks skipped, "
        f"{stats.buffer_hits} pool hits, "
        f"{stats.tuples_constructed} tuples constructed"
    )

    print("\nSame query, forced through the other extreme:")
    other = (
        "em-parallel" if plan["chosen"].startswith("lm") else "lm-parallel"
    )
    forced = db.query(query, strategy=other, cold=True, trace=True)
    print(
        f"   {other}: {forced.simulated_ms:.1f} ms replay, "
        f"{forced.stats.tuples_constructed} tuples constructed "
        f"(vs {stats.tuples_constructed})"
    )

    print("\n4) explain analyze — the span tree, with per-operator timing")
    report = db.explain(query, analyze=True, strategy=plan["chosen"])
    for line in report["text"].splitlines():
        print("   " + line)
    self_total = sum(
        s.self_simulated_ms(db.constants) for s in report["root"].walk()
    )
    print(
        f"   -> per-span self times sum to {self_total:.3f} ms "
        f"== query simulated_ms {report['simulated_ms']:.3f} ms"
    )

    print("\n5) metrics registry — accumulated across everything above")
    snap = REGISTRY.snapshot()
    for name, value in sorted(snap["counters"].items()):
        print(f"   {name} = {value}")
    pool = snap.get("buffer_pool", {})
    print(
        f"   buffer pool: {pool.get('hits', 0)} hits, "
        f"{pool.get('misses', 0)} misses, "
        f"{pool.get('resident_blocks', 0)} resident blocks"
    )


if __name__ == "__main__":
    main()
