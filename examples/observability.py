"""Observability: explain, describe, and trace one query end to end.

Run with::

    python examples/observability.py

Shows the three lenses the engine offers on a single query:

1. ``explain`` — the analytical model's predicted cost per strategy (what
   the optimizer sees *before* running anything);
2. ``describe`` — the chosen strategy's physical operator tree;
3. ``trace`` — what actually happened, operator by operator, with observed
   cardinalities, next to the executed query's counter-level statistics.
"""

from __future__ import annotations

import tempfile

from repro import Database, Predicate, SelectQuery, load_tpch


def main() -> None:
    db = Database(tempfile.mkdtemp(prefix="repro_obs_"))
    load_tpch(db.catalog, scale=0.01)
    query = SelectQuery(
        projection="lineitem",
        select=("shipdate", "linenum"),
        predicates=(
            Predicate("shipdate", "<", 8700),
            Predicate("linenum", "<", 4),
        ),
    )

    print("1) explain — model predictions per strategy")
    plan = db.explain(query)
    for name, ms in sorted(plan["predictions"].items(), key=lambda kv: kv[1]):
        marker = "   <- chosen" if name == plan["chosen"] else ""
        print(f"   {name:>13}: {ms:7.2f} ms predicted{marker}")

    print("\n2) describe — the chosen strategy's physical plan")
    for line in db.describe(query, plan["chosen"]).splitlines():
        print("   " + line)

    print("\n3) trace — observed execution, operator by operator")
    result = db.query(query, strategy=plan["chosen"], cold=True, trace=True)
    for op, detail in result.trace:
        pretty = ", ".join(f"{k}={v}" for k, v in detail.items())
        print(f"   {op:<11} {pretty}")

    stats = result.stats
    print(
        f"\n   -> {result.n_rows} rows in {result.wall_ms:.1f} ms wall / "
        f"{result.simulated_ms:.1f} ms model-replay"
    )
    print(
        f"   counters: {stats.block_reads} block reads, "
        f"{stats.disk_seeks} seeks, {stats.blocks_skipped} blocks skipped, "
        f"{stats.buffer_hits} pool hits, "
        f"{stats.tuples_constructed} tuples constructed"
    )

    print("\nSame query, forced through the other extreme:")
    other = (
        "em-parallel" if plan["chosen"].startswith("lm") else "lm-parallel"
    )
    forced = db.query(query, strategy=other, cold=True, trace=True)
    print(
        f"   {other}: {forced.simulated_ms:.1f} ms replay, "
        f"{forced.stats.tuples_constructed} tuples constructed "
        f"(vs {stats.tuples_constructed})"
    )


if __name__ == "__main__":
    main()
