"""Fault injection, retrying reads, and quarantine/degraded execution."""

import numpy as np
import pytest

from repro import (
    NO_RETRY,
    Database,
    FaultInjector,
    FaultRule,
    PartitionQuarantine,
    Predicate,
    RetryPolicy,
    SelectQuery,
)
from repro.dtypes import INT32, ColumnSchema
from repro.errors import (
    CorruptBlockError,
    QuarantinedPartitionError,
    TransientIOError,
)
from repro.metrics import MetricsRegistry


def make_projection(db, n=60_000, partitions=None, seed=3):
    """A two-column projection (sorted `a`, random `b`) for fault tests."""
    rng = np.random.default_rng(seed)
    a = np.sort(rng.integers(0, 1000, size=n)).astype(np.int32)
    b = rng.integers(0, 1000, size=n).astype(np.int32)
    kwargs = {} if partitions is None else {"partitions": partitions}
    db.catalog.create_projection(
        "t",
        {"a": a, "b": b},
        schemas={"a": ColumnSchema("a", INT32), "b": ColumnSchema("b", INT32)},
        sort_keys=["a"],
        encodings={"a": ["uncompressed"], "b": ["uncompressed"]},
        presorted=True,
        **kwargs,
    )
    return a, b


def scan_query():
    """A full-scan selection that cannot be resolved from an index."""
    return SelectQuery(
        projection="t",
        select=("a", "b"),
        predicates=(Predicate("a", "<", 800), Predicate("b", "!=", -1)),
    )


class TestFaultRule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(kind="gremlin")

    def test_matches_basename_and_full_path(self):
        rule = FaultRule(kind="transient", path_glob="b.uncompressed.col")
        assert rule.matches("/any/where/b.uncompressed.col", 0)
        assert not rule.matches("/any/where/a.uncompressed.col", 0)
        full = FaultRule(kind="transient", path_glob="*/part0001/*")
        assert full.matches("/db/t/part0001/a.uncompressed.col", 2)
        assert not full.matches("/db/t/part0002/a.uncompressed.col", 2)

    def test_block_index_restriction(self):
        rule = FaultRule(kind="transient", block_index=3)
        assert rule.matches("x.col", 3)
        assert not rule.matches("x.col", 4)


class TestInjectorDeterminism:
    KEYS = [(f"col{i}.col", b) for i in range(8) for b in range(32)]

    def _selection(self, seed):
        inj = FaultInjector(
            [FaultRule(kind="transient", probability=0.4, times=1)], seed=seed
        )
        picked = []
        for path, block in self.KEYS:
            try:
                inj.on_read(path, block)
                picked.append(False)
            except TransientIOError:
                picked.append(True)
        return picked

    def test_same_seed_same_schedule(self):
        assert self._selection(11) == self._selection(11)

    def test_different_seed_different_schedule(self):
        assert self._selection(11) != self._selection(12)

    def test_probability_roughly_honored(self):
        picked = self._selection(11)
        # 256 draws at p=0.4; a gross miss means the hash draw is broken.
        assert 0.2 < sum(picked) / len(picked) < 0.6

    def test_transient_recovers_after_times_attempts(self):
        inj = FaultInjector([FaultRule(kind="transient", times=2)], seed=0)
        for _ in range(2):
            with pytest.raises(TransientIOError):
                inj.on_read("c.col", 0)
        assert inj.on_read("c.col", 0) == 0.0  # third attempt succeeds
        assert inj.injected["transient"] == 2

    def test_error_messages_name_file_and_block(self):
        inj = FaultInjector(
            [FaultRule(kind="transient"), FaultRule(kind="corrupt")], seed=0
        )
        with pytest.raises(TransientIOError, match=r"c\.col: block 7 "):
            inj.on_read("/db/c.col", 7)
        inj2 = FaultInjector([FaultRule(kind="corrupt")], seed=0)
        with pytest.raises(CorruptBlockError, match=r"c\.col: block 7 "):
            inj2.on_read("/db/c.col", 7)

    def test_slow_returns_latency(self):
        inj = FaultInjector(
            [FaultRule(kind="slow", latency_us=250.0)] * 2, seed=0
        )
        assert inj.on_read("c.col", 0) == 500.0
        assert inj.injected["slow"] == 2

    def test_reset_forgets_attempts_and_tallies(self):
        inj = FaultInjector([FaultRule(kind="transient", times=1)], seed=0)
        with pytest.raises(TransientIOError):
            inj.on_read("c.col", 0)
        inj.on_read("c.col", 0)  # recovered
        inj.reset()
        assert inj.injected["transient"] == 0
        with pytest.raises(TransientIOError):  # budget restored
            inj.on_read("c.col", 0)

    def test_metrics_shape(self):
        inj = FaultInjector([FaultRule(kind="slow")], seed=9)
        snap = inj.metrics()
        assert snap["rules"] == 1 and snap["seed"] == 9
        assert set(snap) >= {
            "injected_transient", "injected_corrupt", "injected_slow"
        }


class TestRetryPolicy:
    def test_exponential_backoff(self):
        policy = RetryPolicy(attempts=4, backoff_us=100.0)
        assert [policy.backoff_for(n) for n in (1, 2, 3)] == [
            100.0, 200.0, 400.0,
        ]

    def test_at_least_one_attempt(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)

    def test_no_retry_is_single_attempt(self):
        assert NO_RETRY.attempts == 1


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestRetryingReads:
    def _db(self, tmp_path, registry, rules, **kwargs):
        inj = FaultInjector(rules, seed=5)
        db = Database(
            tmp_path / "db", fault_injector=inj, metrics=registry, **kwargs
        )
        make_projection(db)
        return db, inj

    def test_transient_faults_recover_identically(self, tmp_path, registry):
        db, inj = self._db(
            tmp_path,
            registry,
            [FaultRule(kind="transient", probability=0.5, times=2)],
            retry=RetryPolicy(attempts=4, backoff_us=100.0),
        )
        faulted = db.query(scan_query(), cold=True, trace=True)
        assert faulted.stats.io_retries > 0
        assert faulted.stats.io_gave_up == 0
        inj2 = FaultInjector([], seed=0)
        clean = Database(tmp_path / "db", fault_injector=inj2).query(
            scan_query(), cold=True
        )
        assert sorted(faulted.rows()) == sorted(clean.rows())
        # Backoff entered the simulated clock, never wall-clock sleeps.
        assert faulted.simulated_ms > clean.simulated_ms
        # The recovery is visible: RETRY spans, report line, registry.
        retries = faulted.spans.find("RETRY")
        assert retries and all(
            s.detail["outcome"] == "recovered" for s in retries
        )
        assert all(
            "block" in s.detail and "file" in s.detail for s in retries
        )
        assert "fault recovery" in faulted.report()
        assert (
            registry.counter("io_retries_total").value
            == faulted.stats.io_retries
        )
        assert db.pool.total_retries == faulted.stats.io_retries

    def test_exhausted_budget_gives_up(self, tmp_path, registry):
        db, _inj = self._db(
            tmp_path,
            registry,
            [FaultRule(kind="transient", path_glob="b.*", times=99)],
            retry=RetryPolicy(attempts=2, backoff_us=50.0),
        )
        with pytest.raises(TransientIOError, match=r"b\.uncompressed\.col"):
            db.query(scan_query(), cold=True)
        assert db.pool.total_give_ups == 1
        assert registry.counter("io_gave_up_total").value == 0  # query died

    def test_give_up_span_in_truncated_tree(self, tmp_path, registry):
        db, _inj = self._db(
            tmp_path,
            registry,
            [FaultRule(kind="transient", path_glob="b.*", times=99)],
            retry=RetryPolicy(attempts=2, backoff_us=50.0),
        )
        with pytest.raises(TransientIOError) as excinfo:
            db.query(scan_query(), cold=True, trace=True)
        root = excinfo.value.spans
        assert root.open_spans() == []
        gave_up = [
            s for s in root.find("RETRY")
            if s.detail.get("outcome") == "gave_up"
        ]
        assert len(gave_up) == 1
        assert gave_up[0].detail["attempts"] == 2

    def test_no_retry_fails_on_first_transient(self, tmp_path, registry):
        db, _inj = self._db(
            tmp_path,
            registry,
            [FaultRule(kind="transient", path_glob="b.*", times=1)],
            retry=NO_RETRY,
        )
        with pytest.raises(TransientIOError):
            db.query(scan_query(), cold=True)
        assert db.pool.total_retries == 0

    def test_slow_blocks_charge_simulated_time(self, tmp_path, registry):
        db, _inj = self._db(
            tmp_path,
            registry,
            [FaultRule(kind="slow", latency_us=1000.0)],
        )
        slow = db.query(scan_query(), cold=True)
        clean = Database(tmp_path / "db").query(scan_query(), cold=True)
        assert slow.stats.extra["slow_block_us"] > 0
        assert slow.simulated_ms > clean.simulated_ms
        assert sorted(slow.rows()) == sorted(clean.rows())

    def test_cache_hits_never_consult_injector(self, tmp_path, registry):
        db, inj = self._db(
            tmp_path,
            registry,
            [FaultRule(kind="transient", times=10**6)],
            retry=RetryPolicy(attempts=2, backoff_us=0.0),
        )
        # Warm the pool with the injector silenced...
        db.pool.injector = None
        db.query(scan_query(), cold=True)
        db.pool.injector = inj
        # ...then a warm query reads only from cache: no faults fire.
        result = db.query(scan_query())
        assert inj.injected["transient"] == 0
        assert result.stats.io_retries == 0

    def test_parallel_scans_retry_deterministically(self, tmp_path, registry):
        db, _inj = self._db(
            tmp_path,
            registry,
            [FaultRule(kind="transient", probability=0.5, times=2)],
            retry=RetryPolicy(attempts=4, backoff_us=100.0),
            parallel_scans=2,
        )
        with db:
            first = db.query(scan_query(), strategy="lm-parallel", cold=True)
            db.pool.injector.reset()
            second = db.query(scan_query(), strategy="lm-parallel", cold=True)
        # The keyed-hash schedule is independent of thread interleaving.
        assert first.stats.io_retries == second.stats.io_retries
        assert sorted(first.rows()) == sorted(second.rows())


class TestPartitionQuarantine:
    def test_record_is_idempotent_first_cause_wins(self):
        q = PartitionQuarantine()
        first = q.record("t", "part0001", "checksum")
        second = q.record("t", "part0001", "different cause")
        assert first is second and first.cause == "checksum"
        assert len(q) == 1
        assert q.is_quarantined("t", "part0001")
        assert not q.is_quarantined("t", "part0002")

    def test_entries_sorted_release_and_clear(self):
        q = PartitionQuarantine()
        q.record("t", "part0002", "x")
        q.record("t", "part0001", "y")
        assert [e.partition for e in q.entries()] == ["part0001", "part0002"]
        assert q.release("t", "part0002")
        assert not q.release("t", "part0002")  # already released
        q.clear()
        assert len(q) == 0

    def test_metrics_names_partitions(self):
        q = PartitionQuarantine()
        q.record("t", "part0003", "z")
        assert q.metrics() == {
            "quarantined": 1, "partitions": ["t/part0003"],
        }

    def test_error_carries_structured_fields(self):
        err = QuarantinedPartitionError("t", "part0001", "bad block")
        assert err.projection == "t"
        assert err.partition == "part0001"
        assert "part0001" in str(err) and "bad block" in str(err)


def degrade_db(tmp_path, registry=None, rules=None, **kwargs):
    """A 4-way partitioned database whose part0001 always fails checksum."""
    inj = FaultInjector(
        rules
        if rules is not None
        else [FaultRule(kind="corrupt", path_glob="*part0001*")],
        seed=0,
    )
    db = Database(
        tmp_path / "db",
        fault_injector=inj,
        on_error="degrade",
        metrics=registry if registry is not None else MetricsRegistry(),
        **kwargs,
    )
    make_projection(db, partitions=4)
    return db


class TestDegradedExecution:
    def test_on_error_validated(self, tmp_path):
        with pytest.raises(ValueError, match="on_error"):
            Database(tmp_path / "db", on_error="explode")

    def test_default_fail_mode_unchanged(self, tmp_path):
        inj = FaultInjector(
            [FaultRule(kind="corrupt", path_glob="*part0001*")], seed=0
        )
        db = Database(tmp_path / "db", fault_injector=inj)
        make_projection(db, partitions=4)
        with pytest.raises(CorruptBlockError, match=r"part0001"):
            db.query(scan_query(), strategy="em-parallel", cold=True)
        assert len(db.quarantine) == 0

    def test_degrade_skips_failing_partition(self, tmp_path):
        registry = MetricsRegistry()
        db = degrade_db(tmp_path, registry)
        result = db.query(scan_query(), strategy="em-parallel", cold=True)
        assert result.degraded
        assert result.skipped_partitions == ("part0001",)
        assert "DEGRADED" in result.report()
        assert result.n_rows > 0
        entries = db.quarantine.entries()
        assert len(entries) == 1 and entries[0].partition == "part0001"
        assert "part0001" in entries[0].cause
        assert registry.counter("degraded_queries_total").value == 1
        assert registry.counter("partitions_quarantined_total").value == 1

    def test_degraded_equals_clean_minus_partition(self, tmp_path):
        db = degrade_db(tmp_path)
        degraded = db.query(scan_query(), strategy="em-parallel", cold=True)
        clean_db = Database(tmp_path / "db")
        proj = clean_db.projection("t")
        survivors = [
            p for p in proj.partitions if p.name != "part0001"
        ]
        expected = []
        for part in survivors:
            child = part.open()
            a = child.read_column_values("a")
            b = child.read_column_values("b")
            mask = a < 800
            expected.extend(zip(a[mask].tolist(), b[mask].tolist()))
        assert sorted(degraded.rows()) == sorted(expected)

    def test_quarantine_is_session_scoped(self, tmp_path):
        db = degrade_db(tmp_path)
        db.query(scan_query(), strategy="em-parallel", cold=True)
        corrupt_reads = db.pool.injector.injected["corrupt"]
        # Second query pre-skips the quarantined partition: no new
        # corruption is even encountered.
        again = db.query(scan_query(), strategy="em-parallel", cold=True)
        assert again.degraded
        assert again.skipped_partitions == ("part0001",)
        assert db.pool.injector.injected["corrupt"] == corrupt_reads
        # A fresh session starts with an empty quarantine.
        fresh = degrade_db(tmp_path / "fresh")
        assert len(fresh.quarantine) == 0

    def test_release_restores_partition(self, tmp_path):
        db = degrade_db(tmp_path)
        db.query(scan_query(), strategy="em-parallel", cold=True)
        db.pool.injector.rules = ()  # the device healed
        assert db.quarantine.release("t", "part0001")
        result = db.query(scan_query(), strategy="em-parallel", cold=True)
        assert not result.degraded

    def test_degrade_under_parallel_scans(self, tmp_path):
        with degrade_db(tmp_path, parallel_scans=2) as db:
            result = db.query(
                scan_query(), strategy="lm-parallel", cold=True, trace=True
            )
            assert result.degraded
            assert result.skipped_partitions == ("part0001",)
            assert result.spans.open_spans() == []

    def test_transient_exhaustion_quarantines_too(self, tmp_path):
        db = degrade_db(
            tmp_path,
            rules=[
                FaultRule(kind="transient", path_glob="*part0002*", times=99)
            ],
            retry=RetryPolicy(attempts=2, backoff_us=10.0),
        )
        result = db.query(scan_query(), strategy="em-parallel", cold=True)
        assert result.degraded
        assert result.skipped_partitions == ("part0002",)
        assert result.stats.io_gave_up >= 1

    def test_explain_analyze_reports_degradation(self, tmp_path):
        db = degrade_db(tmp_path)
        report = db.explain(scan_query(), analyze=True, strategy="em-parallel")
        assert report["degraded"] is True
        assert report["skipped_partitions"] == ["part0001"]

    def test_unpartitioned_failure_still_raises(self, tmp_path):
        # The quarantine unit is a partition; an unpartitioned projection
        # has no survivors to degrade to, so the error propagates even in
        # degrade mode.
        inj = FaultInjector([FaultRule(kind="corrupt")], seed=0)
        db = Database(tmp_path / "db", fault_injector=inj, on_error="degrade")
        make_projection(db)
        with pytest.raises(CorruptBlockError):
            db.query(scan_query(), cold=True)
