"""Tests for the clustered index and its DS1 fast path."""

import numpy as np
import pytest

from repro import Database, Predicate, SelectQuery, Strategy
from repro.dtypes import INT32, ColumnSchema
from repro.errors import StorageError
from repro.storage.index import ClusteredIndex

from .reference import canonical, full_column, reference_select

SORTED = np.repeat(np.array([2, 5, 5, 9, 12]), [3, 1, 0, 4, 2])  # 2,2,2,5,9*4,12,12


class TestClusteredIndex:
    def test_build_requires_sorted(self):
        with pytest.raises(StorageError):
            ClusteredIndex.build(np.array([3, 1, 2]))

    def test_distinct_values_and_firsts(self):
        idx = ClusteredIndex.build(SORTED)
        assert idx.values.tolist() == [2, 5, 9, 12]
        assert idx.first_positions.tolist() == [0, 3, 4, 8]
        assert idx.n_rows == 10

    @pytest.mark.parametrize(
        "op,value",
        [(op, v) for op in ("<", "<=", ">", ">=", "=") for v in
         (-1, 2, 3, 5, 9, 11, 12, 99)],
    )
    def test_lookup_matches_scan(self, op, value):
        idx = ClusteredIndex.build(SORTED)
        pred = Predicate("c", op, value)
        hit = idx.lookup(pred)
        expected = np.nonzero(pred.mask(SORTED))[0]
        assert hit is not None
        assert np.array_equal(hit.to_array(), expected), (op, value)

    def test_not_equal_unsupported(self):
        idx = ClusteredIndex.build(SORTED)
        assert idx.lookup(Predicate("c", "!=", 5)) is None

    def test_lookup_range(self):
        idx = ClusteredIndex.build(SORTED)
        hit = idx.lookup_range(5, 9)
        assert hit.to_array().tolist() == [3, 4, 5, 6, 7]

    def test_save_load_roundtrip(self, tmp_path):
        idx = ClusteredIndex.build(SORTED)
        idx.save(tmp_path / "c.idx")
        loaded = ClusteredIndex.load(tmp_path / "c.idx")
        assert np.array_equal(loaded.values, idx.values)
        assert np.array_equal(loaded.first_positions, idx.first_positions)
        assert loaded.n_rows == idx.n_rows

    def test_bad_magic(self, tmp_path):
        (tmp_path / "bogus.idx").write_bytes(b"NOTANIDX")
        with pytest.raises(StorageError):
            ClusteredIndex.load(tmp_path / "bogus.idx")

    def test_empty_column(self):
        idx = ClusteredIndex.build(np.empty(0, dtype=np.int64))
        hit = idx.lookup(Predicate("c", "<", 5))
        assert hit.is_empty()


@pytest.fixture()
def indexed_db(tmp_path):
    rng = np.random.default_rng(77)
    n = 40_000
    a = np.sort(rng.integers(0, 300, size=n)).astype(np.int32)
    b = rng.integers(0, 10, size=n).astype(np.int32)
    db = Database(tmp_path / "db")
    db.catalog.create_projection(
        "t",
        {"a": a, "b": b},
        schemas={"a": ColumnSchema("a", INT32), "b": ColumnSchema("b", INT32)},
        sort_keys=["a"],
        encodings={"a": ["rle", "uncompressed"], "b": ["uncompressed"]},
        presorted=True,
    )
    return db, a, b


class TestIndexFastPath:
    def test_projection_builds_index_for_primary_sort_key(self, indexed_db):
        db, _a, _b = indexed_db
        proj = db.projection("t")
        assert proj.column("a").index is not None
        assert proj.column("b").index is None

    def test_index_survives_reopen(self, indexed_db, tmp_path):
        db, a, _b = indexed_db
        reopened = Database(tmp_path / "db")
        idx = reopened.projection("t").column("a").index
        assert idx is not None
        assert idx.n_rows == len(a)

    def test_lm_uses_index_and_skips_scan(self, indexed_db):
        db, a, b = indexed_db
        query = SelectQuery(
            projection="t",
            select=("a", "b"),
            predicates=(Predicate("a", "<", 60),),
        )
        r = db.query(query, strategy=Strategy.LM_PARALLEL, cold=True)
        assert r.stats.extra.get("index_lookups") == 1
        expected = reference_select(db.projection("t"), ["a", "b"],
                                    list(query.predicates))
        assert np.array_equal(canonical(r.tuples.data), canonical(expected))
        # Only blocks needed for value extraction were read, and the 'a'
        # column scan itself never happened.
        db.use_indexes = False
        r2 = db.query(query, strategy=Strategy.LM_PARALLEL, cold=True)
        db.use_indexes = True
        assert r2.stats.extra.get("index_lookups") is None
        assert r.stats.values_scanned < r2.stats.values_scanned

    def test_index_disabled_gives_same_answer(self, indexed_db):
        db, _a, _b = indexed_db
        query = SelectQuery(
            projection="t",
            select=("a",),
            predicates=(Predicate("a", ">=", 150), Predicate("a", "<", 200)),
        )
        with_idx = db.query(query, strategy=Strategy.LM_PIPELINED, cold=True)
        db.use_indexes = False
        without = db.query(query, strategy=Strategy.LM_PIPELINED, cold=True)
        db.use_indexes = True
        assert np.array_equal(
            canonical(with_idx.tuples.data), canonical(without.tuples.data)
        )

    def test_conjunction_intersects_index_ranges(self, indexed_db):
        db, a, _b = indexed_db
        query = SelectQuery(
            projection="t",
            select=("a",),
            predicates=(Predicate("a", ">=", 100), Predicate("a", "<=", 120)),
        )
        r = db.query(query, strategy=Strategy.LM_PARALLEL, cold=True)
        assert r.stats.extra.get("index_lookups") == 1
        assert r.n_rows == int(((a >= 100) & (a <= 120)).sum())

    def test_unresolvable_predicate_falls_back_to_scan(self, indexed_db):
        db, a, _b = indexed_db
        query = SelectQuery(
            projection="t",
            select=("a",),
            predicates=(Predicate("a", "!=", 100),),
        )
        r = db.query(query, strategy=Strategy.LM_PARALLEL, cold=True)
        assert r.stats.extra.get("index_lookups") is None
        assert r.n_rows == int((a != 100).sum())
