"""Property-based tests: merge-on-read equals a from-scratch rebuild.

For any sequence of inserts and any query, the answer with pending rows
(merge-on-read) must equal the answer after the tuple mover runs — and both
must equal a database loaded with the combined data in one shot.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AggSpec, Database, Predicate, SelectQuery
from repro.dtypes import INT32, ColumnSchema

from .reference import canonical

BASE_ROWS = 4_000


def build_db(root, extra_rows):
    rng = np.random.default_rng(7)
    g = rng.integers(0, 6, size=BASE_ROWS).astype(np.int32)
    v = rng.integers(0, 50, size=BASE_ROWS).astype(np.int32)
    if extra_rows:
        g = np.concatenate([g, np.array([r[0] for r in extra_rows], np.int32)])
        v = np.concatenate([v, np.array([r[1] for r in extra_rows], np.int32)])
    db = Database(root)
    db.catalog.create_projection(
        "t",
        {"g": g, "v": v},
        schemas={"g": ColumnSchema("g", INT32), "v": ColumnSchema("v", INT32)},
        sort_keys=["g"],
        encodings={"g": ["rle"], "v": ["uncompressed"]},
        anchor="t",
    )
    return db


inserted_rows = st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 50)),
    min_size=1,
    max_size=25,
)

queries = st.sampled_from(
    [
        SelectQuery(projection="t", select=("g", "v")),
        SelectQuery(
            projection="t",
            select=("g", "v"),
            predicates=(Predicate("v", "<", 25),),
        ),
        SelectQuery(
            projection="t",
            select=("g", "sum(v)"),
            group_by="g",
            aggregates=(AggSpec("sum", "v"),),
        ),
        SelectQuery(
            projection="t",
            select=("g", "avg(v)", "count(v)"),
            predicates=(Predicate("g", ">", 1),),
            group_by="g",
            aggregates=(AggSpec("avg", "v"), AggSpec("count", "v")),
        ),
        SelectQuery(
            projection="t",
            select=("g", "min(v)", "max(v)"),
            group_by="g",
            aggregates=(AggSpec("min", "v"), AggSpec("max", "v")),
        ),
    ]
)


@given(inserted_rows, queries)
@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_merge_on_read_equals_rebuild(tmp_path_factory, rows, query):
    live = build_db(tmp_path_factory.mktemp("live"), [])
    live.insert("t", [{"g": g, "v": v} for g, v in rows])
    with_pending = live.query(query, cold=True)

    rebuilt = build_db(tmp_path_factory.mktemp("rebuilt"), rows)
    expected = rebuilt.query(query, cold=True)
    assert np.array_equal(
        canonical(with_pending.tuples.data), canonical(expected.tuples.data)
    )

    # And the tuple mover converges to the same answer.
    live.merge("t")
    after_merge = live.query(query, cold=True)
    assert np.array_equal(
        canonical(after_merge.tuples.data), canonical(expected.tuples.data)
    )
