"""Tests for the HAVING clause."""

import numpy as np
import pytest

from repro import AggSpec, Predicate, SelectQuery, Strategy
from repro.errors import PlanError, SQLError

from .reference import full_column


def expected_group_sums(tpch_db, minimum):
    lineitem = tpch_db.projection("lineitem")
    lin = full_column(lineitem, "linenum")
    qty = full_column(lineitem, "quantity")
    out = {}
    for v in np.unique(lin):
        total = int(qty[lin == v].sum())
        if total > minimum:
            out[int(v)] = total
    return out


class TestValidation:
    def test_requires_aggregation(self):
        with pytest.raises(PlanError):
            SelectQuery(
                projection="t",
                select=("a",),
                having=(Predicate("a", ">", 1),),
            )

    def test_column_must_be_selected(self):
        with pytest.raises(PlanError):
            SelectQuery(
                projection="t",
                select=("g", "sum(v)"),
                group_by="g",
                aggregates=(AggSpec("sum", "v"),),
                having=(Predicate("max(v)", ">", 1),),
            )


class TestExecution:
    @pytest.mark.parametrize("strategy", list(Strategy), ids=lambda s: s.value)
    def test_filters_groups(self, tpch_db, strategy):
        minimum = 30_000
        query = SelectQuery(
            projection="lineitem",
            select=("linenum", "sum(quantity)"),
            group_by="linenum",
            aggregates=(AggSpec("sum", "quantity"),),
            having=(Predicate("sum(quantity)", ">", minimum),),
        )
        result = tpch_db.query(query, strategy=strategy, cold=True)
        expected = expected_group_sums(tpch_db, minimum)
        assert {int(g): int(s) for g, s in result.rows()} == expected

    def test_having_on_group_column(self, tpch_db):
        query = SelectQuery(
            projection="lineitem",
            select=("linenum", "count(linenum)"),
            group_by="linenum",
            aggregates=(AggSpec("count", "linenum"),),
            having=(Predicate("linenum", ">=", 6),),
        )
        result = tpch_db.query(query, cold=True)
        assert {int(g) for g, _c in result.rows()} == {6, 7}

    def test_having_before_order_and_limit(self, tpch_db):
        query = SelectQuery(
            projection="lineitem",
            select=("linenum", "sum(quantity)"),
            group_by="linenum",
            aggregates=(AggSpec("sum", "quantity"),),
            having=(Predicate("linenum", "<", 6),),
            order_by=(("sum(quantity)", True),),
            limit=2,
        )
        result = tpch_db.query(query, cold=True)
        assert result.n_rows == 2
        sums = [s for _g, s in result.rows()]
        assert sums == sorted(sums, reverse=True)
        assert all(g < 6 for g, _s in result.rows())

    def test_having_with_pending_inserts(self, tmp_path):
        """HAVING applies to merged aggregates, not stored-side partials."""
        from repro import Database, load_tpch
        from datetime import date

        db = Database(tmp_path / "db")
        load_tpch(db.catalog, scale=0.001, seed=11)
        base = db.sql(
            "SELECT linenum, SUM(quantity) FROM lineitem GROUP BY linenum"
        ).rows()
        target_sum = dict(base)[7]
        threshold = target_sum + 50
        # Without inserts, group 7 fails the HAVING threshold...
        before = db.sql(
            "SELECT linenum, SUM(quantity) FROM lineitem GROUP BY linenum "
            f"HAVING SUM(quantity) > {threshold} AND linenum = 7"
        )
        assert before.n_rows == 0
        # ...pending rows push it over only if HAVING runs after the merge.
        db.insert(
            "lineitem",
            [
                {
                    "shipdate": date(1999, 1, 1),
                    "linenum": 7,
                    "quantity": 100,
                    "returnflag": "N",
                }
            ],
        )
        after = db.sql(
            "SELECT linenum, SUM(quantity) FROM lineitem GROUP BY linenum "
            f"HAVING SUM(quantity) > {threshold} AND linenum = 7"
        )
        assert after.rows() == [(7, target_sum + 100)]


class TestSQL:
    def test_having_aggregate_function(self, tpch_db):
        r = tpch_db.sql(
            "SELECT linenum, SUM(quantity) FROM lineitem GROUP BY linenum "
            "HAVING SUM(quantity) > 30000"
        )
        expected = expected_group_sums(tpch_db, 30_000)
        assert {int(g): int(s) for g, s in r.rows()} == expected

    def test_having_requires_selected_item(self, tpch_db):
        with pytest.raises(SQLError):
            tpch_db.sql(
                "SELECT linenum, COUNT(linenum) FROM lineitem "
                "GROUP BY linenum HAVING SUM(quantity) > 5"
            )

    def test_having_rejects_string_literal(self, tpch_db):
        with pytest.raises(SQLError):
            tpch_db.sql(
                "SELECT linenum, COUNT(linenum) FROM lineitem "
                "GROUP BY linenum HAVING linenum > 'two'"
            )
