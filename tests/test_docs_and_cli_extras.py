"""Executable-documentation tests and CLI extras."""

import re
import runpy
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.errors import CatalogError

REPO_ROOT = Path(__file__).parent.parent


class TestReadmeQuickstart:
    def test_readme_python_snippet_runs(self, tmp_path, monkeypatch):
        """The README's quickstart block must execute verbatim."""
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.DOTALL)
        assert blocks, "README lost its quickstart code block"
        snippet = blocks[0].replace('"./mydb"', repr(str(tmp_path / "mydb")))
        namespace: dict = {}
        exec(compile(snippet, "README.md", "exec"), namespace)  # noqa: S102
        assert namespace["result"].strategy in {
            "em-pipelined", "em-parallel", "lm-pipelined", "lm-parallel",
        }

    def test_readme_mentions_every_example(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for example in sorted((REPO_ROOT / "examples").glob("*.py")):
            assert example.name in readme, f"README missing {example.name}"

    def test_design_doc_lists_every_bench(self):
        design = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        for bench in sorted((REPO_ROOT / "benchmarks").glob("bench_*.py")):
            assert bench.name in design, f"DESIGN.md missing {bench.name}"


class TestModuleEntryPoint:
    # runpy warns when the module was already imported in-process; that is
    # an artifact of testing `-m` without a subprocess, not of the package.
    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_python_dash_m_repro(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setattr(
            sys, "argv", ["repro", "load-tpch", str(tmp_path / "db"),
                          "--scale", "0.001"]
        )
        with pytest.raises(SystemExit) as excinfo:
            runpy.run_module("repro", run_name="__main__")
        assert excinfo.value.code == 0
        assert "lineitem" in capsys.readouterr().out


class TestVerboseExplain:
    def test_breakdown_printed(self, tmp_path, capsys):
        main(["load-tpch", str(tmp_path / "db"), "--scale", "0.001"])
        capsys.readouterr()
        code = main(
            [
                "explain",
                str(tmp_path / "db"),
                "SELECT shipdate, linenum FROM lineitem "
                "WHERE shipdate < '1994-01-01' AND linenum < 7",
                "--verbose",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SPC" in out
        assert "DS1(" in out or "DS2(" in out


class TestFloatRejection:
    def test_float_columns_rejected_with_guidance(self, tmp_path):
        from repro import Database, FLOAT64, ColumnSchema

        db = Database(tmp_path / "db")
        with pytest.raises(CatalogError, match="float64"):
            db.catalog.create_projection(
                "floats",
                {"x": np.array([1.5, 2.5])},
                schemas={"x": ColumnSchema("x", FLOAT64)},
                sort_keys=[],
                encodings={"x": ["uncompressed"]},
            )
