"""Offline scrubber: checksum, structural, and deep value verification."""

import json

import numpy as np
import pytest

from repro import Database
from repro.cli import main
from repro.dtypes import INT32, ColumnSchema
from repro.storage.column_file import ColumnFile


def make_db(root, partitions=None, n=50_000):
    db = Database(root)
    rng = np.random.default_rng(4)
    a = np.sort(rng.integers(0, 1000, size=n)).astype(np.int32)
    b = rng.integers(0, 1000, size=n).astype(np.int32)
    kwargs = {} if partitions is None else {"partitions": partitions}
    db.catalog.create_projection(
        "t",
        {"a": a, "b": b},
        schemas={"a": ColumnSchema("a", INT32), "b": ColumnSchema("b", INT32)},
        sort_keys=["a"],
        encodings={"a": ["uncompressed"], "b": ["uncompressed"]},
        presorted=True,
        **kwargs,
    )
    return db


def flip_byte(path, offset):
    data = bytearray(path.read_bytes())
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


class TestScrubAPI:
    def test_clean_store_scrubs_clean(self, tmp_path):
        db = make_db(tmp_path / "db")
        report = db.scrub(deep=True)
        assert report.clean
        assert report.projections_scanned == 1
        assert report.files_scanned == 3  # 2 column files + the manifest
        assert report.blocks_scanned > 0
        assert report.to_json()["issues"] == []

    def test_checksum_damage_names_file_and_block(self, tmp_path):
        db = make_db(tmp_path / "db")
        path = db.projection("t").column("b").files["uncompressed"]
        target = ColumnFile.open(path).descriptors[1]
        flip_byte(path, target.offset + 7)
        report = Database(tmp_path / "db").scrub()
        assert not report.clean
        assert len(report.issues) == 1
        issue = report.issues[0]
        assert issue.file == str(path)
        assert issue.block == 1
        assert issue.column == "b"
        assert "checksum" in issue.error

    def test_scrub_never_raises_and_finds_all_damage(self, tmp_path):
        db = make_db(tmp_path / "db")
        for col, block in (("a", 0), ("b", 2)):
            path = db.projection("t").column(col).files["uncompressed"]
            d = ColumnFile.open(path).descriptors[block]
            flip_byte(path, d.offset + 3)
        report = Database(tmp_path / "db").scrub()
        assert {(i.column, i.block) for i in report.issues} == {
            ("a", 0), ("b", 2),
        }

    def test_truncated_file_reported_structurally(self, tmp_path):
        db = make_db(tmp_path / "db")
        path = db.projection("t").column("b").files["uncompressed"]
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 1000])
        report = Database(tmp_path / "db").scrub()
        assert not report.clean
        assert any("file holds only" in i.error for i in report.issues)

    def test_unopenable_file_reported(self, tmp_path):
        db = make_db(tmp_path / "db")
        path = db.projection("t").column("a").files["uncompressed"]
        path.write_bytes(b"NOTACOL!" + b"\x00" * 64)
        report = Database(tmp_path / "db").scrub()
        assert any(
            "cannot open column file" in i.error for i in report.issues
        )

    def test_deep_catches_damage_checksums_cannot_see(self, tmp_path):
        # A legacy block (no stored CRC) whose payload was swapped for
        # equally-sized garbage passes the shallow length check; only
        # deep=True decodes it and sees the values escape the descriptor's
        # min/max bounds.
        db = make_db(tmp_path / "db")
        path = db.projection("t").column("b").files["uncompressed"]
        cf = ColumnFile.open(path)
        d = cf.descriptors[0]
        forged = np.full(d.n_values, 10**6, dtype=np.int32).tobytes()
        assert len(forged) == d.nbytes
        data = bytearray(path.read_bytes())
        data[d.offset : d.offset + d.nbytes] = forged
        # Strip the block's CRC the way pre-checksum files look on disk.
        header_len = int.from_bytes(data[8:12], "little")
        header = json.loads(bytes(data[12 : 12 + header_len]).decode())
        header["blocks"][0].pop("crc32", None)
        new_header = json.dumps(header).encode()
        padded = new_header + b" " * (header_len - len(new_header))
        path.write_bytes(
            bytes(data[:12]) + padded + bytes(data[12 + header_len :])
        )

        shallow = Database(tmp_path / "db").scrub()
        assert shallow.clean
        deep = Database(tmp_path / "db").scrub(deep=True)
        assert not deep.clean
        assert any("escape the descriptor bounds" in i.error
                   for i in deep.issues)

    def test_partitioned_store_scrubbed_per_child(self, tmp_path):
        db = make_db(tmp_path / "db", partitions=4)
        report = db.scrub()
        assert report.clean
        assert report.files_scanned == 9  # 8 partition column files + the manifest
        part = db.projection("t").partitions[2]
        path = part.open().column("a").files["uncompressed"]
        d = ColumnFile.open(path).descriptors[0]
        flip_byte(path, d.offset + 1)
        report = Database(tmp_path / "db").scrub()
        assert len(report.issues) == 1
        assert report.issues[0].partition == "part0002"

    def test_scrub_bypasses_fault_injector(self, tmp_path):
        # The scrubber verifies disk bytes, not the injected schedule.
        from repro import FaultInjector, FaultRule

        make_db(tmp_path / "db")
        injector = FaultInjector([FaultRule(kind="corrupt")], seed=0)
        db = Database(tmp_path / "db", fault_injector=injector)
        report = db.scrub(deep=True)
        assert report.clean
        assert injector.injected["corrupt"] == 0


class TestScrubCLI:
    def test_clean_exit_zero(self, tmp_path, capsys):
        make_db(tmp_path / "db")
        assert main(["scrub", str(tmp_path / "db")]) == 0
        captured = capsys.readouterr()
        report = json.loads(captured.out)
        assert report["clean"] is True
        assert "scrubbed 1 projections" in captured.err

    def test_damage_exits_nonzero_and_names_block(self, tmp_path, capsys):
        db = make_db(tmp_path / "db")
        path = db.projection("t").column("b").files["uncompressed"]
        d = ColumnFile.open(path).descriptors[1]
        flip_byte(path, d.offset + 5)
        assert main(["scrub", str(tmp_path / "db"), "--deep"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] is False
        [issue] = report["issues"]
        assert issue["file"] == str(path)
        assert issue["block"] == 1

    def test_quiet_suppresses_summary(self, tmp_path, capsys):
        make_db(tmp_path / "db")
        assert main(["scrub", str(tmp_path / "db"), "--quiet"]) == 0
        assert capsys.readouterr().err == ""


class TestScrubWritePath:
    def wal_path(self, root):
        return root / "db" / "_wal" / "t.wal"

    def test_orphaned_staging_dir_reported(self, tmp_path):
        db = make_db(tmp_path / "db")
        (tmp_path / "db" / "tmp-7-t").mkdir()
        report = db.scrub()  # reopening would garbage-collect the debris
        assert not report.clean
        [issue] = report.issues
        assert issue.projection == "(catalog)"
        assert "orphaned staging" in issue.error
        assert issue.to_json()["line"] is None

    def test_missing_manifest_reported(self, tmp_path):
        make_db(tmp_path / "db")
        db = Database(tmp_path / "db")  # keep the open handle's view
        (tmp_path / "db" / "manifest.json").unlink()
        report = db.scrub()
        assert any("manifest missing" in i.error for i in report.issues)

    def test_corrupt_manifest_reported(self, tmp_path):
        make_db(tmp_path / "db")
        db = Database(tmp_path / "db")
        (tmp_path / "db" / "manifest.json").write_text("{nope")
        report = db.scrub()
        assert any("corrupt catalog manifest" in i.error
                   for i in report.issues)

    def test_manifest_naming_missing_projection_dir(self, tmp_path):
        make_db(tmp_path / "db")
        db = Database(tmp_path / "db")
        path = tmp_path / "db" / "manifest.json"
        data = json.loads(path.read_text())
        data["projections"]["ghost"] = "ghost"
        path.write_text(json.dumps(data))
        report = db.scrub()
        [issue] = [i for i in report.issues if i.projection == "ghost"]
        assert "metadata is missing" in issue.error

    def test_torn_final_wal_line_is_recoverable(self, tmp_path):
        # Scrub the damaged bytes directly, before recovery rewrites them.
        db = make_db(tmp_path / "db")
        db.insert("t", [{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        wal = self.wal_path(tmp_path)
        wal.write_bytes(wal.read_bytes()[:-6])
        report = db.scrub()
        [issue] = [i for i in report.issues if "torn" in i.error]
        assert issue.projection == "t"
        assert issue.line == 2
        assert "recoverable" in issue.error
        # Recovery then drops the torn tail and the store scrubs clean.
        assert Database(tmp_path / "db").scrub().clean

    def test_mid_file_wal_corruption_names_line(self, tmp_path):
        db = make_db(tmp_path / "db")
        db.insert("t", [{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        wal = self.wal_path(tmp_path)
        lines = wal.read_text().splitlines()
        lines[0] = "{broken"
        wal.write_text("\n".join(lines) + "\n")
        report = db.scrub()
        [issue] = [i for i in report.issues if "corrupt WAL record" in i.error]
        assert issue.line == 1
        assert "line 1 of 2" in issue.error

    def test_unknown_wal_op_reported(self, tmp_path):
        db = make_db(tmp_path / "db")
        db.insert("t", [{"a": 1, "b": 2}])
        wal = self.wal_path(tmp_path)
        with open(wal, "a") as f:
            f.write(json.dumps({"_op": "compact"}) + "\n")
        report = db.scrub()
        [issue] = [i for i in report.issues if "unknown WAL record" in i.error]
        assert issue.line == 2
        assert "'compact'" in issue.error

    def test_marker_exceeding_wal_records_reported(self, tmp_path):
        db = make_db(tmp_path / "db")
        db.insert("t", [{"a": 1, "b": 2}])
        db.catalog.wal_applied["t"] = 5  # simulate a stale marker in memory
        report = db.scrub()
        assert any("marker is 5" in i.error for i in report.issues)


class TestZoneMapDeepVerify:
    def test_divergent_zone_map_reported_deep_only(self, tmp_path):
        db = make_db(tmp_path / "db", partitions=4)
        proj = db.projection("t")
        part = proj.partitions[1]
        forged = part.zone_maps["a"].__class__(min_value=10**7,
                                              max_value=10**7 + 1)
        part.zone_maps["a"] = forged
        proj._write_meta()
        db2 = Database(tmp_path / "db")
        assert db2.scrub().clean  # shallow never decodes values
        deep = db2.scrub(deep=True)
        zone = [i for i in deep.issues if "zone map" in i.error]
        assert zone and zone[0].partition == "part0001"
        assert "but the partition holds" in zone[0].error
