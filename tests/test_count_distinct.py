"""Tests for COUNT(DISTINCT col)."""

from datetime import date

import numpy as np
import pytest

from repro import AggSpec, Database, Predicate, SelectQuery, Strategy, load_tpch
from repro.errors import ExecutionError

from .reference import full_column


def reference_distinct_counts(tpch_db, predicates=()):
    lineitem = tpch_db.projection("lineitem")
    flag = full_column(lineitem, "returnflag")
    qty = full_column(lineitem, "quantity")
    mask = np.ones(len(flag), dtype=bool)
    for pred in predicates:
        mask &= pred.mask(full_column(lineitem, pred.column))
    out = {}
    for v in np.unique(flag[mask]):
        out[int(v)] = int(len(np.unique(qty[mask][flag[mask] == v])))
    return out


class TestCountDistinct:
    def test_output_name(self):
        assert AggSpec("count_distinct", "q").output_name == "count(distinct q)"

    @pytest.mark.parametrize("strategy", list(Strategy), ids=lambda s: s.value)
    def test_matches_reference(self, tpch_db, strategy):
        predicates = (Predicate("quantity", "<", 25),)
        query = SelectQuery(
            projection="lineitem",
            select=("returnflag", "count(distinct quantity)"),
            predicates=predicates,
            group_by="returnflag",
            aggregates=(AggSpec("count_distinct", "quantity"),),
        )
        result = tpch_db.query(query, strategy=strategy, cold=True)
        expected = reference_distinct_counts(tpch_db, predicates)
        assert {int(g): int(c) for g, c in result.rows()} == expected

    def test_mixed_with_plain_count(self, tpch_db):
        r = tpch_db.sql(
            "SELECT returnflag, COUNT(DISTINCT linenum), COUNT(linenum) "
            "FROM lineitem GROUP BY returnflag"
        )
        for _flag, distinct, total in r.rows():
            assert distinct == 7
            assert total > distinct

    def test_having_on_count_distinct(self, tpch_db):
        r = tpch_db.sql(
            "SELECT quantity, COUNT(DISTINCT linenum) FROM lineitem "
            "WHERE quantity < 4 GROUP BY quantity "
            "HAVING COUNT(DISTINCT linenum) >= 7"
        )
        assert all(c >= 7 for _q, c in r.rows())

    def test_distinct_only_for_count(self, tpch_db):
        from repro.errors import SQLError

        with pytest.raises(SQLError):
            tpch_db.sql(
                "SELECT returnflag, SUM(DISTINCT quantity) FROM lineitem "
                "GROUP BY returnflag"
            )

    def test_pending_inserts_require_merge(self, tmp_path):
        db = Database(tmp_path / "db")
        load_tpch(db.catalog, scale=0.001, seed=3)
        db.insert(
            "lineitem",
            [
                {
                    "shipdate": date(1999, 1, 1),
                    "linenum": 1,
                    "quantity": 1,
                    "returnflag": "A",
                }
            ],
        )
        with pytest.raises(ExecutionError, match="merge"):
            db.sql(
                "SELECT returnflag, COUNT(DISTINCT quantity) FROM lineitem "
                "GROUP BY returnflag"
            )
        db.merge("lineitem")
        r = db.sql(
            "SELECT returnflag, COUNT(DISTINCT quantity) FROM lineitem "
            "GROUP BY returnflag"
        )
        assert r.n_rows == 3
