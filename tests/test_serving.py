"""Serving layer: protocol, sessions, admission, timeouts, drain, loadgen.

These tests stand a real server up (background event loop via
``ServerThread``) around the shared TPC-H fixture and talk to it over TCP —
no mocked transport — so they cover the same path the concurrency
differential and the serving benchmark exercise.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro import (
    Database,
    MetricsRegistry,
    Predicate,
    SelectQuery,
    load_tpch,
)
from repro.operators.aggregate import AggSpec
from repro.predicates import InPredicate
from repro.planner import JoinQuery
from repro.serving import (
    AsyncQueryClient,
    ServerThread,
    query_from_dict,
    query_to_dict,
)


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def served(tpch_db):
    """One server over the shared fixture for the whole module."""
    with ServerThread(tpch_db, workers=2, max_queue=32) as server:
        yield tpch_db, server


SQL = "SELECT shipdate, linenum FROM lineitem WHERE shipdate < 9000"


class TestProtocolRoundtrip:
    def test_select_query_roundtrip(self):
        query = SelectQuery(
            projection="lineitem",
            select=("shipdate", "linenum"),
            predicates=(
                Predicate("shipdate", "<", 9000),
                InPredicate("linenum", (1, 3, 5)),
            ),
            encodings=(("linenum", "rle"),),
            order_by=(("shipdate", True),),
            limit=10,
        )
        assert query_from_dict(query_to_dict(query)) == query

    def test_disjuncts_and_having_roundtrip(self):
        query = SelectQuery(
            projection="lineitem",
            select=("shipdate",),
            disjuncts=(
                (Predicate("shipdate", "<", 9000),),
                (Predicate("linenum", "=", 3),),
            ),
        )
        assert query_from_dict(query_to_dict(query)) == query
        agg = SelectQuery(
            projection="lineitem",
            select=("linenum", "sum(quantity)"),
            group_by="linenum",
            aggregates=(AggSpec("sum", "quantity"),),
            having=(Predicate("sum(quantity)", ">", 100),),
        )
        assert query_from_dict(query_to_dict(agg)) == agg

    def test_join_query_roundtrip(self):
        query = JoinQuery(
            left="lineitem",
            right="orders",
            left_key="orderkey",
            right_key="orderkey",
            left_select=("linenum",),
            right_select=("orderdate",),
            left_predicates=(Predicate("linenum", "<", 4),),
        )
        assert query_from_dict(query_to_dict(query)) == query

    def test_json_roundtrip_is_exact(self):
        query = SelectQuery(
            projection="lineitem",
            select=("shipdate",),
            predicates=(Predicate("shipdate", "<=", 2**31 - 1),),
        )
        wire = json.loads(json.dumps(query_to_dict(query)))
        assert query_from_dict(wire) == query


class TestServerBasics:
    def test_sql_matches_direct_execution(self, served):
        db, server = served

        async def go():
            client = await AsyncQueryClient.connect(server.host, server.port)
            response = await client.sql(SQL, strategy="em-pipelined")
            await client.close()
            return response

        response = run(go())
        assert response["ok"]
        direct = db.sql(SQL, strategy="em-pipelined")
        assert response["n_rows"] == direct.n_rows
        assert sorted(tuple(r) for r in response["rows"]) == sorted(
            direct.rows()
        )
        assert response["strategy"] == "em-pipelined"
        assert response["queue_wait_ms"] >= 0.0
        assert response["total_ms"] >= response["wall_ms"]

    def test_logical_query_op(self, served):
        db, server = served
        query = SelectQuery(
            projection="lineitem",
            select=("linenum",),
            predicates=(Predicate("linenum", "<", 4),),
        )

        async def go():
            client = await AsyncQueryClient.connect(server.host, server.port)
            response = await client.query(query, strategy="lm-parallel")
            await client.close()
            return response

        response = run(go())
        assert response["ok"]
        direct = db.query(query, strategy="lm-parallel")
        assert sorted(tuple(r) for r in response["rows"]) == sorted(
            direct.rows()
        )

    def test_ping_session_knobs_history(self, served):
        _db, server = served

        async def go():
            client = await AsyncQueryClient.connect(server.host, server.port)
            assert client.greeting["ok"] and client.session_id
            assert (await client.ping())["pong"]
            knobs = await client.set_knobs(strategy="em-parallel", trace=True)
            assert knobs["knobs"]["strategy"] == "em-parallel"
            bad = await client.set_knobs(nonsense=1)
            assert not bad["ok"] and "nonsense" in bad["error"]["message"]
            response = await client.sql(SQL)
            assert response["ok"]
            # session default strategy applied, trace rode along
            assert response["strategy"] == "em-parallel"
            assert response["trace"]["operator"] == "query"
            info = await client.session()
            await client.close()
            return info["session"]

        session = run(go())
        assert session["queries"] >= 1
        assert session["history"][-1]["ok"]

    def test_decoded_rows_knob(self, served):
        db, server = served

        async def go():
            client = await AsyncQueryClient.connect(server.host, server.port)
            response = await client.sql(
                "SELECT returnflag FROM lineitem WHERE linenum = 1",
                decoded=True,
            )
            await client.close()
            return response

        response = run(go())
        assert response["ok"]
        direct = db.sql("SELECT returnflag FROM lineitem WHERE linenum = 1")
        assert [tuple(r) for r in response["rows"]] == direct.decoded_rows()

    def test_unknown_op_and_malformed_line(self, served):
        _db, server = served

        async def go():
            client = await AsyncQueryClient.connect(server.host, server.port)
            unknown = await client.request({"op": "frobnicate"})
            # Malformed JSON must produce an error response, not kill the
            # connection.
            client._writer.write(b"this is not json\n")
            await client._writer.drain()
            garbled = json.loads(await client._reader.readline())
            alive = await client.ping()
            await client.close()
            return unknown, garbled, alive

        unknown, garbled, alive = run(go())
        assert not unknown["ok"] and "frobnicate" in unknown["error"]["message"]
        assert not garbled["ok"]
        assert alive["pong"]

    def test_explain_analyze_over_the_wire(self, served):
        _db, server = served

        async def go():
            client = await AsyncQueryClient.connect(server.host, server.port)
            response = await client.explain(SQL)
            plain = await client.explain(SQL, analyze=False)
            await client.close()
            return response, plain

        response, plain = run(go())
        assert response["ok"]
        report = response["explain"]
        assert report["queue_wait_ms"] > 0.0  # real queue, real wait
        assert report["total_ms"] == pytest.approx(
            report["queue_wait_ms"] + report["wall_ms"]
        )
        assert "QUEUE" in report["text"] or any(
            child["operator"] == "QUEUE"
            for child in report["json"].get("children", ())
        )
        assert plain["ok"] and "predictions" in plain["explain"]


class TestLatencyDecomposition:
    """Satellite: serving latency decomposes into wait + execute."""

    def test_wait_plus_execute_approximates_end_to_end(self, served):
        _db, server = served

        async def go():
            client = await AsyncQueryClient.connect(server.host, server.port)
            # Warm once so the measured request is steady-state.
            await client.sql(SQL)
            t0 = time.perf_counter()
            response = await client.sql(SQL)
            elapsed_ms = (time.perf_counter() - t0) * 1000.0
            await client.close()
            return response, elapsed_ms

        response, elapsed_ms = run(go())
        assert response["ok"]
        total = response["queue_wait_ms"] + response["wall_ms"]
        assert response["total_ms"] == pytest.approx(total)
        # wait + execute can never (meaningfully) exceed what the client
        # measured, and must account for the bulk of it — the remainder is
        # JSON encode/decode and loopback transport.
        assert total <= elapsed_ms + 5.0
        assert elapsed_ms - total <= max(250.0, 0.9 * elapsed_ms)

    def test_report_and_explain_surface_queue_wait(self, tpch_db):
        query = SelectQuery(projection="lineitem", select=("linenum",))
        result = tpch_db.query(query, queue_wait_ms=7.5, trace=True)
        assert result.queue_wait_ms == 7.5
        assert "queue wait" in result.report()
        assert len(result.spans.find("QUEUE")) == 1
        report = tpch_db.explain(query, analyze=True, queue_wait_ms=7.5)
        assert report["queue_wait_ms"] == 7.5
        assert report["total_ms"] == pytest.approx(7.5 + report["wall_ms"])


class SlowDB(Database):
    """A Database whose queries take a fixed minimum wall time."""

    SLEEP_S = 0.05

    def query(self, *args, **kwargs):  # noqa: D102 - test shim
        time.sleep(self.SLEEP_S)
        return super().query(*args, **kwargs)


@pytest.fixture(scope="module")
def slow_db(tmp_path_factory):
    db = SlowDB(tmp_path_factory.mktemp("slow") / "db")
    load_tpch(db.catalog, scale=0.001, seed=7)
    yield db
    db.close()


class TestAdmissionControl:
    def test_backpressure_rejects_when_saturated(self, slow_db):
        # 1 worker x 50 ms queries, queue bound 2, 8 concurrent clients:
        # at least 8 - (2 queued + 1 running) must be rejected up front.
        with ServerThread(slow_db, workers=1, max_queue=2) as server:

            async def one():
                client = await AsyncQueryClient.connect(
                    server.host, server.port
                )
                response = await client.sql(
                    "SELECT linenum FROM lineitem WHERE linenum < 3"
                )
                await client.close()
                return response

            async def go():
                return await asyncio.gather(*(one() for _ in range(8)))

            responses = run(go())
        ok = [r for r in responses if r.get("ok")]
        rejected = [r for r in responses if r.get("rejected")]
        assert ok, "some queries must be admitted"
        assert rejected, "a full admission queue must reject, not buffer"
        for r in rejected:
            assert not r["ok"]
            assert "queue full" in r["error"]["message"]

    def test_priority_classes_accepted(self, served):
        _db, server = served

        async def go():
            client = await AsyncQueryClient.connect(server.host, server.port)
            out = []
            for priority in ("interactive", "normal", "batch"):
                out.append(
                    await client.sql(
                        "SELECT linenum FROM lineitem WHERE linenum = 2",
                        priority=priority,
                    )
                )
            bad = await client.sql(SQL, priority="vip")
            await client.close()
            return out, bad

        out, bad = run(go())
        assert all(r["ok"] for r in out)
        assert not bad["ok"]

    def test_timeout_produces_timeout_response(self, served):
        _db, server = served

        async def go():
            client = await AsyncQueryClient.connect(server.host, server.port)
            response = await client.sql(SQL, timeout_ms=0)
            alive = await client.sql(SQL)  # session survives the timeout
            await client.close()
            return response, alive

        response, alive = run(go())
        assert not response["ok"]
        assert response.get("timeout")
        assert response["error"]["type"] == "QueryTimeoutError"
        assert alive["ok"]

    def test_graceful_drain_completes_admitted_work(self, slow_db):
        server_thread = ServerThread(slow_db, workers=1, max_queue=16)
        with server_thread as server:

            async def go():
                clients = [
                    await AsyncQueryClient.connect(server.host, server.port)
                    for _ in range(4)
                ]
                responses = await asyncio.gather(
                    *(
                        c.sql("SELECT linenum FROM lineitem WHERE linenum < 2")
                        for c in clients
                    )
                )
                for c in clients:
                    await c.close()
                return responses

            responses = run(go())
            assert all(r["ok"] for r in responses)
        # __exit__ drained: everything admitted was taken and executed.
        admission = server_thread.server.admission
        assert admission.depth() == 0
        assert admission.taken == admission.admitted
        assert server_thread.server._active_count() == 0

    def test_serving_metrics_recorded(self, tmp_path):
        registry = MetricsRegistry()
        db = Database(tmp_path / "db", metrics=registry)
        load_tpch(db.catalog, scale=0.001, seed=7)
        with ServerThread(db, workers=1, max_queue=8) as server:

            async def go():
                client = await AsyncQueryClient.connect(
                    server.host, server.port
                )
                for _ in range(3):
                    await client.sql(
                        "SELECT linenum FROM lineitem WHERE linenum < 5"
                    )
                stats = await client.stats()
                await client.close()
                return stats

            stats = run(go())
            snapshot = registry.snapshot()
            # While the server lives, its admission queue is a collector.
            assert snapshot["admission_queue"]["admitted"] >= 3
        assert stats["stats"]["admission"]["taken"] >= 3
        assert snapshot["counters"]["serving.queries_total"] == 3
        assert snapshot["histograms"]["serving.queue_wait_ms"]["count"] == 3
        assert snapshot["histograms"]["serving.total_ms"]["count"] == 3
        db.close()


class TestLoadgen:
    def test_loadgen_smoke_and_cli(self, tpch_db, capsys):
        from repro.cli import main
        from repro.serving import run_loadgen

        report = run_loadgen(
            tpch_db, clients=2, duration_s=0.5, think_ms=5.0, workers=2,
            corpus_size=8, seed=7,
        )
        assert report.ok > 0
        assert report.errors == 0
        assert report.p99_ms >= report.p50_ms >= 0.0
        d = report.to_dict()
        assert json.dumps(d)  # JSON-safe
        assert d["rejection_rate"] == 0.0

        code = main(
            [
                "loadgen", str(tpch_db.catalog.root),
                "--clients", "2", "--duration", "0.4", "--think-ms", "5",
                "--corpus", "6", "--workers", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "throughput" in out

    def test_zipfian_cdf_is_skewed(self):
        from repro.serving import zipfian_cdf

        cdf = zipfian_cdf(16, theta=1.1)
        assert len(cdf) == 16
        assert cdf[-1] == pytest.approx(1.0)
        assert cdf[0] > 1.0 / 16  # rank 1 carries more than uniform share
        assert all(b >= a for a, b in zip(cdf, cdf[1:]))


class TestTransientReconnect:
    def test_idempotent_request_survives_server_side_close(self, served):
        db, server = served

        async def go():
            registry = MetricsRegistry()
            client = await AsyncQueryClient.connect(
                server.host, server.port, metrics=registry
            )
            first_session = client.session_id
            # The close op makes the server drop this connection after
            # replying — the next request hits a dead socket.
            await client.request({"op": "close"})
            response = await client.ping()
            reconnects = registry.counter(
                "serving.reconnects_total"
            ).value
            new_session = client.session_id
            await client.close()
            return response, reconnects, first_session, new_session

        response, reconnects, first, new = run(go())
        assert response["ok"] and response["pong"]
        assert reconnects == 1
        assert new != first  # the retry runs on a fresh session

    def test_query_retried_and_answer_identical(self, served):
        db, server = served

        async def go():
            client = await AsyncQueryClient.connect(server.host, server.port)
            await client.request({"op": "close"})
            response = await client.sql(SQL)
            await client.close()
            return response

        response = run(go())
        assert response["ok"]
        assert response["n_rows"] == db.sql(SQL).n_rows

    def test_non_idempotent_op_is_never_replayed(self, served):
        db, server = served

        async def go():
            client = await AsyncQueryClient.connect(server.host, server.port)
            await client.request({"op": "close"})
            with pytest.raises(ConnectionError):
                await client.set_knobs(strategy="em-pipelined")

        run(go())

    def test_backoff_is_capped_exponential(self, served):
        from repro.serving.client import (
            RECONNECT_BACKOFF_BASE,
            RECONNECT_BACKOFF_CAP,
        )

        _, server = served

        async def go():
            client = await AsyncQueryClient.connect(server.host, server.port)
            await client.request({"op": "close"})
            client._consecutive_resets = 10  # far past the cap
            t0 = time.monotonic()
            await client.ping()
            elapsed = time.monotonic() - t0
            await client.close()
            return elapsed

        elapsed = run(go())
        assert RECONNECT_BACKOFF_BASE < RECONNECT_BACKOFF_CAP <= 1.0
        assert elapsed >= RECONNECT_BACKOFF_CAP  # slept the capped backoff
