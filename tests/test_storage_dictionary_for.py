"""Codec-specific tests for dictionary and frame-of-reference encodings."""

import numpy as np
import pytest

from repro.dtypes import INT32, INT64
from repro.predicates import Predicate
from repro.storage import encoding_by_name

from .test_storage_encodings import encode_all


class TestDictionarySpecifics:
    def test_code_width_shrinks_with_cardinality(self):
        codec = encoding_by_name("dictionary")
        rng = np.random.default_rng(0)
        small = rng.integers(0, 5, size=200_000).astype(np.int32)
        large = rng.integers(0, 400, size=200_000).astype(np.int32)
        small_bytes = sum(len(p) for _d, p in encode_all(codec, small, np.dtype("<i4")))
        large_bytes = sum(len(p) for _d, p in encode_all(codec, large, np.dtype("<i4")))
        # 5 distinct values -> 1-byte codes; 5000 -> 2-byte codes.
        assert small_bytes < 0.35 * small.nbytes
        assert large_bytes < 0.65 * large.nbytes
        assert small_bytes < large_bytes

    def test_dictionary_size_introspection(self):
        codec = encoding_by_name("dictionary")
        values = np.array([9, 9, 3, 3, 7], dtype=np.int32)
        (_d, payload), = encode_all(codec, values, np.dtype("<i4"))
        assert codec.dictionary_size(payload) == 3

    def test_predicate_evaluated_on_dictionary(self):
        codec = encoding_by_name("dictionary")
        values = np.array([10, 20, 10, 30, 20], dtype=np.int32)
        (desc, payload), = encode_all(codec, values, np.dtype("<i4"))
        ps = codec.scan_positions(
            payload, desc, np.dtype("<i4"), Predicate("c", "<=", 20)
        )
        assert ps.to_array().tolist() == [0, 1, 2, 4]

    def test_supports_position_filtering(self):
        assert encoding_by_name("dictionary").supports_position_filtering

    def test_int64_values(self):
        codec = encoding_by_name("dictionary")
        values = np.array([2**40, 5, 2**40, -7], dtype=np.int64)
        blocks = encode_all(codec, values, INT64.numpy_dtype)
        out = np.concatenate(
            [codec.decode(p, d, INT64.numpy_dtype) for d, p in blocks]
        )
        assert np.array_equal(out, values)


class TestFORSpecifics:
    def test_constant_block_packs_to_zero_bits(self):
        codec = encoding_by_name("for")
        values = np.full(10_000, 1234, dtype=np.int32)
        (desc, payload), = encode_all(codec, values, np.dtype("<i4"))
        assert codec.block_width_bits(payload) == 0
        assert len(payload) < 64  # header only

    def test_narrow_range_packs_to_one_byte(self):
        codec = encoding_by_name("for")
        rng = np.random.default_rng(1)
        values = (1_000_000 + rng.integers(0, 200, size=100_000)).astype(
            np.int32
        )
        blocks = encode_all(codec, values, np.dtype("<i4"))
        assert all(codec.block_width_bits(p) == 8 for _d, p in blocks)
        total = sum(len(p) for _d, p in blocks)
        assert total < 0.30 * values.nbytes

    def test_wide_range_falls_back_to_wide_words(self):
        codec = encoding_by_name("for")
        values = np.array([0, 2**31 - 1], dtype=np.int32)
        (_d, payload), = encode_all(codec, values, np.dtype("<i4"))
        assert codec.block_width_bits(payload) == 32

    def test_negative_reference(self):
        codec = encoding_by_name("for")
        values = np.array([-100, -99, -55], dtype=np.int32)
        (desc, payload), = encode_all(codec, values, np.dtype("<i4"))
        assert np.array_equal(
            codec.decode(payload, desc, np.dtype("<i4")), values
        )

    def test_width_changes_between_blocks(self):
        codec = encoding_by_name("for")
        narrow = np.arange(70_000, dtype=np.int64) % 100
        wide = np.arange(70_000, dtype=np.int64) * 100_000
        values = np.concatenate((narrow, wide))
        blocks = encode_all(codec, values, INT64.numpy_dtype)
        widths = {codec.block_width_bits(p) for _d, p in blocks}
        assert len(widths) > 1
        out = np.concatenate(
            [codec.decode(p, d, INT64.numpy_dtype) for d, p in blocks]
        )
        assert np.array_equal(out, values)

    def test_effective_on_clustered_sorted_data(self):
        codec = encoding_by_name("for")
        values = np.sort(
            np.random.default_rng(2).integers(0, 3_000, size=300_000)
        ).astype(np.int32)
        total = sum(len(p) for _d, p in encode_all(codec, values, np.dtype("<i4")))
        assert total < 0.5 * values.nbytes


class TestNewCodecsThroughEngine:
    """The new codecs work through projections and all four strategies."""

    @pytest.fixture()
    def db_with_codecs(self, fresh_db):
        from repro.dtypes import ColumnSchema

        rng = np.random.default_rng(3)
        n = 30_000
        a = np.sort(rng.integers(0, 500, size=n)).astype(np.int32)
        b = rng.integers(0, 9, size=n).astype(np.int32)
        fresh_db.catalog.create_projection(
            "t",
            {"a": a, "b": b},
            schemas={
                "a": ColumnSchema("a", INT32),
                "b": ColumnSchema("b", INT32),
            },
            sort_keys=["a"],
            encodings={"a": ["for", "uncompressed"], "b": ["dictionary"]},
            presorted=True,
        )
        return fresh_db, a, b

    @pytest.mark.parametrize(
        "strategy",
        ["em-pipelined", "em-parallel", "lm-pipelined", "lm-parallel"],
    )
    def test_strategies_over_new_codecs(self, db_with_codecs, strategy):
        from repro import Predicate, SelectQuery

        db, a, b = db_with_codecs
        query = SelectQuery(
            projection="t",
            select=("a", "b"),
            predicates=(
                Predicate("a", "<", 250),
                Predicate("b", ">=", 3),
            ),
            encodings=(("a", "for"), ("b", "dictionary")),
        )
        result = db.query(query, strategy=strategy, cold=True)
        mask = (a < 250) & (b >= 3)
        assert result.n_rows == int(mask.sum())
        got = result.tuples.data[np.lexsort(
            (result.tuples.data[:, 1], result.tuples.data[:, 0])
        )]
        expected = np.stack(
            [a[mask].astype(np.int64), b[mask].astype(np.int64)], axis=1
        )
        expected = expected[np.lexsort((expected[:, 1], expected[:, 0]))]
        assert np.array_equal(got, expected)
