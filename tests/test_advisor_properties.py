"""Property-based tests for the physical design advisor.

Hypothesis draws arbitrary subsets of a captured workload trace and checks
the advisor's invariants hold on every one of them:

* the what-if layer is *transparent*: with no hypothetical adds or drops,
  it prices every logged query exactly like the real catalog, and a no-op
  plan (``max_builds=0``) scores the current design — predicted equals
  baseline;
* recommendations are *monotone*: a projection is only ever credited to a
  template it makes cheaper (every recorded per-template delta is
  positive), and the plan's predicted total never exceeds its baseline;
* recalibration is *safe*: on any subset of the trace — including empty
  and single-record ones — the refitted constants stay positive and
  finite, and the fit is only adopted when its MAE beats the shipped
  defaults on that same subset.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database, MetricsRegistry, load_tpch
from repro.advisor import WhatIfCatalog, advise, cheapest_plan_ms
from repro.errors import CatalogError, UnsupportedOperationError
from repro.model.recalibrate import FITTED_FIELDS, recalibrate_from_log
from repro.qlog import read_query_log
from repro.serving import query_from_dict

from .differential import STRATEGIES, QueryGenerator

N_QUERIES = 12


@pytest.fixture(scope="module")
def captured(tmp_path_factory):
    """A small database plus a captured multi-strategy trace of it."""
    root = tmp_path_factory.mktemp("advisor_props")
    db = Database(root / "db", metrics=MetricsRegistry())
    load_tpch(db.catalog, scale=0.002, seed=7)
    gen = QueryGenerator(db, projection="lineitem", seed=11)
    for _ in range(N_QUERIES):
        query = gen.next_query()
        for strategy in STRATEGIES:
            try:
                db.query(query, strategy=strategy)
            except UnsupportedOperationError:
                continue
    db.qlog.flush()
    records = read_query_log(db.qlog.directory)
    yield db, records
    db.close()


def _subsets(records):
    return st.sets(
        st.integers(min_value=0, max_value=len(records) - 1), max_size=40
    ).map(lambda idx: [records[i] for i in sorted(idx)])


@given(data=st.data())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_whatif_catalog_is_transparent(captured, data):
    """No adds, no drops: what-if pricing == real-catalog pricing."""
    db, records = captured
    subset = data.draw(_subsets(records))
    whatif = WhatIfCatalog(db.catalog)
    for record in subset:
        if record["outcome"] != "ok":
            continue
        qdict = record.get("query") or {}
        if qdict.get("kind", "select") != "select":
            continue
        query = query_from_dict(qdict)
        try:
            real = cheapest_plan_ms(db.catalog, query, db.constants)
        except CatalogError:
            continue
        hypo = cheapest_plan_ms(whatif, query, db.constants)
        assert hypo == real


@given(data=st.data())
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_noop_plan_scores_the_current_design(captured, data):
    """A plan that builds nothing predicts exactly the baseline."""
    db, records = captured
    subset = data.draw(_subsets(records))
    plan = advise(db, subset, max_builds=0)
    assert not [a for a in plan.actions if a.kind == "build"]
    assert plan.predicted_ms == plan.baseline_ms


@given(data=st.data())
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_recommendations_never_regress_a_credited_template(captured, data):
    """Every per-template delta is positive; total never exceeds baseline."""
    db, records = captured
    subset = data.draw(_subsets(records))
    plan = advise(db, subset)
    assert plan.predicted_ms <= plan.baseline_ms + 1e-9
    for action in plan.actions:
        if action.kind != "build":
            continue
        assert action.predicted_delta_ms > 0
        for fingerprint, delta in action.templates.items():
            assert delta > 0, (action.name, fingerprint)


@given(data=st.data())
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_recalibration_is_safe_on_any_subset(captured, data):
    """Positive, finite constants and an MAE guard on arbitrary subsets."""
    db, records = captured
    subset = data.draw(_subsets(records))
    report = recalibrate_from_log(db, subset)
    constants = report.constants
    for field in FITTED_FIELDS:
        value = getattr(constants, field)
        assert math.isfinite(value), field
        assert value > 0, field
    assert isinstance(constants.pf, int) and constants.pf >= 1
    if report.used_fitted:
        assert report.mae_fitted_ms <= report.mae_baseline_ms
    if report.n_records == 0:
        # Nothing usable: the shipped defaults come back untouched.
        assert constants == report.baseline
