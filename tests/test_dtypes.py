"""Unit tests for the column type system."""

from datetime import date

import numpy as np
import pytest

from repro.dtypes import (
    DATE,
    INT32,
    INT64,
    UINT8,
    ColumnSchema,
    date_to_int,
    int_to_date,
    type_by_name,
)
from repro.errors import EncodingError


class TestColumnType:
    def test_itemsize(self):
        assert INT32.itemsize == 4
        assert INT64.itemsize == 8
        assert UINT8.itemsize == 1

    def test_validate_passthrough(self):
        arr = np.array([1, 2, 3], dtype=np.int32)
        out = INT32.validate(arr)
        assert out.dtype == np.dtype("<i4")
        assert np.array_equal(out, arr)

    def test_validate_lossless_cast(self):
        arr = np.array([1, 2, 3], dtype=np.int64)
        out = INT32.validate(arr)
        assert out.dtype == np.dtype("<i4")

    def test_validate_rejects_lossy_cast(self):
        arr = np.array([2**40], dtype=np.int64)
        with pytest.raises(EncodingError):
            INT32.validate(arr)

    def test_type_by_name(self):
        assert type_by_name("int32") is INT32
        assert type_by_name("date") is DATE

    def test_type_by_name_unknown(self):
        with pytest.raises(EncodingError):
            type_by_name("varchar")


class TestDates:
    def test_roundtrip(self):
        d = date(1994, 7, 15)
        assert int_to_date(date_to_int(d)) == d

    def test_epoch(self):
        assert date_to_int(date(1970, 1, 1)) == 0

    def test_ordering_preserved(self):
        assert date_to_int(date(1992, 1, 2)) < date_to_int(date(1998, 12, 1))


class TestColumnSchema:
    def test_dictionary_roundtrip(self):
        schema = ColumnSchema("flag", UINT8, dictionary=("A", "N", "R"))
        assert schema.encode_value("N") == 1
        assert schema.decode_value(2) == "R"

    def test_dictionary_unknown_value(self):
        schema = ColumnSchema("flag", UINT8, dictionary=("A", "N", "R"))
        with pytest.raises(EncodingError):
            schema.encode_value("X")

    def test_date_schema_roundtrip(self):
        schema = ColumnSchema("shipdate", DATE)
        encoded = schema.encode_value(date(1995, 3, 1))
        assert schema.decode_value(encoded) == date(1995, 3, 1)

    def test_plain_numeric_passthrough(self):
        schema = ColumnSchema("qty", INT32)
        assert schema.encode_value(17) == 17
        assert schema.decode_value(17) == 17
