"""Tests for query statistics counters and the metrics registry."""

from dataclasses import fields

from repro import Predicate, SelectQuery
from repro.metrics import (
    Counter,
    LatencyHistogram,
    MetricsRegistry,
    QueryStats,
    SlowQueryLog,
)


class TestQueryStats:
    def test_starts_at_zero(self):
        stats = QueryStats()
        assert stats.block_reads == 0
        assert stats.simulated_io_us == 0.0
        assert stats.extra == {}

    def test_merge_adds_counters(self):
        a = QueryStats(block_reads=2, tuples_constructed=10)
        b = QueryStats(block_reads=3, function_calls=7)
        b.extra["probe"] = 4
        a.merge(b)
        assert a.block_reads == 5
        assert a.tuples_constructed == 10
        assert a.function_calls == 7
        assert a.extra["probe"] == 4

    def test_merge_extra_accumulates(self):
        a = QueryStats()
        a.extra["x"] = 1
        b = QueryStats()
        b.extra["x"] = 2
        a.merge(b)
        assert a.extra["x"] == 3

    def test_reset(self):
        stats = QueryStats(block_reads=5, simulated_io_us=12.5)
        stats.extra["y"] = 1
        stats.reset()
        assert stats.block_reads == 0
        assert stats.simulated_io_us == 0.0
        assert stats.extra == {}

    def test_as_dict_includes_extra(self):
        stats = QueryStats(disk_seeks=1)
        stats.extra["join_matches"] = 9
        d = stats.as_dict()
        assert d["disk_seeks"] == 1
        assert d["join_matches"] == 9

    def test_str_only_nonzero(self):
        stats = QueryStats(block_reads=2)
        text = str(stats)
        assert "block_reads=2" in text
        assert "disk_seeks" not in text

    def test_counters_are_complete(self):
        """The field list is a contract: reflection-driven methods and the
        docstring must cover every counter."""
        names = [f.name for f in fields(QueryStats) if f.name != "extra"]
        doc = QueryStats.__doc__
        for name in names:
            assert name in doc, f"QueryStats docstring omits {name!r}"
        # merge/reset/as_dict operate over the same field set.
        one = QueryStats(**{name: 1 for name in names})
        other = QueryStats(**{name: 2 for name in names})
        one.merge(other)
        assert all(getattr(one, name) == 3 for name in names)
        assert set(one.as_dict()) == set(names)
        one.reset()
        assert all(not getattr(one, name) for name in names)


class TestDecodeCountersEndToEnd:
    """decode_hits / decode_misses flow through Database.query."""

    QUERY = SelectQuery(
        projection="lineitem",
        select=("shipdate", "quantity"),
        predicates=(Predicate("quantity", "<", 30),),
    )

    def test_cold_run_counts_misses(self, tpch_db):
        tpch_db.clear_cache()
        cold = tpch_db.query(self.QUERY, strategy="lm-parallel")
        # First touch of every block is a decode miss; in-query re-access
        # (DS3 over blocks DS1 already decoded) may already hit.
        assert cold.stats.decode_misses > 0

    def test_warm_run_counts_hits(self, tpch_db):
        tpch_db.clear_cache()
        tpch_db.query(self.QUERY, strategy="lm-parallel")
        warm = tpch_db.query(self.QUERY, strategy="lm-parallel")
        assert warm.stats.decode_hits > 0
        assert warm.stats.decode_misses == 0

    def test_spans_attribute_decode_counters(self, tpch_db):
        tpch_db.clear_cache()
        tpch_db.query(self.QUERY, strategy="lm-parallel")
        warm = tpch_db.query(self.QUERY, strategy="lm-parallel", trace=True)
        per_span = sum(
            s.self_stats().decode_hits for s in warm.spans.walk()
        )
        assert per_span == warm.stats.decode_hits > 0


class TestCounter:
    def test_increment(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5


class TestLatencyHistogram:
    def test_snapshot_summary(self):
        h = LatencyHistogram()
        for ms in (1.0, 2.0, 4.0, 100.0):
            h.record(ms)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["min_ms"] == 1.0
        assert snap["max_ms"] == 100.0
        assert snap["p50_ms"] <= snap["p99_ms"]

    def test_empty_snapshot(self):
        assert LatencyHistogram().snapshot() == {"count": 0}

    def test_percentile_upper_bounds(self):
        h = LatencyHistogram()
        for _ in range(100):
            h.record(0.5)
        # 0.5 ms falls in a bucket whose upper bound is >= 0.5.
        assert h.percentile(0.5) >= 0.5


class TestSlowQueryLog:
    def test_threshold_filters(self):
        log = SlowQueryLog(threshold_ms=10.0)
        assert not log.observe(5.0, strategy="x")
        assert log.observe(15.0, strategy="x")
        assert len(log.entries()) == 1

    def test_override_threshold(self):
        log = SlowQueryLog(threshold_ms=10.0)
        assert log.observe(5.0, threshold_ms=1.0)

    def test_ring_buffer_caps(self):
        log = SlowQueryLog(threshold_ms=0.0, capacity=3)
        for i in range(10):
            log.observe(float(i + 1), n=i)
        entries = log.entries()
        assert len(entries) == 3
        assert entries[-1]["n"] == 9


class TestMetricsRegistry:
    def test_observe_query_populates(self):
        reg = MetricsRegistry()
        reg.observe_query(
            strategy="lm-parallel", wall_ms=3.0, simulated_ms=1.0, rows=10,
            encodings=("rle",),
        )
        snap = reg.snapshot()
        assert snap["counters"]["queries_total"] == 1
        assert snap["counters"]["queries.strategy.lm-parallel"] == 1
        assert snap["counters"]["queries.encoding.rle"] == 1
        assert snap["histograms"]["query_wall_ms"]["count"] == 1

    def test_slow_query_logged_and_counted(self):
        reg = MetricsRegistry(slow_query_threshold_ms=1.0)
        reg.observe_query(strategy="spc", wall_ms=5.0, description="q")
        snap = reg.snapshot()
        assert snap["counters"]["queries_slow_total"] == 1
        assert snap["slow_queries"][0]["strategy"] == "spc"

    def test_collector_replacement_and_unregister(self):
        reg = MetricsRegistry()
        reg.register_collector("pool", lambda: {"v": 1})
        second = lambda: {"v": 2}  # noqa: E731 - clearer than def here
        reg.register_collector("pool", second)
        assert reg.snapshot()["pool"] == {"v": 2}
        reg.unregister_collector("pool", lambda: None)  # not the owner: no-op
        assert "pool" in reg.snapshot()
        reg.unregister_collector("pool", second)
        assert "pool" not in reg.snapshot()

    def test_failing_collector_is_contained(self):
        reg = MetricsRegistry()

        def boom():
            raise RuntimeError("gone")

        reg.register_collector("dead", boom)
        assert "RuntimeError" in reg.snapshot()["dead"]["error"]

    def test_reset_keeps_collectors(self):
        reg = MetricsRegistry()
        reg.register_collector("pool", lambda: {"v": 1})
        reg.observe_query(strategy="spc", wall_ms=1.0)
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["pool"] == {"v": 1}

    def test_database_reports_into_registry(self, tmp_path):
        from repro import Database, load_tpch

        reg = MetricsRegistry(slow_query_threshold_ms=0.0)
        with Database(tmp_path / "db", metrics=reg) as db:
            load_tpch(db.catalog, scale=0.002, seed=7)
            db.query(
                SelectQuery(projection="lineitem", select=("linenum",)),
                strategy="lm-parallel",
            )
            snap = reg.snapshot()
            assert snap["counters"]["queries_total"] == 1
            assert snap["counters"]["queries_slow_total"] == 1
            assert snap["buffer_pool"]["resident_blocks"] > 0
            assert "decoded_cache" in snap
        # close() detached the cache collectors.
        assert "buffer_pool" not in reg.snapshot()
