"""Unit tests for query statistics counters."""

from repro.metrics import QueryStats


class TestQueryStats:
    def test_starts_at_zero(self):
        stats = QueryStats()
        assert stats.block_reads == 0
        assert stats.simulated_io_us == 0.0
        assert stats.extra == {}

    def test_merge_adds_counters(self):
        a = QueryStats(block_reads=2, tuples_constructed=10)
        b = QueryStats(block_reads=3, function_calls=7)
        b.extra["probe"] = 4
        a.merge(b)
        assert a.block_reads == 5
        assert a.tuples_constructed == 10
        assert a.function_calls == 7
        assert a.extra["probe"] == 4

    def test_merge_extra_accumulates(self):
        a = QueryStats()
        a.extra["x"] = 1
        b = QueryStats()
        b.extra["x"] = 2
        a.merge(b)
        assert a.extra["x"] == 3

    def test_reset(self):
        stats = QueryStats(block_reads=5, simulated_io_us=12.5)
        stats.extra["y"] = 1
        stats.reset()
        assert stats.block_reads == 0
        assert stats.simulated_io_us == 0.0
        assert stats.extra == {}

    def test_as_dict_includes_extra(self):
        stats = QueryStats(disk_seeks=1)
        stats.extra["join_matches"] = 9
        d = stats.as_dict()
        assert d["disk_seeks"] == 1
        assert d["join_matches"] == 9

    def test_str_only_nonzero(self):
        stats = QueryStats(block_reads=2)
        text = str(stats)
        assert "block_reads=2" in text
        assert "disk_seeks" not in text
