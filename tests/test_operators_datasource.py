"""Unit tests for the DS1-DS4 and SPC data-source operators."""

import numpy as np
import pytest

from repro.buffer import BufferPool
from repro.dtypes import INT32
from repro.errors import UnsupportedOperationError
from repro.metrics import QueryStats
from repro.operators import (
    DS1Scan,
    DS2Scan,
    DS3Gather,
    DS4Scan,
    ExecutionContext,
    SPCScan,
    gather_values,
)
from repro.positions import ListedPositions, RangePositions
from repro.predicates import Predicate
from repro.storage import encoding_by_name, write_column


@pytest.fixture
def ctx():
    return ExecutionContext(pool=BufferPool(), stats=QueryStats())


@pytest.fixture
def columns(tmp_path):
    """Two 80k-row columns: 'a' sorted+RLE, 'b' uncompressed values 0..9."""
    rng = np.random.default_rng(41)
    a = np.sort(rng.integers(0, 50, size=80_000)).astype(np.int32)
    b = rng.integers(0, 10, size=80_000).astype(np.int32)
    cf_a = write_column(
        tmp_path / "a.col", a, INT32, encoding_by_name("rle"), column_name="a"
    )
    cf_b = write_column(
        tmp_path / "b.col",
        b,
        INT32,
        encoding_by_name("uncompressed"),
        column_name="b",
    )
    return a, b, cf_a, cf_b


class TestDS1:
    def test_positions_match_reference(self, ctx, columns):
        a, _b, cf_a, _cf_b = columns
        res = DS1Scan(ctx, cf_a, Predicate("a", "<", 25)).execute()
        assert np.array_equal(res.positions.to_array(), np.nonzero(a < 25)[0])

    def test_minicolumn_pinned(self, ctx, columns):
        _a, _b, cf_a, _cf_b = columns
        res = DS1Scan(ctx, cf_a, Predicate("a", "<", 25)).execute()
        assert res.minicolumn is not None
        assert res.minicolumn.block_count() > 0

    def test_multicolumns_disabled(self, columns):
        _a, _b, cf_a, _cf_b = columns
        ctx = ExecutionContext(pool=BufferPool(), use_multicolumns=False)
        res = DS1Scan(ctx, cf_a, Predicate("a", "<", 25)).execute()
        assert res.minicolumn is None

    def test_block_skipping_on_sorted_column(self, ctx, columns):
        a, _b, cf_a, _cf_b = columns
        # An impossible predicate: every block skipped, nothing read.
        res = DS1Scan(ctx, cf_a, Predicate("a", ">", 10_000)).execute()
        assert res.positions.is_empty()
        assert ctx.stats.blocks_skipped == cf_a.n_blocks
        assert ctx.stats.block_reads == 0

    def test_uncompressed_scan(self, ctx, columns):
        _a, b, _cf_a, cf_b = columns
        res = DS1Scan(ctx, cf_b, Predicate("b", "=", 4)).execute()
        assert np.array_equal(res.positions.to_array(), np.nonzero(b == 4)[0])
        assert ctx.stats.values_scanned == len(b)


class TestDS2:
    def test_pairs_match_reference(self, ctx, columns):
        a, _b, cf_a, _cf_b = columns
        tuples = DS2Scan(ctx, cf_a, Predicate("a", "<", 10)).execute()
        expected_pos = np.nonzero(a < 10)[0]
        assert np.array_equal(tuples.positions, expected_pos)
        assert np.array_equal(tuples.column("a"), a[expected_pos])

    def test_none_predicate_returns_everything(self, ctx, columns):
        _a, b, _cf_a, cf_b = columns
        tuples = DS2Scan(ctx, cf_b, None).execute()
        assert tuples.n_tuples == len(b)

    def test_counts_tuple_iterations(self, ctx, columns):
        a, _b, cf_a, _cf_b = columns
        DS2Scan(ctx, cf_a, Predicate("a", "<", 10)).execute()
        assert ctx.stats.tuple_iterations >= int((a < 10).sum())
        assert ctx.stats.tuples_constructed == int((a < 10).sum())


class TestDS3:
    def test_gather_matches_reference(self, ctx, columns):
        _a, b, _cf_a, cf_b = columns
        picks = ListedPositions(np.array([5, 77, 30_000, 79_999]))
        res = DS3Gather(ctx, cf_b, picks).execute()
        assert np.array_equal(res.values, b[picks.to_array()])

    def test_gather_skips_uncovered_blocks(self, ctx, columns):
        _a, b, _cf_a, cf_b = columns
        picks = RangePositions(0, 10)  # everything in block 0
        DS3Gather(ctx, cf_b, picks).execute()
        assert ctx.stats.block_reads == 1
        assert ctx.stats.blocks_skipped == 0  # early-exit before later blocks

    def test_gather_with_predicate_filters(self, ctx, columns):
        _a, b, _cf_a, cf_b = columns
        picks = RangePositions(0, 1000)
        res = DS3Gather(
            ctx, cf_b, picks, predicate=Predicate("b", "<", 5)
        ).execute()
        expected = np.nonzero(b[:1000] < 5)[0]
        assert np.array_equal(res.positions.to_array(), expected)
        assert np.array_equal(res.values, b[expected])

    def test_gather_via_minicolumn_avoids_pool(self, ctx, columns):
        a, _b, cf_a, _cf_b = columns
        scan = DS1Scan(ctx, cf_a, Predicate("a", "<", 25)).execute()
        reads_before = ctx.stats.block_reads + ctx.stats.buffer_hits
        res = DS3Gather(
            ctx, cf_a, scan.positions, minicolumn=scan.minicolumn
        ).execute()
        assert ctx.stats.block_reads + ctx.stats.buffer_hits == reads_before
        assert np.array_equal(res.values, a[scan.positions.to_array()])

    def test_bitvector_position_filtering_rejected(self, ctx, tmp_path):
        values = np.zeros(100, dtype=np.int32)
        cf = write_column(
            tmp_path / "bv.col", values, INT32, encoding_by_name("bitvector")
        )
        with pytest.raises(UnsupportedOperationError):
            DS3Gather(
                ctx, cf, RangePositions(0, 10), predicate=Predicate("v", "<", 1)
            )

    def test_bitvector_plain_gather_allowed(self, ctx, tmp_path):
        rng = np.random.default_rng(5)
        values = rng.integers(0, 5, size=1000).astype(np.int32)
        cf = write_column(
            tmp_path / "bv.col", values, INT32, encoding_by_name("bitvector")
        )
        res = DS3Gather(ctx, cf, ListedPositions(np.array([3, 500, 999]))).execute()
        assert np.array_equal(res.values, values[[3, 500, 999]])


class TestGatherValues:
    def test_unsorted_positions(self, ctx, columns):
        _a, b, _cf_a, cf_b = columns
        picks = np.array([79_999, 3, 40_000, 7], dtype=np.int64)
        got = gather_values(ctx, cf_b, picks)
        assert np.array_equal(got, b[picks])
        assert ctx.stats.extra["out_of_order_gathers"] == len(picks)

    def test_sorted_positions_no_penalty(self, ctx, columns):
        _a, b, _cf_a, cf_b = columns
        picks = np.array([3, 7, 40_000], dtype=np.int64)
        gather_values(ctx, cf_b, picks)
        assert "out_of_order_gathers" not in ctx.stats.extra

    def test_empty_positions(self, ctx, columns):
        _a, _b, _cf_a, cf_b = columns
        got = gather_values(ctx, cf_b, np.empty(0, dtype=np.int64))
        assert len(got) == 0


class TestDS4:
    def test_extends_and_filters(self, ctx, columns):
        a, b, cf_a, cf_b = columns
        seed = DS2Scan(ctx, cf_a, Predicate("a", "<", 10)).execute()
        out = DS4Scan(ctx, cf_b, Predicate("b", "<", 5), seed).execute()
        mask = (a < 10) & (b < 5)
        expected_pos = np.nonzero(mask)[0]
        assert np.array_equal(out.positions, expected_pos)
        assert np.array_equal(out.column("a"), a[mask])
        assert np.array_equal(out.column("b"), b[mask])

    def test_extend_without_predicate(self, ctx, columns):
        a, b, cf_a, cf_b = columns
        seed = DS2Scan(ctx, cf_a, Predicate("a", "<", 5)).execute()
        out = DS4Scan(ctx, cf_b, None, seed).execute()
        assert out.n_tuples == seed.n_tuples
        assert np.array_equal(out.column("b"), b[a < 5])


class TestSPC:
    def test_constructs_filtered_tuples(self, ctx, columns):
        a, b, cf_a, cf_b = columns
        out = SPCScan(
            ctx,
            {"a": cf_a, "b": cf_b},
            [Predicate("a", "<", 10), Predicate("b", "<", 5)],
        ).execute()
        mask = (a < 10) & (b < 5)
        assert np.array_equal(out.column("a"), a[mask])
        assert np.array_equal(out.column("b"), b[mask])

    def test_reads_every_block_of_every_column(self, ctx, columns):
        _a, _b, cf_a, cf_b = columns
        SPCScan(ctx, {"a": cf_a, "b": cf_b}, [Predicate("a", ">", 10_000)]).execute()
        assert ctx.stats.block_reads == cf_a.n_blocks + cf_b.n_blocks
        assert ctx.stats.blocks_skipped == 0

    def test_with_positions(self, ctx, columns):
        a, _b, cf_a, cf_b = columns
        out = SPCScan(
            ctx, {"a": cf_a}, [Predicate("a", "<", 3)], with_positions=True
        ).execute()
        assert np.array_equal(out.positions, np.nonzero(a < 3)[0])
