"""Property tests: compressed kernels equal the decoded reference path.

Every kernel in :mod:`repro.compressed` is an *optimisation*, never a
semantic change — so each one is tested as an equality against the decoded
reference it replaces:

* predicate kernels (RLE / dictionary / FOR) select exactly the positions
  ``from_mask(start, predicate.mask(decode(payload)))`` selects;
* the run-list position algebra matches Python set semantics, including
  mixed-representation AND;
* run/code-histogram aggregation equals the row-at-a-time reduction;
* the lattice morph operators reproduce ``Encoding.decode`` exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressed import (
    KERNEL_ENCODINGS,
    codes_to_values,
    deltas_to_values,
    runs_to_values,
    scan_block_compressed,
)
from repro.dtypes import INT32
from repro.model.morph import (
    dictionary_scan_decision,
    for_scan_decision,
    morph_scan_us,
    rle_scan_decision,
)
from repro.operators.aggregate import AggSpec, AggregateLM
from repro.operators.base import ExecutionContext
from repro.positions import (
    BitmapPositions,
    ListedPositions,
    RangePositions,
    RunPositions,
    from_mask,
    intersect_all,
)
from repro.predicates import ColumnConjunction, InPredicate, Predicate
from repro.storage import encoding_by_name
from repro.storage.block import BlockDescriptor


class _StubColumnFile:
    """The two attributes the kernels actually read off a ColumnFile."""

    def __init__(self, encoding_name):
        self.encoding = encoding_by_name(encoding_name)
        self.dtype = INT32.numpy_dtype


def _blocks(codec, values, start_pos=0):
    out = []
    for i, blk in enumerate(
        codec.encode(values, INT32.numpy_dtype, start_pos=start_pos)
    ):
        out.append(
            (
                BlockDescriptor(
                    index=i,
                    offset=0,
                    nbytes=len(blk.payload),
                    start_pos=blk.start_pos,
                    n_values=blk.n_values,
                    min_value=blk.min_value,
                    max_value=blk.max_value,
                ),
                blk.payload,
            )
        )
    return out


def _ctx():
    return ExecutionContext(pool=None)


value_arrays = st.one_of(
    # run-heavy data (a few distinct values, long-ish runs)
    st.lists(st.integers(-5, 5), min_size=1, max_size=400).map(
        lambda xs: np.repeat(
            np.array(xs, dtype=np.int32), np.random.RandomState(0).randint(1, 4)
        )
    ),
    st.lists(st.integers(-50, 50), min_size=1, max_size=400).map(
        lambda xs: np.array(xs, dtype=np.int32)
    ),
)

predicates = st.one_of(
    st.builds(
        Predicate,
        st.just("c"),
        st.sampled_from(["<", "<=", ">", ">=", "=", "!="]),
        st.one_of(
            st.integers(-55, 55),
            # fractional constants: the FOR kernel must morph, never round
            st.floats(-55, 55).filter(lambda v: not float(v).is_integer()),
        ),
    ),
    st.builds(
        InPredicate,
        st.just("c"),
        st.lists(st.integers(-55, 55), min_size=1, max_size=4).map(tuple),
    ),
    st.builds(
        lambda lo, hi: ColumnConjunction(
            "c", (Predicate("c", ">=", lo), Predicate("c", "<", hi))
        ),
        st.integers(-55, 0),
        st.integers(0, 55),
    ),
)


@given(st.sampled_from(sorted(KERNEL_ENCODINGS)), value_arrays, predicates)
@settings(max_examples=200, deadline=None)
def test_kernel_matches_decoded_reference(codec_name, values, predicate):
    codec = encoding_by_name(codec_name)
    cf = _StubColumnFile(codec_name)
    ctx = _ctx()
    for desc, payload in _blocks(codec, values):
        got = scan_block_compressed(ctx, cf, desc, payload, predicate)
        decoded = codec.decode(payload, desc, INT32.numpy_dtype)
        expected = from_mask(desc.start_pos, predicate.mask(decoded))
        if got is None:
            # A morph is always allowed; the decoded path answers instead.
            continue
        assert np.array_equal(got.to_array(), expected.to_array())


def test_rle_kernel_fires_on_run_heavy_data():
    """Long runs must stay compressed and come back as run lists."""
    values = np.repeat(np.array([3, 7, 3, 9], dtype=np.int32), 50)
    codec = encoding_by_name("rle")
    cf = _StubColumnFile("rle")
    ctx = _ctx()
    [(desc, payload)] = _blocks(codec, values)
    got = scan_block_compressed(ctx, cf, desc, payload, Predicate("c", "=", 3))
    assert isinstance(got, RunPositions)
    assert got.n_runs == 2
    assert got.count() == 100


def test_for_kernel_morphs_on_fractional_constant():
    values = np.arange(100, 200, dtype=np.int32)
    codec = encoding_by_name("for")
    cf = _StubColumnFile("for")
    ctx = _ctx()
    [(desc, payload)] = _blocks(codec, values)
    assert (
        scan_block_compressed(
            _ctx(), cf, desc, payload, Predicate("c", "<", 150.5)
        )
        is None
    )
    got = scan_block_compressed(ctx, cf, desc, payload, Predicate("c", "<", 150))
    assert got is not None and got.count() == 50


# ---------------------------------------------------------------- positions

UNIVERSE = 300


@st.composite
def run_sets(draw):
    n = draw(st.integers(0, 8))
    edges = draw(
        st.lists(
            st.integers(0, UNIVERSE), min_size=2 * n, max_size=2 * n, unique=True
        )
    )
    edges = sorted(edges)
    starts = np.array(edges[0::2], dtype=np.int64)
    stops = np.array(edges[1::2], dtype=np.int64)
    return RunPositions(starts, stops)


@st.composite
def other_sets(draw):
    kind = draw(st.sampled_from(["range", "listed", "bitmap"]))
    if kind == "range":
        a = draw(st.integers(0, UNIVERSE))
        b = draw(st.integers(0, UNIVERSE))
        return RangePositions(min(a, b), max(a, b))
    members = draw(
        st.lists(st.integers(0, UNIVERSE - 1), max_size=60, unique=True)
    )
    if kind == "listed":
        return ListedPositions(np.array(sorted(members), dtype=np.int64))
    mask = np.zeros(UNIVERSE, dtype=bool)
    mask[np.array(members, dtype=np.int64)] = True
    return BitmapPositions.from_mask(0, mask)


def as_set(ps):
    return set(int(p) for p in ps.to_array())


@given(run_sets(), run_sets())
@settings(max_examples=150, deadline=None)
def test_run_intersection_stays_in_run_space(a, b):
    result = a.intersect(b)
    assert as_set(result) == as_set(a) & as_set(b)
    assert isinstance(result, (RunPositions, RangePositions))


@given(run_sets(), other_sets())
@settings(max_examples=150, deadline=None)
def test_run_intersection_mixed_representations(a, b):
    assert as_set(a.intersect(b)) == as_set(a) & as_set(b)
    assert as_set(b.intersect(a)) == as_set(a) & as_set(b)


@given(run_sets(), st.one_of(run_sets(), other_sets()))
@settings(max_examples=150, deadline=None)
def test_run_union_matches_set_semantics(a, b):
    assert as_set(a.union(b)) == as_set(a) | as_set(b)


@given(run_sets(), st.integers(0, UNIVERSE), st.integers(0, UNIVERSE))
@settings(max_examples=100, deadline=None)
def test_run_restrict_and_mask_roundtrip(a, lo, hi):
    lo, hi = min(lo, hi), max(lo, hi)
    assert as_set(a.restrict(lo, hi)) == {
        p for p in as_set(a) if lo <= p < hi
    }
    if hi > lo:
        mask = a.to_mask(lo, hi)
        assert {lo + i for i in np.nonzero(mask)[0]} == as_set(
            a.restrict(lo, hi)
        )


@given(st.lists(st.one_of(run_sets(), other_sets()), min_size=1, max_size=4))
@settings(max_examples=100, deadline=None)
def test_intersect_all_with_run_lists(sets):
    expected = as_set(sets[0])
    for s in sets[1:]:
        expected &= as_set(s)
    assert as_set(intersect_all(sets)) == expected


# -------------------------------------------------------------- aggregation


@given(
    st.lists(st.integers(0, 5), min_size=1, max_size=300),
    st.sampled_from(["sum", "count", "min", "max", "avg"]),
)
@settings(max_examples=120, deadline=None)
def test_run_aggregation_matches_row_path(group_list, func):
    groups = np.array(group_list, dtype=np.int32)
    rng = np.random.RandomState(len(group_list))
    measure = rng.randint(-100, 100, size=groups.size).astype(np.int32)
    # Factor the group column into (run value, run id per row) exactly the
    # way _rle_group_runs / dictionary_group_codes do.
    change = np.concatenate(([True], groups[1:] != groups[:-1]))
    run_values = groups[change]
    run_ids = np.cumsum(change) - 1
    spec = AggSpec(func, "m")
    row = AggregateLM(_ctx(), ["g"], [spec]).execute(
        {"g": groups}, {"m": measure}
    )
    runs = AggregateLM(_ctx(), ["g"], [spec]).execute_runs(
        run_values, run_ids, {"m": measure}
    )
    assert sorted(row.rows()) == sorted(runs.rows())


# ------------------------------------------------------------------ lattice


@given(value_arrays)
@settings(max_examples=100, deadline=None)
def test_morph_operators_reproduce_decode(values):
    rle = encoding_by_name("rle")
    for desc, payload in _blocks(rle, values):
        vals, _starts, lengths = rle.runs(payload, desc, INT32.numpy_dtype)
        assert np.array_equal(
            runs_to_values(vals, lengths),
            rle.decode(payload, desc, INT32.numpy_dtype),
        )
    dictionary = encoding_by_name("dictionary")
    for desc, payload in _blocks(dictionary, values):
        distinct, codes = dictionary.code_table(payload)
        assert np.array_equal(
            codes_to_values(distinct, codes, INT32.numpy_dtype),
            dictionary.decode(payload, desc, INT32.numpy_dtype),
        )
    forenc = encoding_by_name("for")
    for desc, payload in _blocks(forenc, values):
        span = forenc.parse_span(payload)
        assert np.array_equal(
            deltas_to_values(span.reference, span.offsets, INT32.numpy_dtype),
            forenc.decode(payload, desc, INT32.numpy_dtype),
        )


# ---------------------------------------------------------------- decisions


def test_morph_decisions_have_sane_shape():
    from repro.model.constants import PAPER_CONSTANTS as K

    # Long runs stay; run-per-value data morphs.
    assert rle_scan_decision(1000, 10, K).stay
    assert not rle_scan_decision(1000, 1000, K).stay
    # Dictionary codes are always narrower than decoded values.
    assert dictionary_scan_decision(1000, 4, 1, K).stay
    # FOR stays only when the predicate translates to offset space.
    assert for_scan_decision(1000, 16, True, K).stay
    assert not for_scan_decision(1000, 16, False, K).stay
    assert morph_scan_us(0, K) == 0.0


def test_decompress_eagerly_forces_compressed_off():
    ctx = ExecutionContext(pool=None, decompress_eagerly=True)
    assert ctx.compressed is False
    assert ctx.leaf().compressed is False
