"""Property-based tests for disjunctive (DNF) WHERE execution."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Predicate, SelectQuery

from .reference import canonical, full_column

predicate_st = st.builds(
    Predicate,
    st.sampled_from(["linenum", "quantity"]),
    st.sampled_from(["<", "<=", ">", ">=", "=", "!="]),
    st.integers(-2, 55),
)

dnf_st = st.lists(
    st.lists(predicate_st, min_size=1, max_size=2),
    min_size=2,
    max_size=3,
)


def reference_mask(lineitem, groups):
    mask = np.zeros(lineitem.n_rows, dtype=bool)
    for group in groups:
        gm = np.ones(lineitem.n_rows, dtype=bool)
        for pred in group:
            gm &= pred.mask(full_column(lineitem, pred.column))
        mask |= gm
    return mask


@given(dnf_st)
@settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_dnf_matches_reference_mask(tpch_db, groups):
    lineitem = tpch_db.projection("lineitem")
    query = SelectQuery(
        projection="lineitem",
        select=("linenum", "quantity"),
        disjuncts=tuple(tuple(g) for g in groups),
    )
    result = tpch_db.query(query, cold=True)
    mask = reference_mask(lineitem, groups)
    expected = np.stack(
        [
            full_column(lineitem, "linenum")[mask].astype(np.int64),
            full_column(lineitem, "quantity")[mask].astype(np.int64),
        ],
        axis=1,
    )
    assert np.array_equal(canonical(result.tuples.data), canonical(expected))


@given(dnf_st)
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_dnf_equals_sql_roundtrip(tpch_db, groups):
    """The same DNF written as SQL must bind to an equivalent query."""
    sql_where = " OR ".join(
        "(" + " AND ".join(f"{p.column} {p.op} {p.value}" for p in g) + ")"
        for g in groups
    )
    via_sql = tpch_db.sql(
        f"SELECT linenum, quantity FROM lineitem WHERE {sql_where}",
        cold=True,
    )
    programmatic = tpch_db.query(
        SelectQuery(
            projection="lineitem",
            select=("linenum", "quantity"),
            disjuncts=tuple(tuple(g) for g in groups),
        ),
        cold=True,
    )
    assert np.array_equal(
        canonical(via_sql.tuples.data), canonical(programmatic.tuples.data)
    )


@given(st.lists(predicate_st, min_size=1, max_size=3))
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_self_union_equals_conjunction(tpch_db, preds):
    """(A) OR (A) must return exactly the rows of conjunction A."""
    conj = tpch_db.query(
        SelectQuery(
            projection="lineitem",
            select=("linenum",),
            predicates=tuple(preds),
        ),
        cold=True,
    )
    duplicated = tpch_db.query(
        SelectQuery(
            projection="lineitem",
            select=("linenum",),
            disjuncts=(tuple(preds), tuple(preds)),
        ),
        cold=True,
    )
    assert np.array_equal(
        canonical(conj.tuples.data), canonical(duplicated.tuples.data)
    )
