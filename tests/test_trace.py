"""Tests for execution tracing."""

import pytest

from repro import JoinQuery, Predicate, SelectQuery, Strategy


@pytest.fixture()
def query():
    return SelectQuery(
        projection="lineitem",
        select=("shipdate", "linenum"),
        predicates=(
            Predicate("shipdate", "<", 8800),
            Predicate("linenum", "<", 7),
        ),
    )


def ops(trace):
    return [op for op, _detail in trace]


class TestTrace:
    def test_disabled_by_default(self, tpch_db, query):
        assert tpch_db.query(query).trace is None

    def test_lm_parallel_shape(self, tpch_db, query):
        r = tpch_db.query(query, strategy=Strategy.LM_PARALLEL, trace=True)
        assert ops(r.trace) == [
            "DS1", "DS1", "AND", "DS3", "DS3", "MERGE", "OUTPUT"
        ]
        and_event = dict(r.trace)[("AND")]
        assert and_event["positions"] == r.n_rows
        # Both extractions served from pinned mini-columns.
        assert all(
            d["pinned"] for op, d in r.trace if op == "DS3"
        )

    def test_lm_pipelined_shape(self, tpch_db, query):
        r = tpch_db.query(query, strategy=Strategy.LM_PIPELINED, trace=True)
        names = ops(r.trace)
        assert names[0] == "DS1"
        assert "DS3+filter" in names
        assert names[-2:] == ["MERGE", "OUTPUT"]
        assert "AND" not in names  # pipelining obviates the AND

    def test_em_pipelined_shape(self, tpch_db, query):
        r = tpch_db.query(query, strategy=Strategy.EM_PIPELINED, trace=True)
        names = ops(r.trace)
        assert names[0] == "DS2"
        assert "DS4" in names
        ds4 = [d for op, d in r.trace if op == "DS4"][0]
        assert ds4["tuples_out"] <= ds4["tuples_in"]

    def test_em_parallel_shape(self, tpch_db, query):
        r = tpch_db.query(query, strategy=Strategy.EM_PARALLEL, trace=True)
        names = ops(r.trace)
        assert names == ["SPC", "OUTPUT"]
        spc = r.trace[0][1]
        assert spc["tuples"] == r.n_rows

    def test_index_path_traced(self, tpch_db):
        q = SelectQuery(
            projection="lineitem",
            select=("returnflag",),
            predicates=(Predicate("returnflag", "=", 1),),
        )
        r = tpch_db.query(q, strategy=Strategy.LM_PARALLEL, trace=True)
        ds1 = [d for op, d in r.trace if op == "DS1"][0]
        assert ds1["via"] == "index"

    def test_counts_consistent_with_result(self, tpch_db, query):
        r = tpch_db.query(query, strategy=Strategy.LM_PARALLEL, trace=True)
        merge = [d for op, d in r.trace if op == "MERGE"][0]
        assert merge["tuples"] == r.n_rows

    def test_join_traced(self, tpch_db):
        jq = JoinQuery(
            left="orders",
            right="customer",
            left_key="custkey",
            right_key="custkey",
            left_select=("shipdate",),
            right_select=("nationcode",),
            left_predicates=(Predicate("custkey", "<", 50),),
        )
        r = tpch_db.query(jq, strategy="materialized", trace=True)
        names = ops(r.trace)
        assert names[0] == "DS1"
        assert "SPC" in names
        assert "JOIN" in names
        assert "MERGE" in names
        assert names[-1] == "OUTPUT"
