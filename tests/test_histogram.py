"""Tests for per-column histograms and their effect on estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtypes import INT32
from repro.planner.estimate import estimate_selectivity
from repro.predicates import InPredicate, Predicate
from repro.storage import ColumnFile, encoding_by_name, write_column
from repro.storage.stats import ColumnHistogram


class TestHistogramBuild:
    def test_basic_shape(self):
        values = np.arange(1000, dtype=np.int64)
        h = ColumnHistogram.build(values, bins=10)
        assert h.n_values == 1000
        assert h.n_distinct == 1000
        # Uniform data has no heavy hitters; all mass lives in the bins.
        assert h.common == ()
        assert sum(h.counts) == 1000
        assert h.edges[0] == 0.0 and h.edges[-1] == 999.0

    def test_empty(self):
        h = ColumnHistogram.build(np.empty(0, dtype=np.int64))
        assert h.n_values == 0
        assert h.estimate(Predicate("c", "<", 5)) == 0.0

    def test_constant_column(self):
        h = ColumnHistogram.build(np.full(100, 7, dtype=np.int64))
        # A single repeated value is a heavy hitter with exact count.
        assert h.common == ((7.0, 100),)
        assert h.estimate(Predicate("c", "=", 7)) == pytest.approx(1.0)
        assert h.estimate(Predicate("c", "<", 7)) == 0.0
        assert h.estimate(Predicate("c", ">", 7)) == 0.0

    def test_heavy_hitters_exact(self):
        values = np.concatenate(
            [np.full(9000, 42), np.arange(1000)]
        ).astype(np.int64)
        h = ColumnHistogram.build(values, bins=16)
        assert (42.0, 9042 - 42) not in h.common  # sanity: counts are exact
        hot = dict(h.common)
        assert hot[42.0] == 9001  # 9000 + one from arange
        assert h.estimate(Predicate("c", "=", 42)) == pytest.approx(
            9001 / 10_000
        )

    def test_json_roundtrip(self):
        h = ColumnHistogram.build(
            np.concatenate(
                [np.full(500, 3), np.arange(500)]
            ).astype(np.int64),
            bins=8,
        )
        h2 = ColumnHistogram.from_json(h.to_json())
        assert h2 == h


class TestHistogramEstimates:
    @pytest.fixture(scope="class")
    def skewed(self):
        # 90% of mass at tiny values, long thin tail: the case block min/max
        # interpolation gets badly wrong.
        rng = np.random.default_rng(9)
        small = rng.integers(0, 10, size=90_000)
        tail = rng.integers(10, 100_000, size=10_000)
        return np.concatenate((small, tail)).astype(np.int64)

    @pytest.mark.parametrize("op", ["<", "<=", ">", ">=", "=", "!="])
    def test_within_10_points_on_skew(self, skewed, op):
        h = ColumnHistogram.build(skewed, bins=128)
        for boundary in (5, 10, 1000, 50_000):
            pred = Predicate("c", op, boundary)
            actual = float(pred.mask(skewed).mean())
            assert h.estimate(pred) == pytest.approx(actual, abs=0.10), (
                op,
                boundary,
            )

    def test_in_predicate(self, skewed):
        h = ColumnHistogram.build(skewed, bins=128)
        pred = InPredicate("c", (1, 5, 70_000))
        actual = float(pred.mask(skewed).mean())
        assert h.estimate(pred) == pytest.approx(actual, abs=0.10)

    def test_histogram_beats_block_interpolation_on_skew(self, skewed, tmp_path):
        cf = write_column(
            tmp_path / "skew.col",
            skewed.astype(np.int64),
            __import__("repro.dtypes", fromlist=["INT64"]).INT64,
            encoding_by_name("uncompressed"),
        )
        pred = Predicate("skew", "<", 1000)
        actual = float(pred.mask(skewed).mean())  # ~0.9+
        with_hist = estimate_selectivity(cf, pred)
        # Disable the histogram to get the block-interpolation fallback.
        object.__setattr__(cf, "histogram", None)
        without = estimate_selectivity(cf, pred)
        assert abs(with_hist - actual) < abs(without - actual)
        assert abs(with_hist - actual) < 0.05

    @given(
        st.lists(st.integers(-1000, 1000), min_size=1, max_size=400),
        st.sampled_from(["<", "<=", ">", ">=", "=", "!="]),
        st.integers(-1100, 1100),
    )
    @settings(max_examples=150, deadline=None)
    def test_estimates_always_valid_probability(self, xs, op, boundary):
        h = ColumnHistogram.build(np.array(xs, dtype=np.int64), bins=16)
        est = h.estimate(Predicate("c", op, boundary))
        assert 0.0 <= est <= 1.0

    @given(st.lists(st.integers(0, 50), min_size=10, max_size=400))
    @settings(max_examples=100, deadline=None)
    def test_range_estimate_bounded_error(self, xs):
        """With one bin per distinct value, range estimates are near-exact."""
        values = np.array(xs, dtype=np.int64)
        h = ColumnHistogram.build(values, bins=64)
        pred = Predicate("c", "<", 25)
        actual = float(pred.mask(values).mean())
        assert h.estimate(pred) == pytest.approx(actual, abs=0.15)


class TestPersistence:
    def test_histogram_survives_reopen(self, tmp_path):
        values = np.arange(10_000, dtype=np.int32)
        write_column(
            tmp_path / "c.col", values, INT32, encoding_by_name("rle")
        )
        cf = ColumnFile.open(tmp_path / "c.col")
        assert cf.histogram is not None
        assert cf.histogram.n_values == 10_000
        assert cf.histogram.n_distinct == 10_000

    def test_legacy_header_without_histogram(self, tmp_path):
        import json

        values = np.arange(1000, dtype=np.int32)
        path = tmp_path / "c.col"
        write_column(path, values, INT32, encoding_by_name("uncompressed"))
        data = path.read_bytes()
        header_len = int.from_bytes(data[8:12], "little")
        header = json.loads(data[12 : 12 + header_len].decode())
        header.pop("histogram")
        new_header = json.dumps(header).encode()
        padded = new_header + b" " * (header_len - len(new_header))
        path.write_bytes(data[:12] + padded + data[12 + header_len :])
        cf = ColumnFile.open(path)
        assert cf.histogram is None
        # Estimation falls back to block interpolation and still works.
        est = estimate_selectivity(cf, Predicate("c", "<", 500))
        assert est == pytest.approx(0.5, abs=0.05)
