"""The advisor differential axis: ``advise --apply`` never changes answers.

One database captures a seeded workload (every generated query under all
four materialization strategies) into its query log; the stored files are
cloned; and the clone replays every ok record hash-identically *before*
the advisor runs, then again *after* ``apply_plan`` has built and dropped
projections through the real catalog — the post-apply replay additionally
runs under a different ``parallel_scans`` setting. Physical design changes
recommended by the advisor must be invisible in every result hash. This is
the acceptance gate behind ``repro advise --apply``.

The seed is fixed (overridable via ``REPRO_DIFF_SEED``); CI's
``advisor-matrix`` job runs this file under two different seeds.
"""

from __future__ import annotations

import os

import pytest

from repro import Database, MetricsRegistry, load_tpch

from .differential import run_advisor_differential
from .test_differential_strategies import KERNEL_LINENUM_ENCODINGS

SEED = int(os.environ.get("REPRO_DIFF_SEED", "20260806"))

STRATEGY_NAMES = {"em-pipelined", "em-parallel", "lm-pipelined", "lm-parallel"}


@pytest.fixture(scope="module")
def advisor_outcome(tmp_path_factory):
    """Capture with one database, advise+replay on a clone of its files."""
    root = tmp_path_factory.mktemp("diff_advisor")
    capture_db = Database(root / "db", metrics=MetricsRegistry())
    load_tpch(
        capture_db.catalog,
        scale=0.002,
        seed=7,
        linenum_encodings=KERNEL_LINENUM_ENCODINGS,
    )
    try:
        records, plan, report_pre, report_post = run_advisor_differential(
            capture_db, root / "clone", n_queries=60, seed=SEED,
            parallel_scans=2,
        )
        yield records, plan, report_pre, report_post
    finally:
        capture_db.close()


class TestAdvisorDifferential:
    def test_pre_apply_replay_is_bit_identical(self, advisor_outcome):
        _records, _plan, report_pre, _report_post = advisor_outcome
        assert report_pre.ok, report_pre.render()
        assert report_pre.mismatched == 0
        assert report_pre.errors == 0

    def test_post_apply_replay_is_bit_identical(self, advisor_outcome):
        _records, _plan, _report_pre, report_post = advisor_outcome
        assert report_post.ok, report_post.render()
        assert report_post.mismatched == 0
        assert report_post.errors == 0
        assert report_post.matched == report_post.replayed

    def test_workload_is_large_and_mixed(self, advisor_outcome):
        _records, _plan, report_pre, report_post = advisor_outcome
        # Acceptance floor: >= 200 queries replayed hash-clean on both sides.
        assert report_pre.replayed >= 200
        assert report_post.replayed == report_pre.replayed
        assert set(report_post.strategies) == STRATEGY_NAMES

    def test_advice_actually_changed_the_design(self, advisor_outcome):
        _records, plan, _report_pre, _report_post = advisor_outcome
        builds = [a for a in plan.actions if a.kind == "build"]
        # Without at least one build the axis degrades to the replay axis.
        assert builds, plan.render()
        assert plan.predicted_improvement >= 1.0

    def test_every_ok_record_carries_its_projection(self, advisor_outcome):
        records, _plan, _report_pre, _report_post = advisor_outcome
        ok = [r for r in records if r["outcome"] == "ok"]
        assert ok
        assert all(r.get("projection") for r in ok)
