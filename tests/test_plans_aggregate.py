"""Integration tests: aggregation plans across strategies and encodings."""

import numpy as np
import pytest

from repro import AggSpec, Predicate, SelectQuery, Strategy
from repro.errors import UnsupportedOperationError

from .reference import canonical, full_column, reference_group_sum

ALL_STRATEGIES = list(Strategy)


def agg_query(x, y, encoding="uncompressed"):
    return SelectQuery(
        projection="lineitem",
        select=("shipdate", "sum(linenum)"),
        predicates=(
            Predicate("shipdate", "<", x),
            Predicate("linenum", "<", y),
        ),
        group_by="shipdate",
        aggregates=(AggSpec("sum", "linenum"),),
        encodings=(("linenum", encoding),),
    )


class TestAggregationEquivalence:
    @pytest.mark.parametrize("encoding", ["uncompressed", "rle", "bitvector"])
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    @pytest.mark.parametrize("quantile", [0.1, 0.8])
    def test_group_sum_matches_reference(
        self, tpch_db, encoding, strategy, quantile
    ):
        lineitem = tpch_db.projection("lineitem")
        ship = full_column(lineitem, "shipdate")
        x = int(np.quantile(ship, quantile))
        query = agg_query(x, 7, encoding)
        expected = reference_group_sum(
            lineitem, "shipdate", "linenum", list(query.predicates)
        )
        try:
            result = tpch_db.query(query, strategy=strategy, cold=True)
        except UnsupportedOperationError:
            assert strategy is Strategy.LM_PIPELINED and encoding == "bitvector"
            return
        assert np.array_equal(canonical(result.tuples.data), canonical(expected))

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_group_by_returnflag(self, tpch_db, strategy):
        lineitem = tpch_db.projection("lineitem")
        query = SelectQuery(
            projection="lineitem",
            select=("returnflag", "sum(quantity)"),
            predicates=(Predicate("linenum", "<", 4),),
            group_by="returnflag",
            aggregates=(AggSpec("sum", "quantity"),),
        )
        expected = reference_group_sum(
            lineitem, "returnflag", "quantity", list(query.predicates)
        )
        result = tpch_db.query(query, strategy=strategy, cold=True)
        assert np.array_equal(canonical(result.tuples.data), canonical(expected))

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_multiple_aggregates(self, tpch_db, strategy):
        lineitem = tpch_db.projection("lineitem")
        ship = full_column(lineitem, "shipdate")
        lin = full_column(lineitem, "linenum")
        qty = full_column(lineitem, "quantity")
        x = int(np.quantile(ship, 0.3))
        mask = ship < x
        uq, inv = np.unique(ship[mask], return_inverse=True)
        expected = np.stack(
            [
                uq.astype(np.int64),
                np.bincount(inv, weights=lin[mask]).astype(np.int64),
                np.bincount(inv).astype(np.int64),
                np.bincount(inv, weights=qty[mask]).astype(np.int64),
            ],
            axis=1,
        )
        query = SelectQuery(
            projection="lineitem",
            select=(
                "shipdate",
                "sum(linenum)",
                "count(linenum)",
                "sum(quantity)",
            ),
            predicates=(Predicate("shipdate", "<", x),),
            group_by="shipdate",
            aggregates=(
                AggSpec("sum", "linenum"),
                AggSpec("count", "linenum"),
                AggSpec("sum", "quantity"),
            ),
        )
        result = tpch_db.query(query, strategy=strategy, cold=True)
        assert np.array_equal(canonical(result.tuples.data), canonical(expected))

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_no_predicate_aggregation(self, tpch_db, strategy):
        lineitem = tpch_db.projection("lineitem")
        expected = reference_group_sum(lineitem, "returnflag", "linenum", [])
        query = SelectQuery(
            projection="lineitem",
            select=("returnflag", "sum(linenum)"),
            group_by="returnflag",
            aggregates=(AggSpec("sum", "linenum"),),
        )
        result = tpch_db.query(query, strategy=strategy, cold=True)
        assert np.array_equal(canonical(result.tuples.data), canonical(expected))


class TestAggregationBehaviour:
    def test_lm_constructs_only_summary_tuples(self, tpch_db):
        lineitem = tpch_db.projection("lineitem")
        ship = full_column(lineitem, "shipdate")
        query = agg_query(int(np.quantile(ship, 0.8)), 7)
        lm = tpch_db.query(query, strategy=Strategy.LM_PARALLEL, cold=True)
        em = tpch_db.query(query, strategy=Strategy.EM_PARALLEL, cold=True)
        assert lm.stats.tuples_constructed == lm.n_rows
        # EM constructs one tuple per surviving input row (plus the summary
        # rows); LM constructs only the summary rows.
        assert em.stats.tuples_constructed > 2 * lm.stats.tuples_constructed
