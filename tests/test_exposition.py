"""Prometheus text-format conformance for :mod:`repro.exposition`.

A pure-python lint of the rendered exposition: metric/label name legality,
exactly one HELP and one TYPE line per family (before its samples), label
value escaping, cumulative histogram buckets closed by ``le="+Inf"`` with
consistent ``_sum``/``_count``, and byte-stable deterministic ordering. No
external Prometheus dependency — the format spec is asserted directly.
"""

from __future__ import annotations

import math
import re

from repro import MetricsRegistry, render_prometheus

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})? (?P<value>\S+)$"
)
LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry(slow_query_threshold_ms=5.0)
    for wall, strategy, encoding in (
        (0.5, "em-parallel", "rle"),
        (2.0, "lm-parallel", "dictionary"),
        (80.0, "lm-pipelined", "rle"),
    ):
        reg.observe_query(
            strategy=strategy,
            wall_ms=wall,
            simulated_ms=wall * 3,
            rows=10,
            description='SELECT "quoted" FROM t\nWHERE x < 1 \\ y',
            encodings=(encoding,),
            queue_wait_ms=1.5,
            degraded=True,
        )
    reg.counter("serving.rejected_total").inc(3)
    reg.register_collector(
        "admission_queue",
        lambda: {
            "depth": 2,
            "max_depth": 64,
            "per_class": {"interactive": 1, "normal": 1, "batch": 0},
            "closed": False,
        },
    )
    reg.register_collector(
        "buffer_pool",
        lambda: {"hits": 5, "misses": 2, "resident_bytes": 1024},
    )
    return reg


def _render() -> str:
    serving = {
        "sessions": 3,
        "workers": 4,
        "active": 1,
        "draining": False,
        "uptime_s": 12.5,
        "admission": {
            "per_class": {"interactive": 1, "normal": 0, "batch": 2},
            "admitted": 9,
            "taken": 8,
            "rejected": 1,
            "peak_depth": 3,
            "max_depth": 64,
        },
    }
    return render_prometheus(_populated_registry().export(), serving=serving)


def _parse(text: str):
    """Split exposition text into comments and parsed samples per family."""
    helps: dict[str, int] = {}
    types: dict[str, str] = {}
    samples = []  # (family-line name, labels dict, value string, line no)
    for i, line in enumerate(text.rstrip("\n").split("\n")):
        if line.startswith("# HELP "):
            name = line.split(" ", 3)[2]
            helps[name] = helps.get(name, 0) + 1
            continue
        if line.startswith("# TYPE "):
            _, _, name, mtype = line.split(" ", 3)
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = mtype
            continue
        assert not line.startswith("#"), f"unknown comment line: {line}"
        m = SAMPLE_LINE.match(line)
        assert m, f"unparseable sample line: {line!r}"
        labels = dict(LABEL_PAIR.findall(m.group("labels") or ""))
        samples.append((m.group("name"), labels, m.group("value"), i))
    return helps, types, samples


class TestConformance:
    def test_metric_and_label_names_legal(self):
        helps, types, samples = _parse(_render())
        for family in types:
            assert METRIC_NAME.match(family), family
        for name, labels, _value, _i in samples:
            assert METRIC_NAME.match(name), name
            for label in labels:
                assert LABEL_NAME.match(label), label
                assert not label.startswith("__"), label

    def test_every_family_has_one_help_and_type(self):
        helps, types, samples = _parse(_render())
        assert set(helps) == set(types)
        assert all(count == 1 for count in helps.values())
        base_of = {}
        for name, _labels, _value, _i in samples:
            base = re.sub(r"_(bucket|sum|count)$", "", name)
            family = name if name in types else base
            assert family in types, f"sample {name} has no TYPE"
            base_of[name] = family

    def test_every_value_parses_as_float(self):
        _helps, _types, samples = _parse(_render())
        for _name, _labels, value, _i in samples:
            parsed = float(value)  # "+Inf"/"NaN" parse too
            assert not math.isnan(parsed) or value == "NaN"

    def test_counter_families_end_in_total(self):
        _helps, types, _samples = _parse(_render())
        for family, mtype in types.items():
            if mtype == "counter":
                assert family.endswith("_total"), family

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.counter('queries.strategy.we"ird\\enc\noding').inc()
        text = render_prometheus(reg.export())
        line = next(
            l for l in text.splitlines()
            if l.startswith("repro_queries_by_strategy_total{")
        )
        assert '\\"' in line and "\\\\" in line and "\\n" in line
        # The rendered text itself holds no raw newline inside a sample.
        assert all("\n" not in l for l in text.splitlines())

    def test_histogram_buckets_cumulative_and_closed(self):
        _helps, types, samples = _parse(_render())
        hist_families = [f for f, t in types.items() if t == "histogram"]
        assert "repro_query_wall_ms" in hist_families
        for family in hist_families:
            buckets = [
                (labels, float(value))
                for name, labels, value, _i in samples
                if name == f"{family}_bucket"
            ]
            if not buckets:  # summary-only render elsewhere
                continue
            # Group by the non-le labels.
            series: dict = {}
            for labels, value in buckets:
                key = tuple(sorted(
                    (k, v) for k, v in labels.items() if k != "le"
                ))
                series.setdefault(key, []).append((labels["le"], value))
            counts = {
                name_labels: float(value)
                for name, name_labels_d, value, _i in samples
                if name == f"{family}_count"
                for name_labels in [tuple(sorted(name_labels_d.items()))]
            }
            for key, entries in series.items():
                les = [le for le, _ in entries]
                assert les[-1] == "+Inf", f"{family}{key} not closed"
                values = [v for _, v in entries]
                assert values == sorted(values), (
                    f"{family}{key} buckets not cumulative"
                )
                numeric = [float(le) for le in les[:-1]]
                assert numeric == sorted(numeric), (
                    f"{family}{key} le bounds out of order"
                )
                assert counts[key] == values[-1], (
                    f"{family}{key} _count != +Inf bucket"
                )

    def test_rendering_is_deterministic(self):
        assert _render() == _render()

    def test_families_sorted(self):
        text = _render()
        families = [
            line.split(" ", 3)[2]
            for line in text.splitlines()
            if line.startswith("# TYPE ")
        ]
        assert families == sorted(families)

    def test_serving_stats_exposed(self):
        text = _render()
        assert 'repro_serving_queue_depth{priority="interactive"} 1' in text
        assert 'repro_serving_queue_depth{priority="batch"} 2' in text
        assert "repro_serving_rejected_total 1" in text
        assert "repro_serving_active_queries 1" in text
        assert "repro_serving_draining 0" in text
        assert "repro_serving_uptime_seconds 12.5" in text

    def test_collectors_flattened_to_gauges(self):
        text = _render()
        assert "repro_buffer_pool_hits 5" in text
        assert (
            'repro_admission_queue_depth_by_priority{priority="normal"} 1'
            in text
        )
        assert "repro_admission_queue_closed 0" in text

    def test_snapshot_fallback_renders_sum_count_only(self):
        # A plain snapshot() (no raw buckets) still renders legally.
        reg = _populated_registry()
        text = render_prometheus(reg.snapshot())
        _helps, types, samples = _parse(text)
        assert types["repro_query_wall_ms"] == "histogram"
        names = {name for name, _l, _v, _i in samples}
        assert "repro_query_wall_ms_count" in names
        assert "repro_query_wall_ms_bucket" not in names

    def test_ends_with_single_newline(self):
        text = _render()
        assert text.endswith("\n") and not text.endswith("\n\n")
