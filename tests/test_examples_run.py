"""Smoke-run the example scripts (documentation that executes)."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

FAST = ["quickstart.py", "writable_store.py", "join_strategies.py"]
HEAVY = [
    "materialization_tradeoffs.py",
    "custom_dataset.py",
    "strategy_advisor.py",
    "projection_design.py",
]


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.parametrize("name", FAST)
def test_fast_examples(name):
    proc = run_example(name)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()


@pytest.mark.parametrize("name", HEAVY)
@pytest.mark.skipif(
    not os.environ.get("REPRO_RUN_ALL_EXAMPLES"),
    reason="set REPRO_RUN_ALL_EXAMPLES=1 to smoke-run the heavier examples",
)
def test_heavy_examples(name):
    args = ("0.005",) if name in (
        "materialization_tradeoffs.py", "join_strategies.py"
    ) else ()
    proc = run_example(name, *args)
    assert proc.returncode == 0, proc.stderr[-2000:]
