"""Tests for the self-contained figure reproduction module and CLI command."""

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.reproduce import FIGURES, SWEEP, reproduce_figure


class TestReproduceFigure:
    def test_selection_figure_shape(self):
        lines = []
        table = reproduce_figure("11b", scale=0.002, out=lines.append)
        assert set(table) == {
            "em-pipelined", "em-parallel", "lm-pipelined", "lm-parallel",
        }
        for series in table.values():
            assert len(series) == len(SWEEP)
        assert any("Figure 11b" in line for line in lines)

    def test_bitvector_figure_marks_na(self):
        table = reproduce_figure("11c", scale=0.002, out=lambda _line: None)
        missing = [row for row in table["lm-pipelined"] if row[2] is None]
        assert missing  # LM-pipelined inapplicable over most of the sweep

    def test_join_figure(self):
        table = reproduce_figure("13", scale=0.002, out=lambda _line: None)
        assert set(table) == {"materialized", "multi-column", "single-column"}
        for series in table.values():
            assert all(sim is not None for _sel, _wall, sim in series)

    def test_figure_name_normalization(self):
        table = reproduce_figure("Fig12a", scale=0.002, out=lambda _l: None)
        assert "lm-parallel" in table

    def test_unknown_figure(self):
        with pytest.raises(ReproError):
            reproduce_figure("99z", out=lambda _l: None)

    def test_all_figures_registered(self):
        assert set(FIGURES) == {"11a", "11b", "11c", "12a", "12b", "12c", "13"}


class TestReproduceCLI:
    def test_cli_runs(self, capsys):
        code = main(["reproduce", "12c", "--scale", "0.002"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 12c" in out
        assert "lm-parallel" in out

    def test_cli_bad_figure(self, capsys):
        code = main(["reproduce", "nope"])
        assert code == 1
        assert "error" in capsys.readouterr().err
