"""Unit tests for the SQL front-end: lexer, parser, binder."""

import pytest

from repro.errors import SQLError
from repro.planner import JoinQuery, SelectQuery
from repro.sql import bind, parse, tokenize
from repro.sql.ast import ColumnRef, FuncCall, JoinCondition


class TestLexer:
    def test_keywords_and_idents(self):
        toks = tokenize("SELECT shipdate FROM lineitem")
        kinds = [(t.kind, t.value) for t in toks]
        assert kinds == [
            ("keyword", "SELECT"),
            ("ident", "shipdate"),
            ("keyword", "FROM"),
            ("ident", "lineitem"),
            ("eof", ""),
        ]

    def test_case_insensitive_keywords(self):
        toks = tokenize("select x from t")
        assert toks[0].value == "SELECT"

    def test_numbers(self):
        toks = tokenize("WHERE x < 42.5")
        assert ("number", "42.5") == (toks[3].kind, toks[3].value)

    def test_negative_number_after_operator(self):
        toks = tokenize("WHERE x < -5")
        assert ("number", "-5") == (toks[3].kind, toks[3].value)

    def test_string_literal(self):
        toks = tokenize("WHERE d < '1994-01-01'")
        assert ("string", "1994-01-01") == (toks[3].kind, toks[3].value)

    def test_unterminated_string(self):
        with pytest.raises(SQLError):
            tokenize("WHERE d < '1994")

    def test_two_char_operators(self):
        toks = tokenize("a <= b >= c <> d != e")
        ops = [t.value for t in toks if t.kind == "op"]
        assert ops == ["<=", ">=", "<>", "!="]

    def test_unknown_character(self):
        with pytest.raises(SQLError):
            tokenize("SELECT @x")


class TestParser:
    def test_simple_select(self):
        stmt = parse("SELECT a, b FROM t WHERE a < 5 AND b = 3")
        assert stmt.select == [ColumnRef("a"), ColumnRef("b")]
        assert stmt.tables[0].name == "t"
        assert len(stmt.comparisons) == 2
        assert stmt.comparisons[0].op == "<"

    def test_aggregate_and_group_by(self):
        stmt = parse("SELECT g, SUM(v) FROM t GROUP BY g")
        assert stmt.select[1] == FuncCall("sum", ColumnRef("v"))
        assert stmt.group_by == [ColumnRef("g")]

    def test_qualified_columns_and_aliases(self):
        stmt = parse(
            "SELECT o.shipdate, c.nationcode FROM orders o, customer c "
            "WHERE o.custkey = c.custkey"
        )
        assert stmt.tables[0].binding == "o"
        assert stmt.join == JoinCondition(
            ColumnRef("custkey", "o"), ColumnRef("custkey", "c")
        )

    def test_between_expands(self):
        stmt = parse("SELECT a FROM t WHERE a BETWEEN 3 AND 9")
        assert [(c.op, c.value) for c in stmt.comparisons] == [
            (">=", 3),
            ("<=", 9),
        ]

    def test_join_requires_equality(self):
        with pytest.raises(SQLError):
            parse("SELECT a FROM t, u WHERE t.a < u.b")

    def test_two_joins_rejected(self):
        with pytest.raises(SQLError):
            parse(
                "SELECT a FROM t, u WHERE t.a = u.a AND t.b = u.b"
            )

    def test_unknown_aggregate(self):
        with pytest.raises(SQLError):
            parse("SELECT median(x) FROM t")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLError):
            parse("SELECT a FROM t extra stuff ;")

    def test_missing_from(self):
        with pytest.raises(SQLError):
            parse("SELECT a WHERE a < 3")


class TestBinder:
    def test_binds_select_query(self, tpch_db):
        q = bind(
            parse(
                "SELECT shipdate, linenum FROM lineitem "
                "WHERE shipdate < '1994-01-01' AND linenum < 7"
            ),
            tpch_db.catalog,
        )
        assert isinstance(q, SelectQuery)
        assert q.projection == "lineitem"
        assert q.select == ("shipdate", "linenum")
        # Date literal became an int days-since-epoch.
        assert isinstance(q.predicates[0].value, int)

    def test_binds_dictionary_literal(self, tpch_db):
        q = bind(
            parse("SELECT linenum FROM lineitem WHERE returnflag = 'R'"),
            tpch_db.catalog,
        )
        assert q.predicates[0].value == 2  # code for 'R'

    def test_rejects_bad_date(self, tpch_db):
        with pytest.raises(SQLError):
            bind(
                parse("SELECT linenum FROM lineitem WHERE shipdate < 'soon'"),
                tpch_db.catalog,
            )

    def test_rejects_string_on_numeric(self, tpch_db):
        with pytest.raises(SQLError):
            bind(
                parse("SELECT linenum FROM lineitem WHERE quantity < 'five'"),
                tpch_db.catalog,
            )

    def test_binds_aggregate(self, tpch_db):
        q = bind(
            parse(
                "SELECT shipdate, SUM(linenum) FROM lineitem GROUP BY shipdate"
            ),
            tpch_db.catalog,
        )
        assert q.group_by == ("shipdate",)
        assert q.aggregates[0].output_name == "sum(linenum)"
        assert q.select == ("shipdate", "sum(linenum)")

    def test_aggregate_without_group_by_rejected(self, tpch_db):
        with pytest.raises(SQLError):
            bind(
                parse("SELECT SUM(linenum) FROM lineitem"), tpch_db.catalog
            )

    def test_stray_plain_column_rejected(self, tpch_db):
        with pytest.raises(SQLError):
            bind(
                parse(
                    "SELECT quantity, SUM(linenum) FROM lineitem "
                    "GROUP BY shipdate"
                ),
                tpch_db.catalog,
            )

    def test_binds_join_query(self, tpch_db):
        q = bind(
            parse(
                "SELECT o.shipdate, c.nationcode FROM orders o, customer c "
                "WHERE o.custkey = c.custkey AND o.custkey < 100"
            ),
            tpch_db.catalog,
        )
        assert isinstance(q, JoinQuery)
        assert q.left == "orders"
        assert q.right == "customer"
        assert q.left_select == ("shipdate",)
        assert q.right_select == ("nationcode",)
        assert q.left_predicates[0].column == "custkey"

    def test_join_side_inferred_from_predicates(self, tpch_db):
        # Tables listed in the "wrong" order: predicates on orders still make
        # it the outer side.
        q = bind(
            parse(
                "SELECT o.shipdate, c.nationcode FROM customer c, orders o "
                "WHERE c.custkey = o.custkey AND o.custkey < 100"
            ),
            tpch_db.catalog,
        )
        assert q.left == "orders"
        assert q.right == "customer"

    def test_unknown_table(self, tpch_db):
        with pytest.raises(SQLError):
            bind(parse("SELECT a FROM nope"), tpch_db.catalog)

    def test_unknown_column(self, tpch_db):
        with pytest.raises(SQLError):
            bind(parse("SELECT wat FROM lineitem"), tpch_db.catalog)

    def test_ambiguous_column(self, tpch_db):
        with pytest.raises(SQLError):
            bind(
                parse(
                    "SELECT shipdate FROM orders o, lineitem l "
                    "WHERE o.custkey = l.linenum"
                ),
                tpch_db.catalog,
            )

    def test_three_tables_rejected(self, tpch_db):
        with pytest.raises(SQLError):
            bind(
                parse("SELECT shipdate FROM orders, customer, lineitem"),
                tpch_db.catalog,
            )
