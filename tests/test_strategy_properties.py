"""Property-based test: all four strategies compute identical answers.

Hypothesis drives random predicates, encodings, and select lists over a
randomly generated (but fixed-seed) projection; every applicable strategy
must return the same multiset of result tuples as the vectorised reference.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database, Predicate, SelectQuery, Strategy
from repro.dtypes import INT32, ColumnSchema
from repro.errors import UnsupportedOperationError

from .reference import canonical, reference_select

N_ROWS = 20_000


@pytest.fixture(scope="module")
def property_db(tmp_path_factory):
    rng = np.random.default_rng(99)
    root = tmp_path_factory.mktemp("prop_db")
    db = Database(root)
    a = np.sort(rng.integers(0, 200, size=N_ROWS)).astype(np.int32)
    b = rng.integers(0, 12, size=N_ROWS).astype(np.int32)
    c = rng.integers(-50, 50, size=N_ROWS).astype(np.int32)
    db.catalog.create_projection(
        "t",
        {"a": a, "b": b, "c": c},
        schemas={
            "a": ColumnSchema("a", INT32),
            "b": ColumnSchema("b", INT32),
            "c": ColumnSchema("c", INT32),
        },
        sort_keys=["a"],
        encodings={
            "a": ["rle", "uncompressed"],
            "b": ["uncompressed", "bitvector", "rle"],
            "c": ["uncompressed"],
        },
        presorted=True,
    )
    return db


predicate_st = st.builds(
    Predicate,
    st.sampled_from(["a", "b", "c"]),
    st.sampled_from(["<", "<=", ">", ">=", "=", "!="]),
    st.integers(-60, 210),
)


@st.composite
def queries(draw):
    preds = draw(st.lists(predicate_st, min_size=0, max_size=3))
    select = draw(
        st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=3,
                 unique=True)
    )
    b_encoding = draw(st.sampled_from(["uncompressed", "bitvector", "rle"]))
    return SelectQuery(
        projection="t",
        select=tuple(select),
        predicates=tuple(preds),
        encodings=(("b", b_encoding),),
    )


@given(queries())
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_all_strategies_agree_with_reference(property_db, query):
    projection = property_db.projection("t")
    expected = canonical(
        reference_select(projection, list(query.select), list(query.predicates))
    )
    ran = 0
    for strategy in Strategy:
        try:
            result = property_db.query(query, strategy=strategy, cold=True)
        except UnsupportedOperationError:
            assert strategy is Strategy.LM_PIPELINED
            continue
        got = canonical(result.tuples.data)
        assert np.array_equal(got, expected), (strategy, query)
        ran += 1
    assert ran >= 3


@given(queries())
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_warm_cache_equals_cold_cache(property_db, query):
    cold = property_db.query(query, strategy=Strategy.LM_PARALLEL, cold=True)
    warm = property_db.query(query, strategy=Strategy.LM_PARALLEL, cold=False)
    assert np.array_equal(
        canonical(cold.tuples.data), canonical(warm.tuples.data)
    )
    # The warm run must not read more blocks than the cold one did.
    assert warm.stats.block_reads <= cold.stats.block_reads


@given(queries())
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_multicolumn_optimization_does_not_change_results(
    property_db, tmp_path_factory, query
):
    with_mc = property_db.query(query, strategy=Strategy.LM_PARALLEL, cold=True)
    property_db.use_multicolumns = False
    try:
        without_mc = property_db.query(
            query, strategy=Strategy.LM_PARALLEL, cold=True
        )
    finally:
        property_db.use_multicolumns = True
    assert np.array_equal(
        canonical(with_mc.tuples.data), canonical(without_mc.tuples.data)
    )
