"""Property-based tests for the SQL front-end.

Two invariants:

1. Robustness: arbitrary statements built from the grammar's vocabulary
   either bind cleanly or raise :class:`SQLError` — never any other
   exception (the front-end must not crash or let malformed input through).
2. Semantics: generated *well-formed* statements over the TPC-H schema
   return exactly the rows a direct numpy evaluation produces.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ReproError, SQLError
from repro.sql import bind, parse

from .reference import canonical, full_column

COLUMNS = ["shipdate", "linenum", "quantity", "returnflag"]
NUMERIC = ["linenum", "quantity", "shipdate"]
OPS = ["<", "<=", ">", ">=", "=", "!="]


@st.composite
def well_formed_statements(draw):
    """A valid single-table statement + its expected-row evaluator inputs."""
    n_select = draw(st.integers(1, 3))
    select = draw(
        st.lists(st.sampled_from(NUMERIC), min_size=n_select,
                 max_size=n_select, unique=True)
    )
    conditions = []
    for _ in range(draw(st.integers(0, 2))):
        col = draw(st.sampled_from(NUMERIC))
        op = draw(st.sampled_from(OPS))
        value = draw(st.integers(-5, 55))
        conditions.append((col, op, value))
    sql = f"SELECT {', '.join(select)} FROM lineitem"
    if conditions:
        sql += " WHERE " + " AND ".join(
            f"{c} {op} {v}" for c, op, v in conditions
        )
    return sql, select, conditions


@given(well_formed_statements())
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_generated_statements_match_reference(tpch_db, case):
    sql, select, conditions = case
    result = tpch_db.sql(sql)
    lineitem = tpch_db.projection("lineitem")
    mask = np.ones(lineitem.n_rows, dtype=bool)
    import operator

    ops = {
        "<": operator.lt, "<=": operator.le, ">": operator.gt,
        ">=": operator.ge, "=": operator.eq, "!=": operator.ne,
    }
    for col, op, value in conditions:
        mask &= ops[op](full_column(lineitem, col), value)
    expected = np.stack(
        [full_column(lineitem, c)[mask].astype(np.int64) for c in select],
        axis=1,
    )
    assert np.array_equal(canonical(result.tuples.data), canonical(expected))


# Vocabulary for the robustness fuzz: plausible-looking token soup.
_TOKENS = (
    ["SELECT", "FROM", "WHERE", "AND", "GROUP", "BY", "ORDER", "LIMIT",
     "BETWEEN", "IN", "(", ")", ",", "<", ">", "=", "<=", ">=", "!=", "."]
    + COLUMNS
    + ["lineitem", "orders", "customer", "nope", "sum", "count"]
    + ["5", "42", "-3", "'1994-01-01'", "'A'", "'zz'"]
)


@given(st.lists(st.sampled_from(_TOKENS), min_size=1, max_size=15))
@settings(
    max_examples=300,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_front_end_never_crashes(tpch_db, tokens):
    text = " ".join(tokens)
    try:
        query = bind(parse(text), tpch_db.catalog)
    except SQLError:
        return  # rejected cleanly
    # Statements that bind must also execute without internal errors.
    try:
        tpch_db.query(query, strategy="em-parallel")
    except ReproError:
        pass  # e.g. unsupported combinations surface as library errors


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "SELECT",
        "SELECT FROM lineitem",
        "SELECT linenum FROM",
        "SELECT linenum FROM lineitem WHERE",
        "SELECT linenum FROM lineitem WHERE linenum",
        "SELECT linenum FROM lineitem WHERE linenum <",
        "SELECT linenum FROM lineitem GROUP",
        "SELECT linenum FROM lineitem ORDER linenum",
        "SELECT linenum FROM lineitem LIMIT many",
        "SELECT sum(linenum FROM lineitem",
        "INSERT INTO lineitem",
    ],
)
def test_malformed_statements_rejected(tpch_db, bad):
    with pytest.raises(SQLError):
        bind(parse(bad), tpch_db.catalog)
