"""SQL detail tests: aliases on single tables, dates in BETWEEN/IN, report."""

from datetime import date

import pytest

from repro.errors import SQLError

from .reference import full_column


class TestSingleTableAliases:
    def test_alias_qualified_columns(self, tpch_db):
        r = tpch_db.sql(
            "SELECT l.linenum FROM lineitem l WHERE l.linenum < 3"
        )
        lin = full_column(tpch_db.projection("lineitem"), "linenum")
        assert r.n_rows == int((lin < 3).sum())

    def test_table_name_as_qualifier(self, tpch_db):
        r = tpch_db.sql(
            "SELECT lineitem.linenum FROM lineitem "
            "WHERE lineitem.linenum = 7"
        )
        assert r.n_rows > 0

    def test_unknown_qualifier_rejected(self, tpch_db):
        with pytest.raises(SQLError):
            tpch_db.sql("SELECT x.linenum FROM lineitem l WHERE x.linenum < 3")


class TestDateLiterals:
    def test_between_dates(self, tpch_db):
        lineitem = tpch_db.projection("lineitem")
        ship = full_column(lineitem, "shipdate")
        from repro.dtypes import date_to_int

        lo = date_to_int(date(1993, 1, 1))
        hi = date_to_int(date(1994, 12, 31))
        r = tpch_db.sql(
            "SELECT shipdate FROM lineitem "
            "WHERE shipdate BETWEEN '1993-01-01' AND '1994-12-31'"
        )
        assert r.n_rows == int(((ship >= lo) & (ship <= hi)).sum())
        decoded = {d for (d,) in r.decoded_rows()}
        assert min(decoded) >= date(1993, 1, 1)
        assert max(decoded) <= date(1994, 12, 31)

    def test_in_dates(self, tpch_db):
        lineitem = tpch_db.projection("lineitem")
        ship = full_column(lineitem, "shipdate")
        from repro.dtypes import date_to_int

        targets = [date(1995, 6, 1), date(1995, 6, 2)]
        encoded = [date_to_int(d) for d in targets]
        r = tpch_db.sql(
            "SELECT shipdate FROM lineitem "
            "WHERE shipdate IN ('1995-06-01', '1995-06-02')"
        )
        import numpy as np

        assert r.n_rows == int(np.isin(ship, encoded).sum())

    def test_equality_on_date(self, tpch_db):
        r = tpch_db.sql(
            "SELECT shipdate FROM lineitem WHERE shipdate = '1995-06-01'"
        )
        assert all(d == date(1995, 6, 1) for (d,) in r.decoded_rows())


class TestQueryReport:
    def test_report_contains_key_facts(self, tpch_db):
        r = tpch_db.sql(
            "SELECT linenum FROM lineitem WHERE linenum < 3",
            strategy="lm-parallel",
            cold=True,
        )
        text = r.report()
        assert "strategy       lm-parallel" in text
        assert f"rows           {r.n_rows}" in text
        assert "model replay" in text
        assert "block reads" in text

    def test_report_includes_trace_when_enabled(self, tpch_db):
        from repro import Predicate, SelectQuery

        q = SelectQuery(
            projection="lineitem",
            select=("linenum",),
            predicates=(Predicate("linenum", "<", 3),),
        )
        r = tpch_db.query(q, strategy="lm-parallel", trace=True, cold=True)
        text = r.report()
        assert "operators:" in text
        assert "DS1" in text
