"""Unit tests for the three position-set representations."""

import numpy as np
import pytest

from repro.positions import (
    BitmapPositions,
    ListedPositions,
    RangePositions,
    from_mask,
    intersect_all,
    union_all,
)


def make_range():
    return RangePositions(10, 20)


def make_listed():
    return ListedPositions(np.array([3, 11, 12, 18, 40], dtype=np.int64))


def make_bitmap():
    mask = np.zeros(30, dtype=bool)
    mask[[1, 11, 12, 19, 25]] = True
    return BitmapPositions.from_mask(5, mask)  # positions 6, 16, 17, 24, 30


class TestRangePositions:
    def test_count_and_bounds(self):
        r = make_range()
        assert r.count() == 10
        assert r.bounds() == (10, 19)

    def test_empty(self):
        r = RangePositions(5, 5)
        assert r.is_empty()
        assert r.bounds() is None
        assert not r

    def test_negative_extent_clamped(self):
        assert RangePositions(9, 3).is_empty()

    def test_to_array(self):
        assert make_range().to_array().tolist() == list(range(10, 20))

    def test_mask_window(self):
        mask = make_range().to_mask(8, 14)
        assert mask.tolist() == [False, False, True, True, True, True]

    def test_contains(self):
        r = make_range()
        assert r.contains(10)
        assert r.contains(19)
        assert not r.contains(20)

    def test_restrict(self):
        r = make_range().restrict(15, 100)
        assert (r.start, r.stop) == (15, 20)

    def test_runs(self):
        assert list(make_range().runs()) == [(10, 20)]

    def test_range_range_intersection(self):
        out = make_range().intersect(RangePositions(15, 30))
        assert isinstance(out, RangePositions)
        assert (out.start, out.stop) == (15, 20)

    def test_range_union_adjacent_merges(self):
        out = RangePositions(0, 5).union(RangePositions(5, 9))
        assert isinstance(out, RangePositions)
        assert (out.start, out.stop) == (0, 9)

    def test_range_union_disjoint(self):
        out = RangePositions(0, 2).union(RangePositions(10, 12))
        assert sorted(out.to_array().tolist()) == [0, 1, 10, 11]


class TestListedPositions:
    def test_dedup_and_sort(self):
        lp = ListedPositions(np.array([5, 1, 5, 3]))
        assert lp.to_array().tolist() == [1, 3, 5]

    def test_count_bounds(self):
        lp = make_listed()
        assert lp.count() == 5
        assert lp.bounds() == (3, 40)

    def test_contains(self):
        lp = make_listed()
        assert lp.contains(11)
        assert not lp.contains(10)

    def test_restrict(self):
        assert make_listed().restrict(11, 19).to_array().tolist() == [11, 12, 18]

    def test_runs(self):
        assert list(make_listed().runs()) == [(3, 4), (11, 13), (18, 19), (40, 41)]

    def test_mask(self):
        mask = make_listed().to_mask(10, 14)
        assert mask.tolist() == [False, True, True, False]

    def test_intersect_with_range(self):
        out = make_listed().intersect(make_range())
        assert out.to_array().tolist() == [11, 12, 18]


class TestBitmapPositions:
    def test_count(self):
        assert make_bitmap().count() == 5

    def test_to_array(self):
        assert make_bitmap().to_array().tolist() == [6, 16, 17, 24, 30]

    def test_bounds(self):
        assert make_bitmap().bounds() == (6, 30)

    def test_contains(self):
        bm = make_bitmap()
        assert bm.contains(16)
        assert not bm.contains(15)
        assert not bm.contains(1000)

    def test_word_count_validation(self):
        with pytest.raises(ValueError):
            BitmapPositions(0, 100, np.zeros(1, dtype=np.uint64))

    def test_mask_roundtrip(self):
        mask = np.random.default_rng(0).random(200) < 0.3
        bm = BitmapPositions.from_mask(1000, mask)
        assert np.array_equal(bm.local_mask(), mask)

    def test_aligned_intersection_is_wordwise(self):
        rng = np.random.default_rng(1)
        m1 = rng.random(128) < 0.5
        m2 = rng.random(128) < 0.5
        a = BitmapPositions.from_mask(0, m1)
        b = BitmapPositions.from_mask(0, m2)
        out = a.intersect(b)
        assert isinstance(out, BitmapPositions)
        assert np.array_equal(out.local_mask(), m1 & m2)

    def test_unaligned_intersection(self):
        a = BitmapPositions.from_mask(0, np.ones(10, dtype=bool))
        b = BitmapPositions.from_mask(5, np.ones(10, dtype=bool))
        assert a.intersect(b).to_array().tolist() == [5, 6, 7, 8, 9]

    def test_restrict(self):
        out = make_bitmap().restrict(16, 25)
        assert out.to_array().tolist() == [16, 17, 24]

    def test_union_aligned(self):
        a = BitmapPositions.from_mask(0, np.array([1, 0, 0, 1], dtype=bool))
        b = BitmapPositions.from_mask(0, np.array([0, 1, 0, 1], dtype=bool))
        assert a.union(b).to_array().tolist() == [0, 1, 3]


class TestMixedAlgebra:
    def test_range_bitmap_intersection_is_restriction(self):
        out = make_range().intersect(make_bitmap())
        assert sorted(out.to_array().tolist()) == [16, 17]

    def test_listed_bitmap_intersection(self):
        lp = ListedPositions(np.array([6, 7, 24, 99]))
        out = lp.intersect(make_bitmap())
        assert out.to_array().tolist() == [6, 24]

    def test_intersect_all_matches_set_semantics(self):
        sets = [make_range(), make_listed(),
                BitmapPositions.from_mask(0, np.ones(50, dtype=bool))]
        expected = (
            set(make_range().to_array().tolist())
            & set(make_listed().to_array().tolist())
            & set(range(50))
        )
        out = intersect_all(sets)
        assert set(out.to_array().tolist()) == expected

    def test_intersect_all_requires_input(self):
        with pytest.raises(ValueError):
            intersect_all([])

    def test_union_all_bitmaps_wordwise(self):
        a = BitmapPositions.from_mask(0, np.array([1, 0, 1, 0], dtype=bool))
        b = BitmapPositions.from_mask(0, np.array([0, 0, 1, 1], dtype=bool))
        out = union_all([a, b])
        assert isinstance(out, BitmapPositions)
        assert out.to_array().tolist() == [0, 2, 3]

    def test_empty_intersection(self):
        out = RangePositions(0, 5).intersect(RangePositions(10, 20))
        assert out.is_empty()
        assert out.count() == 0


class TestFromMask:
    def test_contiguous_becomes_range(self):
        mask = np.zeros(100, dtype=bool)
        mask[20:40] = True
        out = from_mask(1000, mask)
        assert isinstance(out, RangePositions)
        assert (out.start, out.stop) == (1020, 1040)

    def test_all_false_is_empty(self):
        out = from_mask(0, np.zeros(10, dtype=bool))
        assert out.is_empty()

    def test_sparse_becomes_listed(self):
        mask = np.zeros(10_000, dtype=bool)
        mask[[5, 9000]] = True
        out = from_mask(0, mask)
        assert isinstance(out, ListedPositions)

    def test_dense_becomes_bitmap(self):
        rng = np.random.default_rng(3)
        mask = rng.random(1000) < 0.5
        mask[0] = True
        mask[2] = False  # ensure not contiguous
        out = from_mask(0, mask)
        assert isinstance(out, BitmapPositions)
        assert np.array_equal(out.to_mask(0, 1000), mask)
