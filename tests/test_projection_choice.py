"""Tests for anchor tables and model-driven projection selection."""

import numpy as np
import pytest

from repro import Database, Predicate, SelectQuery
from repro.dtypes import INT32, INT64, ColumnSchema
from repro.errors import CatalogError
from repro.planner.projection_choice import (
    covering_candidates,
    resolve_join_side,
    resolve_projection,
)

from .reference import canonical, reference_select


@pytest.fixture(scope="module")
def anchored_db(tmp_path_factory):
    """One logical table 'events' stored as two differently-sorted projections."""
    rng = np.random.default_rng(55)
    n = 50_000
    ts = rng.integers(0, 10_000, size=n).astype(np.int64)
    user = rng.integers(0, 500, size=n).astype(np.int32)
    action = rng.integers(0, 8, size=n).astype(np.int32)
    schemas = {
        "ts": ColumnSchema("ts", INT64),
        "user": ColumnSchema("user", INT32),
        "action": ColumnSchema("action", INT32),
    }
    db = Database(tmp_path_factory.mktemp("anchored"))
    db.catalog.create_projection(
        "events_by_time",
        {"ts": ts, "user": user, "action": action},
        schemas=schemas,
        sort_keys=["ts"],
        encodings={"ts": ["rle"], "user": ["uncompressed"],
                   "action": ["uncompressed"]},
        anchor="events",
    )
    db.catalog.create_projection(
        "events_by_user",
        {"ts": ts, "user": user, "action": action},
        schemas=schemas,
        sort_keys=["user", "ts"],
        encodings={"user": ["rle"], "ts": ["uncompressed"],
                   "action": ["uncompressed"]},
        anchor="events",
    )
    return db


class TestCatalogAnchors:
    def test_candidates_by_anchor(self, anchored_db):
        names = {p.name for p in anchored_db.catalog.candidates("events")}
        assert names == {"events_by_time", "events_by_user"}

    def test_candidates_by_direct_name(self, anchored_db):
        names = [p.name for p in anchored_db.catalog.candidates("events_by_time")]
        assert names == ["events_by_time"]

    def test_has(self, anchored_db):
        assert anchored_db.catalog.has("events")
        assert anchored_db.catalog.has("events_by_user")
        assert not anchored_db.catalog.has("nonsense")

    def test_anchor_survives_reopen(self, anchored_db):
        from repro.storage.catalog import Catalog

        reopened = Catalog(anchored_db.catalog.root)
        assert len(reopened.candidates("events")) == 2


class TestResolution:
    def test_time_predicate_picks_time_sorted(self, anchored_db):
        query = SelectQuery(
            projection="events",
            select=("ts", "action"),
            predicates=(Predicate("ts", "<", 500),),
        )
        chosen = resolve_projection(anchored_db.catalog, query)
        assert chosen.name == "events_by_time"

    def test_user_predicate_picks_user_sorted(self, anchored_db):
        query = SelectQuery(
            projection="events",
            select=("user", "action"),
            predicates=(Predicate("user", "=", 42),),
        )
        chosen = resolve_projection(anchored_db.catalog, query)
        assert chosen.name == "events_by_user"

    def test_direct_name_bypasses_choice(self, anchored_db):
        query = SelectQuery(
            projection="events_by_time",
            select=("user",),
            predicates=(Predicate("user", "=", 42),),
        )
        assert (
            resolve_projection(anchored_db.catalog, query).name
            == "events_by_time"
        )

    def test_unknown_table(self, anchored_db):
        query = SelectQuery(projection="ghost", select=("x",))
        with pytest.raises(CatalogError):
            covering_candidates(anchored_db.catalog, query)

    def test_uncovered_columns(self, anchored_db):
        query = SelectQuery(projection="events", select=("ts", "missing"))
        with pytest.raises(CatalogError):
            covering_candidates(anchored_db.catalog, query)

    def test_join_side_resolution(self, anchored_db):
        proj = resolve_join_side(anchored_db.catalog, "events", ["ts", "user"])
        assert proj.anchor == "events"
        with pytest.raises(CatalogError):
            resolve_join_side(anchored_db.catalog, "events", ["nope"])


class TestEndToEnd:
    def test_query_against_anchor_correct(self, anchored_db):
        query = SelectQuery(
            projection="events",
            select=("ts", "user"),
            predicates=(Predicate("user", "=", 7),),
        )
        result = anchored_db.query(query, strategy="lm-parallel", cold=True)
        chosen = resolve_projection(anchored_db.catalog, query)
        expected = reference_select(chosen, ["ts", "user"], list(query.predicates))
        assert np.array_equal(canonical(result.tuples.data), canonical(expected))

    def test_sql_against_anchor(self, anchored_db):
        r = anchored_db.sql(
            "SELECT user, COUNT(user) FROM events WHERE ts < 100 GROUP BY user"
        )
        assert r.n_rows > 0

    def test_both_projections_agree(self, anchored_db):
        predicates = (Predicate("action", "=", 3),)
        results = []
        for name in ("events_by_time", "events_by_user"):
            query = SelectQuery(
                projection=name,
                select=("ts", "user", "action"),
                predicates=predicates,
            )
            r = anchored_db.query(query, strategy="em-parallel", cold=True)
            results.append(canonical(r.tuples.data))
        assert np.array_equal(results[0], results[1])
