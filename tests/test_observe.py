"""Unit tests for the span tree and tracer (repro.observe)."""

import pytest

from repro import PAPER_CONSTANTS, Predicate, SelectQuery, Strategy
from repro.metrics import QueryStats
from repro.model.cost import replay_breakdown, simulated_time_ms
from repro.observe import Span, SpanTracer


def make_tracer():
    """A tracer over a fake monotonic clock (1 ms per tick)."""
    stats = QueryStats()
    ticks = iter(range(1000))

    def clock():
        return next(ticks) * 0.001

    return stats, SpanTracer(stats, clock=clock)


class TestSpanTracer:
    def test_nesting_and_timing(self):
        stats, tracer = make_tracer()
        outer = tracer.begin("A")
        stats.function_calls += 10
        inner = tracer.begin("B")
        stats.function_calls += 5
        tracer.end(inner, rows=1)
        tracer.end(outer, rows=2)
        root = tracer.finish()
        assert [c.name for c in root.children] == ["A"]
        assert [c.name for c in root.children[0].children] == ["B"]
        assert outer.stats.function_calls == 15  # cumulative
        assert outer.self_stats().function_calls == 10  # exclusive
        assert inner.wall_ms > 0
        assert root.status == "ok"

    def test_out_of_order_close_raises(self):
        _stats, tracer = make_tracer()
        a = tracer.begin("A")
        tracer.begin("B")
        with pytest.raises(RuntimeError):
            tracer.end(a)

    def test_finish_truncates_open_spans(self):
        stats, tracer = make_tracer()
        tracer.begin("A")
        tracer.begin("B")
        root = tracer.finish(error=ValueError("boom"))
        assert root.open_spans() == []
        assert root.status == "error"
        assert root.detail["error"] == "ValueError"
        a = root.children[0]
        assert a.status == "error"
        assert a.detail["error"] == "ValueError"

    def test_extra_counters_attributed(self):
        stats, tracer = make_tracer()
        span = tracer.begin("JOIN")
        stats.extra["join_matches"] = 7
        tracer.end(span)
        assert span.stats.extra == {"join_matches": 7}

    def test_adopt_grafts_leaf_children(self):
        _stats, parent = make_tracer()
        leaf_stats, leaf = make_tracer()
        s = leaf.begin("DS1")
        leaf_stats.values_scanned += 3
        leaf.end(s, positions=3)
        parent.adopt(leaf)
        assert [c.name for c in parent.root.children] == ["DS1"]

    def test_adopt_with_error_closes_leaf_spans(self):
        _stats, parent = make_tracer()
        _leaf_stats, leaf = make_tracer()
        leaf.begin("DS1")  # never closed: the leaf task raised
        parent.adopt(leaf, error=OSError("disk"))
        ds1 = parent.root.children[0]
        assert ds1.status == "error"
        assert ds1.detail["error"] == "OSError"


class TestSpan:
    def test_rows_out_probes_detail_keys(self):
        assert Span("X", detail={"tuples": 4}).rows_out == 4
        assert Span("X", detail={"positions_out": 2}).rows_out == 2
        assert Span("X").rows_out is None

    def test_events_children_before_parents(self):
        root = Span("query")
        a = Span("A")
        a.children.append(Span("B"))
        root.children.append(a)
        assert [name for name, _ in root.events()] == ["B", "A"]

    def test_find_and_walk(self):
        root = Span("query")
        root.children = [Span("DS1"), Span("DS1"), Span("AND")]
        assert len(root.find("DS1")) == 2
        assert len(list(root.walk())) == 4

    def test_to_dict_is_json_safe(self):
        import json

        import numpy as np

        span = Span("X", detail={"n": np.int64(3), "cols": ("a", "b")})
        span.stats.block_reads = 1
        encoded = json.dumps(span.to_dict(PAPER_CONSTANTS))
        decoded = json.loads(encoded)
        assert decoded["detail"]["n"] == 3
        assert decoded["counters"]["block_reads"] == 1
        assert "self_simulated_ms" in decoded


class TestReplayBreakdown:
    def test_terms_sum_to_simulated_time(self):
        stats = QueryStats(
            block_iterations=10,
            column_iterations=100,
            tuple_iterations=20,
            function_calls=50,
            simulated_io_us=123.0,
        )
        parts = replay_breakdown(stats, PAPER_CONSTANTS)
        assert sum(parts.values()) == pytest.approx(
            simulated_time_ms(stats, PAPER_CONSTANTS)
        )


class TestQueryResultSpans:
    QUERY = SelectQuery(
        projection="lineitem",
        select=("shipdate", "linenum"),
        predicates=(
            Predicate("shipdate", "<", 8800),
            Predicate("linenum", "<", 7),
        ),
    )

    def test_span_tree_shape_lm_parallel(self, tpch_db):
        r = tpch_db.query(self.QUERY, strategy=Strategy.LM_PARALLEL, trace=True)
        root = r.spans
        assert root.name == "query"
        assert root.detail["strategy"] == "lm-parallel"
        names = [c.name for c in root.children]
        assert names == ["DS1", "DS1", "AND", "DS3", "DS3", "MERGE", "OUTPUT"]
        assert all(s.status == "ok" for s in root.walk())

    def test_self_times_sum_to_query_total(self, tpch_db):
        for strategy in Strategy:
            r = tpch_db.query(self.QUERY, strategy=strategy, trace=True)
            total = sum(
                s.self_simulated_ms(tpch_db.constants) for s in r.spans.walk()
            )
            assert total == pytest.approx(r.simulated_ms, rel=1e-9)

    def test_untraced_query_has_no_spans(self, tpch_db):
        r = tpch_db.query(self.QUERY)
        assert r.spans is None
        assert r.trace is None

    def test_explain_analyze_report(self, tpch_db):
        report = tpch_db.explain(
            self.QUERY, analyze=True, strategy="lm-parallel"
        )
        assert report["strategy"] == "lm-parallel"
        assert report["rows"] == report["root"].find("OUTPUT")[0].rows_out
        assert "+- DS1" in report["text"]
        assert "sim=" in report["text"] and "self=" in report["text"]
        assert report["json"]["operator"] == "query"

    def test_parallel_leaves_adopted_deterministically(self, tmp_path):
        from repro import Database, load_tpch

        with Database(tmp_path / "db", parallel_scans=4) as db:
            load_tpch(db.catalog, scale=0.002, seed=7)
            trees = []
            for _ in range(3):
                r = db.query(
                    self.QUERY, strategy=Strategy.LM_PARALLEL, trace=True
                )
                trees.append(
                    [(c.name, c.detail.get("column")) for c in r.spans.children]
                )
            assert trees[0] == trees[1] == trees[2]
            assert trees[0][:2] == [("DS1", "shipdate"), ("DS1", "linenum")]
