"""Differential suite: all strategies must agree on random queries.

The seed is fixed (overridable via ``REPRO_DIFF_SEED``) so CI runs are
reproducible; a failure report includes the generating seed and the first
diverging row.
"""

from __future__ import annotations

import os

import pytest

from repro import Strategy

from .differential import (
    QueryGenerator,
    check_span_invariants,
    run_compressed_differential,
    run_differential,
    run_fault_differential,
    run_partition_differential,
    run_write_differential,
)

#: Stored linenum encodings for the compressed axis: the defaults plus
#: dictionary and FOR, so every compressed kernel actually fires during the
#: sweep (the stock fixture stores neither).
KERNEL_LINENUM_ENCODINGS = (
    "uncompressed",
    "rle",
    "bitvector",
    "dictionary",
    "for",
)

SEED = int(os.environ.get("REPRO_DIFF_SEED", "20260806"))

#: Fault-schedule seed for the CI fault matrix (varied run-over-run there).
FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "7"))


@pytest.fixture(scope="module")
def report(tpch_db):
    """One shared sweep: 60 queries x 4 strategies (>= 200 runs)."""
    return run_differential(tpch_db, n_queries=60, seed=SEED)


class TestDifferentialStrategies:
    def test_all_strategies_agree(self, report):
        assert report.mismatches == [], (
            f"seed={SEED}: {len(report.mismatches)} strategy divergences, "
            f"first: {report.mismatches[:1]}"
        )

    def test_sweep_is_substantial(self, report):
        assert report.queries == 60
        assert report.runs >= 200, (
            f"only {report.runs} runs ({report.skipped} skipped); the sweep "
            "must exercise at least 200 query executions"
        )

    def test_encoding_overrides_exercised(self, report):
        # The generator must actually vary physical encodings, otherwise the
        # sweep silently degrades to default-encoding-only coverage.
        assert len(report.encodings_used) >= 2, report.encodings_used

    def test_skips_are_the_known_limitation_only(self, tpch_db):
        # Every skip must come from LM-pipelined (bit-vector position
        # filtering); any other strategy skipping means lost coverage.
        gen = QueryGenerator(tpch_db, seed=SEED + 1)
        from repro.errors import UnsupportedOperationError

        for _ in range(20):
            query = gen.next_query()
            for strategy in Strategy:
                try:
                    tpch_db.query(query, strategy=strategy, trace=True)
                except UnsupportedOperationError:
                    assert strategy is Strategy.LM_PIPELINED

    def test_span_invariants_under_parallel_scans(self, tmp_path):
        # The invariants hold when scheduler-parallelised leaves are adopted
        # into the tree too.
        from repro import Database, load_tpch

        with Database(tmp_path / "db", parallel_scans=2) as db:
            load_tpch(db.catalog, scale=0.002, seed=7)
            gen = QueryGenerator(db, seed=SEED)
            for _ in range(10):
                query = gen.next_query()
                for strategy in (Strategy.LM_PARALLEL, Strategy.EM_PARALLEL):
                    result = db.query(query, strategy=strategy, trace=True)
                    check_span_invariants(result, db.constants)


@pytest.fixture(scope="module")
def partitioned_pair(tmp_path_factory):
    """The same logical lineitem data, unpartitioned and 4-way partitioned."""
    from repro import Database, load_tpch

    root = tmp_path_factory.mktemp("diff_partitioned")
    plain = Database(root / "plain")
    load_tpch(plain.catalog, scale=0.002, seed=7)
    partitioned = Database(root / "partitioned")
    load_tpch(partitioned.catalog, scale=0.002, seed=7, partitions=4)
    return plain, partitioned


@pytest.fixture(scope="module")
def partition_report(partitioned_pair):
    """One shared partitioned sweep: 30 queries x 4 strategies x 2 layouts."""
    plain, partitioned = partitioned_pair
    return run_partition_differential(
        plain, partitioned, n_queries=30, seed=SEED
    )


class TestPartitionedDifferential:
    """Range partitioning + zone-map pruning must be invisible to results."""

    def test_partitioned_matches_unpartitioned(self, partition_report):
        assert partition_report.mismatches == [], (
            f"seed={SEED}: {len(partition_report.mismatches)} partitioned/"
            f"unpartitioned divergences, "
            f"first: {partition_report.mismatches[:1]}"
        )

    def test_partitioned_sweep_is_substantial(self, partition_report):
        # 30 queries x 4 strategies x 2 layouts = 240 potential runs; the
        # known LM-pipelined/bit-vector skips must leave >= 200 executions.
        assert partition_report.queries == 30
        assert partition_report.runs >= 200, (
            f"only {partition_report.runs} runs "
            f"({partition_report.skipped} skipped)"
        )

    def test_partitioned_encoding_overrides_exercised(self, partition_report):
        assert len(partition_report.encodings_used) >= 2, (
            partition_report.encodings_used
        )

    def test_partitioned_axis_under_parallel_scans(self, tmp_path):
        # Partition fan-out through the scan scheduler: results and span
        # invariants must match a fresh serial unpartitioned database.
        from repro import Database, load_tpch

        root = tmp_path
        plain = Database(root / "plain")
        load_tpch(plain.catalog, scale=0.002, seed=7)
        with Database(root / "partitioned", parallel_scans=2) as partitioned:
            load_tpch(partitioned.catalog, scale=0.002, seed=7, partitions=4)
            report = run_partition_differential(
                plain, partitioned, n_queries=8, seed=SEED + 2
            )
        assert report.mismatches == [], report.mismatches[:1]
        assert report.runs >= 48


@pytest.fixture(scope="module")
def compressed_pair(tmp_path_factory):
    """The same stored data with compressed execution on and off."""
    from repro import Database, load_tpch

    root = tmp_path_factory.mktemp("diff_compressed")
    compressed = Database(root / "db")
    load_tpch(
        compressed.catalog,
        scale=0.002,
        seed=7,
        linenum_encodings=KERNEL_LINENUM_ENCODINGS,
    )
    plain = Database(root / "db", compressed_execution=False)
    yield compressed, plain
    plain.close()
    compressed.close()


@pytest.fixture(scope="module")
def compressed_report(compressed_pair):
    """One shared compressed sweep: 30 queries x 4 strategies x on/off."""
    compressed, plain = compressed_pair
    return run_compressed_differential(
        compressed, plain, n_queries=30, seed=SEED
    )


class TestCompressedDifferential:
    """Encoded-domain kernels + run-list positions must be invisible."""

    def test_compressed_matches_plain(self, compressed_report):
        assert compressed_report.mismatches == [], (
            f"seed={SEED}: {len(compressed_report.mismatches)} compressed/"
            f"plain divergences, first: {compressed_report.mismatches[:1]}"
        )

    def test_compressed_sweep_is_substantial(self, compressed_report):
        # 30 queries x 4 strategies x 2 databases = 240 potential runs; the
        # known LM-pipelined/bit-vector skips must leave >= 200 executions.
        assert compressed_report.queries == 30
        assert compressed_report.runs >= 200, (
            f"only {compressed_report.runs} runs "
            f"({compressed_report.skipped} skipped)"
        )

    def test_kernels_actually_fired(self, compressed_report):
        # Without this the axis could silently degrade to a decoded-path
        # re-run (e.g. every block morphing at this seed).
        assert compressed_report.compressed_scans > 0

    def test_kernel_encodings_exercised(self, compressed_report):
        assert len(compressed_report.encodings_used) >= 2, (
            compressed_report.encodings_used
        )

    def test_compressed_axis_under_parallel_scans(self, tmp_path):
        # Kernel dispatch is a pure function of the block payload and the
        # predicate, so scheduler-parallelised compressed scans must match a
        # serial compressed-off database row for row.
        from repro import Database, load_tpch

        plain = Database(tmp_path / "plain", compressed_execution=False)
        load_tpch(
            plain.catalog,
            scale=0.002,
            seed=7,
            linenum_encodings=KERNEL_LINENUM_ENCODINGS,
        )
        with Database(tmp_path / "plain", parallel_scans=2) as compressed:
            report = run_compressed_differential(
                compressed, plain, n_queries=8, seed=SEED + 3
            )
        plain.close()
        assert report.mismatches == [], report.mismatches[:1]
        assert report.runs >= 48
        assert report.compressed_scans > 0

    def test_compressed_axis_under_faults(self, tmp_path):
        # The fault axis composes with compressed execution: a transient
        # fault schedule over a kernel-scanning database must still match
        # the clean compressed-off rows exactly.
        from repro import (
            Database,
            FaultInjector,
            FaultRule,
            RetryPolicy,
            load_tpch,
        )

        clean = Database(tmp_path / "db", compressed_execution=False)
        load_tpch(
            clean.catalog,
            scale=0.002,
            seed=7,
            linenum_encodings=KERNEL_LINENUM_ENCODINGS,
        )
        injector = FaultInjector(
            [FaultRule(kind="transient", probability=0.3, times=2)],
            seed=FAULT_SEED,
        )
        with Database(
            tmp_path / "db",
            fault_injector=injector,
            retry=RetryPolicy(attempts=4, backoff_us=100.0),
        ) as faulted:
            report = run_fault_differential(
                clean, faulted, n_queries=10, seed=SEED + 4
            )
        clean.close()
        assert report.mismatches == [], report.mismatches[:1]
        assert report.retries > 0


@pytest.fixture(scope="module")
def fault_pair(tmp_path_factory):
    """The same stored data served clean and through a transient-fault
    schedule with retries enabled (and the scan scheduler on)."""
    from repro import Database, FaultInjector, FaultRule, RetryPolicy, load_tpch

    root = tmp_path_factory.mktemp("diff_faults")
    clean = Database(root / "db")
    load_tpch(clean.catalog, scale=0.002, seed=7)
    injector = FaultInjector(
        [
            # Fails fewer attempts (2) than the retry budget grants (4), so
            # every selected block eventually recovers.
            FaultRule(kind="transient", probability=0.3, times=2),
            FaultRule(kind="slow", probability=0.1, latency_us=200.0),
        ],
        seed=FAULT_SEED,
    )
    faulted = Database(
        root / "db",
        fault_injector=injector,
        retry=RetryPolicy(attempts=4, backoff_us=100.0),
        parallel_scans=2,
    )
    yield clean, faulted
    faulted.close()
    clean.close()


@pytest.fixture(scope="module")
def fault_report(fault_pair):
    """One shared fault sweep: 60 queries x 4 strategies, all cold."""
    clean, faulted = fault_pair
    return run_fault_differential(clean, faulted, n_queries=60, seed=SEED)


class TestFaultDifferential:
    """Seeded transient faults + retries must be invisible to results."""

    def test_faulted_matches_clean(self, fault_report):
        assert fault_report.mismatches == [], (
            f"diff_seed={SEED} fault_seed={FAULT_SEED}: "
            f"{len(fault_report.mismatches)} faulted/clean divergences, "
            f"first: {fault_report.mismatches[:1]}"
        )

    def test_fault_sweep_is_substantial(self, fault_report):
        assert fault_report.queries == 60
        assert fault_report.runs >= 200, (
            f"only {fault_report.runs} runs ({fault_report.skipped} skipped);"
            " the fault sweep must exercise at least 200 query executions"
        )

    def test_faults_actually_fired(self, fault_report, fault_pair):
        # Without this the axis could silently degrade to a clean re-run
        # (e.g. an injector that never selects a block at this seed).
        _clean, faulted = fault_pair
        assert fault_report.retries > 0
        # The pool saw every retry the sweep counted (tallies survive the
        # per-run injector resets).
        assert faulted.pool.total_retries >= fault_report.retries


@pytest.fixture(scope="module")
def write_pair(tmp_path_factory):
    """The same logical data twice, for the merged-vs-pending write axis."""
    from repro import Database, MetricsRegistry, load_tpch

    root = tmp_path_factory.mktemp("diff_write")
    merged = Database(root / "merged", metrics=MetricsRegistry())
    load_tpch(merged.catalog, scale=0.002, seed=7)
    pending = Database(root / "pending", metrics=MetricsRegistry())
    load_tpch(pending.catalog, scale=0.002, seed=7)
    return merged, pending


@pytest.fixture(scope="module")
def write_report(write_pair):
    """One shared write sweep: 30 queries x 4 strategies x 2 databases."""
    merged, pending = write_pair
    return run_write_differential(merged, pending, n_queries=30, seed=SEED)


class TestWriteDifferential:
    """Updates/deletes must read identically merged or pending."""

    def test_pending_matches_merged(self, write_report):
        assert write_report.mismatches == [], (
            f"seed={SEED}: {len(write_report.mismatches)} merged/pending "
            f"divergences, first: {write_report.mismatches[:1]}"
        )

    def test_write_sweep_is_substantial(self, write_report):
        # 30 queries x 4 strategies x 2 databases = 240 potential runs;
        # the known LM-pipelined/bit-vector skips must leave >= 200.
        assert write_report.queries == 30
        assert write_report.runs >= 200, (
            f"only {write_report.runs} runs "
            f"({write_report.skipped} skipped)"
        )

    def test_write_encoding_overrides_exercised(self, write_report):
        assert len(write_report.encodings_used) >= 2, (
            write_report.encodings_used
        )

    def test_write_axis_under_parallel_scans(self, tmp_path):
        # The merge-on-read stitch path must also hold with partitioned
        # storage fanning out through the scan scheduler.
        from repro import Database, MetricsRegistry, load_tpch

        merged = Database(tmp_path / "merged", metrics=MetricsRegistry())
        load_tpch(merged.catalog, scale=0.002, seed=7, partitions=4)
        with Database(
            tmp_path / "pending", parallel_scans=2, metrics=MetricsRegistry()
        ) as pending:
            load_tpch(pending.catalog, scale=0.002, seed=7, partitions=4)
            report = run_write_differential(
                merged, pending, n_queries=8, seed=SEED + 2
            )
        assert report.mismatches == [], report.mismatches[:1]
        assert report.runs >= 48
