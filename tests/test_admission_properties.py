"""Property tests for the admission queue and the cancellation contract.

Two Hypothesis suites:

* The :class:`~repro.serving.AdmissionQueue` is checked against a
  reference model (one plain deque per priority class) over arbitrary
  offer/take/close interleavings — depth never exceeds the bound, strict
  priority across classes, FIFO within a class, and the lifetime tallies
  stay consistent.
* The cancellation contract is checked by tripping a counting
  :class:`~repro.cancel.CancelToken` after an arbitrary number of block
  accesses mid-query: execution either completes with exactly the
  reference rows or raises :class:`~repro.errors.QueryCancelledError`
  carrying a closed (no open spans) truncated span tree — never a partial
  result, never a half-open trace.
"""

from __future__ import annotations

from collections import deque

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    CancelToken,
    Database,
    QueryCancelledError,
    QueryTimeoutError,
    load_tpch,
)
from repro.serving import AdmissionQueue, PRIORITIES

from .differential import QueryGenerator

# ----------------------------------------------------------------- queue model

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("offer"), st.sampled_from(PRIORITIES)),
        st.tuples(st.just("take"), st.none()),
    ),
    max_size=120,
)


class TestAdmissionQueueProperties:
    @given(ops=OPS, bound=st.integers(min_value=1, max_value=8))
    @settings(max_examples=150, deadline=None)
    def test_matches_reference_model(self, ops, bound):
        queue = AdmissionQueue(max_depth=bound)
        model = {p: deque() for p in PRIORITIES}
        seq = 0
        offered = accepted_n = taken_n = 0
        for op, priority in ops:
            if op == "offer":
                offered += 1
                depth_before = sum(len(q) for q in model.values())
                accepted = queue.offer(seq, priority=priority)
                assert accepted == (depth_before < bound), (
                    "offer must accept iff below the bound"
                )
                if accepted:
                    model[priority].append(seq)
                    accepted_n += 1
                seq += 1
            else:
                got = queue.take(timeout=0)
                expected = None
                for p in PRIORITIES:  # strict priority, FIFO within class
                    if model[p]:
                        expected = model[p].popleft()
                        break
                assert got == expected
                if got is not None:
                    taken_n += 1
            depth = sum(len(q) for q in model.values())
            assert queue.depth() == depth <= bound
            assert queue.depths() == {p: len(q) for p, q in model.items()}
        assert queue.admitted == accepted_n
        assert queue.rejected == offered - accepted_n
        assert queue.taken == taken_n
        assert queue.peak_depth <= bound
        # Drain: everything the model still holds comes out in class order.
        leftovers = [x for p in PRIORITIES for x in model[p]]
        drained = []
        while True:
            item = queue.take(timeout=0)
            if item is None:
                break
            drained.append(item)
        assert drained == leftovers
        assert queue.depth() == 0

    @given(
        preload=st.lists(st.sampled_from(PRIORITIES), max_size=10),
        bound=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_close_rejects_offers_but_drains_takes(self, preload, bound):
        queue = AdmissionQueue(max_depth=bound)
        admitted = []
        for i, priority in enumerate(preload):
            if queue.offer(i, priority=priority):
                admitted.append((priority, i))
        queue.close()
        assert queue.closed
        assert not queue.offer(999)  # closed queue admits nothing
        expected = [
            i for p in PRIORITIES for (q, i) in admitted if q == p
        ]
        drained = []
        while True:
            item = queue.take(timeout=0)
            if item is None:
                break
            drained.append(item)
        assert drained == expected
        # Post-drain, take is an immediate None (worker shutdown signal),
        # even with a blocking timeout.
        assert queue.take(timeout=10.0) is None

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError):
            AdmissionQueue(max_depth=0)
        with pytest.raises(ValueError):
            AdmissionQueue(max_depth=4).offer(1, priority="vip")


# ------------------------------------------------------------- cancellation

class TripAfter(CancelToken):
    """A token that trips itself after N engine check() calls."""

    def __init__(self, n: int):
        super().__init__()
        self.remaining = n

    def check(self) -> None:
        if self.remaining <= 0:
            self.cancel("tripped by test")
        self.remaining -= 1
        super().check()


N_QUERIES = 6
_state: dict = {}


@pytest.fixture(scope="module")
def cancel_corpus(tmp_path_factory):
    """A small db plus pre-generated queries and serial reference rows."""
    if not _state:
        db = Database(tmp_path_factory.mktemp("cancel") / "db")
        load_tpch(db.catalog, scale=0.001, seed=7)
        gen = QueryGenerator(db, projection="lineitem", seed=11)
        queries = [gen.next_query() for _ in range(N_QUERIES)]
        references = [sorted(db.query(q).rows()) for q in queries]
        _state.update(db=db, queries=queries, references=references)
    return _state


class TestCancellationContract:
    @given(
        trip=st.integers(min_value=0, max_value=80),
        qi=st.integers(min_value=0, max_value=N_QUERIES - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_or_nothing(self, cancel_corpus, trip, qi):
        db = cancel_corpus["db"]
        token = TripAfter(trip)
        try:
            result = db.query(
                cancel_corpus["queries"][qi], cancel=token, trace=True
            )
        except QueryCancelledError as exc:
            # Cancelled: a closed, truncated-but-valid span tree, no result.
            assert exc.spans is not None
            assert exc.spans.status == "error"
            assert exc.spans.open_spans() == []
            assert exc.spans.name == "query"
        else:
            # Not cancelled: bit-identical to the serial reference.
            assert sorted(result.rows()) == cancel_corpus["references"][qi]
            assert result.spans.open_spans() == []

    @given(qi=st.integers(min_value=0, max_value=N_QUERIES - 1))
    @settings(max_examples=10, deadline=None)
    def test_zero_deadline_always_times_out(self, cancel_corpus, qi):
        db = cancel_corpus["db"]
        with pytest.raises(QueryTimeoutError) as info:
            db.query(cancel_corpus["queries"][qi], timeout_ms=0, trace=True)
        assert info.value.spans.open_spans() == []

    def test_external_timeout_is_a_cancel(self, cancel_corpus):
        # QueryTimeoutError is-a QueryCancelledError: one except clause
        # covers both in the serving layer.
        assert issubclass(QueryTimeoutError, QueryCancelledError)
        token = CancelToken(timeout_ms=0)
        assert token.expired()
        with pytest.raises(QueryTimeoutError):
            token.check()
