"""Tests for OR (disjunctive WHERE) support across the stack."""

import numpy as np
import pytest

from repro import InPredicate, Predicate, SelectQuery
from repro.errors import PlanError, SQLError
from repro.sql import parse

from .reference import canonical, full_column


def reference_or(lineitem, groups, select):
    mask = np.zeros(lineitem.n_rows, dtype=bool)
    for group in groups:
        group_mask = np.ones(lineitem.n_rows, dtype=bool)
        for pred in group:
            group_mask &= pred.mask(full_column(lineitem, pred.column))
        mask |= group_mask
    return np.stack(
        [full_column(lineitem, c)[mask].astype(np.int64) for c in select],
        axis=1,
    )


class TestLogicalValidation:
    def test_predicates_and_disjuncts_exclusive(self):
        with pytest.raises(PlanError):
            SelectQuery(
                projection="t",
                select=("a",),
                predicates=(Predicate("a", "<", 1),),
                disjuncts=(
                    (Predicate("a", "<", 1),),
                    (Predicate("a", ">", 5),),
                ),
            )

    def test_single_disjunct_rejected(self):
        with pytest.raises(PlanError):
            SelectQuery(
                projection="t",
                select=("a",),
                disjuncts=((Predicate("a", "<", 1),),),
            )

    def test_empty_group_rejected(self):
        with pytest.raises(PlanError):
            SelectQuery(
                projection="t",
                select=("a",),
                disjuncts=((Predicate("a", "<", 1),), ()),
            )

    def test_all_columns_includes_disjunct_columns(self):
        q = SelectQuery(
            projection="t",
            select=("a",),
            disjuncts=(
                (Predicate("b", "<", 1),),
                (Predicate("c", ">", 5),),
            ),
        )
        assert set(q.all_columns) == {"a", "b", "c"}


class TestExecution:
    def test_simple_or(self, tpch_db):
        lineitem = tpch_db.projection("lineitem")
        groups = (
            (Predicate("linenum", "=", 1),),
            (Predicate("linenum", "=", 7),),
        )
        query = SelectQuery(
            projection="lineitem", select=("linenum",), disjuncts=groups
        )
        result = tpch_db.query(query, cold=True)
        expected = reference_or(lineitem, groups, ["linenum"])
        assert np.array_equal(canonical(result.tuples.data), canonical(expected))
        assert result.strategy == "lm-parallel"

    def test_or_of_conjunctions(self, tpch_db):
        lineitem = tpch_db.projection("lineitem")
        ship = full_column(lineitem, "shipdate")
        x_low = int(np.quantile(ship, 0.1))
        x_high = int(np.quantile(ship, 0.9))
        groups = (
            (Predicate("shipdate", "<", x_low), Predicate("linenum", "<", 3)),
            (Predicate("shipdate", ">", x_high), Predicate("quantity", ">", 40)),
        )
        query = SelectQuery(
            projection="lineitem",
            select=("shipdate", "linenum", "quantity"),
            disjuncts=groups,
        )
        result = tpch_db.query(query, cold=True)
        expected = reference_or(
            lineitem, groups, ["shipdate", "linenum", "quantity"]
        )
        assert np.array_equal(canonical(result.tuples.data), canonical(expected))

    def test_overlapping_branches_no_duplicates(self, tpch_db):
        lineitem = tpch_db.projection("lineitem")
        groups = (
            (Predicate("linenum", "<", 5),),
            (Predicate("linenum", ">", 2),),  # overlaps 3..4
        )
        query = SelectQuery(
            projection="lineitem", select=("linenum",), disjuncts=groups
        )
        result = tpch_db.query(query, cold=True)
        assert result.n_rows == lineitem.n_rows  # every row matches once

    def test_or_with_aggregation(self, tpch_db):
        lineitem = tpch_db.projection("lineitem")
        groups = (
            (Predicate("linenum", "=", 2),),
            (Predicate("linenum", "=", 5),),
        )
        query = SelectQuery(
            projection="lineitem",
            select=("linenum", "sum(quantity)"),
            disjuncts=groups,
            group_by="linenum",
            aggregates=(__import__("repro").AggSpec("sum", "quantity"),),
        )
        result = tpch_db.query(query, cold=True)
        lin = full_column(lineitem, "linenum")
        qty = full_column(lineitem, "quantity")
        expected = sorted(
            (v, int(qty[lin == v].sum())) for v in (2, 5)
        )
        assert result.rows() == expected

    def test_or_with_in_predicate(self, tpch_db):
        lineitem = tpch_db.projection("lineitem")
        groups = (
            (InPredicate("linenum", (1, 2)),),
            (Predicate("quantity", ">", 48),),
        )
        query = SelectQuery(
            projection="lineitem",
            select=("linenum", "quantity"),
            disjuncts=groups,
        )
        result = tpch_db.query(query, cold=True)
        expected = reference_or(lineitem, groups, ["linenum", "quantity"])
        assert np.array_equal(canonical(result.tuples.data), canonical(expected))


class TestSQLGrammar:
    def test_simple_or_parses(self):
        stmt = parse("SELECT a FROM t WHERE a < 3 OR a > 9")
        assert len(stmt.disjuncts) == 2
        assert not stmt.comparisons

    def test_and_binds_tighter_than_or(self):
        stmt = parse("SELECT a FROM t WHERE a < 3 AND b = 1 OR c > 9")
        assert len(stmt.disjuncts) == 2
        assert len(stmt.disjuncts[0]) == 2  # (a<3 AND b=1)
        assert len(stmt.disjuncts[1]) == 1  # (c>9)

    def test_parentheses_override_precedence(self):
        stmt = parse("SELECT a FROM t WHERE a < 3 AND (b = 1 OR c > 9)")
        # DNF expansion: (a<3 AND b=1) OR (a<3 AND c>9).
        assert len(stmt.disjuncts) == 2
        assert all(len(group) == 2 for group in stmt.disjuncts)

    def test_pure_conjunction_stays_flat(self):
        stmt = parse("SELECT a FROM t WHERE a < 3 AND b = 1")
        assert len(stmt.comparisons) == 2
        assert not stmt.disjuncts

    def test_join_condition_under_or_rejected(self):
        with pytest.raises(SQLError):
            parse("SELECT a FROM t, u WHERE t.a = u.a OR t.b < 3")

    def test_end_to_end_sql_or(self, tpch_db):
        lineitem = tpch_db.projection("lineitem")
        r = tpch_db.sql(
            "SELECT linenum, quantity FROM lineitem "
            "WHERE linenum = 1 AND quantity < 5 OR linenum = 7 AND quantity > 45"
        )
        lin = full_column(lineitem, "linenum")
        qty = full_column(lineitem, "quantity")
        expected_n = int(
            (((lin == 1) & (qty < 5)) | ((lin == 7) & (qty > 45))).sum()
        )
        assert r.n_rows == expected_n

    def test_sql_or_with_order_limit(self, tpch_db):
        r = tpch_db.sql(
            "SELECT quantity FROM lineitem "
            "WHERE quantity < 2 OR quantity > 49 "
            "ORDER BY quantity DESC LIMIT 3"
        )
        assert all(v == 50 for (v,) in r.rows())
        assert r.n_rows == 3

    def test_between_inside_or(self, tpch_db):
        r = tpch_db.sql(
            "SELECT quantity FROM lineitem "
            "WHERE quantity BETWEEN 1 AND 2 OR quantity BETWEEN 49 AND 50"
        )
        values = {v for (v,) in r.rows()}
        assert values <= {1, 2, 49, 50}
        assert r.n_rows > 0
