"""Edge-case tests across modules: boundaries, degenerate inputs, LRU order."""

import numpy as np
import pytest

from repro import Database, Predicate, SelectQuery, Strategy
from repro.buffer import BufferPool, DiskModel
from repro.dtypes import INT32, ColumnSchema
from repro.metrics import QueryStats
from repro.positions import (
    BitmapPositions,
    ListedPositions,
    RangePositions,
    from_mask,
)
from repro.storage import encoding_by_name, write_column


class TestBitmapWordBoundaries:
    @pytest.mark.parametrize("nbits", [1, 63, 64, 65, 127, 128, 129])
    def test_roundtrip_at_word_edges(self, nbits):
        rng = np.random.default_rng(nbits)
        mask = rng.random(nbits) < 0.5
        bm = BitmapPositions.from_mask(0, mask)
        assert np.array_equal(bm.local_mask(), mask)
        assert bm.count() == int(mask.sum())

    @pytest.mark.parametrize("nbits", [63, 64, 65])
    def test_last_bit_set(self, nbits):
        mask = np.zeros(nbits, dtype=bool)
        mask[-1] = True
        bm = BitmapPositions.from_mask(10, mask)
        assert bm.to_array().tolist() == [10 + nbits - 1]
        assert bm.contains(10 + nbits - 1)
        assert not bm.contains(10 + nbits)

    def test_intersection_at_word_edge(self):
        a = BitmapPositions.from_mask(0, np.ones(65, dtype=bool))
        mask = np.zeros(65, dtype=bool)
        mask[64] = True
        b = BitmapPositions.from_mask(0, mask)
        assert a.intersect(b).to_array().tolist() == [64]


class TestPositionDegenerates:
    def test_empty_range_operations(self):
        empty = RangePositions.empty()
        assert empty.intersect(RangePositions(0, 10)).is_empty()
        assert empty.union(RangePositions(3, 5)).to_array().tolist() == [3, 4]
        assert list(empty.runs()) == []
        assert empty.to_mask(0, 4).tolist() == [False] * 4

    def test_empty_listed(self):
        empty = ListedPositions.empty()
        assert empty.bounds() is None
        assert empty.restrict(0, 100).is_empty()
        assert not empty.contains(0)

    def test_single_position_everywhere(self):
        for ps in (
            RangePositions(5, 6),
            ListedPositions(np.array([5])),
            BitmapPositions.from_mask(5, np.array([True])),
        ):
            assert ps.count() == 1
            assert ps.bounds() == (5, 5)
            assert list(ps.runs()) == [(5, 6)]

    def test_from_mask_all_true(self):
        out = from_mask(7, np.ones(100, dtype=bool))
        assert isinstance(out, RangePositions)
        assert (out.start, out.stop) == (7, 107)


class TestBufferPoolLRU:
    @pytest.fixture
    def column(self, tmp_path):
        values = np.arange(100_000, dtype=np.int32)  # 7 blocks
        return write_column(
            tmp_path / "c.col", values, INT32, encoding_by_name("uncompressed")
        )

    def test_recency_protects_blocks(self, column):
        block = len(column.read_payload(0))
        pool = BufferPool(capacity_bytes=3 * block)
        stats = QueryStats()
        pool.get(column, 0, stats)
        pool.get(column, 1, stats)
        pool.get(column, 2, stats)
        pool.get(column, 0, stats)  # refresh block 0
        pool.get(column, 3, stats)  # evicts LRU = block 1
        reads_before = stats.block_reads
        pool.get(column, 0, stats)  # still resident
        assert stats.block_reads == reads_before
        pool.get(column, 1, stats)  # was evicted
        assert stats.block_reads == reads_before + 1

    def test_prefetch_stops_at_file_end(self, column):
        pool = BufferPool(disk=DiskModel(prefetch_blocks=100))
        stats = QueryStats()
        pool.get(column, column.n_blocks - 2, stats)
        assert stats.block_reads == 2  # only 2 blocks remained

    def test_pool_never_evicts_below_one_block(self, column):
        block = len(column.read_payload(0))
        pool = BufferPool(capacity_bytes=block // 2)
        stats = QueryStats()
        payload = pool.get(column, 0, stats)
        assert len(payload) == block
        assert len(pool) == 1


class TestDegenerateProjections:
    def test_single_row_projection(self, tmp_path):
        db = Database(tmp_path / "db")
        db.catalog.create_projection(
            "one",
            {"v": np.array([42], dtype=np.int32)},
            schemas={"v": ColumnSchema("v", INT32)},
            sort_keys=["v"],
            encodings={"v": ["rle", "uncompressed", "bitvector"]},
        )
        for strategy in Strategy:
            r = db.query(
                SelectQuery(
                    projection="one",
                    select=("v",),
                    predicates=(Predicate("v", "=", 42),),
                ),
                strategy=strategy,
                cold=True,
            )
            assert r.rows() == [(42,)]

    def test_all_identical_values(self, tmp_path):
        db = Database(tmp_path / "db")
        db.catalog.create_projection(
            "same",
            {"v": np.full(50_000, 9, dtype=np.int32)},
            schemas={"v": ColumnSchema("v", INT32)},
            sort_keys=["v"],
            encodings={"v": ["rle", "bitvector", "dictionary", "for"]},
        )
        for encoding in ("rle", "bitvector", "dictionary", "for"):
            r = db.query(
                SelectQuery(
                    projection="same",
                    select=("v",),
                    predicates=(Predicate("v", "=", 9),),
                    encodings=(("v", encoding),),
                ),
                strategy="lm-parallel",
                cold=True,
            )
            assert r.n_rows == 50_000

    def test_extreme_values(self, tmp_path):
        from repro.dtypes import INT64

        db = Database(tmp_path / "db")
        lo, hi = np.iinfo(np.int64).min + 1, np.iinfo(np.int64).max - 1
        db.catalog.create_projection(
            "extreme",
            {"v": np.array([lo, 0, hi], dtype=np.int64)},
            schemas={"v": ColumnSchema("v", INT64)},
            sort_keys=["v"],
            encodings={"v": ["uncompressed"]},
        )
        r = db.query(
            SelectQuery(
                projection="extreme",
                select=("v",),
                predicates=(Predicate("v", ">", 0),),
            ),
            strategy="em-parallel",
        )
        assert r.rows() == [(hi,)]


class TestStrategiesEnum:
    def test_from_name_variants(self):
        assert Strategy.from_name("LM_PARALLEL") is Strategy.LM_PARALLEL
        assert Strategy.from_name(" em-pipelined ") is Strategy.EM_PIPELINED

    def test_flags(self):
        assert Strategy.LM_PARALLEL.is_late
        assert not Strategy.EM_PARALLEL.is_late
        assert Strategy.LM_PIPELINED.is_pipelined
        assert not Strategy.LM_PARALLEL.is_pipelined

    def test_bad_name(self):
        with pytest.raises(ValueError):
            Strategy.from_name("middle-out")


class TestEngineMisc:
    def test_resident_fraction_used_for_auto(self, tpch_db):
        query = SelectQuery(
            projection="lineitem",
            select=("linenum",),
            predicates=(Predicate("linenum", "<", 3),),
        )
        # Warm then auto: should not raise and should pick something valid.
        tpch_db.query(query, strategy="em-parallel")
        r = tpch_db.query(query, strategy="auto")
        assert r.strategy in {s.value for s in Strategy}

    def test_stats_are_per_query(self, tpch_db):
        a = tpch_db.sql("SELECT linenum FROM lineitem WHERE linenum = 1")
        b = tpch_db.sql("SELECT linenum FROM lineitem WHERE linenum = 1")
        assert a.stats is not b.stats

    def test_query_result_repr_fields(self, tpch_db):
        r = tpch_db.sql("SELECT linenum FROM lineitem LIMIT 1")
        assert r.n_rows == 1
        assert isinstance(r.simulated_ms, float)
        assert r.tuples.columns == ("linenum",)
