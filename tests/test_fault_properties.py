"""Property: a degraded result is the clean result minus quarantined rows.

``Database(on_error="degrade")`` promises that skipping a quarantined
partition is the *only* way a degraded result differs from a clean one: for
any predicate and any failing partition, the rows returned equal the clean
rows evaluated over the surviving partitions — never a partial partition,
never rows from the quarantined one, never silently everything.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Database,
    FaultInjector,
    FaultRule,
    Predicate,
    SelectQuery,
)
from repro.dtypes import INT32, ColumnSchema
from repro.metrics import MetricsRegistry

N_PARTITIONS = 4


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    """A 4-way partitioned projection plus its per-partition raw columns."""
    root = tmp_path_factory.mktemp("fault_props") / "db"
    db = Database(root)
    rng = np.random.default_rng(13)
    n = 40_000
    a = np.sort(rng.integers(0, 1000, size=n)).astype(np.int32)
    b = rng.integers(0, 1000, size=n).astype(np.int32)
    db.catalog.create_projection(
        "t",
        {"a": a, "b": b},
        schemas={"a": ColumnSchema("a", INT32), "b": ColumnSchema("b", INT32)},
        sort_keys=["a"],
        encodings={"a": ["uncompressed"], "b": ["uncompressed"]},
        presorted=True,
        partitions=N_PARTITIONS,
    )
    proj = db.projection("t")
    per_partition = []
    for part in proj.partitions:
        child = part.open()
        per_partition.append(
            (
                part.name,
                child.read_column_values("a"),
                child.read_column_values("b"),
            )
        )
    return root, per_partition


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    target=st.integers(min_value=0, max_value=N_PARTITIONS - 1),
    column=st.sampled_from(["a", "b"]),
    op=st.sampled_from(["<", "<=", ">", ">=", "=", "!="]),
    value=st.integers(min_value=-50, max_value=1050),
    strategy=st.sampled_from(["em-parallel", "lm-parallel"]),
)
def test_degraded_equals_clean_over_survivors(
    store, target, column, op, value, strategy
):
    root, per_partition = store
    target_name = per_partition[target][0]
    injector = FaultInjector(
        [FaultRule(kind="corrupt", path_glob=f"*{target_name}*")], seed=0
    )
    db = Database(
        root,
        fault_injector=injector,
        on_error="degrade",
        metrics=MetricsRegistry(),
    )
    predicate = Predicate(column, op, value)
    result = db.query(
        SelectQuery(projection="t", select=("a", "b"),
                    predicates=(predicate,)),
        strategy=strategy,
        cold=True,
    )

    expected = []
    for name, a, b in per_partition:
        if name == target_name:
            continue
        mask = predicate.mask(a if column == "a" else b)
        expected.extend(zip(a[mask].tolist(), b[mask].tolist()))
    assert sorted(result.rows()) == sorted(expected)

    # Degradation is reported exactly when the failing partition was
    # actually scanned (zone-map pruning may skip it outright first).
    if result.degraded:
        assert result.skipped_partitions == (target_name,)
    else:
        target_a = per_partition[target][1]
        target_b = per_partition[target][2]
        mask = predicate.mask(target_a if column == "a" else target_b)
        assert not mask.any(), (
            "a scanned-and-failed partition with matching rows must "
            "degrade the result"
        )
