"""Integration tests: join plans across the three inner-table strategies."""

import numpy as np
import pytest

from repro import JoinQuery, Predicate, RightTableStrategy

from .reference import full_column, reference_fkpk_join

ALL_RIGHT = list(RightTableStrategy)


def join_query(x):
    return JoinQuery(
        left="orders",
        right="customer",
        left_key="custkey",
        right_key="custkey",
        left_select=("shipdate",),
        right_select=("nationcode",),
        left_predicates=(Predicate("custkey", "<", x),),
    )


class TestJoinEquivalence:
    @pytest.mark.parametrize("strategy", ALL_RIGHT)
    @pytest.mark.parametrize("quantile", [0.05, 0.5, 1.0])
    def test_matches_reference(self, tpch_db, strategy, quantile):
        orders = tpch_db.projection("orders")
        customer = tpch_db.projection("customer")
        keys = full_column(orders, "custkey")
        x = int(np.quantile(keys, quantile)) + 1
        query = join_query(x)
        expected = reference_fkpk_join(
            orders,
            customer,
            "custkey",
            "custkey",
            ["shipdate"],
            ["nationcode"],
            list(query.left_predicates),
        )
        result = tpch_db.query(query, strategy=strategy, cold=True)
        # Join output preserves outer-table order: compare exactly.
        assert np.array_equal(result.tuples.data, expected)

    @pytest.mark.parametrize("strategy", ALL_RIGHT)
    def test_empty_outer_side(self, tpch_db, strategy):
        query = join_query(0)  # custkey < 0 matches nothing
        result = tpch_db.query(query, strategy=strategy, cold=True)
        assert result.n_rows == 0

    @pytest.mark.parametrize("strategy", ALL_RIGHT)
    def test_no_left_predicate(self, tpch_db, strategy):
        orders = tpch_db.projection("orders")
        customer = tpch_db.projection("customer")
        query = JoinQuery(
            left="orders",
            right="customer",
            left_key="custkey",
            right_key="custkey",
            left_select=("shipdate",),
            right_select=("nationcode",),
        )
        expected = reference_fkpk_join(
            orders, customer, "custkey", "custkey",
            ["shipdate"], ["nationcode"], [],
        )
        result = tpch_db.query(query, strategy=strategy, cold=True)
        assert result.n_rows == orders.n_rows
        assert np.array_equal(result.tuples.data, expected)


class TestJoinBehaviour:
    def test_single_column_pays_out_of_order_penalty(self, tpch_db):
        orders = tpch_db.projection("orders")
        keys = full_column(orders, "custkey")
        x = int(np.quantile(keys, 0.5))
        query = join_query(x)
        single = tpch_db.query(
            query, strategy=RightTableStrategy.SINGLE_COLUMN, cold=True
        )
        materialized = tpch_db.query(
            query, strategy=RightTableStrategy.MATERIALIZED, cold=True
        )
        assert single.stats.extra.get("out_of_order_gathers", 0) > 0
        assert materialized.stats.extra.get("out_of_order_gathers", 0) == 0

    def test_default_strategy_for_joins(self, tpch_db):
        orders = tpch_db.projection("orders")
        keys = full_column(orders, "custkey")
        query = join_query(int(np.quantile(keys, 0.2)))
        result = tpch_db.query(query, strategy="auto", cold=True)
        assert result.strategy == "materialized"
