"""Tests for ORDER BY, LIMIT, and compound GROUP BY."""

import numpy as np
import pytest

from repro import AggSpec, Predicate, SelectQuery, Strategy
from repro.errors import PlanError, SQLError

from .reference import full_column


class TestOrderBy:
    def test_single_key_ascending(self, tpch_db):
        r = tpch_db.sql(
            "SELECT quantity FROM lineitem WHERE linenum = 1 ORDER BY quantity"
        )
        values = r.tuples.column("quantity")
        assert np.all(np.diff(values) >= 0)

    def test_single_key_descending(self, tpch_db):
        r = tpch_db.sql(
            "SELECT quantity FROM lineitem WHERE linenum = 1 "
            "ORDER BY quantity DESC"
        )
        values = r.tuples.column("quantity")
        assert np.all(np.diff(values) <= 0)

    def test_compound_keys(self, tpch_db):
        r = tpch_db.sql(
            "SELECT linenum, quantity FROM lineitem WHERE quantity < 5 "
            "ORDER BY linenum ASC, quantity DESC"
        )
        rows = r.tuples.data
        keys = rows[:, 0] * 1000 - rows[:, 1]
        assert np.all(np.diff(keys) >= 0)

    def test_ordering_preserves_row_multiset(self, tpch_db):
        plain = tpch_db.sql("SELECT quantity FROM lineitem WHERE linenum = 2")
        ordered = tpch_db.sql(
            "SELECT quantity FROM lineitem WHERE linenum = 2 ORDER BY quantity"
        )
        assert np.array_equal(
            np.sort(plain.tuples.column("quantity")),
            ordered.tuples.column("quantity"),
        )

    def test_order_by_requires_selected_column(self, tpch_db):
        with pytest.raises(SQLError):
            tpch_db.sql("SELECT linenum FROM lineitem ORDER BY quantity")

    def test_programmatic_validation(self):
        with pytest.raises(PlanError):
            SelectQuery(
                projection="t",
                select=("a",),
                order_by=(("b", False),),
            )


class TestLimit:
    def test_limit_truncates(self, tpch_db):
        r = tpch_db.sql("SELECT linenum FROM lineitem LIMIT 10")
        assert r.n_rows == 10

    def test_limit_zero(self, tpch_db):
        r = tpch_db.sql("SELECT linenum FROM lineitem LIMIT 0")
        assert r.n_rows == 0

    def test_limit_larger_than_result(self, tpch_db):
        small = tpch_db.sql(
            "SELECT linenum FROM lineitem WHERE linenum = 7 LIMIT 1000000"
        )
        lin = full_column(tpch_db.projection("lineitem"), "linenum")
        assert small.n_rows == int((lin == 7).sum())

    def test_order_by_applies_before_limit(self, tpch_db):
        r = tpch_db.sql(
            "SELECT quantity FROM lineitem ORDER BY quantity DESC LIMIT 5"
        )
        qty = full_column(tpch_db.projection("lineitem"), "quantity")
        top = np.sort(qty)[-5:][::-1]
        assert r.tuples.column("quantity").tolist() == top.tolist()

    def test_negative_limit_rejected(self):
        with pytest.raises(PlanError):
            SelectQuery(projection="t", select=("a",), limit=-1)


class TestCompoundGroupBy:
    def reference(self, tpch_db, predicates):
        li = tpch_db.projection("lineitem")
        flag = full_column(li, "returnflag").astype(np.int64)
        lin = full_column(li, "linenum").astype(np.int64)
        qty = full_column(li, "quantity").astype(np.int64)
        mask = np.ones(len(flag), dtype=bool)
        for pred in predicates:
            mask &= pred.mask(full_column(li, pred.column))
        keys = np.stack([flag[mask], lin[mask]], axis=1)
        uniq, inverse = np.unique(keys, axis=0, return_inverse=True)
        sums = np.bincount(inverse, weights=qty[mask]).astype(np.int64)
        return np.column_stack([uniq, sums])

    @pytest.mark.parametrize("strategy", list(Strategy), ids=lambda s: s.value)
    def test_two_group_columns(self, tpch_db, strategy):
        predicates = (Predicate("quantity", "<", 40),)
        query = SelectQuery(
            projection="lineitem",
            select=("returnflag", "linenum", "sum(quantity)"),
            predicates=predicates,
            group_by=("returnflag", "linenum"),
            aggregates=(AggSpec("sum", "quantity"),),
        )
        result = tpch_db.query(query, strategy=strategy, cold=True)
        expected = self.reference(tpch_db, predicates)
        got = result.tuples.data
        got = got[np.lexsort((got[:, 1], got[:, 0]))]
        assert np.array_equal(got, expected)

    def test_through_sql(self, tpch_db):
        r = tpch_db.sql(
            "SELECT returnflag, linenum, SUM(quantity) FROM lineitem "
            "GROUP BY returnflag, linenum ORDER BY returnflag, linenum"
        )
        expected = self.reference(tpch_db, ())
        assert np.array_equal(r.tuples.data, expected)
        # 3 flags x 7 linenums
        assert r.n_rows == 21

    def test_single_column_group_still_tuple(self, tpch_db):
        query = SelectQuery(
            projection="lineitem",
            select=("returnflag", "count(returnflag)"),
            group_by="returnflag",
            aggregates=(AggSpec("count", "returnflag"),),
        )
        assert query.group_by == ("returnflag",)
        r = tpch_db.query(query, strategy="lm-parallel")
        assert r.n_rows == 3
