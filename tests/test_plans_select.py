"""Integration tests: the four strategies against the reference executor."""

import numpy as np
import pytest

from repro import Predicate, SelectQuery, Strategy
from repro.errors import UnsupportedOperationError

from .reference import canonical, full_column, reference_select

ALL_STRATEGIES = list(Strategy)
LINENUM_ENCODINGS = ["uncompressed", "rle", "bitvector"]


def run(db, query, strategy):
    return db.query(query, strategy=strategy, cold=True)


@pytest.fixture(scope="module")
def lineitem(tpch_db):
    return tpch_db.projection("lineitem")


def make_query(x, y, encoding):
    return SelectQuery(
        projection="lineitem",
        select=("shipdate", "linenum"),
        predicates=(
            Predicate("shipdate", "<", x),
            Predicate("linenum", "<", y),
        ),
        encodings=(("linenum", encoding),),
    )


class TestStrategyEquivalence:
    @pytest.mark.parametrize("encoding", LINENUM_ENCODINGS)
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    @pytest.mark.parametrize("selectivity", [0.0, 0.3, 1.0])
    def test_selection_matches_reference(
        self, tpch_db, lineitem, encoding, strategy, selectivity
    ):
        ship = full_column(lineitem, "shipdate")
        x = (
            int(np.quantile(ship, selectivity))
            if selectivity > 0
            else int(ship.min())  # empty result
        )
        query = make_query(x, 7, encoding)
        expected = reference_select(
            lineitem, ["shipdate", "linenum"], list(query.predicates)
        )
        if strategy is Strategy.LM_PIPELINED and encoding == "bitvector":
            # Position filtering (DS3 + predicate) is impossible on bit-vector
            # data. When the plan orders the bit-vector column second it must
            # fail; when the optimizer's ordering happens to put it first
            # (DS1 works fine there) the plan may run — and must be correct.
            try:
                result = run(tpch_db, query, strategy)
            except UnsupportedOperationError:
                return
            assert np.array_equal(
                canonical(result.tuples.data), canonical(expected)
            )
            return
        result = run(tpch_db, query, strategy)
        assert result.n_rows == len(expected)
        assert np.array_equal(canonical(result.tuples.data), canonical(expected))

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_single_predicate(self, tpch_db, lineitem, strategy):
        ship = full_column(lineitem, "shipdate")
        x = int(np.quantile(ship, 0.5))
        query = SelectQuery(
            projection="lineitem",
            select=("shipdate", "quantity"),
            predicates=(Predicate("shipdate", "<", x),),
        )
        expected = reference_select(
            lineitem, ["shipdate", "quantity"], list(query.predicates)
        )
        result = run(tpch_db, query, strategy)
        assert np.array_equal(canonical(result.tuples.data), canonical(expected))

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_no_predicates_full_scan(self, tpch_db, lineitem, strategy):
        query = SelectQuery(
            projection="lineitem", select=("linenum", "quantity")
        )
        expected = reference_select(lineitem, ["linenum", "quantity"], [])
        result = run(tpch_db, query, strategy)
        assert result.n_rows == lineitem.n_rows
        assert np.array_equal(canonical(result.tuples.data), canonical(expected))

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_three_predicates(self, tpch_db, lineitem, strategy):
        ship = full_column(lineitem, "shipdate")
        query = SelectQuery(
            projection="lineitem",
            select=("returnflag", "shipdate", "linenum"),
            predicates=(
                Predicate("shipdate", "<", int(np.quantile(ship, 0.7))),
                Predicate("linenum", "<", 5),
                Predicate("returnflag", "=", 1),
            ),
        )
        expected = reference_select(
            lineitem,
            ["returnflag", "shipdate", "linenum"],
            list(query.predicates),
        )
        result = run(tpch_db, query, strategy)
        assert np.array_equal(canonical(result.tuples.data), canonical(expected))

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_between_style_conjunction_on_one_column(
        self, tpch_db, lineitem, strategy
    ):
        ship = full_column(lineitem, "shipdate")
        lo = int(np.quantile(ship, 0.2))
        hi = int(np.quantile(ship, 0.6))
        query = SelectQuery(
            projection="lineitem",
            select=("shipdate", "linenum"),
            predicates=(
                Predicate("shipdate", ">=", lo),
                Predicate("shipdate", "<=", hi),
                Predicate("linenum", "<", 7),
            ),
        )
        expected = reference_select(
            lineitem, ["shipdate", "linenum"], list(query.predicates)
        )
        result = run(tpch_db, query, strategy)
        assert np.array_equal(canonical(result.tuples.data), canonical(expected))

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_select_column_without_predicate(self, tpch_db, lineitem, strategy):
        ship = full_column(lineitem, "shipdate")
        query = SelectQuery(
            projection="lineitem",
            select=("quantity",),
            predicates=(Predicate("shipdate", "<", int(np.quantile(ship, 0.1))),),
        )
        expected = reference_select(lineitem, ["quantity"], list(query.predicates))
        result = run(tpch_db, query, strategy)
        assert np.array_equal(canonical(result.tuples.data), canonical(expected))


class TestExecutionBehaviour:
    def test_em_parallel_reads_everything(self, tpch_db, lineitem):
        ship = full_column(lineitem, "shipdate")
        query = make_query(int(ship.min()), 7, "uncompressed")
        result = run(tpch_db, query, Strategy.EM_PARALLEL)
        files = [
            lineitem.column("shipdate").file("rle"),
            lineitem.column("linenum").file("uncompressed"),
        ]
        assert result.stats.block_reads == sum(f.n_blocks for f in files)

    def test_lm_parallel_zero_selectivity_constructs_nothing(
        self, tpch_db, lineitem
    ):
        ship = full_column(lineitem, "shipdate")
        query = make_query(int(ship.min()), 7, "uncompressed")
        result = run(tpch_db, query, Strategy.LM_PARALLEL)
        assert result.n_rows == 0
        assert result.stats.tuples_constructed == 0

    def test_em_constructs_intermediate_tuples(self, tpch_db, lineitem):
        ship = full_column(lineitem, "shipdate")
        query = make_query(int(np.quantile(ship, 0.2)), 7, "uncompressed")
        em = run(tpch_db, query, Strategy.EM_PARALLEL)
        lm = run(tpch_db, query, Strategy.LM_PARALLEL)
        # LM constructs only final output tuples; EM at least as many.
        assert lm.stats.tuples_constructed == lm.n_rows
        assert em.stats.tuples_constructed >= lm.stats.tuples_constructed

    def test_lm_pipelined_skips_blocks_at_low_selectivity(
        self, tpch_db, lineitem
    ):
        ship = full_column(lineitem, "shipdate")
        query = make_query(int(np.quantile(ship, 0.02)), 7, "uncompressed")
        result = run(tpch_db, query, Strategy.LM_PIPELINED)
        full = run(tpch_db, query, Strategy.EM_PARALLEL)
        assert result.stats.block_reads < full.stats.block_reads
