"""Property tests: zone-map pruning is sound and purely physical.

Two obligations, checked with hypothesis-driven random predicates:

* **transparency** — a range-partitioned projection answers every query
  identically to an unpartitioned copy of the same data, under every
  strategy (pruning may skip partitions but never rows);
* **soundness** — a partition is pruned only when its zone maps *provably*
  exclude the predicates: re-scanning a pruned partition's raw values must
  find zero matching rows.

Plus structural properties of :func:`partition_boundaries` (contiguous,
covering, near-equal).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database, Predicate, SelectQuery, Strategy
from repro.dtypes import INT32, ColumnSchema
from repro.errors import UnsupportedOperationError
from repro.operators.aggregate import AggSpec
from repro.planner.partitioned import partition_may_match, prune_partitions
from repro.predicates import InPredicate
from repro.storage.partition import partition_boundaries

N_ROWS = 12_000
N_PARTITIONS = 5
COLUMNS = ("a", "b", "c")

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def _build(root, partitions: int) -> Database:
    # Same seed in both layouts -> identical logical data.
    rng = np.random.default_rng(3)
    db = Database(root)
    a = np.sort(rng.integers(0, 300, size=N_ROWS)).astype(np.int32)
    b = rng.integers(0, 12, size=N_ROWS).astype(np.int32)
    c = rng.integers(-40, 40, size=N_ROWS).astype(np.int32)
    db.catalog.create_projection(
        "t",
        {"a": a, "b": b, "c": c},
        schemas={
            "a": ColumnSchema("a", INT32),
            "b": ColumnSchema("b", INT32),
            "c": ColumnSchema("c", INT32),
        },
        sort_keys=["a"],
        encodings={
            "a": ["rle", "uncompressed"],
            "b": ["uncompressed", "bitvector"],
            "c": ["uncompressed"],
        },
        presorted=True,
        partitions=partitions,
    )
    return db


@pytest.fixture(scope="module")
def db_pair(tmp_path_factory):
    root = tmp_path_factory.mktemp("prune_prop")
    return _build(root / "plain", 1), _build(root / "part", N_PARTITIONS)


predicate_st = st.one_of(
    st.builds(
        Predicate,
        st.sampled_from(COLUMNS),
        st.sampled_from(["<", "<=", ">", ">=", "=", "!="]),
        st.integers(-60, 320),
    ),
    st.builds(
        InPredicate,
        st.sampled_from(COLUMNS),
        st.lists(st.integers(-5, 320), min_size=1, max_size=4).map(tuple),
    ),
)

predicates_st = st.lists(predicate_st, min_size=0, max_size=3).map(tuple)


class TestPruningTransparency:
    """Partitioned and unpartitioned layouts agree on every answer."""

    @_SETTINGS
    @given(predicates=predicates_st)
    def test_selection_identical_across_layouts(self, db_pair, predicates):
        plain, partitioned = db_pair
        query = SelectQuery(
            projection="t", select=COLUMNS, predicates=predicates
        )
        for strategy in Strategy:
            try:
                expected = sorted(plain.query(query, strategy=strategy).rows())
                got = sorted(partitioned.query(query, strategy=strategy).rows())
            except UnsupportedOperationError:
                continue
            assert got == expected

    @_SETTINGS
    @given(
        predicates=predicates_st,
        group=st.sampled_from(COLUMNS),
        func=st.sampled_from(["sum", "count", "min", "max", "avg"]),
    )
    def test_aggregates_identical_across_layouts(
        self, db_pair, predicates, group, func
    ):
        # Partial per-partition aggregates recombined by group key must
        # equal the single-pass unpartitioned aggregation.
        plain, partitioned = db_pair
        agg_col = next(c for c in COLUMNS if c != group)
        spec = AggSpec(func, agg_col)
        query = SelectQuery(
            projection="t",
            select=(group, spec.output_name),
            predicates=predicates,
            group_by=group,
            aggregates=(spec,),
        )
        expected = sorted(plain.query(query).rows())
        got = sorted(partitioned.query(query).rows())
        assert got == expected


class TestPruningSoundness:
    """A partition is skipped only when it provably holds no matches."""

    @_SETTINGS
    @given(predicates=predicates_st)
    def test_pruned_partitions_hold_no_matching_rows(
        self, db_pair, predicates
    ):
        _, partitioned = db_pair
        projection = partitioned.projection("t")
        query = SelectQuery(
            projection="t", select=COLUMNS, predicates=predicates
        )
        survivors, total = prune_partitions(projection, query)
        assert total == N_PARTITIONS
        surviving = {part.name for part in survivors}
        for part in projection.partitions:
            if part.name in surviving:
                continue
            child = part.open()
            mask = np.ones(child.n_rows, dtype=bool)
            for pred in predicates:
                mask &= pred.mask(child.read_column_values(pred.column))
            assert not mask.any(), (
                f"partition {part.name} was pruned but holds "
                f"{int(mask.sum())} matching rows for {predicates}"
            )

    def test_no_predicates_prunes_nothing(self, db_pair):
        _, partitioned = db_pair
        projection = partitioned.projection("t")
        query = SelectQuery(projection="t", select=("a",))
        survivors, total = prune_partitions(projection, query)
        assert len(survivors) == total == N_PARTITIONS

    def test_sort_key_point_predicate_prunes(self, db_pair):
        # The sort key's zone maps are disjoint ranges, so a point predicate
        # must exclude every partition whose range misses the constant.
        _, partitioned = db_pair
        projection = partitioned.projection("t")
        for part in projection.partitions:
            zone = part.zone_maps["a"]
            inside = SelectQuery(
                projection="t",
                select=("a",),
                predicates=(Predicate("a", "=", zone.min_value),),
            )
            assert partition_may_match(part, inside)
            outside = SelectQuery(
                projection="t",
                select=("a",),
                predicates=(Predicate("a", ">", zone.max_value),),
            )
            assert not partition_may_match(part, outside)

    def test_disjunction_prunes_conservatively(self, db_pair):
        # OR groups: a partition survives when any disjunct overlaps it.
        _, partitioned = db_pair
        projection = partitioned.projection("t")
        first = projection.partitions[0]
        last = projection.partitions[-1]
        query = SelectQuery(
            projection="t",
            select=("a",),
            disjuncts=(
                (Predicate("a", "<=", first.zone_maps["a"].max_value),),
                (Predicate("a", ">=", last.zone_maps["a"].min_value),),
            ),
        )
        assert partition_may_match(first, query)
        assert partition_may_match(last, query)
        survivors, _ = prune_partitions(projection, query)
        assert {p.name for p in survivors} >= {first.name, last.name}


class TestPartitionBoundaries:
    @given(
        n_rows=st.integers(0, 100_000),
        n_partitions=st.integers(1, 32),
    )
    def test_boundaries_cover_contiguously(self, n_rows, n_partitions):
        bounds = partition_boundaries(n_rows, n_partitions)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == n_rows
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start

    @given(
        n_rows=st.integers(1, 100_000),
        n_partitions=st.integers(1, 32),
    )
    def test_partitions_nonempty_and_balanced(self, n_rows, n_partitions):
        bounds = partition_boundaries(n_rows, n_partitions)
        assert len(bounds) == min(n_partitions, n_rows)
        sizes = [stop - start for start, stop in bounds]
        assert min(sizes) >= 1
        assert max(sizes) - min(sizes) <= 1
