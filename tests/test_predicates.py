"""Unit tests for SARGable predicates."""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.predicates import (
    ColumnConjunction,
    Predicate,
    combine_column_predicates,
    conjunction_mask,
)

VALUES = np.array([1, 5, 7, 7, 10, 42], dtype=np.int64)


class TestPredicateMask:
    @pytest.mark.parametrize(
        "op,value,expected",
        [
            ("<", 7, [True, True, False, False, False, False]),
            ("<=", 7, [True, True, True, True, False, False]),
            (">", 7, [False, False, False, False, True, True]),
            (">=", 7, [False, False, True, True, True, True]),
            ("=", 7, [False, False, True, True, False, False]),
            ("!=", 7, [True, True, False, False, True, True]),
        ],
    )
    def test_all_operators(self, op, value, expected):
        pred = Predicate("c", op, value)
        assert pred.mask(VALUES).tolist() == expected

    def test_operator_aliases_normalised(self):
        assert Predicate("c", "==", 3).op == "="
        assert Predicate("c", "<>", 3).op == "!="

    def test_invalid_operator_rejected(self):
        with pytest.raises(PlanError):
            Predicate("c", "~", 3)

    def test_matches_value(self):
        assert Predicate("c", "<", 7).matches_value(6)
        assert not Predicate("c", "<", 7).matches_value(7)


class TestRangeReasoning:
    def test_overlaps_lt(self):
        pred = Predicate("c", "<", 10)
        assert pred.overlaps_range(5, 20)
        assert not pred.overlaps_range(10, 20)

    def test_overlaps_eq(self):
        pred = Predicate("c", "=", 10)
        assert pred.overlaps_range(5, 15)
        assert not pred.overlaps_range(11, 15)

    def test_overlaps_ne_only_skips_constant_blocks(self):
        pred = Predicate("c", "!=", 10)
        assert pred.overlaps_range(5, 15)
        assert not pred.overlaps_range(10, 10)

    def test_contains_lt(self):
        pred = Predicate("c", "<", 10)
        assert pred.contains_range(1, 9)
        assert not pred.contains_range(1, 10)

    def test_contains_matches_mask_exhaustively(self):
        # contains_range(lo, hi) must equal "every value in [lo,hi] passes".
        for op in ("<", "<=", ">", ">=", "=", "!="):
            pred = Predicate("c", op, 5)
            for lo in range(0, 10):
                for hi in range(lo, 10):
                    window = np.arange(lo, hi + 1)
                    assert pred.contains_range(lo, hi) == bool(
                        pred.mask(window).all()
                    ), (op, lo, hi)

    def test_overlaps_matches_mask_exhaustively(self):
        for op in ("<", "<=", ">", ">=", "=", "!="):
            pred = Predicate("c", op, 5)
            for lo in range(0, 10):
                for hi in range(lo, 10):
                    window = np.arange(lo, hi + 1)
                    assert pred.overlaps_range(lo, hi) == bool(
                        pred.mask(window).any()
                    ), (op, lo, hi)


class TestConjunction:
    def test_conjunction_mask(self):
        preds = [Predicate("c", ">", 2), Predicate("c", "<", 10)]
        assert conjunction_mask(preds, VALUES).tolist() == [
            False,
            True,
            True,
            True,
            False,
            False,
        ]

    def test_empty_conjunction_is_all_true(self):
        assert conjunction_mask([], VALUES).all()

    def test_combine_single_returns_original(self):
        p = Predicate("c", "<", 3)
        assert combine_column_predicates([p]) is p

    def test_combine_builds_conjunction(self):
        c = combine_column_predicates(
            [Predicate("c", ">", 2), Predicate("c", "<", 10)]
        )
        assert isinstance(c, ColumnConjunction)
        assert c.mask(VALUES).tolist() == [False, True, True, True, False, False]
        assert c.overlaps_range(5, 6)
        assert not c.overlaps_range(10, 20)
        assert c.contains_range(3, 9)
        assert not c.contains_range(3, 10)

    def test_conjunction_rejects_mixed_columns(self):
        with pytest.raises(PlanError):
            ColumnConjunction(
                "a", (Predicate("a", "<", 1), Predicate("b", "<", 1))
            )

    def test_conjunction_rejects_empty(self):
        with pytest.raises(PlanError):
            ColumnConjunction("a", ())
