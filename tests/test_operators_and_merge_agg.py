"""Unit tests for AND, MERGE, aggregation, and output operators."""

import numpy as np
import pytest

from repro.buffer import BufferPool
from repro.errors import ExecutionError, PlanError
from repro.metrics import QueryStats
from repro.operators import AndOp, ExecutionContext, MergeOp, TupleSet, drain
from repro.operators.aggregate import AggregateEM, AggregateLM, AggSpec
from repro.multicolumn import MultiColumn
from repro.positions import BitmapPositions, ListedPositions, RangePositions


@pytest.fixture
def ctx():
    return ExecutionContext(pool=BufferPool(), stats=QueryStats())


class TestAndOp:
    def test_intersection(self, ctx):
        a = RangePositions(0, 100)
        b = ListedPositions(np.array([5, 50, 150]))
        out = AndOp(ctx).execute_positions([a, b])
        assert out.to_array().tolist() == [5, 50]
        assert ctx.stats.positions_intersected == 103

    def test_zero_inputs_rejected(self, ctx):
        with pytest.raises(ExecutionError):
            AndOp(ctx).execute_positions([])

    def test_multicolumn_and_unions_minicolumns(self, ctx):
        left = MultiColumn(0, 100, RangePositions(0, 60), {})
        right = MultiColumn(0, 100, RangePositions(40, 100), {})
        out = AndOp(ctx).execute_multicolumns([left, right])
        assert out.descriptor.to_array().tolist() == list(range(40, 60))


class TestMergeOp:
    def test_stitches_aligned_vectors(self, ctx):
        out = MergeOp(ctx).execute(
            {"x": np.array([1, 2]), "y": np.array([10, 20])}
        )
        assert out.rows() == [(1, 10), (2, 20)]
        assert ctx.stats.tuples_constructed == 2
        assert ctx.stats.function_calls == 2 * 2 * 2

    def test_rejects_misaligned(self, ctx):
        with pytest.raises(ExecutionError):
            MergeOp(ctx).execute({"x": np.array([1]), "y": np.array([1, 2])})

    def test_rejects_empty(self, ctx):
        with pytest.raises(ExecutionError):
            MergeOp(ctx).execute({})


GROUPS = np.array([3, 1, 3, 1, 2, 3], dtype=np.int64)
VALUES = np.array([10, 1, 20, 2, 5, 30], dtype=np.int64)


class TestAggSpec:
    def test_output_name(self):
        assert AggSpec("sum", "v").output_name == "sum(v)"

    def test_rejects_unknown_func(self):
        with pytest.raises(PlanError):
            AggSpec("median", "v")


class TestAggregateEM:
    def make_tuples(self):
        return TupleSet.stitch({"g": GROUPS, "v": VALUES})

    def test_sum(self, ctx):
        out = AggregateEM(ctx, "g", [AggSpec("sum", "v")]).execute(
            self.make_tuples()
        )
        assert out.select(["g", "sum(v)"]).rows() == [
            (1, 3),
            (2, 5),
            (3, 60),
        ]

    def test_count_min_max_avg(self, ctx):
        specs = [
            AggSpec("count", "v"),
            AggSpec("min", "v"),
            AggSpec("max", "v"),
            AggSpec("avg", "v"),
        ]
        out = AggregateEM(ctx, "g", specs).execute(self.make_tuples())
        rows = out.select(
            ["g", "count(v)", "min(v)", "max(v)", "avg(v)"]
        ).rows()
        assert rows == [(1, 2, 1, 2, 1), (2, 1, 5, 5, 5), (3, 3, 10, 30, 20)]

    def test_charges_tuple_iteration(self, ctx):
        AggregateEM(ctx, "g", [AggSpec("sum", "v")]).execute(self.make_tuples())
        assert ctx.stats.tuple_iterations >= len(GROUPS)


class TestAggregateLM:
    def test_sum_matches_em(self, ctx):
        out = AggregateLM(ctx, "g", [AggSpec("sum", "v")]).execute(
            GROUPS, {"v": VALUES}
        )
        assert out.select(["g", "sum(v)"]).rows() == [(1, 3), (2, 5), (3, 60)]

    def test_charges_column_iteration_not_tuple(self, ctx):
        AggregateLM(ctx, "g", [AggSpec("sum", "v")]).execute(
            GROUPS, {"v": VALUES}
        )
        assert ctx.stats.column_iterations >= len(GROUPS)
        # Only the 3 summary tuples pass through a tuple iterator.
        assert ctx.stats.tuple_iterations == 3

    def test_execute_runs_matches_row_version(self, ctx):
        # Rows grouped as runs: run 0 -> g=3 (rows 0,1), run 1 -> g=1 (row 2),
        # run 2 -> g=3 (rows 3,4).
        run_values = np.array([3, 1, 3], dtype=np.int64)
        run_ids = np.array([0, 0, 1, 2, 2], dtype=np.int64)
        values = np.array([1, 2, 10, 3, 4], dtype=np.int64)
        out = AggregateLM(
            ctx, "g", [AggSpec("sum", "v"), AggSpec("count", "v")]
        ).execute_runs(run_values, run_ids, {"v": values})
        rows = out.select(["g", "sum(v)", "count(v)"]).rows()
        assert rows == [(1, 10, 1), (3, 10, 4)]

    def test_execute_runs_drops_unreferenced_runs(self, ctx):
        run_values = np.array([5, 6, 7], dtype=np.int64)
        run_ids = np.array([1], dtype=np.int64)  # only run 1 has survivors
        out = AggregateLM(ctx, "g", [AggSpec("sum", "v")]).execute_runs(
            run_values, run_ids, {"v": np.array([9], dtype=np.int64)}
        )
        assert out.select(["g", "sum(v)"]).rows() == [(6, 9)]

    def test_min_max_runs(self, ctx):
        run_values = np.array([1, 2], dtype=np.int64)
        run_ids = np.array([0, 0, 1], dtype=np.int64)
        values = np.array([4, 9, 7], dtype=np.int64)
        out = AggregateLM(
            ctx, "g", [AggSpec("min", "v"), AggSpec("max", "v")]
        ).execute_runs(run_values, run_ids, {"v": values})
        assert out.select(["g", "min(v)", "max(v)"]).rows() == [
            (1, 4, 9),
            (2, 7, 7),
        ]


class TestDrain:
    def test_counts_output(self, ctx):
        ts = TupleSet.stitch({"a": np.arange(5)})
        out = drain(ctx, ts)
        assert ctx.stats.tuples_output == 5
        assert out.n_tuples == 5

    def test_drops_position_column(self, ctx):
        ts = TupleSet.stitch({"_pos": np.arange(3), "a": np.arange(3)})
        out = drain(ctx, ts)
        assert out.columns == ("a",)
