"""Unit tests for the analytical cost model."""

import pytest

from repro.metrics import QueryStats
from repro.model import (
    PAPER_CONSTANTS,
    AndCost,
    ColumnMeta,
    ModelConstants,
    and_cost,
    ds_case1_cost,
    ds_case2_cost,
    ds_case3_cost,
    ds_case4_cost,
    merge_cost,
    simulated_time_ms,
    spc_cost,
)
from repro.model.cost import output_cost


META = ColumnMeta(blocks=5, tuples=26_726, run_length=1.0, resident=0.0)
RLE_META = ColumnMeta(blocks=1, tuples=3_800, run_length=76.0, resident=0.0)
K = PAPER_CONSTANTS


class TestConstants:
    def test_paper_values(self):
        assert K.bic == 0.020
        assert K.tictup == 0.065
        assert K.ticcol == 0.014
        assert K.fc == 0.009
        assert K.pf == 1
        assert K.seek == 2500.0
        assert K.read == 1000.0

    def test_with_overrides(self):
        k2 = K.with_overrides(fc=1.0)
        assert k2.fc == 1.0
        assert k2.bic == K.bic
        assert K.fc == 0.009  # frozen original untouched

    def test_as_dict(self):
        d = K.as_dict()
        assert d["SEEK"] == 2500.0
        assert d["TICTUP"] == 0.065


class TestDataSourceFormulas:
    def test_ds1_formula_verbatim(self):
        # Figure 1: |C|*BIC + ||C||*(TICCOL+FC)/RL + SF*||C||*FC
        sf = 0.5
        cost = ds_case1_cost(META, sf, K)
        expected_cpu = (
            5 * K.bic + 26_726 * (K.ticcol + K.fc) / 1.0 + sf * 26_726 * K.fc
        )
        assert cost.cpu_us == pytest.approx(expected_cpu)
        # A full sequential scan pays one head movement plus |C| block reads.
        expected_io = 1 * K.seek + 5 * K.read
        assert cost.io_us == pytest.approx(expected_io)

    def test_ds1_rle_cheaper_cpu(self):
        dense = ds_case1_cost(META, 0.5, K)
        rle = ds_case1_cost(RLE_META, 0.5, K)
        assert rle.cpu_us < dense.cpu_us

    def test_ds2_costs_more_than_ds1(self):
        # Case 2 swaps FC for TICTUP+FC on matched tuples.
        assert ds_case2_cost(META, 0.5, K).cpu_us > ds_case1_cost(
            META, 0.5, K
        ).cpu_us

    def test_ds3_reaccess_has_no_io(self):
        cost = ds_case3_cost(META, 1000, 1.0, K, reaccess=True)
        assert cost.io_us == 0.0
        assert cost.cpu_us > 0.0

    def test_ds3_io_scales_with_positions(self):
        few = ds_case3_cost(META, 100, 1.0, K)
        many = ds_case3_cost(META, 20_000, 1.0, K)
        assert few.io_us < many.io_us

    def test_ds3_position_runs_reduce_cpu(self):
        slow = ds_case3_cost(META, 10_000, 1.0, K, reaccess=True)
        fast = ds_case3_cost(META, 10_000, 1000.0, K, reaccess=True)
        assert fast.cpu_us < slow.cpu_us

    def test_ds4_formula_verbatim(self):
        # Figure 3: |C|*BIC + ||EM||*TICTUP + ||EM||*((FC+TICTUP)+FC)
        #           + SF*||EM||*TICTUP
        em = 1_000
        sf = 0.3
        cost = ds_case4_cost(META, em, sf, K)
        expected = (
            5 * K.bic
            + em * K.tictup
            + em * ((K.fc + K.tictup) + K.fc)
            + sf * em * K.tictup
        )
        assert cost.cpu_us == pytest.approx(expected)

    def test_resident_fraction_zeroes_io(self):
        warm = ColumnMeta(blocks=5, tuples=100, run_length=1.0, resident=1.0)
        assert ds_case1_cost(warm, 0.5, K).io_us == 0.0


class TestOtherOperators:
    def test_and_formula_verbatim(self):
        # Figure 4 with M = max(||inpos_i|| / RLp_i).
        inputs = [AndCost(1000, 1.0), AndCost(64_000, 64.0)]
        cost = and_cost(inputs, K)
        m = 1000.0
        expected = (
            K.ticcol * 1000 + K.ticcol * 1000 + m * 1 * K.fc + m * K.ticcol * K.fc
        )
        assert cost.cpu_us == pytest.approx(expected)
        assert cost.io_us == 0.0

    def test_merge_formula(self):
        cost = merge_cost(500, 2, K)
        assert cost.cpu_us == pytest.approx(2 * 500 * 2 * K.fc)

    def test_spc_short_circuits_selectivities(self):
        metas = [META, META]
        all_pass = spc_cost(metas, [1.0, 1.0], K)
        selective = spc_cost(metas, [0.01, 1.0], K)
        assert selective.cpu_us < all_pass.cpu_us
        assert selective.io_us == all_pass.io_us  # SPC always reads everything

    def test_output_cost(self):
        assert output_cost(1000, K).cpu_us == pytest.approx(1000 * K.tictup)

    def test_operator_cost_addition(self):
        total = merge_cost(10, 2, K) + output_cost(10, K)
        assert total.total_us == pytest.approx(
            merge_cost(10, 2, K).cpu_us + output_cost(10, K).cpu_us
        )


class TestSimulatedTime:
    def test_replay_combines_counters(self):
        stats = QueryStats(
            block_iterations=100,
            column_iterations=1000,
            tuple_iterations=50,
            function_calls=500,
            simulated_io_us=7000.0,
        )
        expected_us = (
            100 * K.bic + 1000 * K.ticcol + 50 * K.tictup + 500 * K.fc + 7000.0
        )
        assert simulated_time_ms(stats, K) == pytest.approx(expected_us / 1000)

    def test_empty_stats_is_zero(self):
        assert simulated_time_ms(QueryStats(), K) == 0.0


class TestColumnMeta:
    def test_from_file(self, tpch_db):
        cf = tpch_db.projection("lineitem").column("shipdate").file("rle")
        meta = ColumnMeta.from_file(cf, resident=0.25)
        assert meta.blocks == cf.n_blocks
        assert meta.tuples == cf.n_values
        assert meta.run_length == pytest.approx(cf.avg_run_length)
        assert meta.resident == 0.25
