"""Unit tests for the three column codecs."""

import numpy as np
import pytest

from repro.dtypes import INT32, INT64
from repro.errors import UnsupportedOperationError
from repro.predicates import Predicate
from repro.storage import encoding_by_name
from repro.storage.block import BLOCK_SIZE, BlockDescriptor
from repro.storage.rle import compute_runs


def encode_all(encoding, values, dtype):
    """Encode and return [(descriptor, payload)] like a column file would."""
    out = []
    for i, blk in enumerate(encoding.encode(values, dtype)):
        desc = BlockDescriptor(
            index=i,
            offset=0,
            nbytes=len(blk.payload),
            start_pos=blk.start_pos,
            n_values=blk.n_values,
            min_value=blk.min_value,
            max_value=blk.max_value,
        )
        out.append((desc, blk.payload))
    return out


def decode_all(encoding, blocks, dtype):
    return np.concatenate(
        [encoding.decode(p, d, dtype) for d, p in blocks]
    )


@pytest.fixture(params=["uncompressed", "rle", "bitvector", "dictionary", "for"])
def codec(request):
    return encoding_by_name(request.param)


class TestRoundTrip:
    def test_small_roundtrip(self, codec):
        values = np.array([3, 3, 3, 1, 1, 9, 2, 2], dtype=np.int32)
        blocks = encode_all(codec, values, INT32.numpy_dtype)
        assert np.array_equal(
            decode_all(codec, blocks, INT32.numpy_dtype), values
        )

    def test_multiblock_roundtrip(self, codec):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 12, size=200_000).astype(np.int32)
        blocks = encode_all(codec, values, INT32.numpy_dtype)
        assert len(blocks) > 1
        assert np.array_equal(
            decode_all(codec, blocks, INT32.numpy_dtype), values
        )

    def test_payloads_fit_block_size(self, codec):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 12, size=150_000).astype(np.int32)
        for desc, payload in encode_all(codec, values, INT32.numpy_dtype):
            assert len(payload) <= BLOCK_SIZE

    def test_block_coverage_is_contiguous(self, codec):
        rng = np.random.default_rng(2)
        values = rng.integers(0, 5, size=120_000).astype(np.int32)
        blocks = encode_all(codec, values, INT32.numpy_dtype)
        pos = 0
        for desc, _payload in blocks:
            assert desc.start_pos == pos
            pos = desc.end_pos
        assert pos == len(values)

    def test_minmax_descriptors(self, codec):
        values = np.array([5, 5, 1, 9, 9, 9], dtype=np.int32)
        (desc, _payload), = encode_all(codec, values, INT32.numpy_dtype)
        assert desc.min_value == 1
        assert desc.max_value == 9


class TestScanPositions:
    @pytest.mark.parametrize("op,const", [("<", 6), (">=", 6), ("=", 3), ("!=", 3)])
    def test_matches_reference(self, codec, op, const):
        rng = np.random.default_rng(3)
        values = np.sort(rng.integers(0, 12, size=90_000)).astype(np.int32)
        pred = Predicate("c", op, const)
        expected = np.nonzero(pred.mask(values))[0]
        got = []
        for desc, payload in encode_all(codec, values, INT32.numpy_dtype):
            ps = codec.scan_positions(payload, desc, INT32.numpy_dtype, pred)
            got.append(ps.to_array())
        got = np.concatenate([g for g in got if g.size] or [np.empty(0, int)])
        assert np.array_equal(got, expected)

    def test_no_match_is_empty(self, codec):
        values = np.arange(100, dtype=np.int32)
        (desc, payload), = encode_all(codec, values, INT32.numpy_dtype)
        ps = codec.scan_positions(
            payload, desc, INT32.numpy_dtype, Predicate("c", ">", 1000)
        )
        assert ps.is_empty()


class TestGather:
    def test_gather_matches_decode(self, codec):
        rng = np.random.default_rng(4)
        values = rng.integers(0, 8, size=50_000).astype(np.int32)
        blocks = encode_all(codec, values, INT32.numpy_dtype)
        desc, payload = blocks[0]
        picks = np.array(
            [desc.start_pos, desc.start_pos + 7, desc.end_pos - 1], dtype=np.int64
        )
        got = codec.gather(payload, desc, INT32.numpy_dtype, picks)
        assert np.array_equal(got, values[picks])


class TestRLESpecifics:
    def test_compute_runs(self):
        values = np.array([7, 7, 7, 2, 9, 9], dtype=np.int32)
        rv, ro, rl = compute_runs(values)
        assert rv.tolist() == [7, 2, 9]
        assert ro.tolist() == [0, 3, 4]
        assert rl.tolist() == [3, 1, 2]

    def test_compute_runs_empty(self):
        rv, ro, rl = compute_runs(np.empty(0, dtype=np.int32))
        assert len(rv) == len(ro) == len(rl) == 0

    def test_runs_view(self):
        rle = encoding_by_name("rle")
        values = np.repeat(np.array([4, 8], dtype=np.int32), [10, 5])
        (desc, payload), = encode_all(rle, values, INT32.numpy_dtype)
        rv, rs, rl = rle.runs(payload, desc, INT32.numpy_dtype)
        assert rv.tolist() == [4, 8]
        assert rs.tolist() == [0, 10]
        assert rl.tolist() == [10, 5]

    def test_run_count_stat(self):
        rle = encoding_by_name("rle")
        values = np.repeat(np.arange(50, dtype=np.int32), 100)
        (desc, payload), = encode_all(rle, values, INT32.numpy_dtype)
        assert rle.stats_run_count(payload, desc) == 50

    def test_adjacent_matching_runs_merge_in_positions(self):
        rle = encoding_by_name("rle")
        values = np.repeat(np.array([1, 2, 9, 3], dtype=np.int32), 5)
        (desc, payload), = encode_all(rle, values, INT32.numpy_dtype)
        ps = rle.scan_positions(
            payload, desc, INT32.numpy_dtype, Predicate("c", "<", 3)
        )
        assert ps.to_array().tolist() == list(range(10))


class TestBitVectorSpecifics:
    def test_position_filtering_flag(self):
        bv = encoding_by_name("bitvector")
        assert not bv.supports_position_filtering
        assert encoding_by_name("rle").supports_position_filtering
        assert encoding_by_name("uncompressed").supports_position_filtering

    def test_runs_unsupported(self):
        bv = encoding_by_name("bitvector")
        values = np.zeros(10, dtype=np.int32)
        (desc, payload), = encode_all(bv, values, INT32.numpy_dtype)
        with pytest.raises(UnsupportedOperationError):
            bv.runs(payload, desc, INT32.numpy_dtype)

    def test_range_predicate_ors_bitstrings(self):
        bv = encoding_by_name("bitvector")
        values = np.array([1, 2, 3, 1, 2, 3, 3], dtype=np.int32)
        (desc, payload), = encode_all(bv, values, INT32.numpy_dtype)
        ps = bv.scan_positions(
            payload, desc, INT32.numpy_dtype, Predicate("c", "<=", 2)
        )
        assert sorted(ps.to_array().tolist()) == [0, 1, 3, 4]

    def test_size_advantage_over_uncompressed_for_few_values(self):
        # With 7 distinct values the bit-vector file should be roughly a
        # quarter of a 4-byte uncompressed column (paper, Section 4.1).
        rng = np.random.default_rng(5)
        values = rng.integers(1, 8, size=500_000).astype(np.int32)
        bv_bytes = sum(
            len(p) for _d, p in encode_all(
                encoding_by_name("bitvector"), values, INT32.numpy_dtype
            )
        )
        un_bytes = sum(
            len(p) for _d, p in encode_all(
                encoding_by_name("uncompressed"), values, INT32.numpy_dtype
            )
        )
        assert bv_bytes < 0.35 * un_bytes


class TestScanPairs:
    def test_pairs_match_positions_and_values(self, codec):
        rng = np.random.default_rng(6)
        values = rng.integers(0, 9, size=40_000).astype(np.int32)
        pred = Predicate("c", "<", 4)
        for desc, payload in encode_all(codec, values, INT32.numpy_dtype):
            ps, vals = codec.scan_pairs(payload, desc, INT32.numpy_dtype, pred)
            local = values[desc.start_pos : desc.end_pos]
            expected_pos = np.nonzero(pred.mask(local))[0] + desc.start_pos
            assert np.array_equal(ps.to_array(), expected_pos)
            assert np.array_equal(np.sort(vals), np.sort(local[pred.mask(local)]))

    def test_pairs_without_predicate(self, codec):
        values = np.arange(100, dtype=np.int32)
        (desc, payload), = encode_all(codec, values, INT32.numpy_dtype)
        ps, vals = codec.scan_pairs(payload, desc, INT32.numpy_dtype, None)
        assert ps.count() == 100
        assert np.array_equal(vals, values)
