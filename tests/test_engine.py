"""Integration tests for the Database facade."""

from datetime import date

import numpy as np
import pytest

from repro import (
    Database,
    Predicate,
    SelectQuery,
    Strategy,
)
from repro.errors import PlanError

from .reference import canonical, full_column, reference_select


class TestQueryResult:
    def test_wall_and_simulated_time_populated(self, tpch_db):
        r = tpch_db.sql("SELECT linenum FROM lineitem WHERE linenum < 3")
        assert r.wall_ms > 0
        assert r.simulated_ms > 0
        assert r.stats.tuples_output == r.n_rows

    def test_decoded_rows_map_dates_and_dictionaries(self, tpch_db):
        r = tpch_db.sql(
            "SELECT returnflag, shipdate FROM lineitem "
            "WHERE shipdate < '1992-06-01' AND returnflag = 'A'"
        )
        flag, shipdate = r.decoded_rows()[0]
        assert flag == "A"
        assert isinstance(shipdate, date)
        assert shipdate < date(1992, 6, 1)

    def test_rows_are_raw_ints(self, tpch_db):
        r = tpch_db.sql("SELECT returnflag FROM lineitem WHERE returnflag = 'A'")
        assert r.rows()[0] == (0,)


class TestStrategySelection:
    def test_strategy_by_name(self, tpch_db):
        r = tpch_db.sql(
            "SELECT linenum FROM lineitem WHERE linenum < 3",
            strategy="lm-parallel",
        )
        assert r.strategy == "lm-parallel"

    def test_strategy_by_enum(self, tpch_db):
        q = SelectQuery(
            projection="lineitem",
            select=("linenum",),
            predicates=(Predicate("linenum", "<", 3),),
        )
        r = tpch_db.query(q, strategy=Strategy.EM_PIPELINED)
        assert r.strategy == "em-pipelined"

    def test_bad_strategy_name(self, tpch_db):
        with pytest.raises(ValueError):
            tpch_db.sql(
                "SELECT linenum FROM lineitem WHERE linenum < 3",
                strategy="mystery",
            )

    def test_unknown_query_type_rejected(self, tpch_db):
        with pytest.raises(PlanError):
            tpch_db.query("not a query object")


class TestCacheControl:
    def test_cold_flag_clears_pool(self, tpch_db):
        tpch_db.sql("SELECT linenum FROM lineitem WHERE linenum < 3")
        warm = tpch_db.sql("SELECT linenum FROM lineitem WHERE linenum < 3")
        assert warm.stats.buffer_hits > 0
        cold = tpch_db.sql(
            "SELECT linenum FROM lineitem WHERE linenum < 3", cold=True
        )
        assert cold.stats.buffer_hits == 0
        assert cold.stats.block_reads > 0


class TestExplain:
    def test_explain_reports_all_strategies(self, tpch_db):
        q = SelectQuery(
            projection="lineitem",
            select=("shipdate", "linenum"),
            predicates=(
                Predicate("shipdate", "<", 9000),
                Predicate("linenum", "<", 7),
            ),
        )
        out = tpch_db.explain(q)
        assert out["chosen"] in out["predictions"]
        assert set(out["predictions"]) == {s.value for s in Strategy}
        assert all(v > 0 for v in out["predictions"].values())


class TestSQLIntegration:
    def test_sql_equals_programmatic(self, tpch_db):
        lineitem = tpch_db.projection("lineitem")
        ship = full_column(lineitem, "shipdate")
        x = int(np.quantile(ship, 0.4))
        expected = reference_select(
            lineitem,
            ["shipdate", "linenum"],
            [Predicate("shipdate", "<", x), Predicate("linenum", "<", 7)],
        )
        from repro.dtypes import int_to_date

        r = tpch_db.sql(
            f"SELECT shipdate, linenum FROM lineitem "
            f"WHERE shipdate < '{int_to_date(x).isoformat()}' AND linenum < 7"
        )
        assert np.array_equal(canonical(r.tuples.data), canonical(expected))

    def test_sql_encoding_override(self, tpch_db):
        a = tpch_db.sql(
            "SELECT linenum FROM lineitem WHERE linenum < 3",
            encodings={"linenum": "bitvector"},
            strategy="lm-parallel",
            cold=True,
        )
        b = tpch_db.sql(
            "SELECT linenum FROM lineitem WHERE linenum < 3",
            encodings={"linenum": "uncompressed"},
            strategy="lm-parallel",
            cold=True,
        )
        assert np.array_equal(
            canonical(a.tuples.data), canonical(b.tuples.data)
        )

    def test_sql_join_roundtrip(self, tpch_db):
        r = tpch_db.sql(
            "SELECT o.shipdate, c.nationcode FROM orders o, customer c "
            "WHERE o.custkey = c.custkey AND o.custkey < 50",
            strategy="multi-column",
        )
        assert r.strategy == "multi-column"
        assert r.n_rows > 0


class TestMulticolumnsToggle:
    def test_disabled_multicolumns_rereads_columns(self, tmp_path):
        from repro import load_tpch

        db = Database(tmp_path / "db", use_multicolumns=True)
        load_tpch(db.catalog, scale=0.001, seed=3)
        q = SelectQuery(
            projection="lineitem",
            select=("shipdate", "linenum"),
            predicates=(
                Predicate("shipdate", "<", 9500),
                Predicate("linenum", "<", 7),
            ),
        )
        with_mc = db.query(q, strategy=Strategy.LM_PARALLEL, cold=True)
        db.use_multicolumns = False
        without_mc = db.query(q, strategy=Strategy.LM_PARALLEL, cold=True)
        # Without pinned mini-columns the final extraction goes back to the
        # pool: strictly more pool traffic, same answer.
        with_traffic = with_mc.stats.block_reads + with_mc.stats.buffer_hits
        without_traffic = (
            without_mc.stats.block_reads + without_mc.stats.buffer_hits
        )
        assert without_traffic > with_traffic
        assert np.array_equal(
            canonical(with_mc.tuples.data), canonical(without_mc.tuples.data)
        )
