"""The workload flight recorder: fingerprints, rotation, crash recovery.

The crash-simulation tests mirror the DeltaStore WAL tests: a torn final
line (the only damage the line-by-line flush permits) is truncated by the
writer on re-open and tolerated by the reader; corruption anywhere else
raises :class:`~repro.errors.CatalogError` naming the file and line; and
segment rotation preserves record ordering (monotonic ``seq``) across
segment boundaries.
"""

from __future__ import annotations

import json

import pytest

from repro import (
    AggSpec,
    CatalogError,
    Database,
    MetricsRegistry,
    Predicate,
    QueryLog,
    SelectQuery,
    UnsupportedOperationError,
    query_fingerprint,
    query_template,
    read_query_log,
)
from repro.testing import make_random_projection


def _db(tmp_path, **kwargs):
    kwargs.setdefault("metrics", MetricsRegistry())
    db = Database(tmp_path / "db", **kwargs)
    make_random_projection(db, n_rows=3000, seed=11)
    return db


def _select(value=50, op="<", select=("k", "v0")):
    return SelectQuery("t", select, predicates=(Predicate("k", op, value),))


class TestFingerprint:
    def test_literals_stripped(self):
        a = _select(value=10)
        b = _select(value=99)
        assert query_fingerprint(a) == query_fingerprint(b)
        assert query_template(a) == "SELECT k, v0 FROM t WHERE k<?"

    def test_structure_distinguishes(self):
        base = _select()
        assert query_fingerprint(base) != query_fingerprint(
            _select(op="<=")
        )
        assert query_fingerprint(base) != query_fingerprint(
            _select(select=("k",))
        )

    def test_encoding_override_distinguishes(self):
        plain = _select()
        encoded = SelectQuery(
            "t", ("k", "v0"),
            predicates=(Predicate("k", "<", 50),),
            encodings=(("k", "rle"),),
        )
        assert query_fingerprint(plain) != query_fingerprint(encoded)

    def test_limit_presence_not_value(self):
        with_10 = SelectQuery("t", ("k",), limit=10)
        with_99 = SelectQuery("t", ("k",), limit=99)
        without = SelectQuery("t", ("k",))
        assert query_fingerprint(with_10) == query_fingerprint(with_99)
        assert query_fingerprint(with_10) != query_fingerprint(without)

    def test_aggregate_template(self):
        q = SelectQuery(
            "t", ("k", "sum_v0"),
            group_by="k",
            aggregates=(AggSpec("sum", "v0"),),
        )
        assert "GROUP BY k" in query_template(q)


class TestRecorderCapture:
    def test_records_ok_queries(self, tmp_path):
        db = _db(tmp_path)
        db.query(_select(), strategy="em-pipelined")
        db.query(_select(), strategy="lm-parallel")
        db.close()
        records = read_query_log(tmp_path / "db" / "_qlog")
        assert len(records) == 2
        first = records[0]
        assert first["outcome"] == "ok"
        assert first["origin"] == "embedded"
        assert first["strategy"] == "em-pipelined"
        assert first["kind"] == "select"
        assert first["columns"] == ["k", "v0"]
        assert 0.0 < first["selectivity"] < 1.0
        assert first["counters"]["block_reads"] > 0
        assert first["result_hash"]
        assert records[0]["seq"] == 0 and records[1]["seq"] == 1

    def test_records_error_outcome(self, tmp_path):
        db = _db(tmp_path)
        bad = SelectQuery(
            "t", ("k", "v0"),
            predicates=(Predicate("v0", "<", 50),),
            encodings=(("v0", "bitvector"),),
        )
        # v0 has no bit-vector encoding stored -> execution error, logged.
        with pytest.raises(Exception):
            db.query(bad, strategy="lm-pipelined")
        db.close()
        records = read_query_log(tmp_path / "db" / "_qlog")
        assert len(records) == 1
        assert records[0]["outcome"] == "error"
        assert records[0]["error"]["type"]
        assert "result_hash" not in records[0]

    def test_unsupported_strategy_encoding_is_error_outcome(self, tmp_path):
        db = Database(tmp_path / "db", metrics=MetricsRegistry())
        make_random_projection(
            db, n_rows=2000, seed=5, cardinality=8,
            encodings={"k": ["rle", "uncompressed"],
                       "v0": ["uncompressed", "bitvector"],
                       "v1": ["uncompressed", "bitvector"]},
        )
        # LM-pipelined position-filters every predicate column after the
        # first (DS3); bit-vector encoding cannot do that (paper Section 2),
        # and with both predicate columns bit-vector encoded no predicate
        # reordering can save the plan.
        q = SelectQuery(
            "t", ("k", "v0"),
            predicates=(Predicate("v0", "<", 5), Predicate("v1", "<", 5)),
            encodings=(("v0", "bitvector"), ("v1", "bitvector")),
        )
        with pytest.raises(UnsupportedOperationError):
            db.query(q, strategy="lm-pipelined")
        db.close()
        records = read_query_log(tmp_path / "db" / "_qlog")
        assert records[0]["outcome"] == "error"
        assert records[0]["error"]["type"] == "UnsupportedOperationError"

    def test_query_log_false_disables(self, tmp_path):
        db = _db(tmp_path, query_log=False)
        db.query(_select())
        db.close()
        assert not (tmp_path / "db" / "_qlog").exists()

    def test_sampling_is_deterministic_and_exact(self, tmp_path):
        log = QueryLog(tmp_path / "qlog", sample=0.25)
        db = _db(tmp_path, query_log=log)
        for _ in range(40):
            db.query(_select())
        db.close()
        records = read_query_log(tmp_path / "qlog")
        assert len(records) == 10  # exactly floor(40 * 0.25)

    def test_collector_reports_recorder_state(self, tmp_path):
        db = _db(tmp_path)
        db.query(_select())
        snap = db.metrics.snapshot()
        assert snap["query_log"]["written"] == 1
        assert snap["query_log"]["segments"] == 1
        db.close()

    def test_invalid_sample_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            QueryLog(tmp_path / "qlog", sample=0.0)
        with pytest.raises(ValueError):
            QueryLog(tmp_path / "qlog", sample=1.5)


class TestRotation:
    def test_rotation_preserves_ordering_across_segments(self, tmp_path):
        # Tiny segments force rotation every few records.
        log = QueryLog(tmp_path / "qlog", max_segment_bytes=2048)
        db = _db(tmp_path, query_log=log)
        for i in range(30):
            db.query(_select(value=i))
        db.close()
        segments = sorted((tmp_path / "qlog").glob("qlog-*.jsonl"))
        assert len(segments) > 1, "rotation never happened"
        records = read_query_log(tmp_path / "qlog")
        assert len(records) == 30
        assert [r["seq"] for r in records] == list(range(30))
        # Each sealed segment respects the byte budget.
        for segment in segments[:-1]:
            assert segment.stat().st_size <= 2048

    def test_reopen_continues_sequence(self, tmp_path):
        log = QueryLog(tmp_path / "qlog")
        db = _db(tmp_path, query_log=log)
        db.query(_select())
        db.close()
        log2 = QueryLog(tmp_path / "qlog")
        db2 = Database(tmp_path / "db", metrics=MetricsRegistry(),
                       query_log=log2)
        db2.query(_select())
        db2.close()
        records = read_query_log(tmp_path / "qlog")
        assert [r["seq"] for r in records] == [0, 1]


class TestCrashRecovery:
    def _capture(self, tmp_path, n=4):
        db = _db(tmp_path)
        for i in range(n):
            db.query(_select(value=10 + i))
        db.close()
        return tmp_path / "db" / "_qlog"

    def test_torn_final_line_tolerated_by_reader(self, tmp_path):
        qlog_dir = self._capture(tmp_path)
        segment = sorted(qlog_dir.glob("qlog-*.jsonl"))[-1]
        with open(segment, "a", encoding="utf-8") as f:
            f.write('{"seq": 99, "outcome": "ok", "trunc')  # torn write
        records = read_query_log(qlog_dir)
        assert len(records) == 4
        assert all(r["outcome"] == "ok" for r in records)

    def test_torn_final_line_truncated_on_reopen(self, tmp_path):
        qlog_dir = self._capture(tmp_path)
        segment = sorted(qlog_dir.glob("qlog-*.jsonl"))[-1]
        with open(segment, "a", encoding="utf-8") as f:
            f.write('{"seq": 99, "outcome": "ok", "trunc')
        log = QueryLog(qlog_dir)  # writer recovery truncates the tail
        log.close()
        content = segment.read_text(encoding="utf-8")
        assert "trunc" not in content
        assert len(content.strip().splitlines()) == 4
        # The next record resumes the sequence after the last intact one.
        db = Database(tmp_path / "db", metrics=MetricsRegistry(),
                      query_log=QueryLog(qlog_dir))
        db.query(_select())
        db.close()
        assert read_query_log(qlog_dir)[-1]["seq"] == 4

    def test_mid_file_corruption_raises_naming_file(self, tmp_path):
        qlog_dir = self._capture(tmp_path)
        segment = sorted(qlog_dir.glob("qlog-*.jsonl"))[-1]
        lines = segment.read_text(encoding="utf-8").strip().splitlines()
        lines[1] = '{"seq": 1, "garbage'
        segment.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(CatalogError) as excinfo:
            read_query_log(qlog_dir)
        assert str(segment) in str(excinfo.value)
        assert "line 2" in str(excinfo.value)
        # The writer's recovery contract is the same.
        with pytest.raises(CatalogError):
            QueryLog(qlog_dir)

    def test_torn_line_in_sealed_segment_raises(self, tmp_path):
        # Only the FINAL segment may carry a torn tail; damage in an
        # earlier (sealed) segment is real corruption.
        log = QueryLog(tmp_path / "qlog", max_segment_bytes=2048)
        db = _db(tmp_path, query_log=log)
        for i in range(30):
            db.query(_select(value=i))
        db.close()
        segments = sorted((tmp_path / "qlog").glob("qlog-*.jsonl"))
        assert len(segments) > 1
        with open(segments[0], "a", encoding="utf-8") as f:
            f.write('{"torn')
        with pytest.raises(CatalogError) as excinfo:
            read_query_log(tmp_path / "qlog")
        assert str(segments[0]) in str(excinfo.value)

    def test_missing_log_raises(self, tmp_path):
        with pytest.raises(CatalogError):
            read_query_log(tmp_path / "nope")

    def test_single_segment_file_readable(self, tmp_path):
        qlog_dir = self._capture(tmp_path, n=2)
        segment = sorted(qlog_dir.glob("qlog-*.jsonl"))[-1]
        records = read_query_log(segment)
        assert len(records) == 2
        assert json.dumps(records[0])  # JSON-safe all the way down
