"""Tests for IN-list predicates across the whole stack."""

import numpy as np
import pytest

from repro import InPredicate, Predicate, SelectQuery, Strategy
from repro.errors import PlanError, SQLError, UnsupportedOperationError

from .reference import canonical, full_column


class TestInPredicateUnit:
    def test_mask(self):
        pred = InPredicate("c", (1, 3, 5))
        values = np.array([0, 1, 2, 3, 4, 5])
        assert pred.mask(values).tolist() == [
            False, True, False, True, False, True,
        ]

    def test_values_deduped_and_sorted(self):
        assert InPredicate("c", (5, 1, 5, 3)).in_values == (1, 3, 5)

    def test_empty_rejected(self):
        with pytest.raises(PlanError):
            InPredicate("c", ())

    def test_matches_value(self):
        pred = InPredicate("c", (2, 4))
        assert pred.matches_value(2)
        assert not pred.matches_value(3)

    def test_overlaps_range(self):
        pred = InPredicate("c", (10, 20))
        assert pred.overlaps_range(5, 12)
        assert not pred.overlaps_range(11, 19)

    def test_contains_range(self):
        pred = InPredicate("c", (3, 4, 5))
        assert pred.contains_range(3, 5)
        assert not pred.contains_range(3, 6)
        assert pred.contains_range(4, 4)


class TestInThroughStrategies:
    @pytest.mark.parametrize("encoding", ["uncompressed", "rle", "bitvector"])
    @pytest.mark.parametrize("strategy", list(Strategy), ids=lambda s: s.value)
    def test_all_strategies(self, tpch_db, encoding, strategy):
        lineitem = tpch_db.projection("lineitem")
        lin = full_column(lineitem, "linenum")
        query = SelectQuery(
            projection="lineitem",
            select=("linenum",),
            predicates=(InPredicate("linenum", (1, 3, 6)),),
            encodings=(("linenum", encoding),),
        )
        try:
            result = tpch_db.query(query, strategy=strategy, cold=True)
        except UnsupportedOperationError:
            pytest.skip("bit-vector position filtering")
        mask = np.isin(lin, [1, 3, 6])
        assert result.n_rows == int(mask.sum())
        expected = lin[mask].astype(np.int64).reshape(-1, 1)
        assert np.array_equal(
            canonical(result.tuples.data), canonical(expected)
        )

    def test_mixed_with_comparison(self, tpch_db):
        lineitem = tpch_db.projection("lineitem")
        ship = full_column(lineitem, "shipdate")
        lin = full_column(lineitem, "linenum")
        x = int(np.quantile(ship, 0.5))
        query = SelectQuery(
            projection="lineitem",
            select=("shipdate", "linenum"),
            predicates=(
                Predicate("shipdate", "<", x),
                InPredicate("linenum", (2, 5)),
            ),
        )
        result = tpch_db.query(query, strategy="lm-parallel", cold=True)
        mask = (ship < x) & np.isin(lin, [2, 5])
        assert result.n_rows == int(mask.sum())

    def test_index_resolves_in_on_sorted_column(self, tpch_db):
        lineitem = tpch_db.projection("lineitem")
        flag = full_column(lineitem, "returnflag")
        query = SelectQuery(
            projection="lineitem",
            select=("returnflag",),
            predicates=(InPredicate("returnflag", (0, 2)),),
        )
        result = tpch_db.query(query, strategy="lm-parallel", cold=True)
        assert result.stats.extra.get("index_lookups") == 1
        assert result.n_rows == int(np.isin(flag, [0, 2]).sum())


class TestInThroughSQL:
    def test_numeric_in(self, tpch_db):
        r = tpch_db.sql("SELECT linenum FROM lineitem WHERE linenum IN (1, 7)")
        lin = full_column(tpch_db.projection("lineitem"), "linenum")
        assert r.n_rows == int(np.isin(lin, [1, 7]).sum())

    def test_dictionary_string_in(self, tpch_db):
        r = tpch_db.sql(
            "SELECT returnflag FROM lineitem WHERE returnflag IN ('A', 'R')"
        )
        flag = full_column(tpch_db.projection("lineitem"), "returnflag")
        assert r.n_rows == int(np.isin(flag, [0, 2]).sum())
        assert {row[0] for row in r.decoded_rows()} == {"A", "R"}

    def test_mixed_literal_kinds_rejected(self, tpch_db):
        with pytest.raises(SQLError):
            tpch_db.sql(
                "SELECT linenum FROM lineitem WHERE linenum IN (1, 'two')"
            )

    def test_empty_in_list_rejected(self, tpch_db):
        with pytest.raises(SQLError):
            tpch_db.sql("SELECT linenum FROM lineitem WHERE linenum IN ()")
