"""Unit tests for the row-major TupleSet."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.metrics import QueryStats
from repro.operators.tuples import POSITION_COLUMN, TupleSet


def make_tuples():
    return TupleSet.stitch(
        {
            POSITION_COLUMN: np.array([0, 1, 2, 3]),
            "a": np.array([10, 20, 30, 40]),
            "b": np.array([1, 2, 3, 4]),
        }
    )


class TestStitch:
    def test_shape_and_row_major(self):
        ts = make_tuples()
        assert ts.n_tuples == 4
        assert ts.data.shape == (4, 3)
        assert ts.data.flags["C_CONTIGUOUS"]

    def test_counts_constructions(self):
        stats = QueryStats()
        TupleSet.stitch({"a": np.arange(7)}, stats=stats)
        assert stats.tuples_constructed == 7

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ExecutionError):
            TupleSet.stitch({"a": np.arange(3), "b": np.arange(4)})

    def test_shape_validation(self):
        with pytest.raises(ExecutionError):
            TupleSet(columns=("a", "b"), data=np.zeros((3, 3), dtype=np.int64))


class TestAccess:
    def test_column_view(self):
        ts = make_tuples()
        assert ts.column("a").tolist() == [10, 20, 30, 40]
        assert ts.positions.tolist() == [0, 1, 2, 3]

    def test_unknown_column(self):
        with pytest.raises(ExecutionError):
            make_tuples().column("zzz")

    def test_rows(self):
        assert make_tuples().rows()[0] == (0, 10, 1)


class TestTransforms:
    def test_filter(self):
        ts = make_tuples().filter(np.array([True, False, True, False]))
        assert ts.n_tuples == 2
        assert ts.column("a").tolist() == [10, 30]

    def test_extend(self):
        stats = QueryStats()
        ts = make_tuples().extend("c", np.array([7, 8, 9, 10]), stats=stats)
        assert ts.columns[-1] == "c"
        assert ts.column("c").tolist() == [7, 8, 9, 10]
        assert stats.tuples_constructed == 4

    def test_without(self):
        ts = make_tuples().without(POSITION_COLUMN)
        assert POSITION_COLUMN not in ts.columns
        assert ts.data.shape == (4, 2)

    def test_select_reorders(self):
        ts = make_tuples().select(["b", "a"])
        assert ts.columns == ("b", "a")
        assert ts.rows()[0] == (1, 10)

    def test_concat(self):
        a = make_tuples()
        b = make_tuples()
        out = TupleSet.concat([a, b])
        assert out.n_tuples == 8

    def test_concat_mismatch_rejected(self):
        with pytest.raises(ExecutionError):
            TupleSet.concat([make_tuples(), make_tuples().without("a")])

    def test_empty(self):
        ts = TupleSet.empty(("a", "b"))
        assert ts.n_tuples == 0
        assert ts.columns == ("a", "b")
