"""Unit tests for mini-columns and multi-columns."""

import numpy as np
import pytest

from repro.dtypes import INT32
from repro.errors import ExecutionError
from repro.multicolumn import MiniColumn, MultiColumn
from repro.positions import BitmapPositions, RangePositions
from repro.storage import encoding_by_name, write_column


@pytest.fixture
def pinned_column(tmp_path):
    rng = np.random.default_rng(31)
    values = np.sort(rng.integers(0, 30, size=80_000)).astype(np.int32)
    cf = write_column(
        tmp_path / "x.col", values, INT32, encoding_by_name("rle"), column_name="x"
    )
    mini = MiniColumn(cf)
    for desc in cf.descriptors:
        mini.pin(desc, cf.read_payload(desc.index))
    return values, cf, mini


class TestMiniColumn:
    def test_gather_across_blocks(self, pinned_column):
        values, cf, mini = pinned_column
        picks = np.array([0, 17, 40_000, 79_999], dtype=np.int64)
        assert np.array_equal(mini.gather(picks), values[picks])

    def test_gather_empty(self, pinned_column):
        _values, _cf, mini = pinned_column
        assert len(mini.gather(np.empty(0, dtype=np.int64))) == 0

    def test_has_block(self, pinned_column):
        _values, cf, mini = pinned_column
        assert mini.has_block(0)
        assert not mini.has_block(cf.n_blocks + 5)
        assert mini.block_count() == cf.n_blocks
        assert mini.column == "x"


class TestMultiColumn:
    def test_degree_and_attach(self, pinned_column):
        _values, cf, mini = pinned_column
        mc = MultiColumn(0, cf.n_values, RangePositions(0, cf.n_values))
        assert mc.degree == 0
        mc.attach(mini)
        assert mc.degree == 1
        assert mc.has_column("x")
        assert mc.minicolumn("x") is mini

    def test_missing_minicolumn_raises(self):
        mc = MultiColumn(0, 10, RangePositions(0, 10))
        with pytest.raises(ExecutionError):
            mc.minicolumn("nope")

    def test_intersect_merges_minicolumns_and_descriptors(self, pinned_column):
        _values, cf, mini = pinned_column
        n = cf.n_values
        left = MultiColumn(0, n, RangePositions(0, 1000), {"x": mini})
        mask = np.zeros(n, dtype=bool)
        mask[500:1500] = True
        right = MultiColumn(
            0, n, BitmapPositions.from_mask(0, mask), {}
        )
        out = left.intersect(right)
        assert out.degree == 1
        assert out.valid_count() == 500
        assert sorted(out.descriptor.to_array().tolist()) == list(range(500, 1000))

    def test_with_descriptor_keeps_pins(self, pinned_column):
        _values, cf, mini = pinned_column
        mc = MultiColumn(0, cf.n_values, RangePositions(0, 50), {"x": mini})
        replaced = mc.with_descriptor(RangePositions(0, 10))
        assert replaced.valid_count() == 10
        assert replaced.minicolumn("x") is mini
        assert mc.valid_count() == 50  # original untouched
