"""Workload summarization and log replay (:mod:`repro.workload`).

The summarize tests run against synthetic record dicts (the qlog schema is
plain JSON, so hand-built records are first-class); the replay tests capture
a real log with one database and re-execute it against a second database
over the same catalog root, including a tampered-hash mismatch case.
"""

from __future__ import annotations

import json

import pytest

from repro import (
    Database,
    MetricsRegistry,
    Predicate,
    SelectQuery,
    read_query_log,
    replay_log,
    summarize_log,
)
from repro.workload import _percentile
from repro.testing import make_random_projection


def _record(seq=0, outcome="ok", strategy="em-parallel", origin="embedded",
            wall=1.0, **extra):
    base = {
        "seq": seq,
        "outcome": outcome,
        "origin": origin,
        "strategy": strategy,
        "fingerprint": extra.pop("fingerprint", "abc123"),
        "template": extra.pop("template", "SELECT k FROM t WHERE k<?"),
        "kind": "select",
        "columns": extra.pop("columns", ["k"]),
        "wall_ms": wall,
        "simulated_ms": wall * 2,
        "queue_wait_ms": 0.5,
        "rows": 10,
    }
    base.update(extra)
    return base


class TestPercentile:
    def test_empty_and_single(self):
        assert _percentile([], 0.5) == 0.0
        assert _percentile([7.0], 0.99) == 7.0

    def test_interpolates(self):
        values = [0.0, 10.0]
        assert _percentile(values, 0.5) == 5.0
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert _percentile(values, 0.5) == 3.0
        assert _percentile(values, 1.0) == 5.0
        assert _percentile(values, 0.0) == 1.0


class TestSummarize:
    def test_aggregates_mixes_and_totals(self):
        records = [
            _record(seq=0, strategy="em-parallel", wall=1.0,
                    encodings={"k": "rle"}),
            _record(seq=1, strategy="lm-parallel", wall=3.0, origin="served",
                    encodings={"k": "rle", "v0": "dictionary"},
                    columns=["k", "v0"]),
            _record(seq=2, outcome="error", strategy="lm-pipelined", wall=0.2,
                    fingerprint="fff000", template="SELECT v0 FROM t"),
        ]
        s = summarize_log(records)
        assert s.total == 3
        assert s.by_outcome == {"ok": 2, "error": 1}
        assert s.by_strategy == {
            "em-parallel": 1, "lm-parallel": 1, "lm-pipelined": 1,
        }
        assert s.by_origin == {"embedded": 2, "served": 1}
        assert s.by_encoding == {"rle": 2, "dictionary": 1}
        assert s.column_touches == {"k": 3, "v0": 1}
        assert s.wall_ms_total == pytest.approx(4.2)
        assert len(s.templates) == 2
        # Only ok/degraded records contribute latency samples.
        assert len(s.wall_samples) == 2

    def test_partition_and_counter_totals(self):
        records = [
            _record(seq=0, partitions={"scanned": 3, "pruned": 1},
                    counters={"block_reads": 5}),
            _record(seq=1, partitions={"scanned": 2, "pruned": 4},
                    counters={"block_reads": 7, "cache_hits": 2}),
        ]
        s = summarize_log(records)
        assert s.partitions_scanned == 5
        assert s.partitions_pruned == 5
        assert s.counters == {"block_reads": 12, "cache_hits": 2}

    def test_top_templates_orders_by_wall_time(self):
        records = (
            [_record(seq=i, fingerprint="cheap", wall=0.1)
             for i in range(10)]
            + [_record(seq=20, fingerprint="dear", wall=50.0,
                       template="SELECT * FROM t")]
        )
        s = summarize_log(records)
        top = s.top_templates(2)
        assert [t.fingerprint for t in top] == ["dear", "cheap"]
        assert top[1].count == 10

    def test_template_percentiles_and_selectivity(self):
        records = [
            _record(seq=i, wall=float(i), selectivity=0.25)
            for i in range(1, 11)
        ]
        s = summarize_log(records)
        t = s.templates["abc123"]
        pct = t.percentiles()
        assert pct["p50"] == pytest.approx(5.5)
        assert t.to_dict()["selectivity_avg"] == pytest.approx(0.25)

    def test_to_dict_and_render_are_json_safe(self):
        s = summarize_log([_record(seq=i, wall=float(i)) for i in range(5)])
        d = s.to_dict(top=3)
        assert json.dumps(d)
        assert d["total"] == 5
        assert d["distinct_templates"] == 1
        text = s.render()
        assert "records        5" in text
        assert "templates by total wall time" in text

    def test_empty_log(self):
        s = summarize_log([])
        assert s.total == 0
        assert s.latency_percentiles() == {"p50": 0.0, "p90": 0.0, "p99": 0.0}
        assert json.dumps(s.to_dict())
        assert s.render()


@pytest.fixture()
def captured(tmp_path):
    """A real captured log plus a second (recorder-off) db over the same root."""
    db = Database(tmp_path / "db", metrics=MetricsRegistry())
    make_random_projection(db, n_rows=3000, seed=13)
    queries = [
        SelectQuery("t", ("k", "v0"), predicates=(Predicate("k", "<", v),))
        for v in (20, 50, 80)
    ]
    for strategy in ("em-pipelined", "em-parallel", "lm-pipelined",
                     "lm-parallel"):
        for q in queries:
            db.query(q, strategy=strategy)
    db.close()
    records = read_query_log(tmp_path / "db" / "_qlog")
    replay_db = Database(tmp_path / "db", metrics=MetricsRegistry(),
                         query_log=False)
    yield records, replay_db
    replay_db.close()


class TestReplay:
    def test_full_replay_matches(self, captured):
        records, replay_db = captured
        report = replay_log(replay_db, records, check=True)
        assert report.ok
        assert report.total == 12
        assert report.replayed == 12
        assert report.matched == 12
        assert report.mismatched == 0
        assert len(report.strategies) == 4
        assert report.origins == {"embedded": 12}

    def test_tampered_hash_detected(self, captured):
        records, replay_db = captured
        records[3]["result_hash"] = "0" * 16
        report = replay_log(replay_db, records, check=True)
        assert not report.ok
        assert report.mismatched == 1
        assert report.matched == 11
        mismatch = report.mismatches[0]
        assert mismatch.seq == records[3]["seq"]
        assert mismatch.recorded_hash == "0" * 16
        assert mismatch.replayed_hash != "0" * 16
        assert "MISMATCH" in report.render()

    def test_non_ok_and_hashless_records_skipped(self, captured):
        records, replay_db = captured
        records = list(records)
        records[0] = dict(records[0], outcome="error")
        hashless = dict(records[1])
        del hashless["result_hash"]
        records[1] = hashless
        report = replay_log(replay_db, records, check=True)
        assert report.ok
        assert report.skipped == 2
        assert report.replayed == 10

    def test_check_false_replays_hashless(self, captured):
        records, replay_db = captured
        stripped = [
            {k: v for k, v in r.items() if k != "result_hash"}
            for r in records
        ]
        report = replay_log(replay_db, stripped, check=False)
        assert report.ok
        assert report.replayed == 12
        assert report.matched == 12  # vacuous without hashes

    def test_limit_caps_replays(self, captured):
        records, replay_db = captured
        report = replay_log(replay_db, records, check=True, limit=5)
        assert report.replayed == 5
        assert report.skipped == 7
        assert report.ok

    def test_residuals_accumulate_consistently(self, captured):
        """Model-residual accounting is exact against QueryStats totals."""
        records, db = captured
        summary = summarize_log(records, db=db)
        templates = list(summary.templates.values())
        assert any(t.predicted_count for t in templates)
        for t in templates:
            # The defining identity, exact (no rounding in the fields).
            assert t.residual_ms_total == (
                t.predicted_ms_total - t.measured_on_predicted_ms_total
            )
            # Every record here is an ok select with its projection
            # recorded, so the predicted subset is the whole template and
            # its measured side equals the QueryStats-derived total.
            assert t.predicted_count == t.count
            assert t.measured_on_predicted_ms_total == t.simulated_ms_total
        assert sum(t.simulated_ms_total for t in templates) == pytest.approx(
            summary.simulated_ms_total
        )
        assert sum(t.residual_ms_total for t in templates) == pytest.approx(
            sum(t.predicted_ms_total for t in templates)
            - summary.simulated_ms_total
        )
        d = summary.to_dict()
        top = d["top_templates"][0]
        assert "predicted_count" in top and "residual_ms_total" in top

    def test_residuals_require_a_database(self, captured):
        records, _db = captured
        summary = summarize_log(records)
        assert all(
            t.predicted_count == 0 and t.residual_ms_total == 0.0
            for t in summary.templates.values()
        )

    def test_unknown_projection_counts_as_error(self, captured):
        records, replay_db = captured
        bad = dict(records[0])
        bad["query"] = dict(bad["query"], projection="nope")
        report = replay_log(replay_db, [bad], check=True)
        assert report.errors == 1
        assert not report.ok
        assert report.error_detail[0]["seq"] == bad["seq"]
        assert json.dumps(report.to_dict())
