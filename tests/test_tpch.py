"""Tests for the TPC-H-style generator and loader."""

import numpy as np
import pytest

from repro.tpch import (
    SHIPDATE_MAX,
    SHIPDATE_MIN,
    generate_customer,
    generate_lineitem,
    generate_orders,
    lineitem_rows_for_scale,
)

from .reference import full_column


class TestGenerator:
    def test_deterministic(self):
        a = generate_lineitem(5000, seed=1)
        b = generate_lineitem(5000, seed=1)
        assert np.array_equal(a.shipdate, b.shipdate)
        assert np.array_equal(a.linenum, b.linenum)

    def test_seed_changes_data(self):
        a = generate_lineitem(5000, seed=1)
        b = generate_lineitem(5000, seed=2)
        assert not np.array_equal(a.shipdate, b.shipdate)

    def test_domains(self):
        li = generate_lineitem(20_000, seed=3)
        assert li.shipdate.min() >= SHIPDATE_MIN
        assert li.shipdate.max() <= SHIPDATE_MAX
        assert set(np.unique(li.linenum)) == set(range(1, 8))
        assert li.quantity.min() >= 1 and li.quantity.max() <= 50
        assert set(np.unique(li.returnflag)) <= {0, 1, 2}

    def test_linenum_frequencies_decrease(self):
        li = generate_lineitem(100_000, seed=4)
        counts = np.bincount(li.linenum, minlength=8)[1:8]
        assert np.all(np.diff(counts) < 0)

    def test_orders_sorted_by_shipdate(self):
        o = generate_orders(10_000, 1_000, seed=5)
        assert np.all(np.diff(o.shipdate) >= 0)
        assert o.custkey.min() >= 1 and o.custkey.max() <= 1_000

    def test_customer_pk_dense(self):
        c = generate_customer(500, seed=6)
        assert np.array_equal(c.custkey, np.arange(1, 501))
        assert c.nationcode.min() >= 0 and c.nationcode.max() < 25


class TestLoader:
    def test_scale_rows(self):
        assert lineitem_rows_for_scale(10) == 60_000_000
        assert lineitem_rows_for_scale(0.001) == 6_000
        assert lineitem_rows_for_scale(0) == 1

    def test_projections_present(self, tpch_db):
        assert tpch_db.catalog.names() == ["customer", "lineitem", "orders"]

    def test_cardinality_ratios(self, tpch_db):
        n_l = tpch_db.projection("lineitem").n_rows
        n_o = tpch_db.projection("orders").n_rows
        n_c = tpch_db.projection("customer").n_rows
        assert n_o == n_l // 4
        assert n_c == n_o // 10

    def test_lineitem_sort_order(self, tpch_db):
        li = tpch_db.projection("lineitem")
        flag = full_column(li, "returnflag").astype(np.int64)
        ship = full_column(li, "shipdate").astype(np.int64)
        lin = full_column(li, "linenum").astype(np.int64)
        key = (flag * 10**9 + ship) * 10 + lin
        assert np.all(np.diff(key) >= 0)

    def test_linenum_stored_redundantly(self, tpch_db):
        li = tpch_db.projection("lineitem")
        assert li.column("linenum").encodings == [
            "bitvector",
            "rle",
            "uncompressed",
        ]
        a = full_column(li, "linenum", "uncompressed")
        b = full_column(li, "linenum", "rle")
        c = full_column(li, "linenum", "bitvector")
        assert np.array_equal(a, b)
        assert np.array_equal(a, c)

    def test_rle_compression_effective_on_sorted_prefix(self, tpch_db):
        li = tpch_db.projection("lineitem")
        shipdate = li.column("shipdate").file("rle")
        # The sorted prefix makes average run length substantially > 1.
        assert shipdate.avg_run_length > 1.2
        returnflag = li.column("returnflag").file("rle")
        assert returnflag.total_runs == 3

    def test_fk_integrity(self, tpch_db):
        orders = tpch_db.projection("orders")
        customer = tpch_db.projection("customer")
        custkeys = full_column(orders, "custkey")
        assert custkeys.min() >= 1
        assert custkeys.max() <= customer.n_rows
