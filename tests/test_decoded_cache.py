"""Unit tests for the decoded-block cache (scan fast-path, level 2)."""

import numpy as np
import pytest

from repro import Database, Predicate, SelectQuery
from repro.buffer import BufferPool, DecodedBlockCache, DiskModel
from repro.dtypes import INT32
from repro.metrics import QueryStats
from repro.storage import encoding_by_name, write_column
from repro.tpch.generator import SHIPDATE_MAX, SHIPDATE_MIN


@pytest.fixture
def column(tmp_path):
    values = np.arange(100_000, dtype=np.int32)  # 7 uncompressed blocks
    return write_column(
        tmp_path / "c.col", values, INT32, encoding_by_name("uncompressed")
    )


@pytest.fixture
def rle_column(tmp_path):
    values = np.repeat(np.arange(5_000, dtype=np.int32), 8)
    return write_column(
        tmp_path / "r.col", values, INT32, encoding_by_name("rle")
    )


def _payload(column, index):
    return column.read_payload(index)


class TestDecodedBlockCache:
    def test_miss_then_hit_returns_same_array(self, column):
        cache = DecodedBlockCache()
        stats = QueryStats()
        desc = column.descriptors[0]
        first = cache.values(column, desc, _payload(column, 0), stats)
        assert stats.decode_misses == 1 and stats.decode_hits == 0
        second = cache.values(column, desc, _payload(column, 0), stats)
        assert second is first  # served from cache, not re-decoded
        assert stats.decode_hits == 1
        np.testing.assert_array_equal(
            first, np.arange(desc.start_pos, desc.end_pos, dtype=np.int32)
        )

    def test_cached_arrays_are_read_only(self, column):
        cache = DecodedBlockCache()
        stats = QueryStats()
        desc = column.descriptors[0]
        values = cache.values(column, desc, _payload(column, 0), stats)
        with pytest.raises(ValueError):
            values[0] = 99

    def test_run_tables_cached_separately_from_values(self, rle_column):
        cache = DecodedBlockCache()
        stats = QueryStats()
        desc = rle_column.descriptors[0]
        payload = _payload(rle_column, 0)
        table = cache.runs(rle_column, desc, payload, stats)
        values = cache.values(rle_column, desc, payload, stats)
        assert stats.decode_misses == 2  # distinct kinds, distinct entries
        assert cache.runs(rle_column, desc, payload, stats) is table
        assert cache.values(rle_column, desc, payload, stats) is values
        assert stats.decode_hits == 2
        run_values, starts, lengths = table
        assert lengths.sum() == desc.n_values
        np.testing.assert_array_equal(np.repeat(run_values, lengths), values)

    def test_eviction_under_byte_pressure(self, column):
        stats = QueryStats()
        one_block = len(
            DecodedBlockCache().values(
                column, column.descriptors[0], _payload(column, 0), stats
            ).tobytes()
        )
        cache = DecodedBlockCache(capacity_bytes=2 * one_block)
        stats = QueryStats()
        for i in range(4):
            cache.values(column, column.descriptors[i], _payload(column, i), stats)
        assert len(cache) == 2
        assert cache.resident_bytes <= 2 * one_block
        # The two most recent blocks survived; the oldest was evicted.
        cache.values(column, column.descriptors[3], _payload(column, 3), stats)
        assert stats.decode_hits == 1
        cache.values(column, column.descriptors[0], _payload(column, 0), stats)
        assert stats.decode_misses == 5

    def test_eviction_prefers_blocks_the_pool_dropped(self, column):
        """Under pressure the cache first evicts an entry whose raw payload
        already left the buffer pool, even when it is not LRU-first."""
        block_size = len(_payload(column, 0))
        pool = BufferPool(capacity_bytes=2 * block_size, disk=DiskModel())
        stats = QueryStats()
        # Pool ends up holding raw blocks {2, 3}; block 0 has been evicted.
        for i in (0, 2, 3):
            pool.get(column, i, stats)
        assert not pool.contains(str(column.path), 0)
        decoded_size = column.descriptors[0].n_values * 4
        cache = DecodedBlockCache(capacity_bytes=2 * decoded_size, pool=pool)
        cache.values(column, column.descriptors[2], _payload(column, 2), stats)
        cache.values(column, column.descriptors[0], _payload(column, 0), stats)
        # Inserting block 3 forces an eviction. Strict LRU would drop block 2
        # (oldest), but block 2's raw bytes are still pool-resident while
        # block 0's are gone — so block 0 goes first.
        cache.values(column, column.descriptors[3], _payload(column, 3), stats)
        before = stats.decode_hits
        cache.values(column, column.descriptors[2], _payload(column, 2), stats)
        assert stats.decode_hits == before + 1  # block 2 survived
        misses = stats.decode_misses
        cache.values(column, column.descriptors[0], _payload(column, 0), stats)
        assert stats.decode_misses == misses + 1  # block 0 was the victim

    def test_clear(self, column):
        cache = DecodedBlockCache()
        stats = QueryStats()
        cache.values(column, column.descriptors[0], _payload(column, 0), stats)
        cache.clear()
        assert len(cache) == 0
        assert cache.resident_bytes == 0


class TestEngineIntegration:
    """The cache is a wall-clock optimisation only: same rows, same model."""

    QUERY = SelectQuery(
        projection="lineitem",
        select=("shipdate", "linenum"),
        predicates=(
            Predicate(
                "shipdate",
                "<",
                int(SHIPDATE_MIN + 0.1 * (SHIPDATE_MAX + 1 - SHIPDATE_MIN)),
            ),
            Predicate("linenum", "<", 7),
        ),
        encodings=(("linenum", "rle"),),
    )

    @pytest.mark.parametrize(
        "strategy", ("em-pipelined", "em-parallel", "lm-parallel")
    )
    def test_identical_to_uncached_execution(self, tpch_db, strategy):
        root = tpch_db.catalog.root
        plain = Database(root, decoded_cache_bytes=0)
        cached = Database(root)
        results = {}
        for name, db in (("plain", plain), ("cached", cached)):
            db.query(self.QUERY, strategy=strategy)  # populate caches
            results[name] = db.query(self.QUERY, strategy=strategy)
        assert results["cached"].rows() == results["plain"].rows()
        assert results["cached"].simulated_ms == results["plain"].simulated_ms
        plain_stats = results["plain"].stats.as_dict()
        cached_stats = results["cached"].stats.as_dict()
        assert cached_stats.pop("decode_hits") > 0
        assert cached_stats.pop("decode_misses") == 0
        for key in ("decode_hits", "decode_misses"):
            plain_stats.pop(key)
        assert cached_stats == plain_stats

    def test_clear_cache_drops_decoded_layer(self, tpch_db):
        root = tpch_db.catalog.root
        db = Database(root)
        db.query(self.QUERY)
        assert len(db.decoded) > 0
        db.clear_cache()
        assert len(db.decoded) == 0
        assert len(db.pool) == 0

    def test_zero_budget_disables_cache(self, tpch_db):
        db = Database(tpch_db.catalog.root, decoded_cache_bytes=0)
        assert db.decoded is None
        db.query(self.QUERY)
        result = db.query(self.QUERY)
        assert result.stats.decode_hits == 0
        assert result.stats.decode_misses == 0
