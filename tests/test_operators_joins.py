"""Unit tests for join operators and inner-table strategies."""

import numpy as np
import pytest

from repro.buffer import BufferPool
from repro.dtypes import INT32, INT64
from repro.metrics import QueryStats
from repro.multicolumn import MiniColumn, MultiColumn
from repro.operators import ExecutionContext, TupleSet
from repro.operators.joins import (
    fetch_right_columns,
    hash_join_tuples,
    join_materialized,
    join_multicolumn,
    join_single_column,
    merge_fetch_left,
)
from repro.errors import ExecutionError
from repro.positions import RangePositions
from repro.storage import encoding_by_name, write_column


@pytest.fixture
def ctx():
    return ExecutionContext(pool=BufferPool(), stats=QueryStats())


@pytest.fixture
def right_table(tmp_path):
    """A 3000-row PK table: key = 1..3000, payload = key * 2."""
    n = 3000
    key = np.arange(1, n + 1, dtype=np.int64)
    payload = (key * 2).astype(np.int32)
    cf_key = write_column(
        tmp_path / "rk.col", key, INT64, encoding_by_name("uncompressed"),
        column_name="rkey",
    )
    cf_payload = write_column(
        tmp_path / "rp.col", payload, INT32, encoding_by_name("uncompressed"),
        column_name="rval",
    )
    return key, payload, cf_key, cf_payload


LEFT_KEYS = np.array([42, 7, 2999, 7, 100], dtype=np.int64)
LEFT_POSITIONS = np.array([3, 10, 55, 70, 90], dtype=np.int64)


class TestSingleColumnJoin:
    def test_positions_pairing(self, ctx, right_table):
        key, _payload, _cf_key, _cf_payload = right_table
        out = join_single_column(ctx, LEFT_KEYS, LEFT_POSITIONS, key)
        assert out.n_matches == 5
        assert out.left_positions.tolist() == LEFT_POSITIONS.tolist()
        assert key[out.right_positions].tolist() == LEFT_KEYS.tolist()

    def test_unmatched_left_rows_dropped(self, ctx, right_table):
        key, _payload, _cf_key, _cf_payload = right_table
        probe = np.array([1, 99_999, 5], dtype=np.int64)
        pos = np.array([0, 1, 2], dtype=np.int64)
        out = join_single_column(ctx, probe, pos, key)
        assert out.left_positions.tolist() == [0, 2]
        assert key[out.right_positions].tolist() == [1, 5]

    def test_fetch_right_columns_out_of_order(self, ctx, right_table):
        key, payload, _cf_key, cf_payload = right_table
        join = join_single_column(ctx, LEFT_KEYS, LEFT_POSITIONS, key)
        values = fetch_right_columns(ctx, join, {"rval": cf_payload}, ["rval"])
        assert values["rval"].tolist() == (LEFT_KEYS * 2).tolist()
        # Unordered right positions trigger the out-of-order gather penalty.
        assert ctx.stats.extra.get("out_of_order_gathers", 0) > 0


class TestMaterializedJoin:
    def test_right_rows_follow_left_order(self, ctx, right_table):
        key, payload, _cf_key, _cf_payload = right_table
        right_tuples = TupleSet.stitch({"rkey": key, "rval": payload})
        out_pos, matched = join_materialized(
            ctx, LEFT_KEYS, LEFT_POSITIONS, right_tuples, "rkey"
        )
        assert out_pos.tolist() == LEFT_POSITIONS.tolist()
        assert matched.column("rval").tolist() == (LEFT_KEYS * 2).tolist()

    def test_counts_constructed_tuples(self, ctx, right_table):
        key, payload, _cf_key, _cf_payload = right_table
        right_tuples = TupleSet.stitch({"rkey": key, "rval": payload})
        before = ctx.stats.tuples_constructed
        join_materialized(ctx, LEFT_KEYS, LEFT_POSITIONS, right_tuples, "rkey")
        assert ctx.stats.tuples_constructed == before + len(LEFT_KEYS)


class TestMultiColumnJoin:
    def test_extracts_matching_values_only(self, ctx, right_table):
        key, payload, cf_key, cf_payload = right_table
        mc = MultiColumn(0, len(key), RangePositions(0, len(key)))
        for cf in (cf_key, cf_payload):
            mini = MiniColumn(cf)
            for desc in cf.descriptors:
                mini.pin(desc, cf.read_payload(desc.index))
            mc.attach(mini)
        out_pos, extracted = join_multicolumn(
            ctx,
            LEFT_KEYS,
            LEFT_POSITIONS,
            mc,
            {"rkey": cf_key, "rval": cf_payload},
            "rkey",
            ["rval"],
        )
        assert out_pos.tolist() == LEFT_POSITIONS.tolist()
        assert extracted["rval"].tolist() == (LEFT_KEYS * 2).tolist()


class TestHashJoinTuples:
    def test_fully_materialized_join(self, ctx, right_table):
        key, payload, _cf_key, _cf_payload = right_table
        left = TupleSet.stitch(
            {"lkey": LEFT_KEYS, "lval": np.arange(5, dtype=np.int64)}
        )
        right = TupleSet.stitch({"lkey_r": key, "rval": payload})
        out = hash_join_tuples(ctx, left, right, "lkey", "lkey_r")
        assert out.columns == ("lkey", "lval", "rval")
        assert out.column("rval").tolist() == (LEFT_KEYS * 2).tolist()


class TestMergeFetchLeft:
    def test_requires_sorted_positions(self, ctx, right_table):
        _key, _payload, cf_key, _cf_payload = right_table
        with pytest.raises(ExecutionError):
            merge_fetch_left(
                ctx,
                np.array([5, 1], dtype=np.int64),
                {"rkey": cf_key},
                ["rkey"],
            )

    def test_fetches_in_order(self, ctx, right_table):
        key, _payload, cf_key, _cf_payload = right_table
        got = merge_fetch_left(
            ctx, np.array([0, 2, 4], dtype=np.int64), {"rkey": cf_key}, ["rkey"]
        )
        assert got["rkey"].tolist() == [1, 3, 5]
