"""Failure injection for range-partitioned projections.

A damaged partition must never yield a partial answer: block corruption
mid-partition aborts the query with a truncated-but-valid span tree, and a
missing or mangled partition file surfaces as a :class:`CatalogError` that
names the offending partition.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, Predicate, SelectQuery
from repro.dtypes import INT32, ColumnSchema
from repro.errors import CatalogError, CorruptBlockError
from repro.storage import ColumnFile
from repro.storage.projection import Projection

from .test_failure_injection import corrupt_byte

N_ROWS = 40_000
N_PARTITIONS = 4


def _make_db(root, parallel_scans=0) -> Database:
    db = Database(root, parallel_scans=parallel_scans)
    rng = np.random.default_rng(17)
    a = np.sort(rng.integers(0, 1000, size=N_ROWS)).astype(np.int32)
    b = rng.integers(0, 1000, size=N_ROWS).astype(np.int32)
    db.catalog.create_projection(
        "t",
        {"a": a, "b": b},
        schemas={"a": ColumnSchema("a", INT32), "b": ColumnSchema("b", INT32)},
        sort_keys=["a"],
        encodings={"a": ["uncompressed"], "b": ["uncompressed"]},
        presorted=True,
        partitions=N_PARTITIONS,
    )
    return db


def _partition_dir(db_root, index: int):
    parent = Database(db_root).projection("t")
    return parent.partitions[index].directory


def _full_scan_query() -> SelectQuery:
    # ``!=`` predicates overlap every zone map, so no partition is pruned
    # and the damaged one is guaranteed to be visited.
    return SelectQuery(
        projection="t",
        select=("a", "b"),
        predicates=(Predicate("a", "!=", -1), Predicate("b", "!=", -1)),
    )


class TestCorruptBlockMidPartition:
    """A flipped byte inside one partition's column file."""

    def _corrupt_partition_block(self, root, index=2):
        db = _make_db(root)
        child = Projection.open(_partition_dir(root, index))
        path = child.column("b").files["uncompressed"]
        cf = ColumnFile.open(path)
        target = cf.descriptors[len(cf.descriptors) // 2]
        corrupt_byte(path, target.offset + 5)

    def _assert_truncated_tree(self, excinfo):
        root = getattr(excinfo.value, "spans", None)
        assert root is not None, "error carried no span tree"
        assert root.open_spans() == [], "dangling open spans after failure"
        assert root.status == "error"
        assert root.detail["error"] == "CorruptBlockError"

    @pytest.mark.parametrize(
        "strategy", ["em-parallel", "lm-parallel", "em-pipelined"]
    )
    def test_serial_partition_failure_truncates_spans(self, tmp_path, strategy):
        self._corrupt_partition_block(tmp_path)
        db = Database(tmp_path)
        with pytest.raises(CorruptBlockError) as excinfo:
            db.query(_full_scan_query(), strategy=strategy, cold=True, trace=True)
        self._assert_truncated_tree(excinfo)

    @pytest.mark.parametrize("strategy", ["em-parallel", "lm-parallel"])
    def test_parallel_partition_failure_truncates_spans(
        self, tmp_path, strategy
    ):
        self._corrupt_partition_block(tmp_path)
        with Database(tmp_path, parallel_scans=2) as db:
            with pytest.raises(CorruptBlockError) as excinfo:
                db.query(
                    _full_scan_query(), strategy=strategy, cold=True, trace=True
                )
            self._assert_truncated_tree(excinfo)

    def test_healthy_partitions_still_queryable_when_pruned(self, tmp_path):
        # Zone-map pruning that skips the damaged partition means the query
        # never touches it and succeeds.
        self._corrupt_partition_block(tmp_path, index=N_PARTITIONS - 1)
        db = Database(tmp_path)
        proj = db.projection("t")
        bad_zone = proj.partitions[-1].zone_maps["a"]
        query = SelectQuery(
            projection="t",
            select=("a", "b"),
            predicates=(Predicate("a", "<", bad_zone.min_value),),
        )
        result = db.query(query, cold=True, trace=True)
        assert result.stats.extra["partitions_pruned"] >= 1
        assert all(row[0] < bad_zone.min_value for row in result.rows())


class TestMissingPartitionFiles:
    """Lost partition data is a catalog failure naming the partition."""

    def test_deleted_column_file_names_partition(self, tmp_path):
        _make_db(tmp_path)
        child = Projection.open(_partition_dir(tmp_path, 1))
        child.column("b").files["uncompressed"].unlink()
        db = Database(tmp_path)
        with pytest.raises(CatalogError, match="part0001"):
            db.query(_full_scan_query(), cold=True)

    def test_deleted_partition_metadata_names_partition(self, tmp_path):
        _make_db(tmp_path)
        (_partition_dir(tmp_path, 3) / "projection.json").unlink()
        db = Database(tmp_path)
        with pytest.raises(CatalogError, match="part0003"):
            db.query(_full_scan_query(), cold=True)

    def test_corrupt_partition_metadata_names_partition(self, tmp_path):
        _make_db(tmp_path)
        meta = _partition_dir(tmp_path, 0) / "projection.json"
        meta.write_text("{ this is not json")
        db = Database(tmp_path)
        with pytest.raises(CatalogError, match="part0000"):
            db.query(_full_scan_query(), cold=True)

    def test_failure_is_all_or_nothing(self, tmp_path):
        # Even though three partitions are intact, no partial row set leaks
        # out: the query raises and returns nothing.
        _make_db(tmp_path)
        child = Projection.open(_partition_dir(tmp_path, 2))
        child.column("a").files["uncompressed"].unlink()
        db = Database(tmp_path)
        with pytest.raises(CatalogError, match="part0002"):
            db.query(_full_scan_query(), cold=True, trace=True)
