"""The crash axis: every write boundary crashed, recovered, and resumed.

One module-scoped sweep runs the full differential — the seeded mixed
insert/update/delete/merge/apply workload crashed at every one of its
write/fsync/rename boundaries, each recovery checked for prefix
consistency against the clean reference and resumed to the identical
final state (see :func:`tests.differential.run_crash_differential`). The
boundary schedule seed comes from ``REPRO_CRASH_SEED`` so the CI crash
matrix varies it run over run.
"""

from __future__ import annotations

import os

import pytest

from .differential import run_crash_differential

CRASH_SEED = int(os.environ.get("REPRO_CRASH_SEED", "20260807"))


@pytest.fixture(scope="module")
def crash_report(tmp_path_factory):
    root = tmp_path_factory.mktemp("crash_diff")
    return run_crash_differential(
        root / "template", root / "work", seed=CRASH_SEED
    )


class TestCrashDifferential:
    def test_every_recovery_is_prefix_consistent(self, crash_report):
        assert crash_report.mismatches == [], (
            f"seed={CRASH_SEED}: {len(crash_report.mismatches)} crash "
            f"recoveries diverged, first: {crash_report.mismatches[:3]}"
        )

    def test_sweep_covers_enough_boundaries(self, crash_report):
        # The acceptance bar: >= 200 distinct crash points, every one of
        # them actually fired (no trial ran to completion un-crashed).
        assert crash_report.boundaries >= 200, (
            f"workload crosses only {crash_report.boundaries} boundaries"
        )
        assert crash_report.trials == crash_report.boundaries
        assert crash_report.crashes == crash_report.trials

    def test_every_op_kind_was_interrupted(self, crash_report):
        assert {
            "insert", "update", "delete", "merge",
            "apply_build", "apply_drop",
        } <= crash_report.ops_crashed, crash_report.ops_crashed

    def test_torn_multi_row_inserts_recovered_as_prefixes(self, crash_report):
        # At least one crash must land mid-append, leaving a true row
        # prefix — otherwise the torn-tail path silently went untested.
        assert crash_report.prefix_recoveries > 0
