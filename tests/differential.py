"""Differential test harness: random queries, every strategy, one answer.

The four materialization strategies (and any stored-encoding override) are
different *physical* executions of the same logical query, so they must all
produce identical result sets. This module generates seeded random
selection/aggregation queries over the TPC-H fixture, runs each one under
every strategy with tracing on, and checks

* **result identity** — sorted row sets match across strategies/encodings;
* **span-tree invariants** — no dangling open spans, per-span *self*
  simulated times sum to the query's ``simulated_ms``, children's cumulative
  simulated time never exceeds their parent's, and cardinalities shrink
  monotonically across AND -> DS3 (the extractions are at exactly the
  intersected positions).

A second, **partitioned** axis (:func:`run_partition_differential`) runs
every generated query on an unpartitioned database and a range-partitioned
copy of the same data: partitioning plus zone-map pruning is purely
physical, so both layouts must agree row-for-row under every strategy.

A third, **fault-schedule** axis (:func:`run_fault_differential`) runs every
query on a clean database and on a database whose block reads fail
transiently under a seeded :class:`~repro.faults.FaultInjector` with retries
enabled: recovery is purely physical too, so every faulted execution must
reproduce the clean rows exactly — and the sweep asserts retries actually
fired, so the axis cannot silently degrade to a clean-read re-run. The CI
fault matrix varies the schedule via ``REPRO_FAULT_SEED``.

A fourth, **compressed-execution** axis (:func:`run_compressed_differential`)
runs every query on a database with the compressed kernels on and on one
with them off, over the same stored data (loaded with dictionary and FOR
stored encodings so every kernel actually fires): operating directly on
compressed data is purely physical, so all executions must agree — and the
sweep asserts kernel scans actually happened on the compressed side and
never on the plain side.

A fifth, **concurrency** axis (:func:`run_concurrent_differential`) runs
every query serially to establish reference rows, then replays the whole
(query, strategy) matrix through the asyncio query server with 8 concurrent
client sessions sharing one Database: admission queueing, worker-thread
execution, shared caches under contention and the JSON wire format are all
purely physical, so every served execution must reproduce the serial rows
bit for bit. Engine values are integers end to end, so the JSON round trip
is exact and "bit-identical" is a meaningful comparison over the wire.

A sixth, **replay** axis (:func:`run_replay_differential`) exercises the
workload flight recorder end to end: a mixed capture phase runs every
generated query under all four strategies embedded *and* through the query
server from concurrent sessions (so both origins land in the log), then the
captured log is read back (torn-tail-tolerant reader) and re-executed
against a second Database over the same stored files with
``repro.workload.replay_log(check=True)`` — every replayed result hash must
be bit-identical to the hash captured at record time. Recording, log
round-tripping and replay are all purely observational, so a single
mismatch means either the recorder or the engine drifted.

A seventh, **advisor** axis (:func:`run_advisor_differential`) proves
``repro advise --apply`` is purely physical: a seeded workload is captured
into the query log (every generated query under all four strategies
embedded), the database root is cloned, the advisor's recommended plan is
applied to the clone through the real catalog machinery (building and
dropping projections), and then every captured ok record is replayed on the
clone **both** before and after the apply with
``repro.workload.replay_log(check=True)`` — the post-apply replay also runs
under a different ``parallel_scans`` setting to stack a second physical
knob on top. Every replayed result hash must equal the hash captured at
record time, so a single mismatch means the advisor changed an answer.

Known physical limitation: LM-pipelined cannot position-filter bit-vector
encoded columns (``UnsupportedOperationError``); such runs are recorded as
skips, not failures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import Predicate, SelectQuery, Strategy
from repro.errors import UnsupportedOperationError
from repro.operators.aggregate import AggSpec

#: Every selection strategy the harness differentials across.
STRATEGIES = tuple(Strategy)

_OPS = ("<", "<=", ">", ">=", "=", "!=")
_AGG_FUNCS = ("sum", "count", "min", "max", "avg")


@dataclass
class DifferentialReport:
    """Outcome of one differential sweep."""

    queries: int = 0
    runs: int = 0
    skipped: int = 0
    retries: int = 0
    compressed_scans: int = 0
    morphs: int = 0
    encodings_used: set = field(default_factory=set)
    mismatches: list = field(default_factory=list)

    def record_mismatch(self, query, strategy, expected, got) -> None:
        """Keep a bounded, readable record of a result divergence."""
        self.mismatches.append(
            {
                "query": query,
                "strategy": strategy,
                "expected_rows": len(expected),
                "got_rows": len(got),
                "first_diff": _first_diff(expected, got),
            }
        )


def _first_diff(expected, got):
    for i, (e, g) in enumerate(zip(expected, got)):
        if e != g:
            return {"index": i, "expected": e, "got": g}
    return {"index": min(len(expected), len(got)), "expected": None, "got": None}


class QueryGenerator:
    """Seeded random :class:`SelectQuery` generator over one projection."""

    def __init__(self, db, projection: str = "lineitem", seed: int = 0):
        self.db = db
        self.name = projection
        self.projection = db.projection(projection)
        self.rng = random.Random(seed)
        self.columns = list(self.projection.column_names)
        # Observed value domains drive predicate constants, so generated
        # predicates land anywhere from empty to full selectivity.
        self.domains = {}
        self.encodings = {}
        for col in self.columns:
            # Partition-aware reads: a partitioned projection's values and
            # encodings live in its children.
            values = self.projection.read_column_values(col)
            self.domains[col] = (int(values.min()), int(values.max()))
            self.encodings[col] = list(
                self.projection.physical_column(col).encodings
            )

    def _predicate(self, col: str) -> Predicate:
        lo, hi = self.domains[col]
        value = self.rng.randint(lo, hi)
        return Predicate(col, self.rng.choice(_OPS), value)

    def _encoding_overrides(self, cols) -> tuple[tuple[str, str], ...]:
        out = []
        for col in cols:
            if len(self.encodings[col]) > 1 and self.rng.random() < 0.5:
                out.append((col, self.rng.choice(self.encodings[col])))
        return tuple(out)

    def next_query(self) -> SelectQuery:
        """One random selection or aggregation query."""
        n_select = self.rng.randint(1, min(3, len(self.columns)))
        select = tuple(self.rng.sample(self.columns, n_select))
        pred_cols = self.rng.sample(
            self.columns, self.rng.randint(0, min(2, len(self.columns)))
        )
        predicates = tuple(self._predicate(c) for c in pred_cols)
        encodings = self._encoding_overrides(
            dict.fromkeys(list(select) + pred_cols)
        )
        if self.rng.random() < 0.25:
            group = self.rng.choice(self.columns)
            agg_col = self.rng.choice([c for c in self.columns if c != group])
            spec = AggSpec(self.rng.choice(_AGG_FUNCS), agg_col)
            return SelectQuery(
                projection=self.name,
                select=(group, spec.output_name),
                predicates=predicates,
                group_by=group,
                aggregates=(spec,),
                encodings=encodings,
            )
        order_by = ()
        if self.rng.random() < 0.3:
            order_by = ((self.rng.choice(select), self.rng.random() < 0.5),)
        return SelectQuery(
            projection=self.name,
            select=select,
            predicates=predicates,
            encodings=encodings,
            order_by=order_by,
        )


def check_span_invariants(result, constants, rtol: float = 1e-6) -> None:
    """Assert the EXPLAIN ANALYZE tree invariants for one traced result."""
    root = result.spans
    assert root is not None, "traced query produced no span tree"
    assert root.open_spans() == [], "dangling open spans after execution"
    total_self = sum(s.self_simulated_ms(constants) for s in root.walk())
    tolerance = max(1e-9, rtol * max(result.simulated_ms, 1.0))
    assert abs(total_self - result.simulated_ms) <= tolerance, (
        f"self simulated times sum to {total_self}, "
        f"query reports {result.simulated_ms}"
    )
    for span in root.walk():
        child_sum = sum(c.simulated_ms(constants) for c in span.children)
        assert child_sum <= span.simulated_ms(constants) + tolerance
        if span.name == "AND":
            assert span.detail["positions"] <= min(span.detail["inputs"])
        if span.name == "DS3+filter":
            assert span.detail["positions_out"] <= span.detail["positions_in"]
    # Rows-out monotonicity across AND -> DS3: extractions happen at exactly
    # the intersected positions, so sibling DS3 spans after an AND carry its
    # output cardinality.
    for span in root.walk():
        and_rows = None
        for child in span.children:
            if child.name == "AND":
                and_rows = child.rows_out
            elif child.name == "DS3" and and_rows is not None:
                assert child.rows_out == and_rows


def run_differential(
    db,
    n_queries: int = 60,
    seed: int = 0,
    projection: str = "lineitem",
    strategies=STRATEGIES,
) -> DifferentialReport:
    """Run the sweep: every generated query under every strategy."""
    gen = QueryGenerator(db, projection=projection, seed=seed)
    report = DifferentialReport()
    for _ in range(n_queries):
        query = gen.next_query()
        report.queries += 1
        report.encodings_used.update(dict(query.encodings).values())
        reference = None
        for strategy in strategies:
            try:
                result = db.query(query, strategy=strategy, trace=True)
            except UnsupportedOperationError:
                report.skipped += 1
                continue
            report.runs += 1
            check_span_invariants(result, db.constants)
            rows = sorted(result.rows())
            if reference is None:
                reference = rows
            elif rows != reference:
                report.record_mismatch(query, strategy.value, reference, rows)
    return report


def run_partition_differential(
    plain_db,
    partitioned_db,
    n_queries: int = 30,
    seed: int = 0,
    projection: str = "lineitem",
    strategies=STRATEGIES,
) -> DifferentialReport:
    """The partitioned axis: every query on both physical layouts.

    *plain_db* and *partitioned_db* must hold the same logical data (same
    scale and seed); each generated query then runs under every strategy on
    **both** databases, and all executions of one query — 2 layouts x 4
    strategies — must produce the identical sorted row set and satisfy the
    span-tree invariants. This is the end-to-end proof that range
    partitioning plus zone-map pruning is purely physical.
    """
    gen = QueryGenerator(plain_db, projection=projection, seed=seed)
    report = DifferentialReport()
    for _ in range(n_queries):
        query = gen.next_query()
        report.queries += 1
        report.encodings_used.update(dict(query.encodings).values())
        reference = None
        for strategy in strategies:
            for db in (plain_db, partitioned_db):
                try:
                    result = db.query(query, strategy=strategy, trace=True)
                except UnsupportedOperationError:
                    report.skipped += 1
                    continue
                report.runs += 1
                check_span_invariants(result, db.constants)
                rows = sorted(result.rows())
                if reference is None:
                    reference = rows
                elif rows != reference:
                    report.record_mismatch(
                        query, strategy.value, reference, rows
                    )
    return report


def run_compressed_differential(
    compressed_db,
    plain_db,
    n_queries: int = 30,
    seed: int = 0,
    projection: str = "lineitem",
    strategies=STRATEGIES,
) -> DifferentialReport:
    """The compressed-execution axis: encoded-domain kernels change nothing.

    *compressed_db* and *plain_db* must serve the same stored files;
    *compressed_db* runs with ``compressed_execution=True`` (DS1 predicate
    kernels over RLE run tables / dictionary codes / FOR offsets, run-list
    AND, run/code-histogram aggregation) and *plain_db* with the layer off.
    Each generated query runs under every strategy on **both** databases and
    every execution must produce the identical sorted row set and satisfy
    the span-tree invariants. The sweep also accumulates the compressed
    side's ``compressed_scans`` / ``morphs`` counters (so callers can assert
    the kernels really fired) and asserts the plain side never counts a
    kernel scan.
    """
    gen = QueryGenerator(compressed_db, projection=projection, seed=seed)
    report = DifferentialReport()
    for _ in range(n_queries):
        query = gen.next_query()
        report.queries += 1
        report.encodings_used.update(dict(query.encodings).values())
        reference = None
        for strategy in strategies:
            for db in (compressed_db, plain_db):
                try:
                    result = db.query(query, strategy=strategy, trace=True)
                except UnsupportedOperationError:
                    report.skipped += 1
                    continue
                report.runs += 1
                if db is compressed_db:
                    report.compressed_scans += result.stats.compressed_scans
                    report.morphs += result.stats.morphs
                else:
                    assert result.stats.compressed_scans == 0, (
                        "compressed_execution=False must never dispatch a "
                        "kernel scan"
                    )
                check_span_invariants(result, db.constants)
                rows = sorted(result.rows())
                if reference is None:
                    reference = rows
                elif rows != reference:
                    report.record_mismatch(
                        query, strategy.value, reference, rows
                    )
    return report


def run_concurrent_differential(
    db,
    n_queries: int = 30,
    seed: int = 0,
    projection: str = "lineitem",
    strategies=STRATEGIES,
    sessions: int = 8,
    workers: int = 4,
    max_queue: int = 256,
) -> DifferentialReport:
    """The concurrency axis: the serving stack changes nothing.

    Every generated query first runs *serially* on *db* (EM-parallel
    reference — it supports every encoding — traced, with the span
    invariants checked). Then the full (query, strategy) matrix is
    replayed through an in-process :class:`~repro.serving.ServerThread`
    over the **same** Database by *sessions* concurrent client
    connections, work-stealing from a shared list in a seeded shuffled
    order and rotating through the admission priority classes. Admission
    queueing, worker-thread execution, cache contention and the JSON wire
    format are all purely physical, so every served row set must equal the
    serial reference bit for bit (engine values are integers end to end,
    so the JSON round trip is exact).

    ``max_queue`` defaults high enough that backpressure cannot reject
    work mid-sweep (at most *sessions* requests are ever in flight);
    rejection behaviour has its own tests. ``report.runs`` counts served
    executions only; ``report.compressed_scans`` / ``morphs`` accumulate
    from serial LM-parallel runs, since EM references decompress eagerly
    and the wire protocol does not carry engine counters.
    """
    import asyncio

    from repro.serving import AsyncQueryClient, ServerThread, query_to_dict
    from repro.serving.admission import PRIORITIES

    gen = QueryGenerator(db, projection=projection, seed=seed)
    queries = [gen.next_query() for _ in range(n_queries)]
    report = DifferentialReport()
    report.queries = n_queries
    references = []
    for query in queries:
        report.encodings_used.update(dict(query.encodings).values())
        result = db.query(query, strategy=Strategy.EM_PARALLEL, trace=True)
        check_span_invariants(result, db.constants)
        references.append(sorted(result.rows()))
        # EM decompresses eagerly (compressed execution is off there by
        # construction), so kernel counters come from a serial LM run.
        lm = db.query(query, strategy=Strategy.LM_PARALLEL)
        report.compressed_scans += lm.stats.compressed_scans
        report.morphs += lm.stats.morphs

    qdicts = [query_to_dict(q) for q in queries]
    work = [
        (qi, strategy.value)
        for qi in range(n_queries)
        for strategy in strategies
    ]
    random.Random(seed).shuffle(work)
    outcomes: list[tuple[int, str, dict]] = []

    async def _session(si: int, host: str, port: int, cursor: list) -> None:
        client = await AsyncQueryClient.connect(host, port)
        try:
            while True:
                if cursor[0] >= len(work):
                    return
                item = cursor[0]
                cursor[0] += 1
                qi, strategy = work[item]
                response = await client.request(
                    {
                        "op": "query",
                        "query": qdicts[qi],
                        "strategy": strategy,
                        "priority": PRIORITIES[si % len(PRIORITIES)],
                    }
                )
                outcomes.append((qi, strategy, response))
        finally:
            await client.close()

    async def _drive(host: str, port: int) -> None:
        cursor = [0]  # single event loop -> plain shared index is safe
        await asyncio.gather(
            *(_session(si, host, port, cursor) for si in range(sessions))
        )

    with ServerThread(db, workers=workers, max_queue=max_queue) as server:
        asyncio.run(_drive(server.host, server.port))

    for qi, strategy, response in outcomes:
        if not response.get("ok"):
            error_type = response.get("error", {}).get("type")
            if error_type == "UnsupportedOperationError":
                report.skipped += 1
                continue
            raise AssertionError(
                f"served query {qi} ({strategy}) failed: {response}"
            )
        report.runs += 1
        rows = sorted(tuple(row) for row in response["rows"])
        if rows != references[qi]:
            report.record_mismatch(queries[qi], strategy, references[qi], rows)
    return report


def run_replay_differential(
    db,
    replay_db,
    n_queries: int = 40,
    seed: int = 0,
    projection: str = "lineitem",
    strategies=STRATEGIES,
    served_strategies=(Strategy.EM_PARALLEL, Strategy.LM_PARALLEL),
    sessions: int = 8,
    workers: int = 4,
    max_queue: int = 256,
):
    """The replay axis: capture a mixed workload, replay it bit-identically.

    *db* must have its query log enabled; *replay_db* must serve the same
    stored files with its own recorder **off** (so replaying never appends
    to the log under test). The capture phase runs every generated query
    under every strategy embedded, then replays the whole query list
    through a :class:`~repro.serving.ServerThread` over *db* from
    *sessions* concurrent connections under ``served_strategies`` (both
    support every encoding, so the served phase never skips) — giving the
    log a genuinely mixed embedded/served, multi-strategy, multi-encoding
    shape. The log is then read back and re-executed on *replay_db* with
    ``check=True``.

    Returns ``(records, replay_report)`` — the records as read back from
    disk and the :class:`repro.workload.ReplayReport` whose ``ok`` the
    caller asserts.
    """
    import asyncio

    from repro.qlog import read_query_log
    from repro.serving import AsyncQueryClient, ServerThread, query_to_dict
    from repro.serving.admission import PRIORITIES
    from repro.workload import replay_log

    assert db.qlog is not None, "capture database must have the recorder on"
    assert replay_db.qlog is None, "replay database must not re-log"

    gen = QueryGenerator(db, projection=projection, seed=seed)
    queries = [gen.next_query() for _ in range(n_queries)]
    for query in queries:
        for strategy in strategies:
            try:
                db.query(query, strategy=strategy)
            except UnsupportedOperationError:
                # Recorded by the qlog as an error-outcome row; the replay
                # phase skips non-ok records.
                continue

    qdicts = [query_to_dict(q) for q in queries]
    work = [
        (qi, strategy.value)
        for qi in range(n_queries)
        for strategy in served_strategies
    ]
    random.Random(seed).shuffle(work)

    async def _session(si: int, host: str, port: int, cursor: list) -> None:
        client = await AsyncQueryClient.connect(host, port)
        try:
            while True:
                if cursor[0] >= len(work):
                    return
                item = cursor[0]
                cursor[0] += 1
                qi, strategy = work[item]
                response = await client.request(
                    {
                        "op": "query",
                        "query": qdicts[qi],
                        "strategy": strategy,
                        "priority": PRIORITIES[si % len(PRIORITIES)],
                    }
                )
                assert response.get("ok"), (
                    f"served capture of query {qi} ({strategy}) failed: "
                    f"{response}"
                )
        finally:
            await client.close()

    async def _drive(host: str, port: int) -> None:
        cursor = [0]
        await asyncio.gather(
            *(_session(si, host, port, cursor) for si in range(sessions))
        )

    with ServerThread(db, workers=workers, max_queue=max_queue) as server:
        asyncio.run(_drive(server.host, server.port))

    db.qlog.flush()  # drain the background writer before reading back
    records = read_query_log(db.qlog.directory)
    report = replay_log(replay_db, records, check=True)
    return records, report


def run_advisor_differential(
    db,
    clone_root,
    n_queries: int = 60,
    seed: int = 0,
    projection: str = "lineitem",
    strategies=STRATEGIES,
    parallel_scans: int = 2,
):
    """The advisor axis: ``advise --apply`` never changes an answer.

    *db* must have its query log enabled. The capture phase runs every
    generated query under every strategy embedded (UnsupportedOperationError
    runs are recorded by the qlog as error rows and skipped by replay, like
    the replay axis). The stored files — data *and* captured log — are then
    cloned to *clone_root*, and on the clone:

    1. every ok record replays hash-identically **before** any advice
       (guards against the clone itself perturbing anything);
    2. :func:`repro.advisor.advise` ranks a plan from the captured records
       and :func:`repro.advisor.apply_plan` executes it through the real
       catalog (projection builds, merges, drops);
    3. every ok record replays hash-identically **after** the apply, on a
       freshly opened Database with ``parallel_scans`` set differently —
       projection routing is pinned per record, so new projections and a
       different scan parallelism must both be invisible in the hashes.

    Returns ``(records, plan, report_pre, report_post)``; the caller
    asserts both reports' ``ok`` and that the plan actually built
    something (otherwise the axis silently degrades to the replay axis).
    """
    import shutil

    from repro.advisor import advise, apply_plan
    from repro.qlog import read_query_log
    from repro.workload import replay_log

    from repro import Database, MetricsRegistry

    assert db.qlog is not None, "capture database must have the recorder on"

    gen = QueryGenerator(db, projection=projection, seed=seed)
    for _ in range(n_queries):
        query = gen.next_query()
        for strategy in strategies:
            try:
                db.query(query, strategy=strategy)
            except UnsupportedOperationError:
                continue

    db.qlog.flush()
    records = read_query_log(db.qlog.directory)
    shutil.copytree(db.catalog.root, clone_root)

    pre_db = Database(clone_root, metrics=MetricsRegistry(), query_log=False)
    try:
        report_pre = replay_log(pre_db, records, check=True)
        plan = advise(pre_db, records)
        apply_plan(pre_db, plan)
    finally:
        pre_db.close()

    post_db = Database(
        clone_root,
        metrics=MetricsRegistry(),
        query_log=False,
        parallel_scans=parallel_scans,
    )
    try:
        report_post = replay_log(post_db, records, check=True)
    finally:
        post_db.close()
    return records, plan, report_pre, report_post


def run_fault_differential(
    clean_db,
    faulted_db,
    n_queries: int = 60,
    seed: int = 0,
    projection: str = "lineitem",
    strategies=STRATEGIES,
) -> DifferentialReport:
    """The fault-schedule axis: transient faults + retries change nothing.

    *clean_db* and *faulted_db* must serve the same stored data;
    *faulted_db* carries a :class:`~repro.faults.FaultInjector` whose
    transient rules fail fewer attempts than its
    :class:`~repro.faults.RetryPolicy` grants, so every read eventually
    recovers. Each generated query establishes its reference rows on the
    clean database, then runs **cold** (physical reads, so faults actually
    fire) under every strategy on the faulted database with the injector's
    attempt counters reset per run; every faulted execution must match the
    clean rows, never give up, and satisfy the span-tree invariants (the
    extra ``RETRY`` spans and their simulated backoff are part of the
    accounted tree). ``report.retries`` totals the retries observed so
    callers can assert the axis really injected faults.
    """
    gen = QueryGenerator(clean_db, projection=projection, seed=seed)
    injector = faulted_db.pool.injector
    report = DifferentialReport()
    for _ in range(n_queries):
        query = gen.next_query()
        report.queries += 1
        report.encodings_used.update(dict(query.encodings).values())
        # EM strategies support every encoding, so the reference never skips.
        reference = sorted(
            clean_db.query(query, strategy=Strategy.EM_PARALLEL).rows()
        )
        for strategy in strategies:
            injector.reset()
            try:
                result = faulted_db.query(
                    query, strategy=strategy, cold=True, trace=True
                )
            except UnsupportedOperationError:
                report.skipped += 1
                continue
            report.runs += 1
            report.retries += result.stats.io_retries
            assert result.stats.io_gave_up == 0, (
                "retry budget must outlast the transient schedule"
            )
            assert not result.degraded, (
                "transient faults must recover, not quarantine"
            )
            check_span_invariants(result, faulted_db.constants)
            rows = sorted(result.rows())
            if rows != reference:
                report.record_mismatch(query, strategy.value, reference, rows)
    return report
