"""Differential test harness: random queries, every strategy, one answer.

The four materialization strategies (and any stored-encoding override) are
different *physical* executions of the same logical query, so they must all
produce identical result sets. This module generates seeded random
selection/aggregation queries over the TPC-H fixture, runs each one under
every strategy with tracing on, and checks

* **result identity** — sorted row sets match across strategies/encodings;
* **span-tree invariants** — no dangling open spans, per-span *self*
  simulated times sum to the query's ``simulated_ms``, children's cumulative
  simulated time never exceeds their parent's, and cardinalities shrink
  monotonically across AND -> DS3 (the extractions are at exactly the
  intersected positions).

A second, **partitioned** axis (:func:`run_partition_differential`) runs
every generated query on an unpartitioned database and a range-partitioned
copy of the same data: partitioning plus zone-map pruning is purely
physical, so both layouts must agree row-for-row under every strategy.

A third, **fault-schedule** axis (:func:`run_fault_differential`) runs every
query on a clean database and on a database whose block reads fail
transiently under a seeded :class:`~repro.faults.FaultInjector` with retries
enabled: recovery is purely physical too, so every faulted execution must
reproduce the clean rows exactly — and the sweep asserts retries actually
fired, so the axis cannot silently degrade to a clean-read re-run. The CI
fault matrix varies the schedule via ``REPRO_FAULT_SEED``.

A fourth, **compressed-execution** axis (:func:`run_compressed_differential`)
runs every query on a database with the compressed kernels on and on one
with them off, over the same stored data (loaded with dictionary and FOR
stored encodings so every kernel actually fires): operating directly on
compressed data is purely physical, so all executions must agree — and the
sweep asserts kernel scans actually happened on the compressed side and
never on the plain side.

A fifth, **concurrency** axis (:func:`run_concurrent_differential`) runs
every query serially to establish reference rows, then replays the whole
(query, strategy) matrix through the asyncio query server with 8 concurrent
client sessions sharing one Database: admission queueing, worker-thread
execution, shared caches under contention and the JSON wire format are all
purely physical, so every served execution must reproduce the serial rows
bit for bit. Engine values are integers end to end, so the JSON round trip
is exact and "bit-identical" is a meaningful comparison over the wire.

A sixth, **replay** axis (:func:`run_replay_differential`) exercises the
workload flight recorder end to end: a mixed capture phase runs every
generated query under all four strategies embedded *and* through the query
server from concurrent sessions (so both origins land in the log), then the
captured log is read back (torn-tail-tolerant reader) and re-executed
against a second Database over the same stored files with
``repro.workload.replay_log(check=True)`` — every replayed result hash must
be bit-identical to the hash captured at record time. Recording, log
round-tripping and replay are all purely observational, so a single
mismatch means either the recorder or the engine drifted.

A seventh, **advisor** axis (:func:`run_advisor_differential`) proves
``repro advise --apply`` is purely physical: a seeded workload is captured
into the query log (every generated query under all four strategies
embedded), the database root is cloned, the advisor's recommended plan is
applied to the clone through the real catalog machinery (building and
dropping projections), and then every captured ok record is replayed on the
clone **both** before and after the apply with
``repro.workload.replay_log(check=True)`` — the post-apply replay also runs
under a different ``parallel_scans`` setting to stack a second physical
knob on top. Every replayed result hash must equal the hash captured at
record time, so a single mismatch means the advisor changed an answer.

An eighth, **crash** axis (:func:`run_crash_differential`) proves the write
path is crash-consistent at *every* write/fsync/rename boundary. A seeded
mixed workload — inserts, updates, deletes, tuple-mover merges and advisor
applies — first runs to completion on a clean copy of a small template
database under a passive :class:`~repro.faults.CrashInjector` that only
counts boundaries, recording the canonical row state after every operation.
Then, for each boundary step *k*, a fresh copy replays the same workload
with ``crash_at=k``: the injector raises
:class:`~repro.faults.SimulatedCrash` at exactly that boundary, the harness
abandons the handle (a hard kill — no close, no flush) and reopens the
database cold. Every recovered state must be **prefix-consistent** — equal
to the clean reference executed to the same operation prefix, where the
interrupted operation is either fully invisible, fully applied, or (for a
multi-row insert, whose WAL lines land one row at a time) a row prefix —
and resuming the remaining workload on the recovered database must
reproduce the clean final state and query answers bit for bit (the reopened
database also runs with a different ``parallel_scans``, stacking a second
physical knob on the recovery path). The CI crash matrix varies the
boundary schedule via ``REPRO_CRASH_SEED``.

A companion **write** axis (:func:`run_write_differential`) proves
merge-on-read over updates and deletes is purely logical: the same seeded
insert/update/delete workload is applied to two identically-loaded
databases, one of which then folds everything into the read store with the
tuple mover while the other leaves it all pending in the delta store —
every generated query under every strategy must produce the identical
sorted row set on both.

Known physical limitation: LM-pipelined cannot position-filter bit-vector
encoded columns (``UnsupportedOperationError``); such runs are recorded as
skips, not failures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import Predicate, SelectQuery, Strategy
from repro.errors import UnsupportedOperationError
from repro.operators.aggregate import AggSpec

#: Every selection strategy the harness differentials across.
STRATEGIES = tuple(Strategy)

_OPS = ("<", "<=", ">", ">=", "=", "!=")
_AGG_FUNCS = ("sum", "count", "min", "max", "avg")


@dataclass
class DifferentialReport:
    """Outcome of one differential sweep."""

    queries: int = 0
    runs: int = 0
    skipped: int = 0
    retries: int = 0
    compressed_scans: int = 0
    morphs: int = 0
    encodings_used: set = field(default_factory=set)
    mismatches: list = field(default_factory=list)

    def record_mismatch(self, query, strategy, expected, got) -> None:
        """Keep a bounded, readable record of a result divergence."""
        self.mismatches.append(
            {
                "query": query,
                "strategy": strategy,
                "expected_rows": len(expected),
                "got_rows": len(got),
                "first_diff": _first_diff(expected, got),
            }
        )


def _first_diff(expected, got):
    for i, (e, g) in enumerate(zip(expected, got)):
        if e != g:
            return {"index": i, "expected": e, "got": g}
    return {"index": min(len(expected), len(got)), "expected": None, "got": None}


class QueryGenerator:
    """Seeded random :class:`SelectQuery` generator over one projection."""

    def __init__(self, db, projection: str = "lineitem", seed: int = 0):
        self.db = db
        self.name = projection
        self.projection = db.projection(projection)
        self.rng = random.Random(seed)
        self.columns = list(self.projection.column_names)
        # Observed value domains drive predicate constants, so generated
        # predicates land anywhere from empty to full selectivity.
        self.domains = {}
        self.encodings = {}
        for col in self.columns:
            # Partition-aware reads: a partitioned projection's values and
            # encodings live in its children.
            values = self.projection.read_column_values(col)
            self.domains[col] = (int(values.min()), int(values.max()))
            self.encodings[col] = list(
                self.projection.physical_column(col).encodings
            )

    def _predicate(self, col: str) -> Predicate:
        lo, hi = self.domains[col]
        value = self.rng.randint(lo, hi)
        return Predicate(col, self.rng.choice(_OPS), value)

    def _encoding_overrides(self, cols) -> tuple[tuple[str, str], ...]:
        out = []
        for col in cols:
            if len(self.encodings[col]) > 1 and self.rng.random() < 0.5:
                out.append((col, self.rng.choice(self.encodings[col])))
        return tuple(out)

    def next_query(self) -> SelectQuery:
        """One random selection or aggregation query."""
        n_select = self.rng.randint(1, min(3, len(self.columns)))
        select = tuple(self.rng.sample(self.columns, n_select))
        pred_cols = self.rng.sample(
            self.columns, self.rng.randint(0, min(2, len(self.columns)))
        )
        predicates = tuple(self._predicate(c) for c in pred_cols)
        encodings = self._encoding_overrides(
            dict.fromkeys(list(select) + pred_cols)
        )
        if self.rng.random() < 0.25:
            group = self.rng.choice(self.columns)
            agg_col = self.rng.choice([c for c in self.columns if c != group])
            spec = AggSpec(self.rng.choice(_AGG_FUNCS), agg_col)
            return SelectQuery(
                projection=self.name,
                select=(group, spec.output_name),
                predicates=predicates,
                group_by=group,
                aggregates=(spec,),
                encodings=encodings,
            )
        order_by = ()
        if self.rng.random() < 0.3:
            order_by = ((self.rng.choice(select), self.rng.random() < 0.5),)
        return SelectQuery(
            projection=self.name,
            select=select,
            predicates=predicates,
            encodings=encodings,
            order_by=order_by,
        )


def check_span_invariants(result, constants, rtol: float = 1e-6) -> None:
    """Assert the EXPLAIN ANALYZE tree invariants for one traced result."""
    root = result.spans
    assert root is not None, "traced query produced no span tree"
    assert root.open_spans() == [], "dangling open spans after execution"
    total_self = sum(s.self_simulated_ms(constants) for s in root.walk())
    tolerance = max(1e-9, rtol * max(result.simulated_ms, 1.0))
    assert abs(total_self - result.simulated_ms) <= tolerance, (
        f"self simulated times sum to {total_self}, "
        f"query reports {result.simulated_ms}"
    )
    for span in root.walk():
        child_sum = sum(c.simulated_ms(constants) for c in span.children)
        assert child_sum <= span.simulated_ms(constants) + tolerance
        if span.name == "AND":
            assert span.detail["positions"] <= min(span.detail["inputs"])
        if span.name == "DS3+filter":
            assert span.detail["positions_out"] <= span.detail["positions_in"]
    # Rows-out monotonicity across AND -> DS3: extractions happen at exactly
    # the intersected positions, so sibling DS3 spans after an AND carry its
    # output cardinality.
    for span in root.walk():
        and_rows = None
        for child in span.children:
            if child.name == "AND":
                and_rows = child.rows_out
            elif child.name == "DS3" and and_rows is not None:
                assert child.rows_out == and_rows


def run_differential(
    db,
    n_queries: int = 60,
    seed: int = 0,
    projection: str = "lineitem",
    strategies=STRATEGIES,
) -> DifferentialReport:
    """Run the sweep: every generated query under every strategy."""
    gen = QueryGenerator(db, projection=projection, seed=seed)
    report = DifferentialReport()
    for _ in range(n_queries):
        query = gen.next_query()
        report.queries += 1
        report.encodings_used.update(dict(query.encodings).values())
        reference = None
        for strategy in strategies:
            try:
                result = db.query(query, strategy=strategy, trace=True)
            except UnsupportedOperationError:
                report.skipped += 1
                continue
            report.runs += 1
            check_span_invariants(result, db.constants)
            rows = sorted(result.rows())
            if reference is None:
                reference = rows
            elif rows != reference:
                report.record_mismatch(query, strategy.value, reference, rows)
    return report


def run_partition_differential(
    plain_db,
    partitioned_db,
    n_queries: int = 30,
    seed: int = 0,
    projection: str = "lineitem",
    strategies=STRATEGIES,
) -> DifferentialReport:
    """The partitioned axis: every query on both physical layouts.

    *plain_db* and *partitioned_db* must hold the same logical data (same
    scale and seed); each generated query then runs under every strategy on
    **both** databases, and all executions of one query — 2 layouts x 4
    strategies — must produce the identical sorted row set and satisfy the
    span-tree invariants. This is the end-to-end proof that range
    partitioning plus zone-map pruning is purely physical.
    """
    gen = QueryGenerator(plain_db, projection=projection, seed=seed)
    report = DifferentialReport()
    for _ in range(n_queries):
        query = gen.next_query()
        report.queries += 1
        report.encodings_used.update(dict(query.encodings).values())
        reference = None
        for strategy in strategies:
            for db in (plain_db, partitioned_db):
                try:
                    result = db.query(query, strategy=strategy, trace=True)
                except UnsupportedOperationError:
                    report.skipped += 1
                    continue
                report.runs += 1
                check_span_invariants(result, db.constants)
                rows = sorted(result.rows())
                if reference is None:
                    reference = rows
                elif rows != reference:
                    report.record_mismatch(
                        query, strategy.value, reference, rows
                    )
    return report


def run_compressed_differential(
    compressed_db,
    plain_db,
    n_queries: int = 30,
    seed: int = 0,
    projection: str = "lineitem",
    strategies=STRATEGIES,
) -> DifferentialReport:
    """The compressed-execution axis: encoded-domain kernels change nothing.

    *compressed_db* and *plain_db* must serve the same stored files;
    *compressed_db* runs with ``compressed_execution=True`` (DS1 predicate
    kernels over RLE run tables / dictionary codes / FOR offsets, run-list
    AND, run/code-histogram aggregation) and *plain_db* with the layer off.
    Each generated query runs under every strategy on **both** databases and
    every execution must produce the identical sorted row set and satisfy
    the span-tree invariants. The sweep also accumulates the compressed
    side's ``compressed_scans`` / ``morphs`` counters (so callers can assert
    the kernels really fired) and asserts the plain side never counts a
    kernel scan.
    """
    gen = QueryGenerator(compressed_db, projection=projection, seed=seed)
    report = DifferentialReport()
    for _ in range(n_queries):
        query = gen.next_query()
        report.queries += 1
        report.encodings_used.update(dict(query.encodings).values())
        reference = None
        for strategy in strategies:
            for db in (compressed_db, plain_db):
                try:
                    result = db.query(query, strategy=strategy, trace=True)
                except UnsupportedOperationError:
                    report.skipped += 1
                    continue
                report.runs += 1
                if db is compressed_db:
                    report.compressed_scans += result.stats.compressed_scans
                    report.morphs += result.stats.morphs
                else:
                    assert result.stats.compressed_scans == 0, (
                        "compressed_execution=False must never dispatch a "
                        "kernel scan"
                    )
                check_span_invariants(result, db.constants)
                rows = sorted(result.rows())
                if reference is None:
                    reference = rows
                elif rows != reference:
                    report.record_mismatch(
                        query, strategy.value, reference, rows
                    )
    return report


def run_concurrent_differential(
    db,
    n_queries: int = 30,
    seed: int = 0,
    projection: str = "lineitem",
    strategies=STRATEGIES,
    sessions: int = 8,
    workers: int = 4,
    max_queue: int = 256,
) -> DifferentialReport:
    """The concurrency axis: the serving stack changes nothing.

    Every generated query first runs *serially* on *db* (EM-parallel
    reference — it supports every encoding — traced, with the span
    invariants checked). Then the full (query, strategy) matrix is
    replayed through an in-process :class:`~repro.serving.ServerThread`
    over the **same** Database by *sessions* concurrent client
    connections, work-stealing from a shared list in a seeded shuffled
    order and rotating through the admission priority classes. Admission
    queueing, worker-thread execution, cache contention and the JSON wire
    format are all purely physical, so every served row set must equal the
    serial reference bit for bit (engine values are integers end to end,
    so the JSON round trip is exact).

    ``max_queue`` defaults high enough that backpressure cannot reject
    work mid-sweep (at most *sessions* requests are ever in flight);
    rejection behaviour has its own tests. ``report.runs`` counts served
    executions only; ``report.compressed_scans`` / ``morphs`` accumulate
    from serial LM-parallel runs, since EM references decompress eagerly
    and the wire protocol does not carry engine counters.
    """
    import asyncio

    from repro.serving import AsyncQueryClient, ServerThread, query_to_dict
    from repro.serving.admission import PRIORITIES

    gen = QueryGenerator(db, projection=projection, seed=seed)
    queries = [gen.next_query() for _ in range(n_queries)]
    report = DifferentialReport()
    report.queries = n_queries
    references = []
    for query in queries:
        report.encodings_used.update(dict(query.encodings).values())
        result = db.query(query, strategy=Strategy.EM_PARALLEL, trace=True)
        check_span_invariants(result, db.constants)
        references.append(sorted(result.rows()))
        # EM decompresses eagerly (compressed execution is off there by
        # construction), so kernel counters come from a serial LM run.
        lm = db.query(query, strategy=Strategy.LM_PARALLEL)
        report.compressed_scans += lm.stats.compressed_scans
        report.morphs += lm.stats.morphs

    qdicts = [query_to_dict(q) for q in queries]
    work = [
        (qi, strategy.value)
        for qi in range(n_queries)
        for strategy in strategies
    ]
    random.Random(seed).shuffle(work)
    outcomes: list[tuple[int, str, dict]] = []

    async def _session(si: int, host: str, port: int, cursor: list) -> None:
        client = await AsyncQueryClient.connect(host, port)
        try:
            while True:
                if cursor[0] >= len(work):
                    return
                item = cursor[0]
                cursor[0] += 1
                qi, strategy = work[item]
                response = await client.request(
                    {
                        "op": "query",
                        "query": qdicts[qi],
                        "strategy": strategy,
                        "priority": PRIORITIES[si % len(PRIORITIES)],
                    }
                )
                outcomes.append((qi, strategy, response))
        finally:
            await client.close()

    async def _drive(host: str, port: int) -> None:
        cursor = [0]  # single event loop -> plain shared index is safe
        await asyncio.gather(
            *(_session(si, host, port, cursor) for si in range(sessions))
        )

    with ServerThread(db, workers=workers, max_queue=max_queue) as server:
        asyncio.run(_drive(server.host, server.port))

    for qi, strategy, response in outcomes:
        if not response.get("ok"):
            error_type = response.get("error", {}).get("type")
            if error_type == "UnsupportedOperationError":
                report.skipped += 1
                continue
            raise AssertionError(
                f"served query {qi} ({strategy}) failed: {response}"
            )
        report.runs += 1
        rows = sorted(tuple(row) for row in response["rows"])
        if rows != references[qi]:
            report.record_mismatch(queries[qi], strategy, references[qi], rows)
    return report


def run_replay_differential(
    db,
    replay_db,
    n_queries: int = 40,
    seed: int = 0,
    projection: str = "lineitem",
    strategies=STRATEGIES,
    served_strategies=(Strategy.EM_PARALLEL, Strategy.LM_PARALLEL),
    sessions: int = 8,
    workers: int = 4,
    max_queue: int = 256,
):
    """The replay axis: capture a mixed workload, replay it bit-identically.

    *db* must have its query log enabled; *replay_db* must serve the same
    stored files with its own recorder **off** (so replaying never appends
    to the log under test). The capture phase runs every generated query
    under every strategy embedded, then replays the whole query list
    through a :class:`~repro.serving.ServerThread` over *db* from
    *sessions* concurrent connections under ``served_strategies`` (both
    support every encoding, so the served phase never skips) — giving the
    log a genuinely mixed embedded/served, multi-strategy, multi-encoding
    shape. The log is then read back and re-executed on *replay_db* with
    ``check=True``.

    Returns ``(records, replay_report)`` — the records as read back from
    disk and the :class:`repro.workload.ReplayReport` whose ``ok`` the
    caller asserts.
    """
    import asyncio

    from repro.qlog import read_query_log
    from repro.serving import AsyncQueryClient, ServerThread, query_to_dict
    from repro.serving.admission import PRIORITIES
    from repro.workload import replay_log

    assert db.qlog is not None, "capture database must have the recorder on"
    assert replay_db.qlog is None, "replay database must not re-log"

    gen = QueryGenerator(db, projection=projection, seed=seed)
    queries = [gen.next_query() for _ in range(n_queries)]
    for query in queries:
        for strategy in strategies:
            try:
                db.query(query, strategy=strategy)
            except UnsupportedOperationError:
                # Recorded by the qlog as an error-outcome row; the replay
                # phase skips non-ok records.
                continue

    qdicts = [query_to_dict(q) for q in queries]
    work = [
        (qi, strategy.value)
        for qi in range(n_queries)
        for strategy in served_strategies
    ]
    random.Random(seed).shuffle(work)

    async def _session(si: int, host: str, port: int, cursor: list) -> None:
        client = await AsyncQueryClient.connect(host, port)
        try:
            while True:
                if cursor[0] >= len(work):
                    return
                item = cursor[0]
                cursor[0] += 1
                qi, strategy = work[item]
                response = await client.request(
                    {
                        "op": "query",
                        "query": qdicts[qi],
                        "strategy": strategy,
                        "priority": PRIORITIES[si % len(PRIORITIES)],
                    }
                )
                assert response.get("ok"), (
                    f"served capture of query {qi} ({strategy}) failed: "
                    f"{response}"
                )
        finally:
            await client.close()

    async def _drive(host: str, port: int) -> None:
        cursor = [0]
        await asyncio.gather(
            *(_session(si, host, port, cursor) for si in range(sessions))
        )

    with ServerThread(db, workers=workers, max_queue=max_queue) as server:
        asyncio.run(_drive(server.host, server.port))

    db.qlog.flush()  # drain the background writer before reading back
    records = read_query_log(db.qlog.directory)
    report = replay_log(replay_db, records, check=True)
    return records, report


def run_advisor_differential(
    db,
    clone_root,
    n_queries: int = 60,
    seed: int = 0,
    projection: str = "lineitem",
    strategies=STRATEGIES,
    parallel_scans: int = 2,
):
    """The advisor axis: ``advise --apply`` never changes an answer.

    *db* must have its query log enabled. The capture phase runs every
    generated query under every strategy embedded (UnsupportedOperationError
    runs are recorded by the qlog as error rows and skipped by replay, like
    the replay axis). The stored files — data *and* captured log — are then
    cloned to *clone_root*, and on the clone:

    1. every ok record replays hash-identically **before** any advice
       (guards against the clone itself perturbing anything);
    2. :func:`repro.advisor.advise` ranks a plan from the captured records
       and :func:`repro.advisor.apply_plan` executes it through the real
       catalog (projection builds, merges, drops);
    3. every ok record replays hash-identically **after** the apply, on a
       freshly opened Database with ``parallel_scans`` set differently —
       projection routing is pinned per record, so new projections and a
       different scan parallelism must both be invisible in the hashes.

    Returns ``(records, plan, report_pre, report_post)``; the caller
    asserts both reports' ``ok`` and that the plan actually built
    something (otherwise the axis silently degrades to the replay axis).
    """
    import shutil

    from repro.advisor import advise, apply_plan
    from repro.qlog import read_query_log
    from repro.workload import replay_log

    from repro import Database, MetricsRegistry

    assert db.qlog is not None, "capture database must have the recorder on"

    gen = QueryGenerator(db, projection=projection, seed=seed)
    for _ in range(n_queries):
        query = gen.next_query()
        for strategy in strategies:
            try:
                db.query(query, strategy=strategy)
            except UnsupportedOperationError:
                continue

    db.qlog.flush()
    records = read_query_log(db.qlog.directory)
    shutil.copytree(db.catalog.root, clone_root)

    pre_db = Database(clone_root, metrics=MetricsRegistry(), query_log=False)
    try:
        report_pre = replay_log(pre_db, records, check=True)
        plan = advise(pre_db, records)
        apply_plan(pre_db, plan)
    finally:
        pre_db.close()

    post_db = Database(
        clone_root,
        metrics=MetricsRegistry(),
        query_log=False,
        parallel_scans=parallel_scans,
    )
    try:
        report_post = replay_log(post_db, records, check=True)
    finally:
        post_db.close()
    return records, plan, report_pre, report_post


def run_fault_differential(
    clean_db,
    faulted_db,
    n_queries: int = 60,
    seed: int = 0,
    projection: str = "lineitem",
    strategies=STRATEGIES,
) -> DifferentialReport:
    """The fault-schedule axis: transient faults + retries change nothing.

    *clean_db* and *faulted_db* must serve the same stored data;
    *faulted_db* carries a :class:`~repro.faults.FaultInjector` whose
    transient rules fail fewer attempts than its
    :class:`~repro.faults.RetryPolicy` grants, so every read eventually
    recovers. Each generated query establishes its reference rows on the
    clean database, then runs **cold** (physical reads, so faults actually
    fire) under every strategy on the faulted database with the injector's
    attempt counters reset per run; every faulted execution must match the
    clean rows, never give up, and satisfy the span-tree invariants (the
    extra ``RETRY`` spans and their simulated backoff are part of the
    accounted tree). ``report.retries`` totals the retries observed so
    callers can assert the axis really injected faults.
    """
    gen = QueryGenerator(clean_db, projection=projection, seed=seed)
    injector = faulted_db.pool.injector
    report = DifferentialReport()
    for _ in range(n_queries):
        query = gen.next_query()
        report.queries += 1
        report.encodings_used.update(dict(query.encodings).values())
        # EM strategies support every encoding, so the reference never skips.
        reference = sorted(
            clean_db.query(query, strategy=Strategy.EM_PARALLEL).rows()
        )
        for strategy in strategies:
            injector.reset()
            try:
                result = faulted_db.query(
                    query, strategy=strategy, cold=True, trace=True
                )
            except UnsupportedOperationError:
                report.skipped += 1
                continue
            report.runs += 1
            report.retries += result.stats.io_retries
            assert result.stats.io_gave_up == 0, (
                "retry budget must outlast the transient schedule"
            )
            assert not result.degraded, (
                "transient faults must recover, not quarantine"
            )
            check_span_invariants(result, faulted_db.constants)
            rows = sorted(result.rows())
            if rows != reference:
                report.record_mismatch(query, strategy.value, reference, rows)
    return report


def seeded_write_workload(db, projection: str, seed: int, n_ops: int = 12):
    """A seeded list of logical write ops over *projection*'s value domains.

    Returns ``[("insert", table, rows), ("update", table, preds, assigns),
    ("delete", table, preds), ...]`` with values drawn from the observed
    stored-domain ranges, so predicates land anywhere from empty to broad
    and inserted rows are always encodable. The list is a pure value — the
    same ops can be applied to any database holding the same logical data.
    """
    rng = random.Random(seed)
    proj = db.projection(projection)
    columns = list(proj.column_names)
    domains = {}
    schemas = {}
    for col in columns:
        values = proj.read_column_values(col)
        domains[col] = (int(values.min()), int(values.max()))
        schemas[col] = proj.schema(col)

    def logical_row():
        return {
            col: schemas[col].decode_value(rng.randint(*domains[col]))
            for col in columns
        }

    def predicate():
        col = rng.choice(columns)
        lo, hi = domains[col]
        return Predicate(col, rng.choice(("<", "<=", ">", ">=")),
                         rng.randint(lo, hi))

    ops = []
    for _ in range(n_ops):
        roll = rng.random()
        if roll < 0.4:
            rows = [logical_row() for _ in range(rng.randint(1, 3))]
            ops.append(("insert", projection, rows))
        elif roll < 0.7:
            col = rng.choice(columns)
            assigns = {
                col: schemas[col].decode_value(rng.randint(*domains[col]))
            }
            ops.append(("update", projection, (predicate(),), assigns))
        else:
            ops.append(("delete", projection, (predicate(),)))
    return ops


def apply_write_op(db, op) -> int:
    """Apply one :func:`seeded_write_workload` op; returns rows touched."""
    kind, table = op[0], op[1]
    if kind == "insert":
        return db.insert(table, op[2])
    if kind == "update":
        return db.update(table, op[2], op[3])
    if kind == "delete":
        return db.delete(table, op[2])
    raise ValueError(f"unknown write op {kind!r}")


def run_write_differential(
    merged_db,
    pending_db,
    n_queries: int = 30,
    seed: int = 0,
    projection: str = "lineitem",
    strategies=STRATEGIES,
    n_ops: int = 12,
) -> DifferentialReport:
    """The write axis: updates/deletes are identical merged or pending.

    *merged_db* and *pending_db* must hold the same logical data (same
    scale and seed). The identical seeded insert/update/delete workload is
    applied to both; *merged_db* then runs the tuple mover (folding the
    whole write set into rebuilt projections) while *pending_db* leaves
    everything in the delta store, answered by merge-on-read. Every
    generated query under every strategy must produce the identical sorted
    row set on both databases — the end-to-end proof that the write path
    (WAL, delete multisets, upserts, merge) is purely physical.

    The merged side runs traced with the span invariants checked; the
    pending side runs untraced (delta-store row stitching accounts tuple
    iterations outside the span tree by design). The sweep asserts the
    workload really updated and deleted rows, so the axis cannot silently
    degrade to the insert-only differential.
    """
    ops = seeded_write_workload(pending_db, projection, seed, n_ops=n_ops)
    touched = {"insert": 0, "update": 0, "delete": 0}
    for op in ops:
        a = apply_write_op(merged_db, op)
        b = apply_write_op(pending_db, op)
        assert a == b, (
            f"op {op[0]} touched {a} rows on the merged db, {b} on the "
            "pending db — the databases have diverged"
        )
        touched[op[0]] += a
    assert touched["update"] > 0 and touched["delete"] > 0, (
        f"workload must update and delete rows, touched {touched}"
    )
    merged_db.merge(projection)
    assert merged_db.pending(projection) == 0
    assert pending_db.pending(projection) > 0, (
        "the pending side must answer through merge-on-read"
    )

    gen = QueryGenerator(merged_db, projection=projection, seed=seed)
    report = DifferentialReport()
    for _ in range(n_queries):
        query = gen.next_query()
        report.queries += 1
        report.encodings_used.update(dict(query.encodings).values())
        reference = None
        for strategy in strategies:
            for db in (merged_db, pending_db):
                traced = db is merged_db
                try:
                    result = db.query(query, strategy=strategy,
                                      trace=traced)
                except UnsupportedOperationError:
                    report.skipped += 1
                    continue
                report.runs += 1
                if traced:
                    check_span_invariants(result, db.constants)
                rows = sorted(result.rows())
                if reference is None:
                    reference = rows
                elif rows != reference:
                    report.record_mismatch(
                        query, strategy.value, reference, rows
                    )
    return report


# --------------------------------------------------------------- crash axis


@dataclass
class CrashDifferentialReport:
    """Outcome of one crash-differential sweep."""

    #: Write/fsync/rename boundaries the reference workload crosses.
    boundaries: int = 0
    #: Crash trials executed (one per tested boundary).
    trials: int = 0
    #: Trials in which the injector actually fired.
    crashes: int = 0
    #: Op kinds a crash interrupted ("open", "insert", "update", ...).
    ops_crashed: set = field(default_factory=set)
    #: Recoveries that surfaced a partially-durable multi-row insert
    #: (a true torn-tail row prefix, not just all-or-nothing).
    prefix_recoveries: int = 0
    mismatches: list = field(default_factory=list)


def build_crash_template(root, seed: int = 0):
    """A small two-table database for the crash axis.

    ``items`` is the interesting table: three int32 columns behind two
    projections — a range-partitioned primary sorted on ``a`` (with an RLE
    secondary encoding) and an anchored secondary sorted on ``b`` — so a
    tuple-mover merge rebuilds several directories in one commit. ``tags``
    is a second table proving per-table WAL isolation. All columns are
    plain integers, so logical and stored domains coincide and canonical
    row states compose exactly with WAL row prefixes.
    """
    import numpy as np

    from repro import Database, MetricsRegistry
    from repro.dtypes import INT32, ColumnSchema

    db = Database(root, query_log=False, metrics=MetricsRegistry())
    rng = np.random.default_rng(seed)
    n = 240
    items = {
        "a": np.sort(rng.integers(0, 500, size=n)).astype(np.int32),
        "b": rng.integers(0, 50, size=n).astype(np.int32),
        "c": rng.integers(0, 1000, size=n).astype(np.int32),
    }
    schemas = {col: ColumnSchema(col, INT32) for col in items}
    db.catalog.create_projection(
        "items",
        items,
        schemas=schemas,
        sort_keys=["a"],
        encodings={"a": ["uncompressed", "rle"],
                   "b": ["uncompressed", "rle"],
                   "c": ["uncompressed"]},
        presorted=True,
        partitions=2,
    )
    db.catalog.create_projection(
        "items_b",
        dict(items),
        schemas=dict(schemas),
        sort_keys=["b"],
        encodings={"a": ["uncompressed"],
                   "b": ["uncompressed", "rle"],
                   "c": ["uncompressed"]},
        anchor="items",
    )
    m = 60
    tags = {
        "t": np.sort(rng.integers(0, 20, size=m)).astype(np.int32),
        "v": rng.integers(0, 100, size=m).astype(np.int32),
    }
    db.catalog.create_projection(
        "tags",
        tags,
        schemas={col: ColumnSchema(col, INT32) for col in tags},
        sort_keys=["t"],
        encodings={"t": ["uncompressed", "rle"], "v": ["uncompressed"]},
        presorted=True,
    )
    db.close()


#: Tables of the crash template and the column order of their canonical
#: row states.
CRASH_TABLES = {"items": ("a", "b", "c"), "tags": ("t", "v")}


def crash_workload(seed: int = 0):
    """The deterministic mixed op list the crash axis replays.

    Every value is precomputed here (one seeded draw), so the reference
    run and every crash trial execute byte-identical operations — which is
    what makes the boundary numbering stable across runs.
    """
    rng = random.Random(seed)

    def item_rows(k):
        return [
            {"a": rng.randint(0, 499), "b": rng.randint(0, 49),
             "c": rng.randint(0, 999)}
            for _ in range(k)
        ]

    def tag_rows(k):
        return [
            {"t": rng.randint(0, 19), "v": rng.randint(0, 99)}
            for _ in range(k)
        ]

    return [
        ("insert", "items", item_rows(3)),
        ("insert", "tags", tag_rows(2)),
        ("update", "items", (Predicate("b", "<", 10),), {"c": 1111}),
        ("delete", "items", (Predicate("a", ">=", 450),)),
        ("merge", "items"),
        ("insert", "items", item_rows(2)),
        ("delete", "tags", (Predicate("t", "=", 5),)),
        ("merge", "tags"),
        ("update", "items", (Predicate("b", ">=", 45),), {"b": 7}),
        ("insert", "items", item_rows(3)),
        ("merge", "items"),
        ("apply_build", "items"),
        ("insert", "items", item_rows(2)),
        ("delete", "items", (Predicate("c", "<", 60),)),
        ("merge", "items"),
        ("apply_drop", "items"),
        ("insert", "tags", tag_rows(3)),
        ("update", "tags", (Predicate("v", "<", 30),), {"v": 77}),
        ("merge", "tags"),
    ]


def _crash_apply_op(db, op) -> None:
    """Execute one :func:`crash_workload` op against *db*."""
    from repro.advisor.plan import AdvisorAction, AdvisorPlan, apply_plan

    kind = op[0]
    if kind == "insert":
        db.insert(op[1], op[2])
    elif kind == "update":
        db.update(op[1], op[2], op[3])
    elif kind == "delete":
        db.delete(op[1], op[2])
    elif kind == "merge":
        db.merge(op[1])
    elif kind == "apply_build":
        plan = AdvisorPlan(actions=[AdvisorAction(
            kind="build", name="items_c", anchor=op[1],
            columns=("c", "a"), sort_keys=("c",),
            encodings={"c": ["uncompressed", "rle"],
                       "a": ["uncompressed"]},
        )])
        apply_plan(db, plan)
    elif kind == "apply_drop":
        plan = AdvisorPlan(actions=[AdvisorAction(kind="drop",
                                                  name="items_c")])
        apply_plan(db, plan)
    else:
        raise ValueError(f"unknown crash op {kind!r}")


def _canonical_state(db) -> dict:
    """table -> sorted tuple rows, via a full merge-on-read scan."""
    state = {}
    for table, columns in CRASH_TABLES.items():
        result = db.query(
            SelectQuery(projection=table, select=columns),
            strategy=Strategy.EM_PARALLEL,
        )
        state[table] = sorted(result.rows())
    return state


def _crash_suite_queries():
    """Fixed query suite hashing the recovered database's answers."""
    return [
        SelectQuery(projection="items", select=("a", "b", "c")),
        SelectQuery(projection="items", select=("b", "c"),
                    predicates=(Predicate("a", "<", 250),)),
        SelectQuery(projection="items",
                    select=("b", AggSpec("sum", "c").output_name),
                    group_by="b", aggregates=(AggSpec("sum", "c"),)),
        SelectQuery(projection="tags", select=("t", "v"),
                    predicates=(Predicate("v", ">=", 20),)),
    ]


def _acceptance_states(ops, states, j):
    """Every prefix-consistent state for a crash during op *j* (1-based).

    ``states[j]`` is the canonical state after op j (``states[0]`` = the
    template). The interrupted op may be invisible, fully applied, or —
    for a multi-row insert, whose WAL lines land row by row and whose tail
    may tear mid-payload — any row prefix. Merges and applies never change
    the canonical state, so for them before/after coincide.
    """
    if j == 0:
        return [states[0]]
    op = ops[j - 1]
    before, after = states[j - 1], states[j]
    if op[0] == "insert":
        table, rows = op[1], op[2]
        columns = CRASH_TABLES[table]
        accepted = []
        for i in range(len(rows) + 1):
            state = {t: list(v) for t, v in before.items()}
            state[table] = sorted(
                state[table]
                + [tuple(int(r[c]) for c in columns) for r in rows[:i]]
            )
            accepted.append(state)
        return accepted
    if op[0] in ("update", "delete"):
        return [before, after]
    return [before]  # merge / apply: answer-preserving by construction


def run_crash_differential(
    template_root,
    work_root,
    seed: int = 0,
    max_crash_points: int | None = None,
    parallel_scans: int = 2,
) -> CrashDifferentialReport:
    """The crash axis: every write boundary, crashed and recovered.

    Builds the template database under *template_root*, runs the seeded
    :func:`crash_workload` once on a clean copy under a step-counting
    injector (recording boundary ranges and the canonical state after
    every op), then for each boundary *k* replays the workload on a fresh
    copy with ``crash_at=k``, hard-abandons the crashed handle, reopens
    cold with a different ``parallel_scans``, and checks:

    1. the recovered canonical state is one of the prefix-consistent
       acceptance states for the interrupted op (acknowledged writes
       durable, unacknowledged invisible);
    2. resuming the remaining workload reproduces the clean reference's
       final canonical state and the fixed query suite's answers bit for
       bit (one strategy per trial, rotating through all four).

    ``max_crash_points`` subsamples the boundary list evenly when set
    (every boundary is tested when ``None``).
    """
    import shutil

    from repro import Database, MetricsRegistry
    from repro.faults import CrashInjector, SimulatedCrash

    template_root = str(template_root)
    work_root = str(work_root)
    build_crash_template(template_root, seed=seed)
    ops = crash_workload(seed=seed)

    def fresh(target):
        shutil.rmtree(target, ignore_errors=True)
        shutil.copytree(template_root, target)

    # ----------------------------------------------------- reference run
    ref_root = f"{work_root}/reference"
    fresh(ref_root)
    counter = CrashInjector(seed=seed)  # no schedule: counts boundaries
    ref_db = Database(ref_root, crash_injector=counter,
                      query_log=False, metrics=MetricsRegistry())
    cumulative = [counter.steps]  # boundaries consumed by the open itself
    states = [_canonical_state(ref_db)]
    for op in ops:
        _crash_apply_op(ref_db, op)
        cumulative.append(counter.steps)
        states.append(_canonical_state(ref_db))
    for j, op in enumerate(ops, start=1):
        if op[0] in ("merge", "apply_build", "apply_drop"):
            assert states[j] == states[j - 1], (
                f"{op[0]} changed the canonical state — the acceptance "
                "model is unsound"
            )
    suite = _crash_suite_queries()
    reference_answers = [
        sorted(ref_db.query(q, strategy=Strategy.EM_PARALLEL).rows())
        for q in suite
    ]
    ref_db.close()

    report = CrashDifferentialReport(boundaries=cumulative[-1])
    crash_points = list(range(1, cumulative[-1] + 1))
    if max_crash_points is not None and len(crash_points) > max_crash_points:
        stride = len(crash_points) / max_crash_points
        crash_points = [
            crash_points[int(i * stride)] for i in range(max_crash_points)
        ]

    # ----------------------------------------------------- crash trials
    trial_root = f"{work_root}/trial"
    for trial, k in enumerate(crash_points):
        report.trials += 1
        fresh(trial_root)
        injector = CrashInjector(seed=seed, crash_at=k)
        crashed_at = None  # 1-based op index; 0 = during open
        try:
            db = Database(trial_root, crash_injector=injector,
                          query_log=False, metrics=MetricsRegistry())
            for j, op in enumerate(ops, start=1):
                _crash_apply_op(db, op)
        except SimulatedCrash:
            crashed_at = 0 if injector.steps <= cumulative[0] else next(
                j for j in range(1, len(ops) + 1)
                if injector.steps <= cumulative[j]
            )
        # No close(), no flush: the crashed handle is abandoned exactly
        # where the exception left it, like a killed process.
        if crashed_at is None:
            report.mismatches.append(
                {"crash_at": k, "error": "injector never fired"}
            )
            continue
        report.crashes += 1
        report.ops_crashed.add(
            "open" if crashed_at == 0 else ops[crashed_at - 1][0]
        )

        recovered = Database(trial_root, query_log=False,
                             metrics=MetricsRegistry(),
                             parallel_scans=parallel_scans)
        state = _canonical_state(recovered)
        accepted = _acceptance_states(ops, states, crashed_at)
        try:
            match = accepted.index(state)
        except ValueError:
            report.mismatches.append(
                {
                    "crash_at": k,
                    "op": crashed_at,
                    "error": "recovered state is not prefix-consistent",
                    "rows": {t: len(v) for t, v in state.items()},
                }
            )
            recovered.close()
            continue
        if crashed_at and ops[crashed_at - 1][0] == "insert":
            if 0 < match < len(accepted) - 1:
                report.prefix_recoveries += 1

        # Resume: finish (or redo) the interrupted op, then run the rest.
        if crashed_at == 0:
            remaining = ops
        else:
            op = ops[crashed_at - 1]
            if op[0] == "insert":
                recovered.insert(op[1], op[2][match:])
            elif op[0] in ("update", "delete"):
                if match == 0:  # the op never became durable
                    _crash_apply_op(recovered, op)
            else:
                _crash_apply_op(recovered, op)  # idempotent re-run
            remaining = ops[crashed_at:]
        for op in remaining:
            _crash_apply_op(recovered, op)

        final = _canonical_state(recovered)
        if final != states[-1]:
            report.mismatches.append(
                {"crash_at": k, "op": crashed_at,
                 "error": "resumed final state diverges from reference"}
            )
            recovered.close()
            continue
        strategy = STRATEGIES[trial % len(STRATEGIES)]
        for q, expected in zip(suite, reference_answers):
            got = sorted(recovered.query(q, strategy=strategy).rows())
            if got != expected:
                report.mismatches.append(
                    {"crash_at": k, "op": crashed_at,
                     "strategy": strategy.value,
                     "error": "query suite diverges after recovery"}
                )
                break
        recovered.close()
    return report
