"""Property-based tests for mini-column extraction and multi-column AND."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dtypes import INT32
from repro.multicolumn import MiniColumn, MultiColumn
from repro.positions import BitmapPositions, ListedPositions, RangePositions
from repro.storage import encoding_by_name, write_column

N_ROWS = 60_000


@pytest.fixture(scope="module", params=["uncompressed", "rle", "dictionary"])
def pinned(request, tmp_path_factory):
    rng = np.random.default_rng(13)
    values = np.sort(rng.integers(0, 200, size=N_ROWS)).astype(np.int32)
    path = tmp_path_factory.mktemp("mc") / f"{request.param}.col"
    cf = write_column(
        path, values, INT32, encoding_by_name(request.param), column_name="x"
    )
    mini = MiniColumn(cf)
    for desc in cf.descriptors:
        mini.pin(desc, cf.read_payload(desc.index))
    return values, mini


@given(
    st.lists(st.integers(0, N_ROWS - 1), min_size=1, max_size=200, unique=True)
)
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_minicolumn_gather_matches_indexing(pinned, picks):
    values, mini = pinned
    positions = np.array(sorted(picks), dtype=np.int64)
    assert np.array_equal(mini.gather(positions), values[positions])


@st.composite
def descriptors(draw):
    kind = draw(st.sampled_from(["range", "listed", "bitmap"]))
    if kind == "range":
        a = draw(st.integers(0, 500))
        b = draw(st.integers(0, 500))
        return RangePositions(min(a, b), max(a, b))
    members = draw(
        st.lists(st.integers(0, 499), max_size=40, unique=True)
    )
    if kind == "listed":
        return ListedPositions(np.array(sorted(members), dtype=np.int64))
    mask = np.zeros(500, dtype=bool)
    for m in members:
        mask[m] = True
    return BitmapPositions.from_mask(0, mask)


@given(descriptors(), descriptors())
@settings(max_examples=120, deadline=None)
def test_multicolumn_and_matches_set_intersection(d1, d2):
    left = MultiColumn(0, 500, d1)
    right = MultiColumn(0, 500, d2)
    merged = left.intersect(right)
    expected = set(d1.to_array().tolist()) & set(d2.to_array().tolist())
    assert set(merged.descriptor.to_array().tolist()) == expected
    assert merged.valid_count() == len(expected)


@given(descriptors(), descriptors())
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_multicolumn_and_unions_minicolumn_arrays(pinned, d1, d2):
    _values, mini = pinned
    left = MultiColumn(0, 500, d1, {"x": mini})
    right = MultiColumn(0, 500, d2, {})
    merged = left.intersect(right)
    # Mini-column pointers survive the AND regardless of which side held them.
    assert merged.minicolumn("x") is mini
    merged_rev = right.intersect(left)
    assert merged_rev.minicolumn("x") is mini
