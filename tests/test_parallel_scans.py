"""Concurrent scan leaves must be observationally identical to serial runs."""

import pytest

from repro import Database, Predicate, SelectQuery
from repro.buffer import BufferPool
from repro.metrics import QueryStats
from repro.operators.base import ExecutionContext
from repro.operators.scheduler import ScanScheduler
from repro.tpch.generator import SHIPDATE_MAX, SHIPDATE_MIN

ENCODINGS = ("uncompressed", "rle", "bitvector")
STRATEGIES = ("em-parallel", "lm-parallel")


def _selection(encoding: str, selectivity: float = 0.1) -> SelectQuery:
    return SelectQuery(
        projection="lineitem",
        select=("shipdate", "linenum"),
        predicates=(
            Predicate(
                "shipdate",
                "<",
                int(SHIPDATE_MIN + selectivity * (SHIPDATE_MAX + 1 - SHIPDATE_MIN)),
            ),
            Predicate("linenum", "<", 7),
        ),
        encodings=(("linenum", encoding),),
    )


class TestSchedulerUnit:
    def test_results_in_task_order(self):
        import time

        ctx = ExecutionContext(pool=BufferPool(), stats=QueryStats())
        scheduler = ScanScheduler(max_workers=4)
        try:

            def make(i):
                def task(leaf_ctx):
                    time.sleep(0.01 * (4 - i))  # later tasks finish first
                    leaf_ctx.stats.function_calls += i
                    return i

                return task

            results = scheduler.run(ctx, [make(i) for i in range(4)])
            assert results == [0, 1, 2, 3]
            assert ctx.stats.function_calls == 0 + 1 + 2 + 3
        finally:
            scheduler.close()

    def test_first_error_propagates_after_barrier(self):
        ctx = ExecutionContext(pool=BufferPool(), stats=QueryStats())
        scheduler = ScanScheduler(max_workers=2)
        try:

            def ok(leaf_ctx):
                leaf_ctx.stats.function_calls += 1
                return "ok"

            def boom(leaf_ctx):
                leaf_ctx.stats.function_calls += 1
                raise RuntimeError("leaf failed")

            with pytest.raises(RuntimeError, match="leaf failed"):
                scheduler.run(ctx, [ok, boom, ok])
            # Every leaf still ran and merged before the raise.
            assert ctx.stats.function_calls == 3
        finally:
            scheduler.close()

    def test_close_is_idempotent(self):
        scheduler = ScanScheduler(max_workers=1)
        scheduler.close()
        scheduler.close()

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ScanScheduler(max_workers=0)

    def test_map_leaves_serial_without_scheduler(self):
        ctx = ExecutionContext(pool=BufferPool(), stats=QueryStats())
        results = ctx.map_leaves([lambda c: 1, lambda c: 2])
        assert results == [1, 2]


class TestParallelIdentity:
    """Parallel-scan runs produce the same rows, stats, and simulated cost."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_matches_serial(self, tpch_db, encoding, strategy):
        root = tpch_db.catalog.root
        query = _selection(encoding)
        serial = Database(root, parallel_scans=0)
        with Database(root, parallel_scans=4) as parallel:
            runs = {}
            for name, db in (("serial", serial), ("parallel", parallel)):
                cold = db.query(query, strategy=strategy, cold=True)
                warm = db.query(query, strategy=strategy)
                runs[name] = (cold, warm)
            for cold_or_warm in (0, 1):
                a = runs["serial"][cold_or_warm]
                b = runs["parallel"][cold_or_warm]
                assert b.rows() == a.rows()
                assert b.simulated_ms == a.simulated_ms
                assert b.stats.as_dict() == a.stats.as_dict()

    def test_parallel_aggregation_matches_serial(self, tpch_db):
        from repro import AggSpec

        query = SelectQuery(
            projection="lineitem",
            select=("shipdate", "sum(linenum)"),
            predicates=(
                Predicate("shipdate", "<", SHIPDATE_MIN + 2000),
                Predicate("linenum", "<", 7),
            ),
            group_by="shipdate",
            aggregates=(AggSpec("sum", "linenum"),),
            encodings=(("linenum", "rle"),),
        )
        root = tpch_db.catalog.root
        serial = Database(root, parallel_scans=0)
        with Database(root, parallel_scans=4) as parallel:
            for strategy in STRATEGIES:
                a = serial.query(query, strategy=strategy, cold=True)
                b = parallel.query(query, strategy=strategy, cold=True)
                assert b.rows() == a.rows()
                assert b.simulated_ms == a.simulated_ms
                assert b.stats.as_dict() == a.stats.as_dict()

    def test_traces_cover_same_events(self, tpch_db):
        """Trace merge is per-leaf (task order), so event multisets match."""
        root = tpch_db.catalog.root
        query = _selection("rle")
        serial = Database(root, parallel_scans=0)
        with Database(root, parallel_scans=4) as parallel:
            a = serial.query(query, strategy="lm-parallel", trace=True)
            b = parallel.query(query, strategy="lm-parallel", trace=True)
            assert sorted(map(repr, a.trace)) == sorted(map(repr, b.trace))

    def test_repeated_parallel_runs_are_stable(self, tpch_db):
        """No flaky interleaving effects: N parallel runs, one answer."""
        query = _selection("uncompressed", selectivity=0.5)
        with Database(tpch_db.catalog.root, parallel_scans=4) as db:
            baseline = db.query(query, strategy="em-parallel", cold=True)
            for _ in range(5):
                again = db.query(query, strategy="em-parallel", cold=True)
                assert again.rows() == baseline.rows()
                assert again.stats.as_dict() == baseline.stats.as_dict()
