"""Tests for the writable store: inserts, merge-on-read, and the tuple mover."""

from datetime import date

import numpy as np
import pytest

from repro import AggSpec, Database, Predicate, SelectQuery, load_tpch
from repro.errors import CatalogError, ExecutionError

from .reference import full_column


@pytest.fixture()
def db(tmp_path):
    database = Database(tmp_path / "db")
    load_tpch(database.catalog, scale=0.001, seed=5)  # 6000 lineitem rows
    return database


def lineitem_row(shipdate="1999-06-01", linenum=1, quantity=10, flag="A"):
    return {
        "shipdate": date.fromisoformat(shipdate),
        "linenum": linenum,
        "quantity": quantity,
        "returnflag": flag,
    }


class TestInsertValidation:
    def test_insert_counts(self, db):
        assert db.insert("lineitem", [lineitem_row(), lineitem_row()]) == 2
        assert db.pending("lineitem") == 2

    def test_unknown_table(self, db):
        with pytest.raises(CatalogError):
            db.insert("ghost", [lineitem_row()])

    def test_missing_column_rejected(self, db):
        bad = lineitem_row()
        bad.pop("quantity")
        with pytest.raises(CatalogError):
            db.insert("lineitem", [bad])

    def test_extra_column_rejected(self, db):
        bad = lineitem_row()
        bad["surprise"] = 1
        with pytest.raises(CatalogError):
            db.insert("lineitem", [bad])

    def test_dictionary_value_encoded(self, db):
        db.insert("lineitem", [lineitem_row(flag="R")])
        r = db.sql(
            "SELECT returnflag, linenum FROM lineitem "
            "WHERE shipdate > '1999-01-01'"
        )
        assert r.decoded_rows() == [("R", 1)]


class TestMergeOnRead:
    def test_selection_sees_pending_rows(self, db):
        before = db.sql("SELECT linenum FROM lineitem WHERE linenum = 7").n_rows
        db.insert("lineitem", [lineitem_row(linenum=7)] * 3)
        after = db.sql("SELECT linenum FROM lineitem WHERE linenum = 7").n_rows
        assert after == before + 3

    def test_predicates_filter_pending_rows(self, db):
        db.insert(
            "lineitem",
            [lineitem_row(quantity=5), lineitem_row(quantity=45)],
        )
        r = db.sql(
            "SELECT quantity FROM lineitem "
            "WHERE shipdate > '1999-01-01' AND quantity < 10"
        )
        assert r.rows() == [(5,)]

    def test_aggregation_merges_partials(self, db):
        lineitem = db.projection("lineitem")
        lin = full_column(lineitem, "linenum")
        qty = full_column(lineitem, "quantity")
        stored_sum = int(qty[lin == 2].sum())
        db.insert("lineitem", [lineitem_row(linenum=2, quantity=100)] * 2)
        r = db.sql(
            "SELECT linenum, SUM(quantity) FROM lineitem "
            "WHERE linenum = 2 GROUP BY linenum"
        )
        assert r.rows() == [(2, stored_sum + 200)]

    def test_avg_merges_correctly(self, db):
        # AVG over merged data must be recomputed from merged SUM/COUNT, not
        # averaged averages.
        db.insert("lineitem", [lineitem_row(linenum=1, quantity=1)] * 10)
        lineitem = db.projection("lineitem")
        lin = full_column(lineitem, "linenum")
        qty = full_column(lineitem, "quantity")
        expected = (int(qty[lin == 1].sum()) + 10) // (int((lin == 1).sum()) + 10)
        r = db.sql(
            "SELECT linenum, AVG(quantity) FROM lineitem "
            "WHERE linenum = 1 GROUP BY linenum"
        )
        assert r.rows() == [(1, expected)]

    def test_new_group_appears(self, db):
        db.insert("lineitem", [lineitem_row(shipdate="1999-12-31", linenum=3)])
        r = db.sql(
            "SELECT shipdate, COUNT(shipdate) FROM lineitem "
            "WHERE shipdate > '1999-01-01' GROUP BY shipdate"
        )
        assert r.decoded_rows() == [(date(1999, 12, 31), 1)]

    def test_order_and_limit_apply_after_merge(self, db):
        db.insert("lineitem", [lineitem_row(quantity=999)])
        r = db.sql(
            "SELECT quantity FROM lineitem ORDER BY quantity DESC LIMIT 1"
        )
        assert r.rows() == [(999,)]

    def test_join_requires_merge(self, db):
        db.insert(
            "orders",
            [{"shipdate": date(1999, 1, 1), "custkey": 1}],
        )
        with pytest.raises(ExecutionError):
            db.sql(
                "SELECT o.shipdate, c.nationcode FROM orders o, customer c "
                "WHERE o.custkey = c.custkey"
            )


class TestTupleMover:
    def test_merge_moves_rows(self, db):
        n_before = db.projection("lineitem").n_rows
        db.insert("lineitem", [lineitem_row()] * 5)
        assert db.merge("lineitem") == 5
        assert db.pending("lineitem") == 0
        assert db.projection("lineitem").n_rows == n_before + 5

    def test_merge_resorts(self, db):
        # Inserted rows land in sort position, not appended at the end.
        db.insert("lineitem", [lineitem_row(shipdate="1992-01-02", flag="A")])
        db.merge("lineitem")
        lineitem = db.projection("lineitem")
        flag = full_column(lineitem, "returnflag").astype(np.int64)
        ship = full_column(lineitem, "shipdate").astype(np.int64)
        key = flag * 10**6 + ship
        assert np.all(np.diff(key) >= 0)

    def test_merge_is_idempotent(self, db):
        db.insert("lineitem", [lineitem_row()])
        db.merge("lineitem")
        n = db.projection("lineitem").n_rows
        assert db.merge("lineitem") == 0
        assert db.projection("lineitem").n_rows == n

    def test_queries_after_merge(self, db):
        db.insert("lineitem", [lineitem_row(linenum=7, quantity=50)] * 4)
        pre_merge = db.sql(
            "SELECT linenum, SUM(quantity) FROM lineitem "
            "WHERE linenum = 7 GROUP BY linenum"
        ).rows()
        db.merge("lineitem")
        post_merge = db.sql(
            "SELECT linenum, SUM(quantity) FROM lineitem "
            "WHERE linenum = 7 GROUP BY linenum"
        ).rows()
        assert pre_merge == post_merge

    def test_merge_then_join_allowed(self, db):
        db.insert("orders", [{"shipdate": date(1999, 1, 1), "custkey": 3}])
        db.merge("orders")
        r = db.sql(
            "SELECT o.shipdate, c.nationcode FROM orders o, customer c "
            "WHERE o.custkey = c.custkey AND o.custkey < 5"
        )
        assert r.n_rows > 0

    def test_merge_rebuilds_index_and_histogram(self, db):
        db.insert("lineitem", [lineitem_row()])
        db.merge("lineitem")
        lineitem = db.projection("lineitem")
        assert lineitem.column("returnflag").index is not None
        cf = lineitem.column("quantity").file()
        assert cf.histogram is not None
        assert cf.histogram.n_values == lineitem.n_rows
