"""Tests for the writable store: inserts, merge-on-read, and the tuple mover."""

from datetime import date

import numpy as np
import pytest

from repro import AggSpec, Database, Predicate, SelectQuery, load_tpch
from repro.errors import CatalogError, ExecutionError

from .reference import full_column


@pytest.fixture()
def db(tmp_path):
    database = Database(tmp_path / "db")
    load_tpch(database.catalog, scale=0.001, seed=5)  # 6000 lineitem rows
    return database


def lineitem_row(shipdate="1999-06-01", linenum=1, quantity=10, flag="A"):
    return {
        "shipdate": date.fromisoformat(shipdate),
        "linenum": linenum,
        "quantity": quantity,
        "returnflag": flag,
    }


class TestInsertValidation:
    def test_insert_counts(self, db):
        assert db.insert("lineitem", [lineitem_row(), lineitem_row()]) == 2
        assert db.pending("lineitem") == 2

    def test_unknown_table(self, db):
        with pytest.raises(CatalogError):
            db.insert("ghost", [lineitem_row()])

    def test_missing_column_rejected(self, db):
        bad = lineitem_row()
        bad.pop("quantity")
        with pytest.raises(CatalogError):
            db.insert("lineitem", [bad])

    def test_extra_column_rejected(self, db):
        bad = lineitem_row()
        bad["surprise"] = 1
        with pytest.raises(CatalogError):
            db.insert("lineitem", [bad])

    def test_dictionary_value_encoded(self, db):
        db.insert("lineitem", [lineitem_row(flag="R")])
        r = db.sql(
            "SELECT returnflag, linenum FROM lineitem "
            "WHERE shipdate > '1999-01-01'"
        )
        assert r.decoded_rows() == [("R", 1)]


class TestMergeOnRead:
    def test_selection_sees_pending_rows(self, db):
        before = db.sql("SELECT linenum FROM lineitem WHERE linenum = 7").n_rows
        db.insert("lineitem", [lineitem_row(linenum=7)] * 3)
        after = db.sql("SELECT linenum FROM lineitem WHERE linenum = 7").n_rows
        assert after == before + 3

    def test_predicates_filter_pending_rows(self, db):
        db.insert(
            "lineitem",
            [lineitem_row(quantity=5), lineitem_row(quantity=45)],
        )
        r = db.sql(
            "SELECT quantity FROM lineitem "
            "WHERE shipdate > '1999-01-01' AND quantity < 10"
        )
        assert r.rows() == [(5,)]

    def test_aggregation_merges_partials(self, db):
        lineitem = db.projection("lineitem")
        lin = full_column(lineitem, "linenum")
        qty = full_column(lineitem, "quantity")
        stored_sum = int(qty[lin == 2].sum())
        db.insert("lineitem", [lineitem_row(linenum=2, quantity=100)] * 2)
        r = db.sql(
            "SELECT linenum, SUM(quantity) FROM lineitem "
            "WHERE linenum = 2 GROUP BY linenum"
        )
        assert r.rows() == [(2, stored_sum + 200)]

    def test_avg_merges_correctly(self, db):
        # AVG over merged data must be recomputed from merged SUM/COUNT, not
        # averaged averages.
        db.insert("lineitem", [lineitem_row(linenum=1, quantity=1)] * 10)
        lineitem = db.projection("lineitem")
        lin = full_column(lineitem, "linenum")
        qty = full_column(lineitem, "quantity")
        expected = (int(qty[lin == 1].sum()) + 10) // (int((lin == 1).sum()) + 10)
        r = db.sql(
            "SELECT linenum, AVG(quantity) FROM lineitem "
            "WHERE linenum = 1 GROUP BY linenum"
        )
        assert r.rows() == [(1, expected)]

    def test_new_group_appears(self, db):
        db.insert("lineitem", [lineitem_row(shipdate="1999-12-31", linenum=3)])
        r = db.sql(
            "SELECT shipdate, COUNT(shipdate) FROM lineitem "
            "WHERE shipdate > '1999-01-01' GROUP BY shipdate"
        )
        assert r.decoded_rows() == [(date(1999, 12, 31), 1)]

    def test_order_and_limit_apply_after_merge(self, db):
        db.insert("lineitem", [lineitem_row(quantity=999)])
        r = db.sql(
            "SELECT quantity FROM lineitem ORDER BY quantity DESC LIMIT 1"
        )
        assert r.rows() == [(999,)]

    def test_join_requires_merge(self, db):
        db.insert(
            "orders",
            [{"shipdate": date(1999, 1, 1), "custkey": 1}],
        )
        with pytest.raises(ExecutionError):
            db.sql(
                "SELECT o.shipdate, c.nationcode FROM orders o, customer c "
                "WHERE o.custkey = c.custkey"
            )


class TestTupleMover:
    def test_merge_moves_rows(self, db):
        n_before = db.projection("lineitem").n_rows
        db.insert("lineitem", [lineitem_row()] * 5)
        assert db.merge("lineitem") == 5
        assert db.pending("lineitem") == 0
        assert db.projection("lineitem").n_rows == n_before + 5

    def test_merge_resorts(self, db):
        # Inserted rows land in sort position, not appended at the end.
        db.insert("lineitem", [lineitem_row(shipdate="1992-01-02", flag="A")])
        db.merge("lineitem")
        lineitem = db.projection("lineitem")
        flag = full_column(lineitem, "returnflag").astype(np.int64)
        ship = full_column(lineitem, "shipdate").astype(np.int64)
        key = flag * 10**6 + ship
        assert np.all(np.diff(key) >= 0)

    def test_merge_is_idempotent(self, db):
        db.insert("lineitem", [lineitem_row()])
        db.merge("lineitem")
        n = db.projection("lineitem").n_rows
        assert db.merge("lineitem") == 0
        assert db.projection("lineitem").n_rows == n

    def test_queries_after_merge(self, db):
        db.insert("lineitem", [lineitem_row(linenum=7, quantity=50)] * 4)
        pre_merge = db.sql(
            "SELECT linenum, SUM(quantity) FROM lineitem "
            "WHERE linenum = 7 GROUP BY linenum"
        ).rows()
        db.merge("lineitem")
        post_merge = db.sql(
            "SELECT linenum, SUM(quantity) FROM lineitem "
            "WHERE linenum = 7 GROUP BY linenum"
        ).rows()
        assert pre_merge == post_merge

    def test_merge_then_join_allowed(self, db):
        db.insert("orders", [{"shipdate": date(1999, 1, 1), "custkey": 3}])
        db.merge("orders")
        r = db.sql(
            "SELECT o.shipdate, c.nationcode FROM orders o, customer c "
            "WHERE o.custkey = c.custkey AND o.custkey < 5"
        )
        assert r.n_rows > 0

    def test_merge_rebuilds_index_and_histogram(self, db):
        db.insert("lineitem", [lineitem_row()])
        db.merge("lineitem")
        lineitem = db.projection("lineitem")
        assert lineitem.column("returnflag").index is not None
        cf = lineitem.column("quantity").file()
        assert cf.histogram is not None
        assert cf.histogram.n_values == lineitem.n_rows


class TestDeletes:
    def test_delete_pending_rows_is_immediate(self, db):
        db.insert("lineitem", [lineitem_row(linenum=77)] * 3)
        n = db.delete("lineitem", (Predicate("linenum", "=", 77),))
        assert n == 3
        assert db.sql(
            "SELECT linenum FROM lineitem WHERE linenum = 77"
        ).n_rows == 0
        assert db.pending("lineitem") == 0  # nothing left to move

    def test_delete_stored_rows_subtracted_from_queries(self, db):
        before = db.sql("SELECT linenum FROM lineitem WHERE linenum = 3")
        n = db.delete("lineitem", (Predicate("linenum", "=", 3),))
        assert n == before.n_rows > 0
        for strategy in ("em-pipelined", "em-parallel", "lm-parallel"):
            assert db.sql(
                "SELECT linenum FROM lineitem WHERE linenum = 3",
                strategy=strategy,
            ).n_rows == 0

    def test_delete_affects_aggregates(self, db):
        full = db.sql(
            "SELECT returnflag, sum(quantity) FROM lineitem "
            "GROUP BY returnflag"
        )
        db.delete("lineitem", (Predicate("returnflag", "=", 0),))
        reduced = db.sql(
            "SELECT returnflag, sum(quantity) FROM lineitem "
            "GROUP BY returnflag"
        )
        flags = {row[0] for row in reduced.rows()}
        assert 0 not in flags
        kept = {row[0]: row[1] for row in full.rows() if row[0] != 0}
        assert {row[0]: row[1] for row in reduced.rows()} == kept

    def test_delete_no_matches_returns_zero_and_logs_nothing(self, db):
        wal = db.catalog.root / "_wal" / "lineitem.wal"
        assert db.delete("lineitem", (Predicate("quantity", ">", 10**6),)) == 0
        assert not wal.exists()

    def test_deletes_survive_restart(self, db, tmp_path):
        n = db.delete("lineitem", (Predicate("linenum", "=", 5),))
        assert n > 0
        reopened = Database(tmp_path / "db")
        assert reopened.sql(
            "SELECT linenum FROM lineitem WHERE linenum = 5"
        ).n_rows == 0
        assert reopened.pending("lineitem") == n

    def test_merge_folds_deletes_into_read_store(self, db):
        n = db.delete("lineitem", (Predicate("linenum", "=", 2),))
        assert db.merge("lineitem") == n
        assert db.pending("lineitem") == 0
        assert db.sql(
            "SELECT linenum FROM lineitem WHERE linenum = 2"
        ).n_rows == 0
        # The rebuilt projection holds exactly the surviving rows.
        values = db.projection("lineitem").read_column_values("linenum")
        assert (values == 2).sum() == 0


class TestUpdates:
    def test_update_rewrites_matches(self, db):
        before = db.sql(
            "SELECT quantity FROM lineitem WHERE linenum = 4"
        ).n_rows
        n = db.update(
            "lineitem", (Predicate("linenum", "=", 4),), {"quantity": 33}
        )
        assert n == before > 0
        r = db.sql("SELECT quantity FROM lineitem WHERE linenum = 4")
        assert r.n_rows == before
        assert {row[0] for row in r.rows()} == {33}

    def test_update_encodes_dictionary_assignment(self, db):
        n = db.update(
            "lineitem", (Predicate("linenum", "=", 6),), {"returnflag": "N"}
        )
        assert n > 0
        r = db.sql("SELECT returnflag FROM lineitem WHERE linenum = 6")
        assert {row[0] for row in r.decoded_rows()} == {"N"}

    def test_update_unknown_column_rejected(self, db):
        with pytest.raises(CatalogError, match="nope"):
            db.update("lineitem", (), {"nope": 1})

    def test_update_is_one_atomic_wal_record(self, db):
        import json

        n = db.update(
            "lineitem", (Predicate("linenum", "=", 1),), {"quantity": 9}
        )
        assert n > 0
        wal = db.catalog.root / "_wal" / "lineitem.wal"
        lines = [
            json.loads(line)
            for line in wal.read_text().splitlines() if line
        ]
        assert len(lines) == 1
        assert lines[0]["_op"] == "update"
        assert len(lines[0]["rows"]) == n

    def test_updates_survive_restart_and_merge(self, db, tmp_path):
        db.update(
            "lineitem", (Predicate("linenum", "=", 7),), {"quantity": 55}
        )
        reopened = Database(tmp_path / "db")
        r = reopened.sql("SELECT quantity FROM lineitem WHERE linenum = 7")
        assert {row[0] for row in r.rows()} == {55}
        reopened.merge("lineitem")
        r = reopened.sql("SELECT quantity FROM lineitem WHERE linenum = 7")
        assert {row[0] for row in r.rows()} == {55}
        assert reopened.pending("lineitem") == 0

    def test_update_then_delete_composes(self, db):
        db.update(
            "lineitem", (Predicate("linenum", "=", 2),), {"quantity": 77}
        )
        n = db.delete("lineitem", (Predicate("quantity", "=", 77),))
        assert n > 0
        assert db.sql(
            "SELECT quantity FROM lineitem WHERE quantity = 77"
        ).n_rows == 0


class TestDurabilityKnob:
    def test_fsync_default_charges_simulated_clock(self, tmp_path):
        database = Database(tmp_path / "db")
        load_tpch(database.catalog, scale=0.001, seed=5)
        assert database.durability == "fsync"
        before = database.disk.total_fsyncs
        database.insert("lineitem", [lineitem_row()])
        assert database.disk.total_fsyncs > before

    def test_flush_mode_skips_wal_fsync(self, tmp_path):
        database = Database(tmp_path / "db", durability="flush")
        load_tpch(database.catalog, scale=0.001, seed=5)
        before = database.disk.total_fsyncs
        database.insert("lineitem", [lineitem_row()])
        assert database.disk.total_fsyncs == before

    def test_invalid_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="durability"):
            Database(tmp_path / "db", durability="yolo")
