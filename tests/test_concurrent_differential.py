"""The concurrency differential axis: serving must be invisible.

Every generated query runs serially (traced EM-parallel reference), then
the full (query x strategy) matrix is replayed through a real TCP server
over the *same* Database by 8 concurrent sessions — admission queueing,
priority classes, worker threads, shared buffer/decoded caches, and the
JSON wire format in the execution path. Every served row set must equal
the serial reference bit for bit, with compressed execution both on and
off and ``parallel_scans`` enabled.

The seed is fixed (overridable via ``REPRO_DIFF_SEED``); CI's
``serving-matrix`` job runs this file under two different seeds.
"""

from __future__ import annotations

import os

import pytest

from repro import Database, load_tpch

from .differential import run_concurrent_differential
from .test_differential_strategies import KERNEL_LINENUM_ENCODINGS

SEED = int(os.environ.get("REPRO_DIFF_SEED", "20260806"))


@pytest.fixture(scope="module")
def served_pair(tmp_path_factory):
    """The same stored data, compressed execution on and off, 2-way scans."""
    root = tmp_path_factory.mktemp("diff_serving")
    compressed = Database(root / "db", parallel_scans=2)
    load_tpch(
        compressed.catalog,
        scale=0.002,
        seed=7,
        linenum_encodings=KERNEL_LINENUM_ENCODINGS,
    )
    plain = Database(root / "db", compressed_execution=False, parallel_scans=2)
    yield compressed, plain
    plain.close()
    compressed.close()


@pytest.fixture(scope="module")
def concurrent_reports(served_pair):
    """Two shared sweeps (kernels on / off), 8 sessions each."""
    compressed, plain = served_pair
    on = run_concurrent_differential(
        compressed, n_queries=30, seed=SEED, sessions=8, workers=4
    )
    off = run_concurrent_differential(
        plain, n_queries=30, seed=SEED + 1, sessions=8, workers=4
    )
    return on, off


class TestConcurrentDifferential:
    def test_served_results_match_serial(self, concurrent_reports):
        for report in concurrent_reports:
            assert report.mismatches == [], (
                f"served execution diverged from serial: "
                f"{report.mismatches[:3]}"
            )

    def test_sweep_is_substantial(self, concurrent_reports):
        on, off = concurrent_reports
        # 2 sweeps x 30 queries x 4 strategies, minus the known
        # LM-pipelined/bit-vector skips, must still clear 200 served runs.
        assert on.runs + off.runs >= 200
        assert on.skipped + off.skipped < (on.runs + off.runs) / 4

    def test_kernels_exercised_on_the_compressed_side(
        self, concurrent_reports
    ):
        on, off = concurrent_reports
        assert on.compressed_scans > 0
        assert off.compressed_scans == 0
        assert len(on.encodings_used) >= 2

    def test_queries_cover_both_sweeps(self, concurrent_reports):
        on, off = concurrent_reports
        assert on.queries == off.queries == 30
