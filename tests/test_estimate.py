"""Tests for the header-only estimators (selectivity, fractions, fragments)."""

import numpy as np
import pytest

from repro.dtypes import INT32
from repro.predicates import InPredicate, Predicate
from repro.planner.estimate import (
    estimate_block_fragments,
    estimate_read_fraction,
    estimate_selectivity,
)
from repro.storage import encoding_by_name, write_column


@pytest.fixture
def sorted_column(tmp_path):
    values = np.repeat(np.arange(100, dtype=np.int32), 2000)  # 200k rows
    return write_column(
        tmp_path / "s.col", values, INT32, encoding_by_name("uncompressed")
    ), values


@pytest.fixture
def random_column(tmp_path):
    rng = np.random.default_rng(1)
    values = rng.integers(0, 100, size=200_000).astype(np.int32)
    return write_column(
        tmp_path / "r.col", values, INT32, encoding_by_name("uncompressed")
    ), values


class TestSelectivity:
    @pytest.mark.parametrize("cut", [0, 25, 50, 75, 100])
    def test_sorted_column_accurate(self, sorted_column, cut):
        cf, values = sorted_column
        est = estimate_selectivity(cf, Predicate("s", "<", cut))
        actual = float((values < cut).mean())
        assert est == pytest.approx(actual, abs=0.05)

    def test_random_column_reasonable(self, random_column):
        cf, values = random_column
        est = estimate_selectivity(cf, Predicate("r", "<", 30))
        assert est == pytest.approx(0.30, abs=0.05)

    def test_in_predicate(self, random_column):
        cf, values = random_column
        est = estimate_selectivity(cf, InPredicate("r", (3, 17, 42)))
        actual = float(np.isin(values, [3, 17, 42]).mean())
        assert est == pytest.approx(actual, abs=0.05)

    def test_empty_column(self, tmp_path):
        cf = write_column(
            tmp_path / "e.col",
            np.empty(0, dtype=np.int32),
            INT32,
            encoding_by_name("uncompressed"),
        )
        assert estimate_selectivity(cf, Predicate("e", "<", 5)) == 0.0


class TestReadFraction:
    def test_sorted_column_prunes(self, sorted_column):
        cf, _values = sorted_column
        # Values < 10 live in the first ~10% of a sorted column.
        fraction = estimate_read_fraction(cf, Predicate("s", "<", 10))
        assert fraction < 0.2

    def test_random_column_cannot_prune(self, random_column):
        cf, _values = random_column
        fraction = estimate_read_fraction(cf, Predicate("r", "<", 10))
        assert fraction == 1.0

    def test_impossible_predicate(self, sorted_column):
        cf, _values = sorted_column
        assert estimate_read_fraction(cf, Predicate("s", ">", 10_000)) == 0.0


class TestBlockFragments:
    def test_prefix_predicate_is_one_fragment(self, sorted_column):
        cf, _values = sorted_column
        assert estimate_block_fragments(cf, Predicate("s", "<", 30)) == 1

    def test_equality_on_sorted_is_one_fragment(self, sorted_column):
        cf, _values = sorted_column
        assert estimate_block_fragments(cf, Predicate("s", "=", 50)) == 1

    def test_random_column_is_one_big_fragment(self, random_column):
        cf, _values = random_column
        # Every block overlaps, so they form one contiguous overlap group.
        assert estimate_block_fragments(cf, Predicate("r", "<", 50)) == 1

    def test_multi_slab_column(self, tmp_path):
        # Three sorted slabs (like shipdate inside returnflag groups): a
        # range predicate overlaps a slab prefix in each -> 3 fragments.
        slab = np.repeat(np.arange(50, dtype=np.int32), 1500)
        values = np.concatenate([slab, slab, slab])
        cf = write_column(
            tmp_path / "m.col", values, INT32, encoding_by_name("uncompressed")
        )
        fragments = estimate_block_fragments(cf, Predicate("m", "<", 10))
        assert fragments == 3

    def test_minimum_is_one(self, sorted_column):
        cf, _values = sorted_column
        assert estimate_block_fragments(cf, Predicate("s", ">", 10_000)) == 1
