"""The replay differential axis: a captured log must replay bit-identically.

One database captures a mixed workload into its query log — every generated
query under all four materialization strategies embedded, then the same
query list through a real TCP server from 8 concurrent sessions — and a
second database over the *same* stored files (recorder off) re-executes
every ok record pinned to its recorded strategy, comparing result hashes
bit for bit. This is the acceptance gate behind ``repro replay --check``.

The seed is fixed (overridable via ``REPRO_DIFF_SEED``); CI's
``observability-matrix`` job runs this file under two different seeds.
"""

from __future__ import annotations

import os

import pytest

from repro import Database, MetricsRegistry, load_tpch

from .differential import run_replay_differential
from .test_differential_strategies import KERNEL_LINENUM_ENCODINGS

SEED = int(os.environ.get("REPRO_DIFF_SEED", "20260806"))

STRATEGY_NAMES = {"em-pipelined", "em-parallel", "lm-pipelined", "lm-parallel"}


@pytest.fixture(scope="module")
def replay_outcome(tmp_path_factory):
    """Capture with one database, replay with another over the same root."""
    root = tmp_path_factory.mktemp("diff_replay")
    capture_db = Database(root / "db", metrics=MetricsRegistry())
    load_tpch(
        capture_db.catalog,
        scale=0.002,
        seed=7,
        linenum_encodings=KERNEL_LINENUM_ENCODINGS,
    )
    replay_db = Database(root / "db", metrics=MetricsRegistry(),
                         query_log=False)
    try:
        records, report = run_replay_differential(
            capture_db, replay_db, n_queries=40, seed=SEED,
            sessions=8, workers=4,
        )
        yield records, report
    finally:
        replay_db.close()
        capture_db.close()


class TestReplayDifferential:
    def test_replay_is_bit_identical(self, replay_outcome):
        _records, report = replay_outcome
        assert report.ok, report.render()
        assert report.mismatched == 0
        assert report.errors == 0
        assert report.matched == report.replayed

    def test_workload_is_large_and_mixed(self, replay_outcome):
        records, report = replay_outcome
        # Acceptance floor: >= 200 mixed queries replayed hash-clean.
        assert report.replayed >= 200
        assert set(report.origins) == {"embedded", "served"}
        assert set(report.strategies) == STRATEGY_NAMES

    def test_log_covers_strategies_and_encodings(self, replay_outcome):
        records, _report = replay_outcome
        ok = [r for r in records if r["outcome"] == "ok"]
        assert {r["strategy"] for r in ok} == STRATEGY_NAMES
        assert {r["origin"] for r in ok} == {"embedded", "served"}
        encodings = {
            enc for r in ok for enc in (r.get("encodings") or {}).values()
        }
        assert "rle" in encodings
        assert len(encodings) >= 2
        # Served records carry their session and queue-wait observations.
        served = [r for r in ok if r["origin"] == "served"]
        assert served and all(r.get("session") for r in served)
        assert all("queue_wait_ms" in r for r in served)

    def test_every_ok_record_is_replayable(self, replay_outcome):
        records, report = replay_outcome
        ok_with_hash = [
            r for r in records
            if r["outcome"] == "ok" and "result_hash" in r
        ]
        # Both databases see the same stored files, so nothing eligible is
        # skipped: eligible == replayed.
        assert report.eligible == len(ok_with_hash)
        assert report.replayed == report.eligible
