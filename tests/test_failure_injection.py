"""Failure injection: corrupted, truncated, and malformed storage files."""

import json

import numpy as np
import pytest

from repro.dtypes import INT32
from repro.errors import CorruptBlockError, EncodingError, StorageError
from repro.storage import ColumnFile, encoding_by_name, write_column


@pytest.fixture
def column_on_disk(tmp_path):
    values = np.arange(50_000, dtype=np.int32)
    path = tmp_path / "c.col"
    write_column(path, values, INT32, encoding_by_name("uncompressed"))
    return path, values


def corrupt_byte(path, offset):
    data = bytearray(path.read_bytes())
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


class TestCorruption:
    def test_flipped_payload_byte_detected(self, column_on_disk):
        path, _values = column_on_disk
        cf = ColumnFile.open(path)
        target = cf.descriptors[1]
        corrupt_byte(path, target.offset + target.nbytes // 2)
        # Undamaged blocks still read fine...
        cf.read_payload(0)
        # ...the damaged one is caught by its checksum.
        with pytest.raises(CorruptBlockError):
            cf.read_payload(1)

    def test_truncated_file_detected(self, column_on_disk):
        path, _values = column_on_disk
        cf = ColumnFile.open(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(StorageError):
            cf.read_payload(cf.n_blocks - 1)

    def test_corrupt_header_json(self, column_on_disk):
        path, _values = column_on_disk
        corrupt_byte(path, 13)  # flip a byte inside the JSON header
        with pytest.raises((StorageError, json.JSONDecodeError, ValueError)):
            ColumnFile.open(path)

    def test_wrong_magic(self, tmp_path):
        path = tmp_path / "bad.col"
        path.write_bytes(b"GARBAGE!" + b"\x00" * 100)
        with pytest.raises(StorageError):
            ColumnFile.open(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.col"
        path.write_bytes(b"")
        with pytest.raises(StorageError):
            ColumnFile.open(path)

    def test_legacy_descriptor_without_crc_still_reads(self, column_on_disk):
        path, values = column_on_disk
        # Simulate a file written before checksums: strip crc from header.
        data = path.read_bytes()
        header_len = int.from_bytes(data[8:12], "little")
        header = json.loads(data[12 : 12 + header_len].decode())
        for block in header["blocks"]:
            block.pop("crc32", None)
        new_header = json.dumps(header).encode()
        # Keep the header the same length so offsets stay valid.
        padded = new_header + b" " * (header_len - len(new_header))
        path.write_bytes(data[:12] + padded + data[12 + header_len :])
        cf = ColumnFile.open(path)
        assert cf.descriptors[0].crc32 is None
        decoded = cf.encoding.decode(
            cf.read_payload(0), cf.descriptors[0], cf.dtype
        )
        assert np.array_equal(decoded, values[: cf.descriptors[0].n_values])


class TestMalformedPayloads:
    def test_rle_payload_not_triples(self):
        rle = encoding_by_name("rle")
        from repro.storage.block import BlockDescriptor

        desc = BlockDescriptor(0, 0, 16, 0, 2, 0, 1)
        with pytest.raises(EncodingError):
            rle.decode(b"\x00" * 16, desc, np.dtype("<i4"))

    def test_corruption_surfaces_through_query(self, tmp_path):
        """End to end: a flipped byte fails the query, not silently misreads."""
        from repro import Database, Predicate, SelectQuery
        from repro.dtypes import ColumnSchema

        db = Database(tmp_path / "db")
        values = np.arange(40_000, dtype=np.int32)
        db.catalog.create_projection(
            "t",
            {"v": values},
            schemas={"v": ColumnSchema("v", INT32)},
            sort_keys=["v"],
            encodings={"v": ["uncompressed"]},
            presorted=True,
        )
        col_path = db.projection("t").column("v").files["uncompressed"]
        cf = ColumnFile.open(col_path)
        corrupt_byte(col_path, cf.descriptors[0].offset + 5)
        query = SelectQuery(
            projection="t",
            select=("v",),
            predicates=(Predicate("v", "!=", -1),),  # not index-resolvable
        )
        with pytest.raises(CorruptBlockError):
            db.query(query, strategy="em-parallel", cold=True)
