"""Failure injection: corrupted, truncated, and malformed storage files."""

import json

import numpy as np
import pytest

from repro.dtypes import INT32
from repro.errors import CorruptBlockError, EncodingError, StorageError
from repro.storage import ColumnFile, encoding_by_name, write_column


@pytest.fixture
def column_on_disk(tmp_path):
    values = np.arange(50_000, dtype=np.int32)
    path = tmp_path / "c.col"
    write_column(path, values, INT32, encoding_by_name("uncompressed"))
    return path, values


def corrupt_byte(path, offset):
    data = bytearray(path.read_bytes())
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


class TestCorruption:
    def test_flipped_payload_byte_detected(self, column_on_disk):
        path, _values = column_on_disk
        cf = ColumnFile.open(path)
        target = cf.descriptors[1]
        corrupt_byte(path, target.offset + target.nbytes // 2)
        # Undamaged blocks still read fine...
        cf.read_payload(0)
        # ...the damaged one is caught by its checksum, and the error names
        # the column file and block so an operator can go repair it.
        with pytest.raises(CorruptBlockError) as excinfo:
            cf.read_payload(1)
        assert str(path) in str(excinfo.value)
        assert "block 1" in str(excinfo.value)

    def test_truncated_file_detected(self, column_on_disk):
        path, _values = column_on_disk
        cf = ColumnFile.open(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(StorageError):
            cf.read_payload(cf.n_blocks - 1)

    def test_corrupt_header_json(self, column_on_disk):
        path, _values = column_on_disk
        corrupt_byte(path, 13)  # flip a byte inside the JSON header
        with pytest.raises((StorageError, json.JSONDecodeError, ValueError)):
            ColumnFile.open(path)

    def test_wrong_magic(self, tmp_path):
        path = tmp_path / "bad.col"
        path.write_bytes(b"GARBAGE!" + b"\x00" * 100)
        with pytest.raises(StorageError):
            ColumnFile.open(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.col"
        path.write_bytes(b"")
        with pytest.raises(StorageError):
            ColumnFile.open(path)

    def test_legacy_descriptor_without_crc_still_reads(self, column_on_disk):
        path, values = column_on_disk
        # Simulate a file written before checksums: strip crc from header.
        data = path.read_bytes()
        header_len = int.from_bytes(data[8:12], "little")
        header = json.loads(data[12 : 12 + header_len].decode())
        for block in header["blocks"]:
            block.pop("crc32", None)
        new_header = json.dumps(header).encode()
        # Keep the header the same length so offsets stay valid.
        padded = new_header + b" " * (header_len - len(new_header))
        path.write_bytes(data[:12] + padded + data[12 + header_len :])
        cf = ColumnFile.open(path)
        assert cf.descriptors[0].crc32 is None
        decoded = cf.encoding.decode(
            cf.read_payload(0), cf.descriptors[0], cf.dtype
        )
        assert np.array_equal(decoded, values[: cf.descriptors[0].n_values])


class TestMalformedPayloads:
    def test_rle_payload_not_triples(self):
        rle = encoding_by_name("rle")
        from repro.storage.block import BlockDescriptor

        desc = BlockDescriptor(0, 0, 16, 0, 2, 0, 1)
        with pytest.raises(EncodingError):
            rle.decode(b"\x00" * 16, desc, np.dtype("<i4"))

    def test_corruption_surfaces_through_query(self, tmp_path):
        """End to end: a flipped byte fails the query, not silently misreads."""
        from repro import Database, Predicate, SelectQuery
        from repro.dtypes import ColumnSchema

        db = Database(tmp_path / "db")
        values = np.arange(40_000, dtype=np.int32)
        db.catalog.create_projection(
            "t",
            {"v": values},
            schemas={"v": ColumnSchema("v", INT32)},
            sort_keys=["v"],
            encodings={"v": ["uncompressed"]},
            presorted=True,
        )
        col_path = db.projection("t").column("v").files["uncompressed"]
        cf = ColumnFile.open(col_path)
        corrupt_byte(col_path, cf.descriptors[0].offset + 5)
        query = SelectQuery(
            projection="t",
            select=("v",),
            predicates=(Predicate("v", "!=", -1),),  # not index-resolvable
        )
        with pytest.raises(CorruptBlockError) as excinfo:
            db.query(query, strategy="em-parallel", cold=True)
        # The end-to-end error still names the file and block.
        assert str(col_path) in str(excinfo.value)
        assert "block 0" in str(excinfo.value)

    def test_transient_errors_name_file_and_block(self, tmp_path):
        """Injected transient failures carry the same file/block naming."""
        from repro import Database, FaultInjector, FaultRule, Predicate
        from repro import SelectQuery
        from repro.dtypes import ColumnSchema
        from repro.errors import TransientIOError
        from repro.faults import NO_RETRY

        inj = FaultInjector([FaultRule(kind="transient", times=1)], seed=0)
        db = Database(tmp_path / "db", fault_injector=inj, retry=NO_RETRY)
        values = np.arange(40_000, dtype=np.int32)
        db.catalog.create_projection(
            "t",
            {"v": values},
            schemas={"v": ColumnSchema("v", INT32)},
            sort_keys=["v"],
            encodings={"v": ["uncompressed"]},
            presorted=True,
        )
        col_path = db.projection("t").column("v").files["uncompressed"]
        query = SelectQuery(
            projection="t",
            select=("v",),
            predicates=(Predicate("v", "!=", -1),),
        )
        with pytest.raises(TransientIOError) as excinfo:
            db.query(query, cold=True)
        assert str(col_path) in str(excinfo.value)
        assert "block 0" in str(excinfo.value)


def _corrupted_db(tmp_path, parallel_scans=0):
    """A database whose projection has one corrupted mid-file block."""
    from repro import Database
    from repro.dtypes import ColumnSchema

    db = Database(tmp_path / "db", parallel_scans=parallel_scans)
    rng = np.random.default_rng(11)
    n = 40_000
    a = np.sort(rng.integers(0, 1000, size=n)).astype(np.int32)
    b = rng.integers(0, 1000, size=n).astype(np.int32)
    db.catalog.create_projection(
        "t",
        {"a": a, "b": b},
        schemas={"a": ColumnSchema("a", INT32), "b": ColumnSchema("b", INT32)},
        sort_keys=["a"],
        encodings={"a": ["uncompressed"], "b": ["uncompressed"]},
        presorted=True,
    )
    col_path = db.projection("t").column("b").files["uncompressed"]
    cf = ColumnFile.open(col_path)
    target = cf.descriptors[len(cf.descriptors) // 2]
    corrupt_byte(col_path, target.offset + 5)
    return db


class TestSpanTruncationOnFailure:
    """A mid-scan failure yields a truncated-but-valid span tree."""

    def _query(self):
        from repro import Predicate, SelectQuery

        return SelectQuery(
            projection="t",
            select=("a", "b"),
            predicates=(
                Predicate("a", "!=", -1),
                Predicate("b", "!=", -1),
            ),
        )

    def _assert_truncated_tree(self, excinfo):
        root = getattr(excinfo.value, "spans", None)
        assert root is not None, "error carried no span tree"
        assert root.open_spans() == [], "dangling open spans after failure"
        assert root.status == "error"
        assert root.detail["error"] == "CorruptBlockError"
        errored = [s for s in root.walk() if s.status == "error"]
        assert len(errored) >= 2  # the root plus the operator cut short
        # The truncated tree still renders and exports.
        from repro.planner.describe import render_span_tree

        assert "!ERROR" in render_span_tree(root)
        root.to_dict()

    @pytest.mark.parametrize(
        "strategy", ["em-parallel", "lm-parallel", "em-pipelined"]
    )
    def test_serial_failure_truncates_spans(self, tmp_path, strategy):
        db = _corrupted_db(tmp_path)
        with pytest.raises(CorruptBlockError) as excinfo:
            db.query(self._query(), strategy=strategy, cold=True, trace=True)
        self._assert_truncated_tree(excinfo)

    @pytest.mark.parametrize("strategy", ["em-parallel", "lm-parallel"])
    def test_parallel_leaf_failure_truncates_spans(self, tmp_path, strategy):
        with _corrupted_db(tmp_path, parallel_scans=2) as db:
            with pytest.raises(CorruptBlockError) as excinfo:
                db.query(
                    self._query(), strategy=strategy, cold=True, trace=True
                )
            self._assert_truncated_tree(excinfo)

    def test_untraced_failure_has_no_spans(self, tmp_path):
        db = _corrupted_db(tmp_path)
        with pytest.raises(CorruptBlockError) as excinfo:
            db.query(self._query(), strategy="em-parallel", cold=True)
        assert getattr(excinfo.value, "spans", None) is None
