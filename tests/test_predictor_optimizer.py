"""Tests for plan prediction, selectivity estimation, and the optimizer."""

import numpy as np
import pytest

from repro import Predicate, SelectQuery, Strategy, AggSpec
from repro.model.predictor import predict_join, predict_select
from repro.planner import JoinQuery, RightTableStrategy, choose_strategy
from repro.planner.estimate import estimate_selectivity

from .reference import full_column


@pytest.fixture(scope="module")
def lineitem(tpch_db):
    return tpch_db.projection("lineitem")


class TestEstimate:
    def test_extremes(self, lineitem):
        cf = lineitem.column("shipdate").file("rle")
        ship = full_column(lineitem, "shipdate")
        assert estimate_selectivity(cf, Predicate("shipdate", "<", ship.min())) == 0.0
        assert estimate_selectivity(
            cf, Predicate("shipdate", "<", ship.max() + 1)
        ) == pytest.approx(1.0, abs=0.05)

    @pytest.mark.parametrize("q", [0.1, 0.5, 0.9])
    def test_midpoints_roughly_accurate(self, lineitem, q):
        cf = lineitem.column("shipdate").file("rle")
        ship = full_column(lineitem, "shipdate")
        x = int(np.quantile(ship, q))
        actual = float((ship < x).mean())
        estimated = estimate_selectivity(cf, Predicate("shipdate", "<", x))
        assert estimated == pytest.approx(actual, abs=0.15)

    def test_equality_predicate(self, lineitem):
        cf = lineitem.column("linenum").file("uncompressed")
        est = estimate_selectivity(cf, Predicate("linenum", "=", 3))
        assert 0.0 < est < 0.5

    def test_conjunction_multiplies(self, lineitem):
        cf = lineitem.column("shipdate").file("rle")
        ship = full_column(lineitem, "shipdate")
        x = int(np.quantile(ship, 0.5))
        single = estimate_selectivity(cf, Predicate("shipdate", "<", x))
        from repro.predicates import combine_column_predicates

        combo = combine_column_predicates(
            [Predicate("shipdate", "<", x), Predicate("shipdate", "<", x)]
        )
        assert estimate_selectivity(cf, combo) == pytest.approx(single**2)


def make_query(lineitem, quantile, encoding="uncompressed"):
    ship = full_column(lineitem, "shipdate")
    x = int(np.quantile(ship, quantile))
    return SelectQuery(
        projection="lineitem",
        select=("shipdate", "linenum"),
        predicates=(
            Predicate("shipdate", "<", x),
            Predicate("linenum", "<", 7),
        ),
        encodings=(("linenum", encoding),),
    )


class TestPredictSelect:
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_positive_costs(self, lineitem, strategy):
        pred = predict_select(lineitem, make_query(lineitem, 0.5), strategy)
        assert pred.total_ms > 0
        assert pred.cpu_ms > 0
        assert pred.breakdown()

    def test_cost_grows_with_selectivity(self, lineitem):
        lo = predict_select(
            lineitem, make_query(lineitem, 0.05), Strategy.LM_PARALLEL
        )
        hi = predict_select(
            lineitem, make_query(lineitem, 0.95), Strategy.LM_PARALLEL
        )
        assert hi.total_ms > lo.total_ms

    def test_aggregation_reduces_output_cost(self, lineitem):
        ship = full_column(lineitem, "shipdate")
        x = int(np.quantile(ship, 0.9))
        plain = SelectQuery(
            projection="lineitem",
            select=("shipdate", "linenum"),
            predicates=(Predicate("shipdate", "<", x),),
        )
        agg = SelectQuery(
            projection="lineitem",
            select=("shipdate", "sum(linenum)"),
            predicates=(Predicate("shipdate", "<", x),),
            group_by="shipdate",
            aggregates=(AggSpec("sum", "linenum"),),
        )
        p_plain = predict_select(lineitem, plain, Strategy.LM_PARALLEL)
        p_agg = predict_select(lineitem, agg, Strategy.LM_PARALLEL)
        assert p_agg.total_ms < p_plain.total_ms

    def test_warm_cache_cheaper(self, lineitem):
        cold = predict_select(
            lineitem, make_query(lineitem, 0.5), Strategy.EM_PARALLEL, resident=0.0
        )
        warm = predict_select(
            lineitem, make_query(lineitem, 0.5), Strategy.EM_PARALLEL, resident=1.0
        )
        assert warm.io_ms == 0.0
        assert warm.total_ms < cold.total_ms


class TestPredictJoin:
    def test_single_column_priciest_at_high_selectivity(self, tpch_db):
        orders = tpch_db.projection("orders")
        customer = tpch_db.projection("customer")
        keys = full_column(orders, "custkey")
        query = JoinQuery(
            left="orders",
            right="customer",
            left_key="custkey",
            right_key="custkey",
            left_select=("shipdate",),
            right_select=("nationcode",),
            left_predicates=(
                Predicate("custkey", "<", int(np.quantile(keys, 0.9))),
            ),
        )
        costs = {
            s: predict_join(orders, customer, query, s).total_ms
            for s in RightTableStrategy
        }
        assert costs[RightTableStrategy.SINGLE_COLUMN] > costs[
            RightTableStrategy.MATERIALIZED
        ]
        assert all(c > 0 for c in costs.values())


class TestOptimizer:
    def test_chooses_some_strategy(self, lineitem, tpch_db):
        best, predictions = choose_strategy(lineitem, make_query(lineitem, 0.5))
        assert best in predictions
        assert len(predictions) == 4

    def test_bitvector_excludes_lm_pipelined(self, lineitem):
        query = make_query(lineitem, 0.5, encoding="bitvector")
        _best, predictions = choose_strategy(lineitem, query)
        assert Strategy.LM_PIPELINED not in predictions
        assert len(predictions) == 3

    def test_auto_runs_chosen_strategy(self, tpch_db, lineitem):
        query = make_query(lineitem, 0.3)
        result = tpch_db.query(query, strategy="auto", cold=True)
        assert result.strategy in {s.value for s in Strategy}

    def test_prediction_ranks_match_observed_simulated_time(
        self, tpch_db, lineitem
    ):
        """The model's cheapest strategy should be near-cheapest in replay."""
        query = make_query(lineitem, 0.1)
        best, _predictions = choose_strategy(lineitem, query)
        sims = {}
        for strategy in Strategy:
            r = tpch_db.query(query, strategy=strategy, cold=True)
            sims[strategy] = r.simulated_ms
        observed_best = min(sims.values())
        assert sims[best] <= observed_best * 2.0
