"""Tests for WAL durability, drop_projection, and storage reports."""

from datetime import date

import numpy as np
import pytest

from repro import Database, load_tpch
from repro.errors import CatalogError


def order_row(custkey=1):
    return {"shipdate": date(1999, 1, 1), "custkey": custkey}


@pytest.fixture()
def db_root(tmp_path):
    root = tmp_path / "db"
    db = Database(root)
    load_tpch(db.catalog, scale=0.001, seed=2)
    return root, db


class TestWALDurability:
    def test_pending_rows_survive_restart(self, db_root):
        root, db = db_root
        db.insert("orders", [order_row(1), order_row(2)])
        assert db.pending("orders") == 2

        reopened = Database(root)
        assert reopened.pending("orders") == 2
        # And the recovered rows are queryable (merge-on-read).
        r = reopened.sql(
            "SELECT custkey FROM orders WHERE shipdate > '1998-12-31'"
        )
        assert sorted(r.rows()) == [(1,), (2,)]

    def test_merge_truncates_wal(self, db_root):
        root, db = db_root
        db.insert("orders", [order_row(3)])
        db.merge("orders")
        assert not (root / "_wal" / "orders.wal").exists()
        reopened = Database(root)
        assert reopened.pending("orders") == 0

    def test_wal_accumulates_across_inserts(self, db_root):
        root, db = db_root
        db.insert("orders", [order_row(1)])
        db.insert("orders", [order_row(2)])
        wal = (root / "_wal" / "orders.wal").read_text().strip().splitlines()
        assert len(wal) == 2

    def test_values_already_encoded_in_wal(self, db_root):
        root, db = db_root
        db.insert("orders", [order_row(5)])
        line = (root / "_wal" / "orders.wal").read_text()
        # The date was encoded to an int before hitting the log.
        assert '"shipdate": 10' in line

    def test_torn_final_line_recovers_complete_rows(self, db_root):
        """Crash simulation: a partial final append must not poison recovery.

        A crash mid-append leaves the last WAL line incomplete. That insert
        never returned, so the row was never acknowledged — recovery must
        keep every complete row, drop the torn tail, and leave the log in a
        state later appends can extend safely.
        """
        root, db = db_root
        db.insert("orders", [order_row(1), order_row(2)])
        wal = root / "_wal" / "orders.wal"
        complete = wal.read_text()
        # The crash: a third insert torn off mid-JSON, no trailing newline.
        wal.write_text(complete + '{"shipdate": 10, "cust')

        reopened = Database(root)
        assert reopened.pending("orders") == 2
        r = reopened.sql(
            "SELECT custkey FROM orders WHERE shipdate > '1998-12-31'"
        )
        assert sorted(r.rows()) == [(1,), (2,)]
        # The torn bytes were dropped from disk, so post-recovery appends
        # cannot land after a malformed line...
        assert wal.read_text() == complete
        reopened.insert("orders", [order_row(3)])
        # ...and the *next* recovery sees a fully well-formed log.
        assert Database(root).pending("orders") == 3

    def test_torn_tail_alone_recovers_nothing(self, db_root):
        root, _db = db_root
        wal = root / "_wal" / "orders.wal"
        wal.write_text('{"shipdate": 10, "cust')  # only a torn line
        reopened = Database(root)
        assert reopened.pending("orders") == 0

    def test_mid_file_corruption_still_raises(self, db_root):
        """Only the *final* line may be torn; earlier damage is real."""
        root, db = db_root
        db.insert("orders", [order_row(1), order_row(2)])
        wal = root / "_wal" / "orders.wal"
        lines = wal.read_text().splitlines()
        lines[0] = lines[0][:-5]  # truncate the FIRST line, keep the rest
        wal.write_text("\n".join(lines) + "\n")
        with pytest.raises(CatalogError, match="corrupt WAL line 1 of 2"):
            Database(root)

    def test_separate_tables_separate_logs(self, db_root):
        root, db = db_root
        db.insert("orders", [order_row(1)])
        db.insert(
            "lineitem",
            [
                {
                    "shipdate": date(1999, 1, 1),
                    "linenum": 1,
                    "quantity": 2,
                    "returnflag": "A",
                }
            ],
        )
        assert (root / "_wal" / "orders.wal").exists()
        assert (root / "_wal" / "lineitem.wal").exists()
        db.merge("orders")
        assert not (root / "_wal" / "orders.wal").exists()
        assert (root / "_wal" / "lineitem.wal").exists()


class TestDropProjection:
    def test_drop_removes_files_and_catalog_entry(self, db_root):
        _root, db = db_root
        directory = db.projection("orders").directory
        db.drop_projection("orders")
        assert not directory.exists()
        with pytest.raises(CatalogError):
            db.projection("orders")

    def test_drop_unknown(self, db_root):
        _root, db = db_root
        with pytest.raises(CatalogError):
            db.drop_projection("ghost")

    def test_drop_survives_reopen(self, db_root):
        root, db = db_root
        db.drop_projection("customer")
        reopened = Database(root)
        assert "customer" not in reopened.catalog.names()


class TestStorageReport:
    def test_report_structure(self, db_root):
        _root, db = db_root
        report = db.projection("lineitem").storage_report()
        assert set(report) == {"returnflag", "shipdate", "linenum", "quantity"}
        linenum = report["linenum"]
        assert set(linenum) == {"uncompressed", "rle", "bitvector"}
        for enc_stats in linenum.values():
            assert enc_stats["bytes"] > 0
            assert enc_stats["blocks"] >= 1

    def test_rle_compresses_sorted_prefix(self, db_root):
        _root, db = db_root
        report = db.projection("lineitem").storage_report()
        assert report["returnflag"]["rle"]["compression_ratio"] < 0.15
        assert report["returnflag"]["rle"]["avg_run_length"] > 100

    def test_bitvector_ratio_matches_paper(self, db_root):
        _root, db = db_root
        report = db.projection("lineitem").storage_report()
        # 7 distinct LINENUM values over int32: a bit under 25% (paper §4.1).
        assert report["linenum"]["bitvector"]["compression_ratio"] < 0.35
