"""Tests for WAL durability, drop_projection, and storage reports."""

from datetime import date

import numpy as np
import pytest

from repro import Database, load_tpch
from repro.errors import CatalogError


def order_row(custkey=1):
    return {"shipdate": date(1999, 1, 1), "custkey": custkey}


@pytest.fixture()
def db_root(tmp_path):
    root = tmp_path / "db"
    db = Database(root)
    load_tpch(db.catalog, scale=0.001, seed=2)
    return root, db


class TestWALDurability:
    def test_pending_rows_survive_restart(self, db_root):
        root, db = db_root
        db.insert("orders", [order_row(1), order_row(2)])
        assert db.pending("orders") == 2

        reopened = Database(root)
        assert reopened.pending("orders") == 2
        # And the recovered rows are queryable (merge-on-read).
        r = reopened.sql(
            "SELECT custkey FROM orders WHERE shipdate > '1998-12-31'"
        )
        assert sorted(r.rows()) == [(1,), (2,)]

    def test_merge_truncates_wal(self, db_root):
        root, db = db_root
        db.insert("orders", [order_row(3)])
        db.merge("orders")
        assert not (root / "_wal" / "orders.wal").exists()
        reopened = Database(root)
        assert reopened.pending("orders") == 0

    def test_wal_accumulates_across_inserts(self, db_root):
        root, db = db_root
        db.insert("orders", [order_row(1)])
        db.insert("orders", [order_row(2)])
        wal = (root / "_wal" / "orders.wal").read_text().strip().splitlines()
        assert len(wal) == 2

    def test_values_already_encoded_in_wal(self, db_root):
        root, db = db_root
        db.insert("orders", [order_row(5)])
        line = (root / "_wal" / "orders.wal").read_text()
        # The date was encoded to an int before hitting the log.
        assert '"shipdate": 10' in line

    def test_separate_tables_separate_logs(self, db_root):
        root, db = db_root
        db.insert("orders", [order_row(1)])
        db.insert(
            "lineitem",
            [
                {
                    "shipdate": date(1999, 1, 1),
                    "linenum": 1,
                    "quantity": 2,
                    "returnflag": "A",
                }
            ],
        )
        assert (root / "_wal" / "orders.wal").exists()
        assert (root / "_wal" / "lineitem.wal").exists()
        db.merge("orders")
        assert not (root / "_wal" / "orders.wal").exists()
        assert (root / "_wal" / "lineitem.wal").exists()


class TestDropProjection:
    def test_drop_removes_files_and_catalog_entry(self, db_root):
        _root, db = db_root
        directory = db.projection("orders").directory
        db.drop_projection("orders")
        assert not directory.exists()
        with pytest.raises(CatalogError):
            db.projection("orders")

    def test_drop_unknown(self, db_root):
        _root, db = db_root
        with pytest.raises(CatalogError):
            db.drop_projection("ghost")

    def test_drop_survives_reopen(self, db_root):
        root, db = db_root
        db.drop_projection("customer")
        reopened = Database(root)
        assert "customer" not in reopened.catalog.names()


class TestStorageReport:
    def test_report_structure(self, db_root):
        _root, db = db_root
        report = db.projection("lineitem").storage_report()
        assert set(report) == {"returnflag", "shipdate", "linenum", "quantity"}
        linenum = report["linenum"]
        assert set(linenum) == {"uncompressed", "rle", "bitvector"}
        for enc_stats in linenum.values():
            assert enc_stats["bytes"] > 0
            assert enc_stats["blocks"] >= 1

    def test_rle_compresses_sorted_prefix(self, db_root):
        _root, db = db_root
        report = db.projection("lineitem").storage_report()
        assert report["returnflag"]["rle"]["compression_ratio"] < 0.15
        assert report["returnflag"]["rle"]["avg_run_length"] > 100

    def test_bitvector_ratio_matches_paper(self, db_root):
        _root, db = db_root
        report = db.projection("lineitem").storage_report()
        # 7 distinct LINENUM values over int32: a bit under 25% (paper §4.1).
        assert report["linenum"]["bitvector"]["compression_ratio"] < 0.35
