"""Tests for the join cost-model extension (predict_join)."""

import numpy as np
import pytest

from repro import JoinQuery, Predicate, RightTableStrategy
from repro.model.predictor import predict_join

from .reference import full_column


def make_query(x, left_strategy="late"):
    return JoinQuery(
        left="orders",
        right="customer",
        left_key="custkey",
        right_key="custkey",
        left_select=("shipdate",),
        right_select=("nationcode",),
        left_predicates=(Predicate("custkey", "<", x),),
        left_strategy=left_strategy,
    )


@pytest.fixture(scope="module")
def tables(tpch_db):
    return (
        tpch_db.projection("orders"),
        tpch_db.projection("customer"),
        full_column(tpch_db.projection("orders"), "custkey"),
    )


class TestPredictJoin:
    @pytest.mark.parametrize(
        "strategy", list(RightTableStrategy), ids=lambda s: s.value
    )
    def test_positive_costs_and_breakdown(self, tables, strategy):
        orders, customer, keys = tables
        pred = predict_join(
            orders, customer, make_query(int(keys.max())), strategy
        )
        assert pred.total_ms > 0
        assert pred.cpu_ms > 0
        breakdown = pred.breakdown()
        assert "DS1(left key)" in breakdown
        assert "merge+output" in breakdown

    def test_costs_grow_with_selectivity(self, tables):
        orders, customer, keys = tables
        lo = predict_join(
            orders,
            customer,
            make_query(int(np.quantile(keys, 0.05))),
            RightTableStrategy.MATERIALIZED,
        )
        hi = predict_join(
            orders,
            customer,
            make_query(int(np.quantile(keys, 0.95))),
            RightTableStrategy.MATERIALIZED,
        )
        assert hi.total_ms > lo.total_ms

    def test_strategy_specific_steps(self, tables):
        orders, customer, keys = tables
        query = make_query(int(np.quantile(keys, 0.5)))
        mat = predict_join(
            orders, customer, query, RightTableStrategy.MATERIALIZED
        ).breakdown()
        mc = predict_join(
            orders, customer, query, RightTableStrategy.MULTI_COLUMN
        ).breakdown()
        single = predict_join(
            orders, customer, query, RightTableStrategy.SINGLE_COLUMN
        ).breakdown()
        assert "SPC(right)" in mat
        assert "pin(right)" in mc
        assert "fetch out-of-order" in single

    def test_prediction_ranks_match_replay(self, tpch_db, tables):
        """The extension's ranking agrees with observed replay time."""
        orders, customer, keys = tables
        query = make_query(int(np.quantile(keys, 0.9)))
        predicted = {
            s: predict_join(orders, customer, query, s).total_ms
            for s in RightTableStrategy
        }
        observed = {
            s: tpch_db.query(query, strategy=s, cold=True).simulated_ms
            for s in RightTableStrategy
        }
        # Single-column is the most expensive in both rankings.
        assert max(predicted, key=predicted.get) is RightTableStrategy.SINGLE_COLUMN
        assert max(observed, key=observed.get) is RightTableStrategy.SINGLE_COLUMN

    def test_resident_fraction_reduces_io(self, tables):
        orders, customer, keys = tables
        query = make_query(int(np.quantile(keys, 0.5)))
        cold = predict_join(
            orders, customer, query, RightTableStrategy.MATERIALIZED,
            resident=0.0,
        )
        warm = predict_join(
            orders, customer, query, RightTableStrategy.MATERIALIZED,
            resident=1.0,
        )
        assert warm.io_ms < cold.io_ms
