"""Property-based tests: position-set algebra equals Python set semantics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.positions import (
    BitmapPositions,
    ListedPositions,
    RangePositions,
    from_mask,
    intersect_all,
    union_all,
)

UNIVERSE = 300


@st.composite
def position_sets(draw):
    """Any of the three representations over a small universe."""
    kind = draw(st.sampled_from(["range", "listed", "bitmap"]))
    if kind == "range":
        start = draw(st.integers(0, UNIVERSE))
        stop = draw(st.integers(0, UNIVERSE))
        return RangePositions(min(start, stop), max(start, stop))
    members = draw(
        st.lists(st.integers(0, UNIVERSE - 1), max_size=60, unique=True)
    )
    if kind == "listed":
        return ListedPositions(np.array(sorted(members), dtype=np.int64))
    offset = draw(st.integers(0, 20))
    width = draw(st.integers(1, UNIVERSE))
    mask = np.zeros(width, dtype=bool)
    for m in members:
        if offset <= m < offset + width:
            mask[m - offset] = True
    return BitmapPositions.from_mask(offset, mask)


def as_set(ps):
    return set(int(p) for p in ps.to_array())


@given(position_sets(), position_sets())
@settings(max_examples=150, deadline=None)
def test_intersection_matches_set_semantics(a, b):
    assert as_set(a.intersect(b)) == as_set(a) & as_set(b)


@given(position_sets(), position_sets())
@settings(max_examples=150, deadline=None)
def test_union_matches_set_semantics(a, b):
    assert as_set(a.union(b)) == as_set(a) | as_set(b)


@given(position_sets(), position_sets())
@settings(max_examples=100, deadline=None)
def test_intersection_commutes(a, b):
    assert as_set(a.intersect(b)) == as_set(b.intersect(a))


@given(st.lists(position_sets(), min_size=1, max_size=4))
@settings(max_examples=100, deadline=None)
def test_intersect_all_folds_correctly(sets):
    expected = as_set(sets[0])
    for s in sets[1:]:
        expected &= as_set(s)
    assert as_set(intersect_all(sets)) == expected


@given(st.lists(position_sets(), min_size=1, max_size=4))
@settings(max_examples=100, deadline=None)
def test_union_all_folds_correctly(sets):
    expected = set()
    for s in sets:
        expected |= as_set(s)
    assert as_set(union_all(sets)) == expected


@given(position_sets())
@settings(max_examples=150, deadline=None)
def test_count_matches_array(ps):
    assert ps.count() == len(ps.to_array())
    assert ps.is_empty() == (ps.count() == 0)


@given(position_sets(), st.integers(0, UNIVERSE), st.integers(0, UNIVERSE))
@settings(max_examples=150, deadline=None)
def test_restrict_matches_filter(ps, a, b):
    start, stop = min(a, b), max(a, b)
    expected = {p for p in as_set(ps) if start <= p < stop}
    assert as_set(ps.restrict(start, stop)) == expected


@given(position_sets())
@settings(max_examples=100, deadline=None)
def test_runs_cover_exactly_members(ps):
    covered = set()
    previous_stop = None
    for start, stop in ps.runs():
        assert start < stop
        if previous_stop is not None:
            # Runs are maximal: consecutive runs cannot touch.
            assert start > previous_stop
        previous_stop = stop
        covered.update(range(start, stop))
    assert covered == as_set(ps)


@given(
    st.integers(0, 50),
    st.lists(st.booleans(), min_size=1, max_size=200),
)
@settings(max_examples=150, deadline=None)
def test_from_mask_roundtrip(offset, bits):
    mask = np.array(bits, dtype=bool)
    ps = from_mask(offset, mask)
    expected = {offset + i for i, bit in enumerate(bits) if bit}
    assert as_set(ps) == expected


@given(position_sets(), st.integers(0, UNIVERSE), st.integers(1, UNIVERSE))
@settings(max_examples=100, deadline=None)
def test_mask_window_matches_membership(ps, start, width):
    stop = start + width
    mask = ps.to_mask(start, stop)
    members = as_set(ps)
    for i in range(start, stop):
        assert mask[i - start] == (i in members)
