"""Tests for aggregation over join results."""

import numpy as np
import pytest

from repro import (
    AggSpec,
    JoinQuery,
    Predicate,
    RightTableStrategy,
)
from repro.errors import PlanError, SQLError

from .reference import full_column


def reference_nation_counts(tpch_db, x):
    orders = tpch_db.projection("orders")
    customer = tpch_db.projection("customer")
    custkey = full_column(orders, "custkey")
    nation = full_column(customer, "nationcode")
    keys = custkey[custkey < x]
    joined_nation = nation[keys - 1]
    out = {}
    for v in np.unique(joined_nation):
        out[int(v)] = int((joined_nation == v).sum())
    return out


def agg_join(x, left_strategy="late"):
    return JoinQuery(
        left="orders",
        right="customer",
        left_key="custkey",
        right_key="custkey",
        left_select=("shipdate",),
        right_select=("nationcode",),
        left_predicates=(Predicate("custkey", "<", x),),
        left_strategy=left_strategy,
        group_by="nationcode",
        aggregates=(AggSpec("count", "nationcode"),),
    )


class TestValidation:
    def test_group_by_must_be_selected(self):
        with pytest.raises(PlanError):
            JoinQuery(
                left="a",
                right="b",
                left_key="k",
                right_key="k",
                left_select=("x",),
                right_select=("y",),
                group_by="z",
                aggregates=(AggSpec("count", "x"),),
            )

    def test_aggregate_input_must_be_selected(self):
        with pytest.raises(PlanError):
            JoinQuery(
                left="a",
                right="b",
                left_key="k",
                right_key="k",
                left_select=("x",),
                right_select=("y",),
                group_by="x",
                aggregates=(AggSpec("sum", "z"),),
            )


class TestExecution:
    @pytest.mark.parametrize(
        "strategy", list(RightTableStrategy), ids=lambda s: s.value
    )
    @pytest.mark.parametrize("left", ["late", "early"])
    def test_counts_match_reference(self, tpch_db, strategy, left):
        keys = full_column(tpch_db.projection("orders"), "custkey")
        x = int(np.quantile(keys, 0.5))
        result = tpch_db.query(agg_join(x, left), strategy=strategy, cold=True)
        expected = reference_nation_counts(tpch_db, x)
        assert {int(g): int(c) for g, c in result.rows()} == expected

    def test_group_by_left_side_column(self, tpch_db):
        orders = tpch_db.projection("orders")
        keys = full_column(orders, "custkey")
        ship = full_column(orders, "shipdate")
        x = int(np.quantile(keys, 0.3))
        query = JoinQuery(
            left="orders",
            right="customer",
            left_key="custkey",
            right_key="custkey",
            left_select=("shipdate",),
            right_select=("nationcode",),
            left_predicates=(Predicate("custkey", "<", x),),
            group_by="shipdate",
            aggregates=(AggSpec("max", "nationcode"),),
        )
        result = tpch_db.query(query, cold=True)
        assert result.n_rows == len(np.unique(ship[keys < x]))

    def test_only_summary_tuples_constructed(self, tpch_db):
        keys = full_column(tpch_db.projection("orders"), "custkey")
        x = int(np.quantile(keys, 0.9))
        agg = tpch_db.query(agg_join(x), strategy="materialized", cold=True)
        # Construction count: the probe's matched right rows plus the summary
        # tuples — but no final per-row join tuples.
        plain = tpch_db.query(
            JoinQuery(
                left="orders",
                right="customer",
                left_key="custkey",
                right_key="custkey",
                left_select=("shipdate",),
                right_select=("nationcode",),
                left_predicates=(Predicate("custkey", "<", x),),
            ),
            strategy="materialized",
            cold=True,
        )
        assert agg.stats.tuples_constructed < plain.stats.tuples_constructed


class TestSQL:
    def test_sql_join_aggregation(self, tpch_db):
        keys = full_column(tpch_db.projection("orders"), "custkey")
        x = int(np.quantile(keys, 0.5))
        r = tpch_db.sql(
            "SELECT c.nationcode, COUNT(c.nationcode) "
            "FROM orders o, customer c "
            f"WHERE o.custkey = c.custkey AND o.custkey < {x} "
            "GROUP BY c.nationcode"
        )
        expected = reference_nation_counts(tpch_db, x)
        assert {int(g): int(c) for g, c in r.rows()} == expected

    def test_stray_column_rejected(self, tpch_db):
        with pytest.raises(SQLError):
            tpch_db.sql(
                "SELECT o.shipdate, COUNT(c.nationcode) "
                "FROM orders o, customer c "
                "WHERE o.custkey = c.custkey GROUP BY c.nationcode"
            )

    def test_having_on_join_rejected(self, tpch_db):
        with pytest.raises(SQLError):
            tpch_db.sql(
                "SELECT c.nationcode, COUNT(c.nationcode) "
                "FROM orders o, customer c "
                "WHERE o.custkey = c.custkey GROUP BY c.nationcode "
                "HAVING COUNT(c.nationcode) > 5"
            )
