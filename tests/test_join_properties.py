"""Property-based tests: every join strategy combination equals a naive join."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Database,
    JoinQuery,
    Predicate,
    RightTableStrategy,
)
from repro.dtypes import INT32, INT64, ColumnSchema


@pytest.fixture(scope="module")
def join_db(tmp_path_factory):
    """A small FK-PK pair with deterministic contents."""
    rng = np.random.default_rng(123)
    n_right = 400
    n_left = 5_000
    db = Database(tmp_path_factory.mktemp("join_prop"))
    db.catalog.create_projection(
        "fact",
        {
            "ts": np.sort(rng.integers(0, 1000, size=n_left)).astype(np.int64),
            "key": rng.integers(1, n_right + 1, size=n_left),
            "measure": rng.integers(0, 100, size=n_left).astype(np.int32),
        },
        schemas={
            "ts": ColumnSchema("ts", INT64),
            "key": ColumnSchema("key", INT64),
            "measure": ColumnSchema("measure", INT32),
        },
        sort_keys=["ts"],
        encodings={
            "ts": ["rle"],
            "key": ["uncompressed"],
            "measure": ["uncompressed"],
        },
        presorted=True,
    )
    db.catalog.create_projection(
        "dim",
        {
            "key": np.arange(1, n_right + 1, dtype=np.int64),
            "attr": rng.integers(0, 25, size=n_right).astype(np.int32),
        },
        schemas={
            "key": ColumnSchema("key", INT64),
            "attr": ColumnSchema("attr", INT32),
        },
        sort_keys=["key"],
        encodings={"key": ["uncompressed"], "attr": ["uncompressed"]},
        presorted=True,
    )
    from .reference import full_column

    fact = {
        c: full_column(db.projection("fact"), c)
        for c in ("ts", "key", "measure")
    }
    dim_attr = full_column(db.projection("dim"), "attr")
    return db, fact, dim_attr


def naive_join(fact, dim_attr, predicates):
    mask = np.ones(len(fact["key"]), dtype=bool)
    for col, op, value in predicates:
        import operator

        ops = {"<": operator.lt, ">": operator.gt, "=": operator.eq}
        mask &= ops[op](fact[col], value)
    keys = fact["key"][mask]
    return np.stack(
        [
            fact["ts"][mask].astype(np.int64),
            fact["measure"][mask].astype(np.int64),
            dim_attr[keys - 1].astype(np.int64),
        ],
        axis=1,
    )


join_predicates = st.lists(
    st.tuples(
        st.sampled_from(["ts", "key", "measure"]),
        st.sampled_from(["<", ">", "="]),
        st.integers(0, 1000),
    ),
    min_size=0,
    max_size=2,
).filter(lambda preds: len({c for c, _o, _v in preds}) == len(preds))


@given(
    join_predicates,
    st.sampled_from(list(RightTableStrategy)),
    st.sampled_from(["early", "late"]),
)
@settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_join_matches_naive(join_db, predicates, right_strategy, left_strategy):
    db, fact, dim_attr = join_db
    query = JoinQuery(
        left="fact",
        right="dim",
        left_key="key",
        right_key="key",
        left_select=("ts", "measure"),
        right_select=("attr",),
        left_predicates=tuple(
            Predicate(col, op, value) for col, op, value in predicates
        ),
        left_strategy=left_strategy,
    )
    result = db.query(query, strategy=right_strategy, cold=True)
    expected = naive_join(fact, dim_attr, predicates)
    assert np.array_equal(result.tuples.data, expected)


@given(st.integers(0, 1001))
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_join_strategies_agree_pairwise(join_db, boundary):
    db, _fact, _dim = join_db
    query = JoinQuery(
        left="fact",
        right="dim",
        left_key="key",
        right_key="key",
        left_select=("ts",),
        right_select=("attr",),
        left_predicates=(Predicate("ts", "<", boundary),),
    )
    results = [
        db.query(query, strategy=s, cold=True).tuples.data
        for s in RightTableStrategy
    ]
    assert np.array_equal(results[0], results[1])
    assert np.array_equal(results[0], results[2])
