"""Range-partitioned projection storage, catalog, CLI, and merge behavior."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, Predicate, SelectQuery
from repro.cli import main
from repro.dtypes import INT32, ColumnSchema
from repro.errors import CatalogError
from repro.storage.partition import PARTITION_DIR_FORMAT, partition_boundaries
from repro.storage.projection import Projection, ProjectionColumn

N_ROWS = 10_000
N_PARTITIONS = 4


def _make_partitioned(root, partitions=N_PARTITIONS):
    rng = np.random.default_rng(23)
    db = Database(root)
    a = np.sort(rng.integers(0, 500, size=N_ROWS)).astype(np.int32)
    b = rng.integers(0, 50, size=N_ROWS).astype(np.int32)
    db.catalog.create_projection(
        "t",
        {"a": a, "b": b},
        schemas={"a": ColumnSchema("a", INT32), "b": ColumnSchema("b", INT32)},
        sort_keys=["a"],
        encodings={"a": ["rle", "uncompressed"], "b": ["uncompressed"]},
        presorted=True,
        partitions=partitions,
    )
    return db, a, b


class TestPartitionedStorage:
    def test_round_trip_partitions_and_zone_maps(self, tmp_path):
        _, a, b = _make_partitioned(tmp_path)
        # A fresh open must see the same partition layout and zone maps.
        proj = Database(tmp_path).projection("t")
        assert proj.is_partitioned
        assert len(proj.partitions) == N_PARTITIONS
        assert sum(p.n_rows for p in proj.partitions) == N_ROWS
        bounds = partition_boundaries(N_ROWS, N_PARTITIONS)
        for i, (part, (start, stop)) in enumerate(
            zip(proj.partitions, bounds)
        ):
            assert part.name == PARTITION_DIR_FORMAT.format(index=i)
            assert part.n_rows == stop - start
            for col, values in (("a", a), ("b", b)):
                zone = part.zone_maps[col]
                chunk = values[start:stop]
                assert zone.min_value == int(chunk.min())
                assert zone.max_value == int(chunk.max())

    def test_read_column_values_concatenates_in_order(self, tmp_path):
        _, a, b = _make_partitioned(tmp_path)
        proj = Database(tmp_path).projection("t")
        assert np.array_equal(proj.read_column_values("a"), a)
        assert np.array_equal(proj.read_column_values("b"), b)

    def test_parent_columns_have_no_files(self, tmp_path):
        db, _, _ = _make_partitioned(tmp_path)
        proj = db.projection("t")
        with pytest.raises(CatalogError, match="partitioned projections"):
            proj.column("a").file()
        # physical_column reaches through to a child that does have files.
        assert proj.physical_column("a").files

    def test_partition_lookup_by_name(self, tmp_path):
        db, _, _ = _make_partitioned(tmp_path)
        proj = db.projection("t")
        part = proj.partition("part0002")
        assert part.n_rows > 0
        with pytest.raises(CatalogError, match="part9999"):
            proj.partition("part9999")

    def test_catalog_does_not_discover_children(self, tmp_path):
        _make_partitioned(tmp_path)
        # Child projections live under t/partNNNN but are not catalog
        # entries of their own.
        assert Database(tmp_path).catalog.names() == ["t"]
        assert (tmp_path / "t" / "part0000" / "projection.json").exists()

    def test_storage_report_sums_partitions(self, tmp_path):
        db, _, _ = _make_partitioned(tmp_path)
        proj = db.projection("t")
        report = proj.storage_report()
        per_child = [
            part.open().storage_report() for part in proj.partitions
        ]
        for col in ("a", "b"):
            for enc in report[col]:
                total = sum(c[col][enc]["bytes"] for c in per_child)
                assert report[col][enc]["bytes"] == total
                assert 0 < report[col][enc]["compression_ratio"]

    def test_single_partition_request_stays_unpartitioned(self, tmp_path):
        db, _, _ = _make_partitioned(tmp_path, partitions=1)
        proj = db.projection("t")
        assert not proj.is_partitioned
        assert proj.column("a").files  # data lives in the parent


class TestMergePreservesPartitioning:
    def test_tuple_mover_keeps_partition_count(self, tmp_path):
        db, a, _ = _make_partitioned(tmp_path)
        db.insert("t", [{"a": 1_000, "b": 7}, {"a": -3, "b": 9}])
        moved = db.merge("t")
        assert moved == 2
        proj = db.projection("t")
        assert len(proj.partitions) == N_PARTITIONS
        assert proj.n_rows == N_ROWS + 2
        merged = proj.read_column_values("a")
        assert merged[0] == -3 and merged[-1] == 1_000
        # Zone maps were rebuilt to cover the new extremes.
        assert proj.partitions[0].zone_maps["a"].min_value == -3
        assert proj.partitions[-1].zone_maps["a"].max_value == 1_000


class TestDefaultEncodingPreference:
    """Regression for the ``file(encoding=None)`` preference order.

    The docstring promises: RLE, then dictionary, then frame-of-reference,
    then uncompressed, with bit-vector only as a last resort.
    """

    def _projection(self, tmp_path, encodings):
        values = np.sort(
            np.random.default_rng(5).integers(0, 6, size=4_000)
        ).astype(np.int32)
        return Projection.create(
            tmp_path / "p",
            "p",
            {"v": values},
            schemas={"v": ColumnSchema("v", INT32)},
            sort_keys=["v"],
            encodings={"v": list(encodings)},
            presorted=True,
        )

    def test_order_constant_matches_docstring(self):
        assert ProjectionColumn.DEFAULT_ENCODING_ORDER == (
            "rle",
            "dictionary",
            "for",
            "uncompressed",
            "bitvector",
        )
        doc = ProjectionColumn.file.__doc__
        assert "RLE" in doc and "dictionary" in doc
        assert "frame-of-reference" in doc and "last resort" in doc

    @pytest.mark.parametrize(
        ("stored", "expected"),
        [
            (("bitvector", "uncompressed", "rle"), "rle"),
            (("uncompressed", "for", "bitvector"), "for"),
            (("bitvector", "uncompressed"), "uncompressed"),
            (("bitvector",), "bitvector"),
        ],
    )
    def test_preferred_encoding_selected(self, tmp_path, stored, expected):
        proj = self._projection(tmp_path, stored)
        assert proj.column("v").file().encoding.name == expected

    def test_explicit_encoding_still_honored(self, tmp_path):
        proj = self._projection(tmp_path, ("rle", "bitvector"))
        assert proj.column("v").file("bitvector").encoding.name == "bitvector"


class TestPartitionedCli:
    @pytest.fixture(scope="class")
    def cli_db(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli_partitioned")
        code = main(
            [
                "load-tpch",
                str(root),
                "--scale",
                "0.002",
                "--seed",
                "7",
                "--partitions",
                "4",
            ]
        )
        assert code == 0
        return root

    def test_load_reports_partitions(self, cli_db, capsys):
        assert main(["info", str(cli_db)]) == 0
        out = capsys.readouterr().out
        assert "range-partitioned: 4 partitions" in out
        assert "part0000" in out and "part0003" in out
        # Zone-map intervals are printed per partition.
        assert "returnflag=[" in out

    def test_query_identical_to_unpartitioned(self, cli_db, tmp_path, capsys):
        assert main(
            ["load-tpch", str(tmp_path / "plain"), "--scale", "0.002", "--seed", "7"]
        ) == 0
        capsys.readouterr()  # drain the load output
        sql = (
            "SELECT shipdate, linenum FROM lineitem "
            "WHERE returnflag = 'A' AND linenum < 4"
        )
        assert main(["query", str(cli_db), sql, "--limit", "5"]) == 0
        partitioned_out = capsys.readouterr().out
        assert main(["query", str(tmp_path / "plain"), sql, "--limit", "5"]) == 0
        plain_out = capsys.readouterr().out
        # Identical rows and row counts; only timings may differ.
        assert partitioned_out.splitlines()[:6] == plain_out.splitlines()[:6]

    def test_explain_shows_pruning(self, cli_db, capsys):
        sql = "SELECT shipdate FROM lineitem WHERE returnflag = 'A'"
        assert main(["explain", str(cli_db), sql]) == 0
        out = capsys.readouterr().out
        assert "scanned" in out and "pruned by zone maps" in out

    def test_explain_analyze_shows_partition_spans(self, cli_db, capsys):
        sql = "SELECT shipdate FROM lineitem WHERE returnflag = 'A'"
        assert main(["explain", str(cli_db), sql, "--analyze"]) == 0
        out = capsys.readouterr().out
        assert "PRUNE" in out
        assert "PARTITION" in out
        assert "partitions=" in out and "pruned" in out
