"""Unit tests for the disk model and buffer pool."""

import numpy as np
import pytest

from repro.buffer import BufferPool, DiskModel
from repro.dtypes import INT32
from repro.metrics import QueryStats
from repro.storage import encoding_by_name, write_column


@pytest.fixture
def column(tmp_path):
    values = np.arange(100_000, dtype=np.int32)  # 7 uncompressed blocks
    return write_column(
        tmp_path / "c.col", values, INT32, encoding_by_name("uncompressed")
    )


class TestDiskModel:
    def test_sequential_read_charges_read_only(self):
        disk = DiskModel()
        stats = QueryStats()
        disk.charge_read(stats, sequential=True)
        assert stats.block_reads == 1
        assert stats.disk_seeks == 0
        assert stats.simulated_io_us == disk.read_us

    def test_random_read_charges_seek(self):
        disk = DiskModel()
        stats = QueryStats()
        disk.charge_read(stats, sequential=False)
        assert stats.disk_seeks == 1
        assert stats.simulated_io_us == disk.read_us + disk.seek_us

    def test_totals_accumulate(self):
        disk = DiskModel()
        stats = QueryStats()
        disk.charge_read(stats, sequential=False)
        disk.charge_read(stats, sequential=True)
        assert disk.total_reads == 2
        assert disk.total_seeks == 1
        assert disk.simulated_us == disk.seek_us + 2 * disk.read_us
        disk.reset()
        assert disk.total_reads == 0


class TestBufferPool:
    def test_miss_then_hit(self, column):
        pool = BufferPool()
        stats = QueryStats()
        first = pool.get(column, 0, stats)
        assert stats.block_reads == 1
        second = pool.get(column, 0, stats)
        assert second == first
        assert stats.buffer_hits == 1
        assert stats.block_reads == 1  # no extra read

    def test_sequential_scan_one_seek(self, column):
        pool = BufferPool()
        stats = QueryStats()
        for i in range(column.n_blocks):
            pool.get(column, i, stats)
        assert stats.block_reads == column.n_blocks
        assert stats.disk_seeks == 1  # only the first read moves the head

    def test_random_access_seeks_every_time(self, column):
        pool = BufferPool()
        stats = QueryStats()
        for i in (4, 0, 5, 2):
            pool.get(column, i, stats)
        assert stats.disk_seeks == 4

    def test_prefetch_window(self, column):
        pool = BufferPool(disk=DiskModel(prefetch_blocks=4))
        stats = QueryStats()
        pool.get(column, 0, stats)
        # One request faulted the whole window: 4 reads, 1 seek.
        assert stats.block_reads == 4
        assert stats.disk_seeks == 1
        pool.get(column, 1, stats)
        pool.get(column, 2, stats)
        assert stats.buffer_hits == 2

    def test_eviction_under_pressure(self, column):
        block_size = len(column.read_payload(0))
        pool = BufferPool(capacity_bytes=2 * block_size)
        stats = QueryStats()
        for i in range(column.n_blocks):
            pool.get(column, i, stats)
        assert pool.resident_bytes <= 2 * block_size + block_size
        # Early blocks were evicted; re-reading them is a miss again.
        before = stats.block_reads
        pool.get(column, 0, stats)
        assert stats.block_reads == before + 1

    def test_resident_fraction(self, column):
        pool = BufferPool()
        stats = QueryStats()
        assert pool.resident_fraction(column) == 0.0
        for i in range(column.n_blocks):
            pool.get(column, i, stats)
        assert pool.resident_fraction(column) == 1.0

    def test_clear(self, column):
        pool = BufferPool()
        stats = QueryStats()
        pool.get(column, 0, stats)
        pool.clear()
        assert len(pool) == 0
        pool.get(column, 0, stats)
        assert stats.block_reads == 2

    def test_prefetch_over_resident_block_stays_sequential(self, column):
        """A resident block inside the prefetch window must still advance the
        head position; otherwise the next fault is misclassified as random
        and overcharges a SEEK the model never intended."""
        pool = BufferPool(disk=DiskModel(prefetch_blocks=1))
        stats = QueryStats()
        pool.get(column, 2, stats)  # seek + read; block 2 now resident
        pool.disk.prefetch_blocks = 3
        # Faulting block 0 prefetches 0..2; block 2 is already resident, so
        # only two reads happen, but the head still ends up past block 2.
        pool.get(column, 0, stats)
        assert stats.block_reads == 3
        assert stats.disk_seeks == 2
        # The next fault continues the sequential run: its window (3..5)
        # reads three more blocks under the same head position, no seek.
        pool.get(column, 3, stats)
        assert stats.block_reads == 6
        assert stats.disk_seeks == 2

    def test_resident_fraction_partial_and_after_eviction(self, column):
        pool = BufferPool()
        stats = QueryStats()
        pool.get(column, 0, stats)
        pool.get(column, 3, stats)
        assert pool.resident_fraction(column) == 2 / column.n_blocks
        # Per-path counts track evictions too: squeeze the pool and check
        # the counter agrees with the actual cache contents.
        block_size = len(column.read_payload(0))
        small = BufferPool(capacity_bytes=2 * block_size)
        for i in range(column.n_blocks):
            small.get(column, i, stats)
        assert small.resident_fraction(column) == len(small) / column.n_blocks

    def test_resident_fraction_distinguishes_paths(self, column, tmp_path):
        other = write_column(
            tmp_path / "d.col",
            np.arange(50_000, dtype=np.int32),
            INT32,
            encoding_by_name("uncompressed"),
        )
        pool = BufferPool()
        stats = QueryStats()
        for i in range(column.n_blocks):
            pool.get(column, i, stats)
        assert pool.resident_fraction(column) == 1.0
        assert pool.resident_fraction(other) == 0.0

    def test_contains_does_not_touch_lru(self, column):
        block_size = len(column.read_payload(0))
        pool = BufferPool(capacity_bytes=2 * block_size)
        stats = QueryStats()
        pool.get(column, 0, stats)
        pool.get(column, 1, stats)
        assert pool.contains(str(column.path), 0)
        assert not pool.contains(str(column.path), 5)
        # contains() must not refresh block 0, so block 0 (LRU-first) is
        # still the one evicted when block 2 arrives.
        pool.get(column, 2, stats)
        assert not pool.contains(str(column.path), 0)
        assert pool.contains(str(column.path), 1)
