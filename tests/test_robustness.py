"""Robustness: pinned payloads vs pool eviction, catalog ops, dtype edges."""

import numpy as np
import pytest

from repro import Database, Predicate, SelectQuery, Strategy
from repro.dtypes import INT32, UINT8, ColumnSchema
from repro.errors import EncodingError
from repro.storage.block import BLOCK_SIZE

from .reference import canonical, full_column, reference_select


class TestPinnedPayloadsSurviveEviction:
    def test_lm_correct_with_pool_smaller_than_column(self, tmp_path):
        """Mini-columns hold payload references, so LM extraction stays
        correct even when the buffer pool has evicted every block between
        the scan and the extraction."""
        rng = np.random.default_rng(17)
        n = 300_000  # ~19 uncompressed int32 blocks
        a = np.sort(rng.integers(0, 1000, size=n)).astype(np.int32)
        b = rng.integers(0, 50, size=n).astype(np.int32)
        db = Database(tmp_path / "db", pool_capacity_bytes=2 * BLOCK_SIZE)
        db.catalog.create_projection(
            "big",
            {"a": a, "b": b},
            schemas={
                "a": ColumnSchema("a", INT32),
                "b": ColumnSchema("b", INT32),
            },
            sort_keys=["a"],
            encodings={"a": ["uncompressed"], "b": ["uncompressed"]},
            presorted=True,
        )
        db.use_indexes = False  # force the scan + pin path
        query = SelectQuery(
            projection="big",
            select=("a", "b"),
            predicates=(Predicate("a", "<", 500), Predicate("b", "<", 25)),
        )
        result = db.query(query, strategy=Strategy.LM_PARALLEL, cold=True)
        expected = reference_select(
            db.projection("big"), ["a", "b"], list(query.predicates)
        )
        assert np.array_equal(canonical(result.tuples.data), canonical(expected))
        # The pool really was under pressure.
        assert db.pool.resident_bytes <= 3 * BLOCK_SIZE

    def test_all_strategies_under_pool_pressure(self, tpch_db, tmp_path):
        db = Database(
            tpch_db.catalog.root, pool_capacity_bytes=1 * BLOCK_SIZE
        )
        query = SelectQuery(
            projection="lineitem",
            select=("shipdate", "linenum"),
            predicates=(
                Predicate("shipdate", "<", 9000),
                Predicate("linenum", "<", 7),
            ),
        )
        expected = reference_select(
            db.projection("lineitem"),
            ["shipdate", "linenum"],
            list(query.predicates),
        )
        for strategy in Strategy:
            result = db.query(query, strategy=strategy, cold=True)
            assert np.array_equal(
                canonical(result.tuples.data), canonical(expected)
            ), strategy


class TestCatalogOps:
    def test_names_and_contains(self, tpch_db):
        names = tpch_db.catalog.names()
        assert names == sorted(names)
        assert "lineitem" in tpch_db.catalog
        assert "nope" not in tpch_db.catalog

    def test_replace_projection_roundtrip(self, tmp_path):
        db = Database(tmp_path / "db")
        values = np.arange(100, dtype=np.int32)
        schemas = {"v": ColumnSchema("v", INT32)}
        db.catalog.create_projection(
            "t", {"v": values}, schemas, sort_keys=["v"],
            encodings={"v": ["uncompressed"]},
        )
        db.catalog.replace_projection(
            "t",
            {"v": values * 2},
            schemas,
            sort_keys=["v"],
            encodings={"v": ["uncompressed"]},
        )
        assert full_column(db.projection("t"), "v")[1] == 2


class TestDtypeEdges:
    def test_non_contiguous_input_accepted(self, tmp_path):
        db = Database(tmp_path / "db")
        strided = np.arange(200, dtype=np.int32)[::2]  # non-contiguous view
        db.catalog.create_projection(
            "t",
            {"v": strided},
            {"v": ColumnSchema("v", INT32)},
            sort_keys=["v"],
            encodings={"v": ["uncompressed"]},
        )
        assert db.projection("t").n_rows == 100

    def test_uint8_overflow_rejected(self):
        with pytest.raises(EncodingError):
            UINT8.validate(np.array([300], dtype=np.int64))

    def test_negative_into_uint8_rejected(self):
        with pytest.raises(EncodingError):
            UINT8.validate(np.array([-1], dtype=np.int64))
