"""Property-based tests: EM and LM aggregation agree with a naive reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffer import BufferPool
from repro.metrics import QueryStats
from repro.operators import ExecutionContext, TupleSet
from repro.operators.aggregate import (
    AggregateEM,
    AggregateLM,
    AggSpec,
    factorize_groups,
)

FUNCS = ["sum", "count", "min", "max", "avg"]


def naive_reference(groups, values, func):
    """Dict of group key -> aggregate, computed row-at-a-time in Python."""
    buckets: dict = {}
    for g, v in zip(groups, values):
        buckets.setdefault(int(g), []).append(int(v))
    out = {}
    for g, vs in buckets.items():
        if func == "sum":
            out[g] = sum(vs)
        elif func == "count":
            out[g] = len(vs)
        elif func == "min":
            out[g] = min(vs)
        elif func == "max":
            out[g] = max(vs)
        else:
            out[g] = sum(vs) // len(vs)
    return out


rows = st.lists(
    st.tuples(st.integers(-5, 5), st.integers(-100, 100)),
    min_size=1,
    max_size=300,
)


@given(rows, st.sampled_from(FUNCS))
@settings(max_examples=150, deadline=None)
def test_em_aggregation_matches_naive(data, func):
    ctx = ExecutionContext(pool=BufferPool(), stats=QueryStats())
    groups = np.array([g for g, _v in data], dtype=np.int64)
    values = np.array([v for _g, v in data], dtype=np.int64)
    tuples = TupleSet.stitch({"g": groups, "v": values})
    out = AggregateEM(ctx, "g", [AggSpec(func, "v")]).execute(tuples)
    expected = naive_reference(groups, values, func)
    got = {
        int(row[0]): int(row[1])
        for row in out.select(["g", f"{func}(v)"]).rows()
    }
    assert got == expected


@given(rows, st.sampled_from(FUNCS))
@settings(max_examples=150, deadline=None)
def test_lm_aggregation_matches_em(data, func):
    ctx = ExecutionContext(pool=BufferPool(), stats=QueryStats())
    groups = np.array([g for g, _v in data], dtype=np.int64)
    values = np.array([v for _g, v in data], dtype=np.int64)
    spec = AggSpec(func, "v")
    em = AggregateEM(ctx, "g", [spec]).execute(
        TupleSet.stitch({"g": groups, "v": values})
    )
    lm = AggregateLM(ctx, "g", [spec]).execute(groups, {"v": values})
    assert em.select(["g", spec.output_name]).rows() == lm.select(
        ["g", spec.output_name]
    ).rows()


@given(rows, st.sampled_from(FUNCS))
@settings(max_examples=100, deadline=None)
def test_run_based_aggregation_matches_row_based(data, func):
    """execute_runs over a run-encoded group column equals plain execute."""
    ctx = ExecutionContext(pool=BufferPool(), stats=QueryStats())
    # Sort by group so the group column has run structure, then run-encode it.
    data = sorted(data)
    groups = np.array([g for g, _v in data], dtype=np.int64)
    values = np.array([v for _g, v in data], dtype=np.int64)
    change = np.nonzero(np.diff(groups))[0]
    run_starts = np.concatenate(([0], change + 1))
    run_values = groups[run_starts]
    run_ids = np.searchsorted(run_starts, np.arange(len(groups)), side="right") - 1
    spec = AggSpec(func, "v")
    by_rows = AggregateLM(ctx, "g", [spec]).execute(groups, {"v": values})
    by_runs = AggregateLM(ctx, "g", [spec]).execute_runs(
        run_values, run_ids, {"v": values}
    )
    assert by_rows.select(["g", spec.output_name]).rows() == by_runs.select(
        ["g", spec.output_name]
    ).rows()


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(-50, 50)),
        min_size=1,
        max_size=200,
    )
)
@settings(max_examples=100, deadline=None)
def test_compound_group_keys_match_pairwise_naive(data):
    ctx = ExecutionContext(pool=BufferPool(), stats=QueryStats())
    a = np.array([x for x, _y, _v in data], dtype=np.int64)
    b = np.array([y for _x, y, _v in data], dtype=np.int64)
    v = np.array([z for _x, _y, z in data], dtype=np.int64)
    out = AggregateEM(ctx, ("a", "b"), [AggSpec("sum", "v")]).execute(
        TupleSet.stitch({"a": a, "b": b, "v": v})
    )
    expected: dict = {}
    for x, y, z in data:
        expected[(x, y)] = expected.get((x, y), 0) + z
    got = {
        (int(r[0]), int(r[1])): int(r[2])
        for r in out.select(["a", "b", "sum(v)"]).rows()
    }
    assert got == expected


@given(
    st.lists(st.integers(-3, 3), min_size=1, max_size=100),
    st.lists(st.integers(-3, 3), min_size=1, max_size=100),
)
@settings(max_examples=100, deadline=None)
def test_factorize_groups_properties(xs, ys):
    n = min(len(xs), len(ys))
    a = np.array(xs[:n], dtype=np.int64)
    b = np.array(ys[:n], dtype=np.int64)
    keys, inverse = factorize_groups([a, b])
    # Reconstruction: keys[inverse] reproduces the input pairs.
    assert np.array_equal(keys[0][inverse], a)
    assert np.array_equal(keys[1][inverse], b)
    # Distinctness: the key table has no duplicate pairs.
    pairs = set(zip(keys[0].tolist(), keys[1].tolist()))
    assert len(pairs) == len(keys[0])
