"""Crash recovery scenarios: the merge windows, torn tails, staging GC.

The crash differential enumerates every boundary; these tests pin the
*interesting* windows by name so a regression points straight at the
broken protocol step:

* crash between the tuple mover's manifest commit and the WAL truncate —
  recovery must honour the ``wal_applied`` marker (no duplicated rows)
  and a re-merge must be a no-op;
* a torn WAL tail appended while a tuple move was in flight — the
  recovered store keeps the applied prefix, replays the durable
  remainder, and drops the torn line;
* crash before the staging rename / before drop's rmtree — the old state
  survives untouched and reopening garbage-collects the debris.
"""

from __future__ import annotations

from datetime import date

import pytest

from repro import Database, Predicate, SelectQuery, load_tpch
from repro.faults import CrashInjector, CrashPoint, SimulatedCrash


def order_row(custkey=1):
    return {"shipdate": date(1999, 1, 1), "custkey": custkey}


@pytest.fixture()
def db_root(tmp_path):
    root = tmp_path / "db"
    db = Database(root)
    load_tpch(db.catalog, scale=0.001, seed=2)
    db.close()
    return root


def crashing_db(root, op_glob, path_glob="*"):
    injector = CrashInjector(
        [CrashPoint(op_glob=op_glob, path_glob=path_glob)], seed=0
    )
    return Database(root, crash_injector=injector)


def order_count(db) -> int:
    result = db.query(
        SelectQuery(projection="orders", select=("custkey",))
    )
    return result.n_rows


class TestMergeCommitWindow:
    def test_crash_between_manifest_commit_and_wal_truncate(self, db_root):
        baseline = order_count(Database(db_root))
        db = crashing_db(db_root, "wal.truncate")
        db.insert("orders", [order_row(n) for n in (101, 102, 103)])
        with pytest.raises(SimulatedCrash):
            db.merge("orders")
        # The manifest committed the rebuilt projections before the crash:
        # the WAL file survives, but the marker says its records are
        # already folded in.
        assert (db_root / "_wal" / "orders.wal").exists()

        reopened = Database(db_root)
        assert order_count(reopened) == baseline + 3  # durable exactly once
        assert reopened.pending("orders") == 0  # marker skipped the WAL
        assert not (db_root / "_wal" / "orders.wal").exists()
        assert reopened.merge("orders") == 0  # idempotent re-merge
        assert order_count(reopened) == baseline + 3

    def test_marker_without_wal_file_is_cleared(self, db_root):
        # Crash in the smaller window: WAL unlinked, marker-clearing
        # manifest commit still pending ("replace" of the manifest fires
        # first for the merge commit itself, so target the second one).
        db = crashing_db(db_root, "dir.fsync", path_glob="_wal")
        db.insert("orders", [order_row(7)])
        with pytest.raises(SimulatedCrash):
            db.merge("orders")
        reopened = Database(db_root)
        assert reopened.pending("orders") == 0
        assert reopened.catalog.wal_applied == {}
        assert reopened.merge("orders") == 0


class TestTornTailUnderInflightMove:
    def test_torn_tail_plus_applied_prefix(self, db_root):
        baseline = order_count(Database(db_root))
        db = crashing_db(db_root, "wal.truncate")
        db.insert("orders", [order_row(n) for n in (201, 202)])
        with pytest.raises(SimulatedCrash):
            db.merge("orders")
        # A racing insert appends to the same WAL after the manifest
        # committed but before recovery ran — and its tail tears.
        wal = db_root / "_wal" / "orders.wal"
        import json

        complete = json.dumps(
            {"shipdate": 10000, "custkey": 203}, sort_keys=True
        )
        with open(wal, "a", encoding="utf-8") as f:
            f.write(complete + "\n")
            f.write('{"shipdate": 100')  # torn mid-payload

        reopened = Database(db_root)
        # Applied prefix skipped, durable racer replayed, torn line gone.
        assert reopened.pending("orders") == 1
        assert order_count(reopened) == baseline + 3
        moved = reopened.merge("orders")
        assert moved == 1
        assert order_count(reopened) == baseline + 3
        assert reopened.pending("orders") == 0

    def test_recovered_wal_rewrite_is_byte_faithful(self, db_root):
        db = crashing_db(db_root, "wal.truncate")
        db.insert("orders", [order_row(5)])
        with pytest.raises(SimulatedCrash):
            db.merge("orders")
        wal = db_root / "_wal" / "orders.wal"
        racer = '{"custkey": 301, "shipdate": 10001}\n'
        with open(wal, "a", encoding="utf-8") as f:
            f.write(racer)
        Database(db_root).close()
        # Recovery rewrote the file to only the unapplied records, byte
        # for byte as they were appended.
        assert wal.read_text(encoding="utf-8") == racer


class TestStagingAndDropWindows:
    def test_crash_before_staging_rename_preserves_old_state(self, db_root):
        baseline = order_count(Database(db_root))
        db = crashing_db(db_root, "rename")
        db.insert("orders", [order_row(42)])
        with pytest.raises(SimulatedCrash):
            db.merge("orders")
        assert list(db_root.glob("tmp-*")), "staging debris must exist"

        reopened = Database(db_root)
        assert not list(db_root.glob("tmp-*")), "reopen must GC staging"
        assert reopened.pending("orders") == 1  # nothing was committed
        assert order_count(reopened) == baseline + 1  # merge-on-read
        assert reopened.merge("orders") == 1
        assert order_count(reopened) == baseline + 1

    def test_crash_before_drop_rmtree_does_not_resurrect(self, db_root):
        db = crashing_db(db_root, "rmtree")
        with pytest.raises(SimulatedCrash):
            db.drop_projection("customer")
        # The manifest committed the drop; only the file deletion is
        # missing, so the directory is momentarily orphaned.
        reopened = Database(db_root)
        assert "customer" not in reopened.catalog
        assert not (db_root / "customer").exists(), (
            "reopen must garbage-collect the unreferenced directory"
        )

    def test_updates_and_deletes_survive_crashed_merge(self, db_root):
        db = crashing_db(db_root, "rename")
        deleted = db.delete("orders", (Predicate("custkey", "=", 1),))
        assert deleted > 0
        updated = db.update(
            "orders", (Predicate("custkey", "=", 2),), {"custkey": 9999}
        )
        assert updated > 0
        expected = order_count(db)
        with pytest.raises(SimulatedCrash):
            db.merge("orders")
        reopened = Database(db_root)
        assert order_count(reopened) == expected
        assert reopened.pending("orders") > 0
        reopened.merge("orders")
        assert order_count(reopened) == expected
        assert reopened.pending("orders") == 0


class TestCrashInjectorUnit:
    def test_schedule_is_deterministic(self):
        a = CrashInjector([CrashPoint(probability=0.1)], seed=3)
        b = CrashInjector([CrashPoint(probability=0.1)], seed=3)
        fired_a = [a.check("file.write", f"/x/{i}") for i in range(50)]
        fired_b = [b.check("file.write", f"/x/{i}") for i in range(50)]
        assert fired_a == fired_b

    def test_crash_at_fires_exactly_once(self):
        inj = CrashInjector(seed=0, crash_at=3)
        fired = [inj.check("op", "p") for _ in range(6)]
        assert fired == [False, False, True, False, False, False]

    def test_hook_raises_and_records(self):
        inj = CrashInjector(seed=0, crash_at=1)
        with pytest.raises(SimulatedCrash) as exc:
            inj.hook("wal.append", "/db/_wal/t.wal")
        assert exc.value.op == "wal.append"
        assert inj.crashed is not None
        assert inj.metrics()["crashed"] == 1
