"""Tests for describe_plan and the public testing utilities."""

import numpy as np
import pytest

from repro import Database, Predicate, SelectQuery, Strategy, AggSpec
from repro.errors import UnsupportedOperationError
from repro.testing import assert_queries_agree, make_random_projection


@pytest.fixture()
def query():
    return SelectQuery(
        projection="lineitem",
        select=("shipdate", "linenum"),
        predicates=(
            Predicate("shipdate", "<", 8800),
            Predicate("linenum", "<", 7),
        ),
    )


class TestDescribePlan:
    def test_every_strategy_renders(self, tpch_db, query):
        for strategy in Strategy:
            text = tpch_db.describe(query, strategy)
            assert text.startswith(f"{strategy.value} plan")
            assert "shipdate < 8800" in text

    def test_lm_parallel_structure(self, tpch_db, query):
        text = tpch_db.describe(query, Strategy.LM_PARALLEL)
        assert "AND" in text
        assert "Merge(" in text
        assert text.count("DS1(") == 2
        assert text.count("DS3(") == 2
        assert "SF~" in text

    def test_em_parallel_structure(self, tpch_db, query):
        text = tpch_db.describe(query, Strategy.EM_PARALLEL)
        assert "SPC(" in text
        assert "scan all blocks" in text

    def test_lm_pipelined_order(self, tpch_db, query):
        text = tpch_db.describe(query, Strategy.LM_PIPELINED)
        # Most selective predicate is the leaf DS1; the other is a filter.
        assert "DS1(shipdate < 8800)" in text
        assert "DS3+filter(linenum < 7)" in text
        assert text.index("DS3+filter") < text.index("DS1(shipdate")

    def test_aggregate_order_limit_annotations(self, tpch_db):
        query = SelectQuery(
            projection="lineitem",
            select=("shipdate", "sum(linenum)"),
            predicates=(Predicate("shipdate", "<", 8800),),
            group_by="shipdate",
            aggregates=(AggSpec("sum", "linenum"),),
            order_by=(("shipdate", True),),
            limit=3,
        )
        text = tpch_db.describe(query, Strategy.LM_PARALLEL)
        assert "Aggregate(sum(linenum) GROUP BY shipdate)" in text
        assert "OrderBy(shipdate DESC)" in text
        assert "Limit(3)" in text
        assert "no tuples constructed" in text

    def test_disjunction_plan(self, tpch_db):
        query = SelectQuery(
            projection="lineitem",
            select=("linenum",),
            disjuncts=(
                (Predicate("linenum", "=", 1),),
                (Predicate("linenum", "=", 7),),
            ),
        )
        text = tpch_db.describe(query, Strategy.LM_PARALLEL)
        assert "UNION of position sets" in text
        assert text.count("AND") == 2

    def test_bitvector_pipelined_rejected(self, tpch_db, query):
        from dataclasses import replace

        bv = replace(query, encodings=(("linenum", "bitvector"),))
        with pytest.raises(UnsupportedOperationError):
            tpch_db.describe(bv, Strategy.LM_PIPELINED)

    def test_index_annotation(self, tpch_db):
        query = SelectQuery(
            projection="lineitem",
            select=("returnflag",),
            predicates=(Predicate("returnflag", "=", 1),),
        )
        text = tpch_db.describe(query, Strategy.LM_PARALLEL)
        assert "indexed" in text


class TestMakeRandomProjection:
    def test_deterministic(self, tmp_path):
        db1 = Database(tmp_path / "a")
        db2 = Database(tmp_path / "b")
        _p1, d1 = make_random_projection(db1, seed=9)
        _p2, d2 = make_random_projection(db2, seed=9)
        assert np.array_equal(d1["k"], d2["k"])
        assert np.array_equal(d1["v0"], d2["v0"])

    def test_shape_and_sortedness(self, tmp_path):
        db = Database(tmp_path / "db")
        proj, data = make_random_projection(
            db, n_rows=5000, n_value_columns=3, cardinality=10
        )
        assert proj.n_rows == 5000
        assert proj.column_names == ["k", "v0", "v1", "v2"]
        assert np.all(np.diff(data["k"]) >= 0)
        assert proj.column("k").index is not None

    def test_queryable(self, tmp_path):
        db = Database(tmp_path / "db")
        _proj, data = make_random_projection(db, cardinality=20, seed=4)
        r = db.sql("SELECT k, v0 FROM t WHERE k < 10")
        assert r.n_rows == int((data["k"] < 10).sum())


class TestAssertQueriesAgree:
    def test_passes_on_consistent_engine(self, tmp_path):
        db = Database(tmp_path / "db")
        make_random_projection(db, cardinality=30, seed=2)
        n = assert_queries_agree(
            db,
            SelectQuery(
                projection="t",
                select=("k", "v0"),
                predicates=(Predicate("v0", "<", 15),),
            ),
        )
        assert n > 0

    def test_subset_of_strategies(self, tmp_path):
        db = Database(tmp_path / "db")
        make_random_projection(db, seed=3)
        assert_queries_agree(
            db,
            SelectQuery(projection="t", select=("k",)),
            strategies=[Strategy.EM_PARALLEL, Strategy.LM_PARALLEL],
        )
