"""Unit tests for the column file format."""

import numpy as np
import pytest

from repro.dtypes import INT32
from repro.errors import StorageError
from repro.storage import ColumnFile, encoding_by_name, write_column


@pytest.fixture
def sorted_values():
    rng = np.random.default_rng(11)
    return np.sort(rng.integers(0, 40, size=120_000)).astype(np.int32)


class TestWriteOpen:
    def test_open_matches_write_metadata(self, tmp_path, sorted_values):
        path = tmp_path / "col.rle.col"
        written = write_column(
            path, sorted_values, INT32, encoding_by_name("rle"), column_name="c"
        )
        opened = ColumnFile.open(path)
        assert opened.column == "c"
        assert opened.n_values == written.n_values == len(sorted_values)
        assert opened.n_blocks == written.n_blocks
        assert opened.encoding.name == "rle"
        assert opened.ctype is INT32
        assert opened.total_runs == written.total_runs == 40

    def test_payload_roundtrip(self, tmp_path, sorted_values):
        path = tmp_path / "col.unc.col"
        write_column(path, sorted_values, INT32, encoding_by_name("uncompressed"))
        cf = ColumnFile.open(path)
        decoded = np.concatenate(
            [
                cf.encoding.decode(cf.read_payload(d.index), d, cf.dtype)
                for d in cf.descriptors
            ]
        )
        assert np.array_equal(decoded, sorted_values)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.col"
        path.write_bytes(b"NOTACOLFILE")
        with pytest.raises(StorageError):
            ColumnFile.open(path)

    def test_avg_run_length(self, tmp_path, sorted_values):
        path = tmp_path / "col.rle.col"
        cf = write_column(path, sorted_values, INT32, encoding_by_name("rle"))
        assert cf.avg_run_length == pytest.approx(len(sorted_values) / 40)

    def test_avg_run_length_uncompressed_is_one(self, tmp_path, sorted_values):
        path = tmp_path / "col.unc.col"
        cf = write_column(
            path, sorted_values, INT32, encoding_by_name("uncompressed")
        )
        assert cf.avg_run_length == 1.0

    def test_blocks_for_positions(self, tmp_path, sorted_values):
        path = tmp_path / "col.unc.col"
        cf = write_column(
            path, sorted_values, INT32, encoding_by_name("uncompressed")
        )
        per_block = cf.descriptors[0].n_values
        hits = cf.blocks_for_positions(per_block, per_block + 1)
        assert [d.index for d in hits] == [1]
        assert cf.blocks_for_positions(0, len(sorted_values)) == cf.descriptors

    def test_empty_column(self, tmp_path):
        path = tmp_path / "empty.col"
        cf = write_column(
            path,
            np.empty(0, dtype=np.int32),
            INT32,
            encoding_by_name("uncompressed"),
        )
        assert cf.n_blocks == 0
        assert ColumnFile.open(path).n_values == 0

    def test_size_bytes_positive(self, tmp_path, sorted_values):
        path = tmp_path / "col.unc.col"
        cf = write_column(
            path, sorted_values, INT32, encoding_by_name("uncompressed")
        )
        assert cf.size_bytes() > sorted_values.nbytes
