"""Thread-safety regression tests for the serving layer's shared state.

The query server runs many worker threads over *one* Database, so every
structure a query execution touches — buffer pool, decoded-block cache,
metrics registry, per-query stats, lazily-opened column files — is hammered
here from many threads at once. The audit behind this file found exactly
one unsynchronized check-then-act: :class:`ProjectionColumn`'s lazy
``file()``/``index`` population, now guarded by a per-column lock; the
barrier tests at the bottom are its regression tests.
"""

from __future__ import annotations

import threading

from repro import Database, MetricsRegistry, Predicate, SelectQuery, load_tpch

N_THREADS = 8


def _run_all(n, fn):
    """Run *fn(i)* on n threads after a common barrier; re-raise failures."""
    barrier = threading.Barrier(n)
    errors: list[BaseException] = []
    results: dict[int, object] = {}

    def runner(i):
        try:
            barrier.wait()
            results[i] = fn(i)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=runner, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return [results[i] for i in range(n)]


QUERY = SelectQuery(
    projection="lineitem",
    select=("shipdate", "linenum"),
    predicates=(Predicate("shipdate", "<", 9200),),
)


class TestDecodedCacheUnderContention:
    def test_eviction_churn_keeps_results_and_accounting_exact(
        self, tmp_path
    ):
        # A decoded cache far smaller than the working set forces constant
        # insert/evict churn from every thread.
        db = Database(tmp_path / "db", decoded_cache_bytes=64 * 1024)
        load_tpch(db.catalog, scale=0.002, seed=7)
        reference = sorted(db.query(QUERY).rows())

        def worker(i):
            rows = None
            for _ in range(5):
                rows = sorted(db.query(QUERY).rows())
                assert rows == reference
            return rows

        results = _run_all(N_THREADS, worker)
        assert all(r == reference for r in results)
        cache = db.decoded
        with cache._lock:
            booked = sum(nbytes for _value, nbytes in cache._cache.values())
            assert cache._bytes == booked, (
                "byte accounting diverged from cache contents"
            )
            assert (
                cache._bytes <= cache.capacity_bytes
                or len(cache._cache) == 1
            )
        db.close()

    def test_disabled_cache_still_safe(self, tmp_path):
        db = Database(tmp_path / "db", decoded_cache_bytes=0)
        load_tpch(db.catalog, scale=0.001, seed=7)
        reference = sorted(db.query(QUERY).rows())
        results = _run_all(
            N_THREADS, lambda i: sorted(db.query(QUERY).rows())
        )
        assert all(r == reference for r in results)
        db.close()


class TestMetricsRegistryUnderContention:
    def test_counter_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("stress_total")
        per_thread = 2000

        def worker(i):
            for _ in range(per_thread):
                counter.inc()

        _run_all(N_THREADS, worker)
        assert counter.value == N_THREADS * per_thread

    def test_histogram_records_are_exact(self):
        registry = MetricsRegistry()
        hist = registry.histogram("stress_ms")
        per_thread = 500

        def worker(i):
            for k in range(per_thread):
                hist.record(float(i * per_thread + k))

        _run_all(N_THREADS, worker)
        snap = hist.snapshot()
        assert snap["count"] == N_THREADS * per_thread
        total = N_THREADS * per_thread
        assert snap["sum_ms"] == sum(range(total))
        assert snap["max_ms"] == float(total - 1)

    def test_observe_query_concurrently(self, tpch_db):
        registry = tpch_db.metrics
        before = registry.snapshot()["counters"].get("queries_total", 0)
        _run_all(N_THREADS, lambda i: tpch_db.query(QUERY))
        after = registry.snapshot()["counters"]["queries_total"]
        assert after - before == N_THREADS


class TestQueryStatsIsolation:
    def test_concurrent_warm_runs_match_serial_stats(self, tpch_db):
        # Per-query stats are created per execution; concurrent runs of the
        # same query must all report the serial warm counters, not a blend.
        tpch_db.query(QUERY)  # warm
        serial = tpch_db.query(QUERY).stats
        results = _run_all(N_THREADS, lambda i: tpch_db.query(QUERY))
        for result in results:
            assert result.stats.values_scanned == serial.values_scanned
            assert result.stats.disk_seeks == serial.disk_seeks
            assert result.stats.function_calls == serial.function_calls
            assert result.n_rows == results[0].n_rows


class TestLazyColumnInitRaces:
    """Regression: ProjectionColumn's lazy init is a per-column lock now."""

    N_RACERS = 16

    def test_file_open_returns_one_object(self, tmp_path):
        db = Database(tmp_path / "db")
        load_tpch(db.catalog, scale=0.001, seed=7)
        # A second Database over the same files gets fresh (unopened)
        # ProjectionColumn instances — the race window under test.
        fresh = Database(tmp_path / "db")
        column = fresh.projection("lineitem").column("shipdate")
        files = _run_all(self.N_RACERS, lambda i: column.file())
        assert len({id(f) for f in files}) == 1
        assert len(column._open_files) == 1
        fresh.close()
        db.close()

    def test_index_load_returns_one_object(self, tmp_path):
        db = Database(tmp_path / "db")
        load_tpch(db.catalog, scale=0.001, seed=7)
        fresh = Database(tmp_path / "db")
        proj = fresh.projection("lineitem")
        column = proj.column(proj.sort_keys[0])
        indexes = _run_all(self.N_RACERS, lambda i: column.index)
        assert indexes[0] is not None
        assert len({id(ix) for ix in indexes}) == 1
        fresh.close()
        db.close()
