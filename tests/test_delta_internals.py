"""Unit tests for the delta module's merge machinery."""

import numpy as np
import pytest

from repro import AggSpec, Predicate, SelectQuery
from repro.delta import (
    delta_aggregate,
    delta_select,
    expand_avg,
    internal_query,
    merge_aggregates,
)
from repro.operators.tuples import TupleSet


class TestExpandAvg:
    def test_plain_specs_pass_through(self):
        specs = (AggSpec("sum", "v"), AggSpec("count", "v"))
        internal, plan = expand_avg(specs)
        assert internal == list(specs)
        assert plan == {
            "sum(v)": ("direct", "sum(v)"),
            "count(v)": ("direct", "count(v)"),
        }

    def test_avg_expands_to_sum_and_count(self):
        internal, plan = expand_avg((AggSpec("avg", "v"),))
        assert internal == [AggSpec("sum", "v"), AggSpec("count", "v")]
        assert plan == {"avg(v)": ("avg", "sum(v)", "count(v)")}

    def test_avg_reuses_existing_partials(self):
        specs = (AggSpec("sum", "v"), AggSpec("avg", "v"))
        internal, _plan = expand_avg(specs)
        assert internal == [AggSpec("sum", "v"), AggSpec("count", "v")]


class TestInternalQuery:
    def test_plain_select_strips_order_and_limit(self):
        query = SelectQuery(
            projection="t",
            select=("a",),
            order_by=(("a", True),),
            limit=3,
        )
        rewritten, plan = internal_query(query)
        assert rewritten.order_by == ()
        assert rewritten.limit is None
        assert plan == {}

    def test_aggregate_rewrite(self):
        query = SelectQuery(
            projection="t",
            select=("g", "avg(v)"),
            group_by="g",
            aggregates=(AggSpec("avg", "v"),),
            having=(Predicate("avg(v)", ">", 1),),
        )
        rewritten, plan = internal_query(query)
        assert rewritten.select == ("g", "sum(v)", "count(v)")
        assert rewritten.having == ()
        assert plan["avg(v)"][0] == "avg"


class TestDeltaSelect:
    def test_empty_columns(self):
        q = SelectQuery(projection="t", select=("a",))
        assert delta_select(q, {}) == {}

    def test_conjunction(self):
        q = SelectQuery(
            projection="t",
            select=("a",),
            predicates=(Predicate("a", ">", 1), Predicate("a", "<", 4)),
        )
        out = delta_select(q, {"a": np.array([0, 2, 3, 9])})
        assert out["a"].tolist() == [2, 3]

    def test_disjunction(self):
        q = SelectQuery(
            projection="t",
            select=("a",),
            disjuncts=(
                (Predicate("a", "<", 1),),
                (Predicate("a", ">", 8),),
            ),
        )
        out = delta_select(q, {"a": np.array([0, 2, 3, 9])})
        assert out["a"].tolist() == [0, 9]


class TestMergeAggregates:
    def test_overlapping_and_new_groups(self):
        specs = [AggSpec("sum", "v"), AggSpec("count", "v")]
        stored = TupleSet.stitch(
            {
                "g": np.array([1, 2]),
                "sum(v)": np.array([10, 20]),
                "count(v)": np.array([2, 4]),
            }
        )
        pending = TupleSet.stitch(
            {
                "g": np.array([2, 3]),
                "sum(v)": np.array([5, 7]),
                "count(v)": np.array([1, 1]),
            }
        )
        merged = merge_aggregates(
            stored, pending, ["g"], specs,
            {"sum(v)": ("direct", "sum(v)"), "count(v)": ("direct", "count(v)")},
            ["g", "sum(v)", "count(v)"],
        )
        assert merged.rows() == [(1, 10, 2), (2, 25, 5), (3, 7, 1)]

    def test_min_max_merge(self):
        specs = [AggSpec("min", "v"), AggSpec("max", "v")]
        stored = TupleSet.stitch(
            {
                "g": np.array([1]),
                "min(v)": np.array([5]),
                "max(v)": np.array([9]),
            }
        )
        pending = TupleSet.stitch(
            {
                "g": np.array([1]),
                "min(v)": np.array([3]),
                "max(v)": np.array([7]),
            }
        )
        merged = merge_aggregates(
            stored, pending, ["g"], specs,
            {"min(v)": ("direct", "min(v)"), "max(v)": ("direct", "max(v)")},
            ["g", "min(v)", "max(v)"],
        )
        assert merged.rows() == [(1, 3, 9)]

    def test_avg_reconstruction(self):
        specs = [AggSpec("sum", "v"), AggSpec("count", "v")]
        stored = TupleSet.stitch(
            {
                "g": np.array([1]),
                "sum(v)": np.array([10]),
                "count(v)": np.array([4]),
            }
        )
        pending = TupleSet.stitch(
            {
                "g": np.array([1]),
                "sum(v)": np.array([2]),
                "count(v)": np.array([2]),
            }
        )
        merged = merge_aggregates(
            stored, pending, ["g"], specs,
            {"avg(v)": ("avg", "sum(v)", "count(v)")},
            ["g", "avg(v)"],
        )
        assert merged.rows() == [(1, 2)]  # (10+2) // (4+2)


class TestDeltaAggregate:
    def test_shapes_match_stored_side(self):
        survivors = {
            "g": np.array([1, 1, 2]),
            "v": np.array([3, 4, 5]),
        }
        out = delta_aggregate(
            [AggSpec("sum", "v")], ["g"], survivors
        )
        assert out.columns == ("g", "sum(v)")
        assert out.rows() == [(1, 7), (2, 5)]
