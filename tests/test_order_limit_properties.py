"""Property-based tests for ORDER BY / LIMIT semantics."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Predicate, SelectQuery

from .reference import full_column


order_specs = st.lists(
    st.tuples(
        st.sampled_from(["linenum", "quantity"]), st.booleans()
    ),
    min_size=1,
    max_size=2,
    unique_by=lambda spec: spec[0],
)


@given(order_specs, st.one_of(st.none(), st.integers(0, 200)))
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_order_and_limit_match_python_sort(tpch_db, specs, limit):
    query = SelectQuery(
        projection="lineitem",
        select=("linenum", "quantity"),
        predicates=(Predicate("quantity", "<", 20),),
        order_by=tuple(specs),
        limit=limit,
    )
    result = tpch_db.query(query, cold=True)

    lineitem = tpch_db.projection("lineitem")
    lin = full_column(lineitem, "linenum")
    qty = full_column(lineitem, "quantity")
    mask = qty < 20
    rows = list(zip(lin[mask].tolist(), qty[mask].tolist()))
    col_index = {"linenum": 0, "quantity": 1}
    for col, descending in reversed(specs):
        rows.sort(key=lambda r: r[col_index[col]], reverse=descending)
    if limit is not None:
        rows = rows[:limit]

    got = [tuple(r) for r in result.tuples.data.tolist()]
    # Sort keys must match element-wise; ties may order differently, so
    # compare the key projection exactly and the full multiset loosely.
    got_keys = [
        tuple(r[col_index[c]] for c, _d in specs) for r in got
    ]
    want_keys = [
        tuple(r[col_index[c]] for c, _d in specs) for r in rows
    ]
    assert got_keys == want_keys
    assert sorted(got) == sorted(rows)


@given(st.integers(0, 500))
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_limit_is_prefix_of_unlimited(tpch_db, limit):
    base = SelectQuery(
        projection="lineitem",
        select=("quantity",),
        order_by=(("quantity", True),),
    )
    unlimited = tpch_db.query(base, cold=True)
    limited = tpch_db.query(
        SelectQuery(
            projection="lineitem",
            select=("quantity",),
            order_by=(("quantity", True),),
            limit=limit,
        ),
        cold=True,
    )
    assert np.array_equal(
        limited.tuples.data, unlimited.tuples.data[:limit]
    )
