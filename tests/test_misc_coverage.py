"""Targeted tests for small code paths not covered elsewhere."""

import numpy as np
import pytest

from repro import Database, Predicate, SelectQuery
from repro.dtypes import INT32, ColumnSchema
from repro.errors import CatalogError
from repro.model import PAPER_CONSTANTS
from repro.model.cost import output_cost
from repro.operators.and_op import and_groups
from repro.operators.base import position_groups
from repro.positions import BitmapPositions, ListedPositions, RangePositions
from repro.planner.projection_choice import resolve_projection


class TestPositionGroupAccounting:
    def test_range_is_one_group(self):
        assert position_groups(RangePositions(0, 1000)) == 1
        assert position_groups(RangePositions.empty()) == 0

    def test_listed_is_per_position(self):
        assert position_groups(ListedPositions(np.array([1, 5, 9]))) == 3

    def test_bitmap_jumps_per_position_but_ands_per_word(self):
        mask = np.ones(640, dtype=bool)
        bm = BitmapPositions.from_mask(0, mask)
        assert position_groups(bm) == 640  # DS3 jumps
        assert and_groups(bm) == 10  # AND: 640 bits / 64-bit words

    def test_and_groups_range(self):
        assert and_groups(RangePositions(5, 500)) == 1


class TestOutputCost:
    def test_scales_with_tuples(self):
        assert output_cost(0, PAPER_CONSTANTS).cpu_us == 0
        assert output_cost(2000, PAPER_CONSTANTS).cpu_us == pytest.approx(
            2000 * PAPER_CONSTANTS.tictup
        )


class TestProjectionChoiceFallback:
    @pytest.fixture()
    def db(self, tmp_path):
        database = Database(tmp_path / "db")
        rng = np.random.default_rng(5)
        base = {
            "a": np.sort(rng.integers(0, 50, 20_000)).astype(np.int32),
            "b": rng.integers(0, 9, 20_000).astype(np.int32),
        }
        schemas = {
            "a": ColumnSchema("a", INT32),
            "b": ColumnSchema("b", INT32),
        }
        database.catalog.create_projection(
            "wide",
            base,
            schemas=schemas,
            sort_keys=["a"],
            encodings={"a": ["rle"], "b": ["uncompressed"]},
            presorted=True,
            anchor="tbl",
        )
        database.catalog.create_projection(
            "narrow",
            {"a": base["a"]},
            schemas={"a": schemas["a"]},
            sort_keys=["a"],
            encodings={"a": ["rle"]},
            presorted=True,
            anchor="tbl",
        )
        return database

    def test_only_covering_candidate_wins(self, db):
        query = SelectQuery(
            projection="tbl",
            select=("a", "b"),
            predicates=(Predicate("b", "=", 3),),
        )
        chosen = resolve_projection(db.catalog, query)
        assert chosen.name == "wide"  # narrow lacks column b

    def test_encoding_override_falls_back(self, db):
        # Neither candidate stores 'a' as bitvector: every prediction fails,
        # so the first covering candidate is returned rather than crashing.
        query = SelectQuery(
            projection="tbl",
            select=("a",),
            predicates=(Predicate("a", "<", 10),),
            encodings=(("a", "bitvector"),),
        )
        chosen = resolve_projection(db.catalog, query)
        assert chosen.anchor == "tbl"
        # Executing it still surfaces a clean catalog error.
        with pytest.raises(CatalogError):
            db.query(query, strategy="lm-parallel")

    def test_queries_route_per_predicate(self, db):
        r = db.sql("SELECT a FROM tbl WHERE a < 5")
        assert r.n_rows > 0


class TestStatsExtras:
    def test_index_lookup_counts_accumulate(self, tpch_db):
        query = SelectQuery(
            projection="lineitem",
            select=("returnflag", "quantity"),
            predicates=(Predicate("returnflag", "=", 0),),
        )
        r = tpch_db.query(query, strategy="lm-parallel", cold=True)
        assert r.stats.extra["index_lookups"] == 1
        # The predicate column was never scanned (index-derived positions);
        # values_scanned counts predicate application only.
        assert r.stats.values_scanned == 0
        assert r.stats.tuples_output == r.n_rows > 0

    def test_str_of_stats_readable(self, tpch_db):
        r = tpch_db.sql("SELECT linenum FROM lineitem WHERE linenum < 2")
        text = str(r.stats)
        assert "tuples_output" in text


class TestSmallPublicSurfaces:
    def test_scanresult_as_multicolumn(self, tpch_db):
        from repro.operators import DS1Scan, ExecutionContext
        from repro.metrics import QueryStats

        lineitem = tpch_db.projection("lineitem")
        cf = lineitem.column("shipdate").file("rle")
        ctx = ExecutionContext(pool=tpch_db.pool, stats=QueryStats())
        scan = DS1Scan(ctx, cf, Predicate("shipdate", "<", 8700)).execute()
        mc = scan.as_multicolumn(lineitem.n_rows)
        assert mc.stop == lineitem.n_rows
        assert mc.has_column("shipdate")
        assert mc.valid_count() == scan.positions.count()

    def test_delta_store_tables(self, tmp_path):
        from datetime import date

        from repro import load_tpch

        db = Database(tmp_path / "db")
        load_tpch(db.catalog, scale=0.001, seed=1)
        assert db.delta.tables() == []
        db.insert("orders", [{"shipdate": date(1999, 1, 1), "custkey": 1}])
        assert db.delta.tables() == ["orders"]
        db.merge("orders")
        assert db.delta.tables() == []
