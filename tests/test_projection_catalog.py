"""Unit tests for projections and the catalog."""

import numpy as np
import pytest

from repro.dtypes import INT32, UINT8, ColumnSchema
from repro.errors import CatalogError
from repro.storage import Catalog, Projection

from .reference import full_column


@pytest.fixture
def two_columns():
    rng = np.random.default_rng(21)
    n = 30_000
    return {
        "flag": rng.integers(0, 3, size=n).astype(np.uint8),
        "day": rng.integers(0, 365, size=n).astype(np.int32),
    }


SCHEMAS = {
    "flag": ColumnSchema("flag", UINT8, dictionary=("A", "N", "R")),
    "day": ColumnSchema("day", INT32),
}


class TestProjection:
    def test_sorting_applied(self, tmp_path, two_columns):
        proj = Projection.create(
            tmp_path / "p",
            "p",
            two_columns,
            SCHEMAS,
            sort_keys=["flag", "day"],
            encodings={"flag": ["rle"], "day": ["rle", "uncompressed"]},
        )
        flag = full_column(proj, "flag")
        day = full_column(proj, "day")
        # Lexicographic (flag, day) order.
        keys = flag.astype(np.int64) * 1000 + day
        assert np.all(np.diff(keys) >= 0)

    def test_sorted_data_is_permutation(self, tmp_path, two_columns):
        proj = Projection.create(
            tmp_path / "p",
            "p",
            two_columns,
            SCHEMAS,
            sort_keys=["flag"],
            encodings={"flag": ["rle"], "day": ["uncompressed"]},
        )
        assert np.array_equal(
            np.sort(full_column(proj, "day")), np.sort(two_columns["day"])
        )

    def test_open_roundtrip(self, tmp_path, two_columns):
        Projection.create(
            tmp_path / "p",
            "p",
            two_columns,
            SCHEMAS,
            sort_keys=["flag", "day"],
            encodings={"flag": ["rle"], "day": ["rle", "uncompressed"]},
        )
        proj = Projection.open(tmp_path / "p")
        assert proj.name == "p"
        assert proj.n_rows == 30_000
        assert proj.sort_keys == ["flag", "day"]
        assert proj.column("day").encodings == ["rle", "uncompressed"]
        assert proj.schema("flag").dictionary == ("A", "N", "R")

    def test_redundant_encodings_agree(self, tmp_path, two_columns):
        Projection.create(
            tmp_path / "p",
            "p",
            two_columns,
            SCHEMAS,
            sort_keys=["flag", "day"],
            encodings={"flag": ["rle"], "day": ["rle", "uncompressed"]},
        )
        proj = Projection.open(tmp_path / "p")
        assert np.array_equal(
            full_column(proj, "day", "rle"),
            full_column(proj, "day", "uncompressed"),
        )

    def test_encoding_preference_order(self, tmp_path, two_columns):
        proj = Projection.create(
            tmp_path / "p",
            "p",
            two_columns,
            SCHEMAS,
            sort_keys=[],
            encodings={"flag": ["uncompressed", "rle"], "day": ["uncompressed"]},
            presorted=True,
        )
        assert proj.column("flag").file().encoding.name == "rle"
        assert proj.column("day").file().encoding.name == "uncompressed"

    def test_missing_encoding_rejected(self, tmp_path, two_columns):
        proj = Projection.create(
            tmp_path / "p",
            "p",
            two_columns,
            SCHEMAS,
            sort_keys=[],
            encodings={"flag": ["rle"], "day": ["uncompressed"]},
            presorted=True,
        )
        with pytest.raises(CatalogError):
            proj.column("day").file("bitvector")

    def test_unknown_column_rejected(self, tmp_path, two_columns):
        proj = Projection.create(
            tmp_path / "p",
            "p",
            two_columns,
            SCHEMAS,
            sort_keys=[],
            encodings={},
            presorted=True,
        )
        with pytest.raises(CatalogError):
            proj.column("nope")

    def test_mismatched_lengths_rejected(self, tmp_path):
        with pytest.raises(CatalogError):
            Projection.create(
                tmp_path / "p",
                "p",
                {
                    "flag": np.zeros(5, dtype=np.uint8),
                    "day": np.zeros(6, dtype=np.int32),
                },
                SCHEMAS,
                sort_keys=[],
                encodings={},
            )


class TestCatalog:
    def test_create_and_get(self, tmp_path, two_columns):
        cat = Catalog(tmp_path)
        cat.create_projection(
            "p",
            two_columns,
            SCHEMAS,
            sort_keys=["flag"],
            encodings={"flag": ["rle"], "day": ["uncompressed"]},
        )
        assert "p" in cat
        assert cat.get("p").n_rows == 30_000

    def test_rediscovery_on_reopen(self, tmp_path, two_columns):
        cat = Catalog(tmp_path)
        cat.create_projection(
            "p",
            two_columns,
            SCHEMAS,
            sort_keys=["flag"],
            encodings={"flag": ["rle"], "day": ["uncompressed"]},
        )
        cat2 = Catalog(tmp_path)
        assert cat2.names() == ["p"]
        assert cat2.get("p").sort_keys == ["flag"]

    def test_duplicate_name_rejected(self, tmp_path, two_columns):
        cat = Catalog(tmp_path)
        cat.create_projection(
            "p", two_columns, SCHEMAS, sort_keys=[], encodings={}
        )
        with pytest.raises(CatalogError):
            cat.create_projection(
                "p", two_columns, SCHEMAS, sort_keys=[], encodings={}
            )

    def test_unknown_projection_rejected(self, tmp_path):
        with pytest.raises(CatalogError):
            Catalog(tmp_path).get("missing")
