"""Property-based tests: every codec round-trips and scans correctly."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtypes import INT32
from repro.predicates import Predicate
from repro.storage import encoding_by_name
from repro.storage.block import BlockDescriptor


def _blocks(codec, values):
    out = []
    for i, blk in enumerate(codec.encode(values, INT32.numpy_dtype)):
        out.append(
            (
                BlockDescriptor(
                    index=i,
                    offset=0,
                    nbytes=len(blk.payload),
                    start_pos=blk.start_pos,
                    n_values=blk.n_values,
                    min_value=blk.min_value,
                    max_value=blk.max_value,
                ),
                blk.payload,
            )
        )
    return out


value_arrays = st.lists(
    st.integers(-50, 50), min_size=1, max_size=500
).map(lambda xs: np.array(xs, dtype=np.int32))

codecs = st.sampled_from(
    ["uncompressed", "rle", "bitvector", "dictionary", "for"]
)

predicates = st.builds(
    Predicate,
    st.just("c"),
    st.sampled_from(["<", "<=", ">", ">=", "=", "!="]),
    st.integers(-55, 55),
)


@given(codecs, value_arrays)
@settings(max_examples=120, deadline=None)
def test_encode_decode_roundtrip(codec_name, values):
    codec = encoding_by_name(codec_name)
    decoded = np.concatenate(
        [codec.decode(p, d, INT32.numpy_dtype) for d, p in _blocks(codec, values)]
    )
    assert np.array_equal(decoded, values)


@given(codecs, value_arrays, predicates)
@settings(max_examples=120, deadline=None)
def test_scan_positions_matches_mask(codec_name, values, pred):
    codec = encoding_by_name(codec_name)
    expected = np.nonzero(pred.mask(values))[0]
    got = []
    for desc, payload in _blocks(codec, values):
        got.append(
            codec.scan_positions(payload, desc, INT32.numpy_dtype, pred).to_array()
        )
    got = np.concatenate(got) if got else np.empty(0, dtype=np.int64)
    assert np.array_equal(got, expected)


@given(codecs, value_arrays, st.data())
@settings(max_examples=120, deadline=None)
def test_gather_matches_indexing(codec_name, values, data):
    codec = encoding_by_name(codec_name)
    blocks = _blocks(codec, values)
    desc, payload = blocks[0]
    indices = data.draw(
        st.lists(
            st.integers(desc.start_pos, desc.end_pos - 1),
            min_size=1,
            max_size=30,
        ).map(sorted)
    )
    picks = np.array(indices, dtype=np.int64)
    got = codec.gather(payload, desc, INT32.numpy_dtype, picks)
    assert np.array_equal(got, values[picks])


@given(codecs, value_arrays)
@settings(max_examples=80, deadline=None)
def test_descriptor_minmax_bounds_content(codec_name, values):
    codec = encoding_by_name(codec_name)
    for desc, payload in _blocks(codec, values):
        chunk = values[desc.start_pos : desc.end_pos]
        assert desc.min_value == chunk.min()
        assert desc.max_value == chunk.max()
