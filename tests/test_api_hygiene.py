"""API hygiene: public surface documented, exports resolvable, no cycles."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.storage",
    "repro.buffer",
    "repro.positions",
    "repro.multicolumn",
    "repro.operators",
    "repro.planner",
    "repro.model",
    "repro.tpch",
    "repro.sql",
]


def walk_modules():
    seen = []
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        seen.append(pkg)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                seen.append(
                    importlib.import_module(f"{pkg_name}.{info.name}")
                )
    return {m.__name__: m for m in seen}.values()


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        undocumented = [
            m.__name__ for m in walk_modules() if not inspect.getdoc(m)
        ]
        assert undocumented == []

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in walk_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue  # re-export; documented at its home
                if not inspect.getdoc(obj):
                    undocumented.append(f"{module.__name__}.{name}")
        assert undocumented == []


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_no_private_leaks_in_all(self):
        assert not [n for n in repro.__all__ if n.startswith("_")]

    @pytest.mark.parametrize("pkg_name", PACKAGES)
    def test_subpackage_all_resolves(self, pkg_name):
        pkg = importlib.import_module(pkg_name)
        for name in getattr(pkg, "__all__", []):
            assert hasattr(pkg, name), f"{pkg_name}.{name}"


class TestVersion:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2
