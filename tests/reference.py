"""A naive row-store reference executor for integration checks.

Computes expected query answers with plain numpy over fully decoded columns,
independent of strategies, operators, position sets, or the buffer pool.
"""

from __future__ import annotations

import numpy as np

from repro.predicates import Predicate
from repro.storage.projection import Projection


def full_column(projection: Projection, name: str, encoding: str | None = None):
    """Decode an entire stored column to a value array (bypasses the pool)."""
    cf = projection.column(name).file(encoding)
    parts = [
        cf.encoding.decode(cf.read_payload(d.index), d, cf.dtype)
        for d in cf.descriptors
    ]
    if not parts:
        return np.empty(0, dtype=cf.dtype)
    return np.concatenate(parts)


def selection_mask(
    projection: Projection, predicates: list[Predicate]
) -> np.ndarray:
    mask = np.ones(projection.n_rows, dtype=bool)
    for pred in predicates:
        mask &= pred.mask(full_column(projection, pred.column))
    return mask


def reference_select(
    projection: Projection,
    select: list[str],
    predicates: list[Predicate],
) -> np.ndarray:
    """Expected (n, k) int64 result of a plain selection."""
    mask = selection_mask(projection, predicates)
    cols = [full_column(projection, c)[mask].astype(np.int64) for c in select]
    if not cols:
        return np.empty((0, 0), dtype=np.int64)
    return np.stack(cols, axis=1)


def reference_group_sum(
    projection: Projection,
    group: str,
    value: str,
    predicates: list[Predicate],
) -> np.ndarray:
    """Expected (groups, 2) result of SELECT group, SUM(value) ... GROUP BY."""
    mask = selection_mask(projection, predicates)
    g = full_column(projection, group)[mask]
    v = full_column(projection, value)[mask]
    uniques, inverse = np.unique(g, return_inverse=True)
    sums = np.bincount(inverse, weights=v).astype(np.int64)
    return np.stack([uniques.astype(np.int64), sums], axis=1)


def reference_fkpk_join(
    left: Projection,
    right: Projection,
    left_key: str,
    right_key: str,
    left_select: list[str],
    right_select: list[str],
    left_predicates: list[Predicate],
) -> np.ndarray:
    """Expected join result, rows in left-table order."""
    mask = selection_mask(left, left_predicates)
    keys = full_column(left, left_key)[mask]
    right_keys = full_column(right, right_key)
    order = np.argsort(right_keys, kind="stable")
    slots = order[np.searchsorted(right_keys[order], keys)]
    cols = [full_column(left, c)[mask].astype(np.int64) for c in left_select]
    cols += [
        full_column(right, c)[slots].astype(np.int64) for c in right_select
    ]
    return np.stack(cols, axis=1)


def canonical(rows: np.ndarray) -> np.ndarray:
    """Sort rows lexicographically for order-insensitive comparison."""
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size == 0:
        return rows
    return rows[np.lexsort(tuple(rows[:, i] for i in range(rows.shape[1] - 1, -1, -1)))]
