"""Tests for the left (outer) table input strategies of joins."""

import numpy as np
import pytest

from repro import JoinQuery, LeftTableStrategy, Predicate, RightTableStrategy

from .reference import full_column, reference_fkpk_join


def join_query(x, left_strategy):
    return JoinQuery(
        left="orders",
        right="customer",
        left_key="custkey",
        right_key="custkey",
        left_select=("shipdate",),
        right_select=("nationcode",),
        left_predicates=(Predicate("custkey", "<", x),),
        left_strategy=left_strategy,
    )


class TestLeftStrategies:
    @pytest.mark.parametrize("left", ["early", "late"])
    @pytest.mark.parametrize(
        "right", list(RightTableStrategy), ids=lambda s: s.value
    )
    def test_all_combinations_match_reference(self, tpch_db, left, right):
        orders = tpch_db.projection("orders")
        customer = tpch_db.projection("customer")
        keys = full_column(orders, "custkey")
        x = int(np.quantile(keys, 0.4))
        expected = reference_fkpk_join(
            orders,
            customer,
            "custkey",
            "custkey",
            ["shipdate"],
            ["nationcode"],
            [Predicate("custkey", "<", x)],
        )
        result = tpch_db.query(join_query(x, left), strategy=right, cold=True)
        assert np.array_equal(result.tuples.data, expected)

    def test_early_left_constructs_all_tuples(self, tpch_db):
        orders = tpch_db.projection("orders")
        keys = full_column(orders, "custkey")
        x = int(np.quantile(keys, 0.1))
        early = tpch_db.query(
            join_query(x, "early"),
            strategy=RightTableStrategy.MATERIALIZED,
            cold=True,
        )
        late = tpch_db.query(
            join_query(x, "late"),
            strategy=RightTableStrategy.MATERIALIZED,
            cold=True,
        )
        # EM outer input pays tuple construction for every surviving left
        # row before the join; LM constructs only at the final merge.
        assert early.stats.tuples_constructed > late.stats.tuples_constructed

    def test_early_left_avoids_left_refetch(self, tpch_db):
        orders = tpch_db.projection("orders")
        keys = full_column(orders, "custkey")
        x = int(np.quantile(keys, 0.9))
        early = tpch_db.query(
            join_query(x, "early"),
            strategy=RightTableStrategy.MATERIALIZED,
            cold=True,
        )
        late = tpch_db.query(
            join_query(x, "late"),
            strategy=RightTableStrategy.MATERIALIZED,
            cold=True,
        )
        # Without the post-join fetch, EM reads the left payload column once
        # in the SPC leaf; LM touches it again after the join via positions.
        assert (
            early.stats.block_reads + early.stats.buffer_hits
            <= late.stats.block_reads + late.stats.buffer_hits
        )

    def test_unknown_left_strategy_rejected(self, tpch_db):
        with pytest.raises(ValueError):
            tpch_db.query(join_query(10, "sideways"), strategy="materialized")


class TestLeftStrategyEnum:
    def test_from_name(self):
        assert LeftTableStrategy.from_name("EARLY") is LeftTableStrategy.EARLY
        assert LeftTableStrategy.from_name(" late ") is LeftTableStrategy.LATE

    def test_from_name_invalid(self):
        with pytest.raises(ValueError):
            LeftTableStrategy.from_name("middle")
