"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def cli_db(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli_db")
    assert main(["load-tpch", str(root), "--scale", "0.001"]) == 0
    return root


class TestLoadAndInfo:
    def test_info_lists_projections(self, cli_db, capsys):
        assert main(["info", str(cli_db)]) == 0
        out = capsys.readouterr().out
        assert "lineitem" in out
        assert "bitvector, rle, uncompressed" in out
        assert "[indexed]" in out

    def test_info_empty_db(self, tmp_path, capsys):
        assert main(["info", str(tmp_path / "empty")]) == 0
        assert "no projections" in capsys.readouterr().out


class TestQuery:
    def test_select(self, cli_db, capsys):
        code = main(
            [
                "query",
                str(cli_db),
                "SELECT shipdate, linenum FROM lineitem "
                "WHERE shipdate < '1994-01-01' AND linenum < 7",
                "--strategy",
                "lm-parallel",
                "--limit",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shipdate | linenum" in out
        assert "strategy=lm-parallel" in out
        assert "more rows" in out

    def test_raw_vs_decoded(self, cli_db, capsys):
        main(
            [
                "query",
                str(cli_db),
                "SELECT returnflag FROM lineitem WHERE returnflag = 'A'",
                "--limit",
                "1",
            ]
        )
        decoded = capsys.readouterr().out
        assert "\nA\n" in decoded
        main(
            [
                "query",
                str(cli_db),
                "SELECT returnflag FROM lineitem WHERE returnflag = 'A'",
                "--limit",
                "1",
                "--raw",
            ]
        )
        raw = capsys.readouterr().out
        assert "\n0\n" in raw

    def test_encoding_override(self, cli_db, capsys):
        code = main(
            [
                "query",
                str(cli_db),
                "SELECT linenum FROM lineitem WHERE linenum < 3",
                "--encoding",
                "linenum=bitvector",
                "--cold",
            ]
        )
        assert code == 0

    def test_bad_encoding_syntax(self, cli_db):
        with pytest.raises(SystemExit):
            main(
                [
                    "query",
                    str(cli_db),
                    "SELECT linenum FROM lineitem",
                    "--encoding",
                    "oops",
                ]
            )

    def test_sql_error_returns_nonzero(self, cli_db, capsys):
        code = main(["query", str(cli_db), "SELECT nope FROM lineitem"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestExplain:
    def test_lists_all_strategies(self, cli_db, capsys):
        code = main(
            [
                "explain",
                str(cli_db),
                "SELECT shipdate, linenum FROM lineitem "
                "WHERE shipdate < '1994-01-01' AND linenum < 7",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "<- chosen" in out
        for name in ("em-pipelined", "em-parallel", "lm-pipelined", "lm-parallel"):
            assert name in out

    def test_join_explain_lists_inner_strategies(self, cli_db, capsys):
        code = main(
            [
                "explain",
                str(cli_db),
                "SELECT o.shipdate, c.nationcode FROM orders o, customer c "
                "WHERE o.custkey = c.custkey AND o.custkey < 50",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for name in ("materialized", "multi-column", "single-column"):
            assert name in out
        assert "<- chosen" in out


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
