"""Shared fixtures: a small TPC-H database and synthetic projections."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, load_tpch
from repro.dtypes import INT32, INT64, ColumnSchema

TPCH_SCALE = 0.002  # 12,000 lineitem rows; fast but multi-block.


@pytest.fixture(scope="session")
def tpch_db(tmp_path_factory) -> Database:
    """A session-wide database with the paper's three projections loaded."""
    root = tmp_path_factory.mktemp("tpch_db")
    db = Database(root)
    load_tpch(db.catalog, scale=TPCH_SCALE, seed=7)
    return db


@pytest.fixture()
def fresh_db(tmp_path) -> Database:
    """An empty database in a per-test directory."""
    return Database(tmp_path / "db")


@pytest.fixture()
def simple_projection(fresh_db):
    """A tiny two-column sorted projection for operator-level tests."""
    rng = np.random.default_rng(123)
    n = 5000
    a = np.sort(rng.integers(0, 100, size=n)).astype(np.int32)
    b = rng.integers(0, 10, size=n).astype(np.int32)
    proj = fresh_db.catalog.create_projection(
        "simple",
        {"a": a, "b": b},
        schemas={
            "a": ColumnSchema("a", INT32),
            "b": ColumnSchema("b", INT32),
        },
        sort_keys=["a"],
        encodings={"a": ["rle", "uncompressed"], "b": ["uncompressed", "bitvector"]},
        presorted=True,
    )
    return fresh_db, proj, a, b
