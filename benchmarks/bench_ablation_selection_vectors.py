"""Ablation: operating on compressed data vs MonetDB-style eager decompression.

The paper's related work (Section 5) contrasts its multi-columns with
MonetDB/X100's selection vectors: "data is decompressed in the cache,
precluding the potential performance benefits of operating directly on
compressed data both on position descriptors and on column values". This
ablation runs the RLE selection and aggregation queries with eager
decompression on and off: with it on, scans and extraction are charged per
value instead of per run and the run-aware aggregation path is disabled —
the LM advantage of Figures 11(b)/12(b) shrinks accordingly.
"""

from __future__ import annotations

import pytest

from repro import Strategy

from .harness import (
    SWEEP,
    aggregation_query,
    format_table,
    record,
    run_point,
    selection_query,
)


@pytest.mark.parametrize("eager", [False, True], ids=["compressed", "eager"])
@pytest.mark.parametrize(
    "strategy",
    [Strategy.LM_PARALLEL, Strategy.EM_PARALLEL],
    ids=lambda s: s.value,
)
def test_selection_vectors_point(benchmark, bench_db, strategy, eager):
    bench_db.decompress_eagerly = eager
    try:
        point = benchmark.pedantic(
            run_point,
            args=(bench_db, selection_query(0.5, "rle"), strategy),
            rounds=3,
            iterations=1,
            warmup_rounds=1,
        )
    finally:
        bench_db.decompress_eagerly = False
    benchmark.extra_info["simulated_ms"] = round(point["sim_ms"], 2)


def test_selection_vectors_report(benchmark, bench_db):
    def sweep():
        out = {}
        for eager, label in ((False, "on-compressed"), (True, "eager-decomp")):
            bench_db.decompress_eagerly = eager
            for kind, make in (
                ("select", selection_query),
                ("agg", aggregation_query),
            ):
                series = []
                for sel in SWEEP:
                    point = run_point(
                        bench_db, make(sel, "rle"), Strategy.LM_PARALLEL
                    )
                    series.append((sel, point["wall_ms"], point["sim_ms"]))
                out[f"{kind}/{label}"] = series
        bench_db.decompress_eagerly = False
        return out

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(
        "ablation_selection_vectors",
        format_table(
            "Ablation: LM-parallel over RLE, operating on compressed data vs"
            " MonetDB-style eager decompression (model-replay ms)",
            table,
        ),
    )
    # Eager decompression must never win, and the gap must be material at
    # the dense end (whole runs vs per-value work).
    for kind in ("select", "agg"):
        for compressed, eager in zip(
            table[f"{kind}/on-compressed"], table[f"{kind}/eager-decomp"]
        ):
            assert compressed[2] <= eager[2] * 1.02
        assert (
            table[f"{kind}/eager-decomp"][-1][2]
            > 1.05 * table[f"{kind}/on-compressed"][-1][2]
        )
