"""Compressed execution: encoded-domain kernels vs the decoded fast path.

Runs scan- and aggregation-dominated cells over the same stored data (loaded
with dictionary and FOR linenum encodings in addition to the defaults)
through two engine configurations:

* ``compressed`` — ``compressed_execution=True`` (the default): DS1
  predicates evaluate over RLE run tables / dictionary code tables / FOR
  offsets, position sets stay run-length through AND, and the LM
  aggregation tail reduces over runs and code histograms;
* ``decoded``    — ``compressed_execution=False``: every block takes the
  decoded fast path (the pre-kernel behaviour), decoded cache still on.

Both configurations warm both cache levels first, then take best-of-N warm
wall-clock per cell. The contracts checked:

* **identity** — every cell returns the identical sorted row set in both
  configurations, the decoded side never counts a kernel scan, and the
  compressed side counts at least one per cell;
* **speedup** — the best headline cell (RLE selection, RLE run aggregation,
  dictionary group-by) clears >= 2x warm wall-clock; these are the
  run-structure-heavy workloads the kernels exist for. The dictionary / FOR
  low-selectivity selections are recorded but not gated: their kernels
  replace one vectorised compare with another (narrower) one, so they track
  parity rather than a multiple.

A machine-readable summary lands in
``benchmarks/results/BENCH_compressed_exec.json``.
"""

from __future__ import annotations

import time

import pytest

from repro import AggSpec, Database, Predicate, SelectQuery, load_tpch

from .harness import (
    BENCH_SCALE,
    aggregation_query,
    record_json,
    selection_query,
    shipdate_constant,
)

#: Low selectivity keeps result stitching cheap so the scan side — the part
#: the kernels accelerate — dominates warm runtime.
SELECTIVITY = 0.02

WARM_REPEATS = 7

HEADLINE_SPEEDUP = 2.0

#: Stored linenum encodings: the defaults plus dictionary and FOR so every
#: kernel has a physical column to run on.
LINENUM_ENCODINGS = ("uncompressed", "rle", "bitvector", "dictionary", "for")


def _dict_group_query() -> SelectQuery:
    """Group by a dictionary column: the code-histogram aggregation path."""
    spec = AggSpec("sum", "quantity")
    return SelectQuery(
        projection="lineitem",
        select=("linenum", spec.output_name),
        predicates=(Predicate("shipdate", "<", shipdate_constant(0.5)),),
        group_by="linenum",
        aggregates=(spec,),
        encodings=(("linenum", "dictionary"),),
    )


CELLS = {
    # name -> (query, strategy, headline)
    "rle-select": (selection_query(SELECTIVITY, "rle"), "lm-parallel", True),
    "rle-agg": (aggregation_query(SELECTIVITY, "rle"), "lm-parallel", True),
    "dict-group": (_dict_group_query(), "lm-parallel", True),
    "dict-select": (
        selection_query(SELECTIVITY, "dictionary"),
        "lm-parallel",
        False,
    ),
    "for-select": (selection_query(SELECTIVITY, "for"), "lm-parallel", False),
}


def _measure_cell(db: Database, query, strategy) -> dict:
    db.clear_cache()
    db.query(query, strategy=strategy)  # warm both cache levels
    warm_ms = float("inf")
    for _ in range(WARM_REPEATS):
        t0 = time.perf_counter()
        result = db.query(query, strategy=strategy)
        warm_ms = min(warm_ms, (time.perf_counter() - t0) * 1000.0)
    return {
        "warm_wall_ms": warm_ms,
        "sim_ms": result.simulated_ms,
        "rows": sorted(result.rows()),
        "compressed_scans": result.stats.compressed_scans,
        "morphs": result.stats.morphs,
    }


@pytest.fixture(scope="module")
def compressed_table(tmp_path_factory):
    """The full configs x cells table (measured once, checked by tests)."""
    root = tmp_path_factory.mktemp("bench_compressed") / "db"
    table: dict[str, dict[str, dict]] = {}
    with Database(root) as compressed:
        load_tpch(
            compressed.catalog,
            scale=BENCH_SCALE,
            seed=42,
            linenum_encodings=LINENUM_ENCODINGS,
        )
        table["compressed"] = {
            name: _measure_cell(compressed, query, strategy)
            for name, (query, strategy, _headline) in CELLS.items()
        }
    with Database(root, compressed_execution=False) as decoded:
        table["decoded"] = {
            name: _measure_cell(decoded, query, strategy)
            for name, (query, strategy, _headline) in CELLS.items()
        }
    return table


def test_compressed_identity(compressed_table):
    """Same rows in both configurations; kernels fire only when enabled."""
    for name in CELLS:
        on = compressed_table["compressed"][name]
        off = compressed_table["decoded"][name]
        assert on["rows"] == off["rows"], name
        assert on["compressed_scans"] > 0, name
        assert off["compressed_scans"] == 0, name


def test_compressed_speedup(compressed_table):
    """Best headline cell clears the >= 2x warm-query acceptance bar."""
    speedups = {}
    for name, (_query, _strategy, headline) in CELLS.items():
        on = compressed_table["compressed"][name]["warm_wall_ms"]
        off = compressed_table["decoded"][name]["warm_wall_ms"]
        speedups[name] = (off / on, headline)
    payload = {
        "scale": BENCH_SCALE,
        "selectivity": SELECTIVITY,
        "warm_repeats": WARM_REPEATS,
        "headline_speedups": {
            name: round(s, 2) for name, (s, headline) in speedups.items()
            if headline
        },
        "speedups": {
            name: round(s, 2) for name, (s, _headline) in speedups.items()
        },
        "cells": {
            config: {
                name: {
                    "warm_wall_ms": round(cell["warm_wall_ms"], 3),
                    "sim_ms": round(cell["sim_ms"], 3),
                    "rows": len(cell["rows"]),
                    "compressed_scans": cell["compressed_scans"],
                    "morphs": cell["morphs"],
                }
                for name, cell in cells.items()
            }
            for config, cells in compressed_table.items()
        },
    }
    record_json("BENCH_compressed_exec", payload)
    best = max(s for s, headline in speedups.values() if headline)
    assert best >= HEADLINE_SPEEDUP, speedups
