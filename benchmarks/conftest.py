"""Benchmark fixtures: one shared database per session."""

from __future__ import annotations

import pytest

from .harness import build_database


@pytest.fixture(scope="session")
def bench_db(tmp_path_factory):
    return build_database(tmp_path_factory.mktemp("bench_db"))
