"""Ablation: index-derived positions (paper Section 2.1.1).

"If there is a clustered index over a column and a predicate on a value
range, the index can be accessed to find the start and end positions that
match the value range ... the original column values never have to be
accessed." This ablation runs an LM-parallel query whose predicate hits the
projection's primary sort key (RETURNFLAG) with the index fast path on and
off.
"""

from __future__ import annotations

import pytest

from repro import Predicate, SelectQuery, Strategy

from .harness import format_table, record, run_point


def returnflag_query(code: int) -> SelectQuery:
    return SelectQuery(
        projection="lineitem",
        select=("returnflag", "quantity"),
        predicates=(Predicate("returnflag", "=", code),),
    )


@pytest.mark.parametrize("use_indexes", [True, False], ids=["index", "scan"])
def test_index_fast_path(benchmark, bench_db, use_indexes):
    bench_db.use_indexes = use_indexes
    try:
        point = benchmark.pedantic(
            run_point,
            args=(bench_db, returnflag_query(1), Strategy.LM_PARALLEL),
            rounds=3,
            iterations=1,
            warmup_rounds=1,
        )
    finally:
        bench_db.use_indexes = True
    benchmark.extra_info["simulated_ms"] = round(point["sim_ms"], 2)
    benchmark.extra_info["values_scanned"] = point["stats"].values_scanned


def test_index_report(benchmark, bench_db):
    def sweep():
        out = {}
        for flag, name in ((True, "index-derived"), (False, "scanned")):
            bench_db.use_indexes = flag
            series = []
            for code in (0, 1, 2):
                point = run_point(
                    bench_db, returnflag_query(code), Strategy.LM_PARALLEL
                )
                series.append((code, point["wall_ms"], point["sim_ms"]))
            out[name] = series
        bench_db.use_indexes = True
        return out

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(
        "ablation_index",
        format_table(
            "Ablation: positions from clustered index vs predicate scan "
            "(RETURNFLAG = code; model-replay ms)",
            table,
        ),
    )
    # Index-derived positions never lose. The time margin is small here
    # because the sort-key column is RLE (3 runs — scanning it is nearly
    # free); the structural claim is that the predicate column is never
    # read at all, which the point benchmarks assert via values_scanned.
    for indexed, scanned in zip(table["index-derived"], table["scanned"]):
        assert indexed[2] <= scanned[2]

    bench_db.use_indexes = True
    with_index = run_point(bench_db, returnflag_query(1), Strategy.LM_PARALLEL)
    bench_db.use_indexes = False
    with_scan = run_point(bench_db, returnflag_query(1), Strategy.LM_PARALLEL)
    bench_db.use_indexes = True
    assert with_index["stats"].extra.get("index_lookups") == 1
    # "The original column values never have to be accessed."
    assert with_index["stats"].values_scanned < with_scan["stats"].values_scanned
