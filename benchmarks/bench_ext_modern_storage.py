"""Extension experiment: do the paper's conclusions survive modern storage?

The paper's disk constants (SEEK 2.5 ms, READ 1 ms per 64 KB) describe a
2006 spinning disk. This experiment re-runs the Figure 11(a) and 11(b)
endpoints under SSD profiles: seeks collapse by ~40-150x, so the I/O side of
the trade-off (block skipping, re-access) fades and the CPU side (tuples
constructed, values touched, runs processed) decides. Expected outcome: the
paper's *qualitative* conclusions persist — LM still wins on compressed data
and at low selectivity, EM-parallel still wins high-selectivity uncompressed
selection — because they are CPU conclusions; only the absolute I/O floor
moves.
"""

from __future__ import annotations

import pytest

from repro import Database, Strategy
from repro.buffer import DiskModel
from repro.model import PAPER_CONSTANTS

from .harness import BENCH_SCALE, format_table, record, run_point, selection_query

PROFILES = {
    "hdd-2006": DiskModel.hdd_2006,
    "sata-ssd": DiskModel.sata_ssd,
    "nvme-ssd": DiskModel.nvme_ssd,
}


@pytest.fixture(scope="module")
def profile_dbs(tmp_path_factory, bench_db):
    """The bench catalog opened under each disk profile."""
    dbs = {}
    for name, factory in PROFILES.items():
        disk = factory()
        dbs[name] = Database(
            bench_db.catalog.root,
            disk=disk,
            constants=PAPER_CONSTANTS.with_overrides(
                seek=disk.seek_us, read=disk.read_us
            ),
        )
    return dbs


@pytest.mark.parametrize("profile", list(PROFILES))
@pytest.mark.parametrize(
    "strategy",
    [Strategy.EM_PARALLEL, Strategy.LM_PIPELINED],
    ids=lambda s: s.value,
)
def test_modern_storage_point(benchmark, profile_dbs, profile, strategy):
    point = benchmark.pedantic(
        run_point,
        args=(profile_dbs[profile], selection_query(0.5, "rle"), strategy),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["simulated_ms"] = round(point["sim_ms"], 2)


def test_modern_storage_report(benchmark, profile_dbs):
    def sweep():
        out = {}
        for profile, db in profile_dbs.items():
            for encoding, sel, strategies in (
                ("uncompressed", 0.98,
                 (Strategy.EM_PARALLEL, Strategy.LM_PARALLEL)),
                ("uncompressed", 0.02,
                 (Strategy.EM_PARALLEL, Strategy.LM_PIPELINED)),
                ("rle", 0.98,
                 (Strategy.EM_PARALLEL, Strategy.LM_PARALLEL)),
            ):
                for strategy in strategies:
                    point = run_point(
                        db, selection_query(sel, encoding), strategy
                    )
                    key = f"{encoding}@{sel}/{strategy.value}"
                    out.setdefault(key, []).append(
                        (hash(profile) % 100, point["wall_ms"], point["sim_ms"])
                    )
        return out

    raw = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Re-key rows by profile for the printed table.
    profiles = list(profile_dbs)
    lines = [
        "Extension: paper conclusions under modern storage (model-replay ms)",
        f"{'case':>34} " + " ".join(f"{p:>10}" for p in profiles),
    ]
    for key, rows in raw.items():
        cells = " ".join(f"{sim:>10.1f}" for _p, _w, sim in rows)
        lines.append(f"{key:>34} {cells}")
    record("ext_modern_storage", "\n".join(lines))

    def sim(case: str, profile: str) -> float:
        return raw[case][profiles.index(profile)][2]

    for profile in profiles:
        # CPU conclusions persist on every medium:
        # (1) high-selectivity uncompressed selection -> EM-parallel wins;
        assert sim("uncompressed@0.98/em-parallel", profile) < sim(
            "uncompressed@0.98/lm-parallel", profile
        )
        # (2) low selectivity -> LM-pipelined wins;
        assert sim("uncompressed@0.02/lm-pipelined", profile) < sim(
            "uncompressed@0.02/em-parallel", profile
        )
        # (3) RLE data -> LM wins.
        assert sim("rle@0.98/lm-parallel", profile) < sim(
            "rle@0.98/em-parallel", profile
        )
    # And the I/O floor collapses across profiles.
    assert sim("uncompressed@0.02/lm-pipelined", "nvme-ssd") < 0.3 * sim(
        "uncompressed@0.02/lm-pipelined", "hdd-2006"
    )
