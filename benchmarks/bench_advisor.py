"""Physical design advisor: applied advice must actually pay off.

A Zipfian-skewed workload — dominated by selective ``quantity`` range
predicates, a column *outside* lineitem's ``(returnflag, shipdate,
linenum)`` sort prefix, so the shipped design scans most of the table for
them — is captured into the query log. The advisor then (a) recalibrates
the Table-2 model constants from the captured trace and (b) recommends and
applies a design (``advise`` + ``apply_plan``), and the same workload is
re-measured **cold** with ``strategy="auto"`` on the new design.

Acceptance bars:

* the applied advice improves the frequency-weighted cold simulated time
  by at least :data:`MIN_IMPROVEMENT` (1.5x);
* the recalibrated constants' trace MAE is no worse than the shipped
  defaults' (``recalibrate_from_log`` guarantees this by construction —
  the fit is only adopted when it wins; the bench asserts the guarantee
  held);
* results are bit-identical pre/post apply (per-query row counts match;
  the full hash-level proof is the advisor differential axis).

The artifact ``benchmarks/results/BENCH_advisor.json`` records the
workload mix, the plan, both measurement tables and the calibration
report.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    Database,
    MetricsRegistry,
    Predicate,
    SelectQuery,
    advise,
    apply_plan,
    load_tpch,
    read_query_log,
    recalibrate_from_log,
)

from .harness import BENCH_SCALE, record_json

#: Acceptance bar: weighted cold simulated time must improve this much.
MIN_IMPROVEMENT = 1.5

#: Total captured queries (spread over the templates Zipf-style).
N_CAPTURE = 64

#: The workload's templates, most-frequent first; Zipf weights 1/rank.
#: The head of the distribution predicates on ``quantity`` — selective
#: ranges over a column no shipped projection is sorted on.
TEMPLATES = (
    SelectQuery(
        projection="lineitem",
        select=("quantity", "linenum"),
        predicates=(Predicate("quantity", "<=", 3),),
    ),
    SelectQuery(
        projection="lineitem",
        select=("quantity", "shipdate"),
        predicates=(Predicate("quantity", ">=", 48),),
    ),
    SelectQuery(
        projection="lineitem",
        select=("shipdate", "quantity"),
        predicates=(
            Predicate("quantity", "<", 6),
            Predicate("shipdate", "<", 8500),
        ),
    ),
    SelectQuery(
        projection="lineitem",
        select=("returnflag", "linenum"),
        predicates=(Predicate("linenum", "<", 3),),
    ),
)


def _zipf_schedule(seed: int = 20260807) -> list[int]:
    """N_CAPTURE template indices, drawn with probability 1/rank."""
    weights = [1.0 / (rank + 1) for rank in range(len(TEMPLATES))]
    rng = random.Random(seed)
    return rng.choices(range(len(TEMPLATES)), weights=weights, k=N_CAPTURE)


def _measure_weighted(db: Database, frequencies: dict[int, int]) -> dict:
    """Cold auto-strategy run of each template, weighted by frequency."""
    per_template = {}
    total = 0.0
    for index, freq in sorted(frequencies.items()):
        result = db.query(TEMPLATES[index], strategy="auto", cold=True)
        per_template[str(index)] = {
            "frequency": freq,
            "rows": result.n_rows,
            "strategy": result.strategy,
            "projection": result.projection,
            "sim_ms": round(result.simulated_ms, 3),
            "weighted_sim_ms": round(freq * result.simulated_ms, 3),
        }
        total += freq * result.simulated_ms
    return {"per_template": per_template, "weighted_sim_ms": round(total, 3)}


@pytest.fixture(scope="module")
def advisor_outcome(tmp_path_factory):
    root = tmp_path_factory.mktemp("bench_advisor")
    db = Database(root / "db", metrics=MetricsRegistry())
    load_tpch(db.catalog, scale=BENCH_SCALE, seed=42)

    schedule = _zipf_schedule()
    frequencies: dict[int, int] = {}
    for index in schedule:
        frequencies[index] = frequencies.get(index, 0) + 1
        db.query(TEMPLATES[index], strategy="auto")
    db.qlog.flush()
    records = read_query_log(db.qlog.directory)

    before = _measure_weighted(db, frequencies)
    calibration = recalibrate_from_log(db, records)
    plan = advise(db, records, constants=calibration.constants)
    applied = apply_plan(db, plan)
    after = _measure_weighted(db, frequencies)
    db.close()
    return frequencies, records, calibration, plan, applied, before, after


def test_applied_advice_improves_weighted_time(advisor_outcome):
    frequencies, records, calibration, plan, applied, before, after = (
        advisor_outcome
    )
    assert applied, plan.render()
    improvement = before["weighted_sim_ms"] / after["weighted_sim_ms"]
    for index in before["per_template"]:
        assert (
            before["per_template"][index]["rows"]
            == after["per_template"][index]["rows"]
        ), f"advice changed template {index}'s answer"
    record_json(
        "BENCH_advisor",
        {
            "scale": BENCH_SCALE,
            "n_capture": len(records),
            "frequencies": {str(k): v for k, v in sorted(frequencies.items())},
            "min_improvement": MIN_IMPROVEMENT,
            "weighted_improvement": round(improvement, 3),
            "before": before,
            "after": after,
            "plan": plan.to_dict(),
            "applied": applied,
            "calibration": calibration.to_dict(),
        },
    )
    assert improvement >= MIN_IMPROVEMENT, (
        f"advice bought {improvement:.2f}x, need {MIN_IMPROVEMENT}x\n"
        + plan.render()
    )


def test_recalibrated_constants_mae_no_worse_than_defaults(advisor_outcome):
    _f, _r, calibration, _p, _a, _b, _after = advisor_outcome
    effective_mae = (
        calibration.mae_fitted_ms
        if calibration.used_fitted
        else calibration.mae_baseline_ms
    )
    assert effective_mae <= calibration.mae_baseline_ms
    assert calibration.n_records > 0
