"""Ablation: position-list representations under AND (paper Section 3.3).

The paper's AND model has three cases — range inputs, bit-list inputs, and a
mix. This ablation measures intersecting equivalent position sets in each
representation, confirming the ordering the model implies: ranges are
(near-)constant cost, word-packed bitmaps intersect 64 positions per
operation, and listed positions pay per element.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.positions import (
    BitmapPositions,
    ListedPositions,
    RangePositions,
    intersect_all,
)

N = 2_000_000


def make_sets(kind: str):
    rng = np.random.default_rng(7)
    if kind == "range":
        return [RangePositions(0, N - 10), RangePositions(5, N)]
    mask_a = rng.random(N) < 0.9
    mask_b = rng.random(N) < 0.9
    if kind == "bitmap":
        return [
            BitmapPositions.from_mask(0, mask_a),
            BitmapPositions.from_mask(0, mask_b),
        ]
    if kind == "listed":
        return [
            ListedPositions(np.nonzero(mask_a)[0].astype(np.int64),
                            assume_sorted=True),
            ListedPositions(np.nonzero(mask_b)[0].astype(np.int64),
                            assume_sorted=True),
        ]
    return [
        RangePositions(1000, N),
        BitmapPositions.from_mask(0, mask_a),
    ]


@pytest.mark.parametrize("kind", ["range", "bitmap", "listed", "mixed"])
def test_and_representation(benchmark, kind):
    sets = make_sets(kind)
    result = benchmark(intersect_all, sets)
    benchmark.extra_info["result_count"] = result.count()


def test_range_and_is_constant_time(benchmark):
    """Range AND range must not scale with the covered width."""
    import time

    def time_width(width):
        sets = [RangePositions(0, width), RangePositions(width // 2, width)]
        start = time.perf_counter()
        for _ in range(200):
            intersect_all(sets)
        return time.perf_counter() - start

    narrow, wide = benchmark.pedantic(
        lambda: (time_width(1_000), time_width(100_000_000)),
        rounds=1,
        iterations=1,
    )
    assert wide < narrow * 5  # constant-ish, not 100,000x
