"""Figure 13: FK-PK join, three inner-table materialization strategies.

    SELECT Orders.shipdate, Customer.nationcode
    FROM Orders, Customer
    WHERE Orders.custkey = Customer.custkey AND Orders.custkey < X

Expected shape (paper Section 4.3): sending materialized tuples and sending a
multi-column to the join's right input perform similarly (an FK-PK join
materializes every inner match anyway), while sending just the join-predicate
column ("pure" late materialization) is much slower because the join's right
output positions come out unordered, forcing an expensive non-merge
positional fetch of the remaining inner columns.
"""

from __future__ import annotations

import pytest

from repro import JoinQuery, Predicate, RightTableStrategy

from .harness import (
    POINTS,
    format_table,
    geometric_mean_ratio,
    record,
    run_point,
    sweep_table,
)


def join_query(db, selectivity: float) -> JoinQuery:
    n_customer = db.projection("customer").n_rows
    x = max(int(selectivity * n_customer) + 1, 1)
    return JoinQuery(
        left="orders",
        right="customer",
        left_key="custkey",
        right_key="custkey",
        left_select=("shipdate",),
        right_select=("nationcode",),
        left_predicates=(Predicate("custkey", "<", x),),
    )


@pytest.mark.parametrize("selectivity", POINTS)
@pytest.mark.parametrize(
    "strategy", list(RightTableStrategy), ids=lambda s: s.value
)
def test_fig13_point(benchmark, bench_db, strategy, selectivity):
    query = join_query(bench_db, selectivity)
    point = benchmark.pedantic(
        run_point,
        args=(bench_db, query, strategy),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["simulated_ms"] = round(point["sim_ms"], 2)
    benchmark.extra_info["rows"] = point["rows"]


def test_fig13_series(benchmark, bench_db):
    table = benchmark.pedantic(
        sweep_table,
        args=(
            bench_db,
            lambda sel: join_query(bench_db, sel),
            list(RightTableStrategy),
        ),
        rounds=1,
        iterations=1,
    )
    record(
        "fig13_join_right_table",
        format_table(
            "Figure 13: join inner-table strategies (model-replay ms)",
            table,
        )
        + "\n"
        + format_table("  (wall-clock ms)", table, metric=1),
        table=table,
    )

    # Materialized ~ multi-column for an FK-PK join.
    ratio = geometric_mean_ratio(table, "multi-column", "materialized")
    assert 0.6 < ratio < 1.6
    # Pure late materialization pays the out-of-order positional join. The
    # fixed scan/pin costs shared by all three strategies compress the ratio
    # at the low-selectivity end (as in the paper's left edge), so the
    # geomean bound is mild while the high-selectivity gap must be real.
    assert geometric_mean_ratio(table, "single-column", "materialized") > 1.02
    last_single = table["single-column"][-1][2]
    last_mat = table["materialized"][-1][2]
    assert last_single > 1.15 * last_mat
