"""Fault-hook overhead: the disabled injector must be (nearly) free.

The fault-tolerance layer lives on the buffer pool's physical read path
(`BufferPool._read_with_retry`), which every block read now traverses. Its
contract is that a database opened *without* a fault injector pays almost
nothing for the machinery: the hook is one `is None` test and the retry loop
collapses to a single attempt.

This benchmark runs the paper's selection query (Section 4.1) over the same
stored data through two engine configurations:

* ``baseline`` — ``Database(root)``: no injector, the common case;
* ``hooked``   — ``Database(root, fault_injector=FaultInjector([], seed=0))``:
  the hook enabled with an *empty* schedule, so every physical read consults
  the injector and matches zero rules.

For each cell it records cold and best-of-N warm wall milliseconds and
asserts the **warm** totals stay within the 5% acceptance bar (warm scans
are the steady state the overhead guard protects; best-of-N summed across
cells keeps the check robust to scheduler noise). Cold ratios are recorded
in the JSON artifact (``benchmarks/results/BENCH_fault_overhead.json``) for
trend-watching but not asserted — they include real disk I/O noise.
"""

from __future__ import annotations

import time

import pytest

from repro import Database, FaultInjector

from .harness import record_json, selection_query

SELECTIVITY = 0.02

WARM_REPEATS = 9

CELLS = (
    ("rle", "em-parallel"),
    ("uncompressed", "em-pipelined"),
    ("uncompressed", "lm-parallel"),
)

#: Acceptance bar: the disabled/empty fault hook costs < 5% warm wall-clock.
OVERHEAD_LIMIT = 1.05


def _measure(db: Database, query, strategy) -> dict:
    db.clear_cache()
    t0 = time.perf_counter()
    cold_result = db.query(query, strategy=strategy)
    cold_ms = (time.perf_counter() - t0) * 1000.0
    warm_ms = float("inf")
    for _ in range(WARM_REPEATS):
        t0 = time.perf_counter()
        result = db.query(query, strategy=strategy)
        warm_ms = min(warm_ms, (time.perf_counter() - t0) * 1000.0)
    return {
        "cold_wall_ms": cold_ms,
        "warm_wall_ms": warm_ms,
        "rows": result.n_rows,
        "sim_ms": result.simulated_ms,
        "cold_sim_ms": cold_result.simulated_ms,
    }


@pytest.fixture(scope="module")
def overhead_table(bench_db):
    root = bench_db.catalog.root
    table: dict[str, dict[str, dict]] = {}
    configs = {
        "baseline": dict(),
        "hooked": dict(fault_injector=FaultInjector([], seed=0)),
    }
    for config_name, kwargs in configs.items():
        with Database(root, **kwargs) as db:
            cells = {}
            for encoding, strategy in CELLS:
                query = selection_query(SELECTIVITY, encoding)
                cells[f"{encoding}/{strategy}"] = _measure(db, query, strategy)
            table[config_name] = cells
    return table


def test_fault_layer_identity(overhead_table):
    """An empty fault schedule changes nothing but wall-clock noise."""
    for cell_name, base in overhead_table["baseline"].items():
        hooked = overhead_table["hooked"][cell_name]
        assert hooked["rows"] == base["rows"], cell_name
        assert hooked["sim_ms"] == base["sim_ms"], cell_name
        assert hooked["cold_sim_ms"] == base["cold_sim_ms"], cell_name


def test_disabled_hook_overhead(overhead_table):
    """Warm-scan cost of the fault layer stays under the 5% bar."""
    totals = {
        name: sum(cell["warm_wall_ms"] for cell in cells.values())
        for name, cells in overhead_table.items()
    }
    cold_totals = {
        name: sum(cell["cold_wall_ms"] for cell in cells.values())
        for name, cells in overhead_table.items()
    }
    ratio = totals["hooked"] / totals["baseline"]
    record_json(
        "BENCH_fault_overhead",
        {
            "selectivity": SELECTIVITY,
            "warm_repeats": WARM_REPEATS,
            "limit": OVERHEAD_LIMIT,
            "warm_overhead_ratio": round(ratio, 4),
            "cold_overhead_ratio": round(
                cold_totals["hooked"] / cold_totals["baseline"], 4
            ),
            "cells": {
                config: {
                    cell: {
                        "cold_wall_ms": round(v["cold_wall_ms"], 3),
                        "warm_wall_ms": round(v["warm_wall_ms"], 3),
                        "rows": v["rows"],
                    }
                    for cell, v in cells.items()
                }
                for config, cells in overhead_table.items()
            },
        },
    )
    assert ratio < OVERHEAD_LIMIT, (
        f"fault-hook warm overhead {ratio:.3f}x exceeds "
        f"{OVERHEAD_LIMIT:.2f}x"
    )
