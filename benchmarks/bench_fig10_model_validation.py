"""Figure 10: predicted vs. actual runtime for the selection query.

The paper validates its analytical model by plotting, for LM (a) and EM (b)
strategies, the model's predicted runtime against the C-Store prototype's
measured runtime across the selectivity sweep (RLE-encoded columns).

Our equivalent of "actual" is the model replayed over *observed* execution
counters (the simulated time every benchmark reports); "predicted" is the
a-priori :func:`repro.model.predictor.predict_select` from column metadata
and estimated selectivities — no execution involved. The validation claim is
that the a-priori curves track the observed curves in level and shape.
"""

from __future__ import annotations

import pytest

from repro import Strategy
from repro.model.predictor import predict_select

from .harness import SWEEP, record, run_point, selection_query

LM = (Strategy.LM_PIPELINED, Strategy.LM_PARALLEL)
EM = (Strategy.EM_PIPELINED, Strategy.EM_PARALLEL)


def _series(db, strategies):
    projection = db.projection("lineitem")
    rows = []
    for sel in SWEEP:
        query = selection_query(sel, "rle")
        for strategy in strategies:
            predicted = predict_select(projection, query, strategy).total_ms
            observed = run_point(db, query, strategy)
            rows.append(
                (sel, strategy.value, predicted, observed["sim_ms"],
                 observed["wall_ms"])
            )
    return rows


def _format(title, rows):
    lines = [title]
    lines.append(
        f"{'sel':>5} {'strategy':>14} {'model ms':>10} {'observed ms':>12} "
        f"{'wall ms':>9}"
    )
    for sel, name, predicted, simulated, wall in rows:
        lines.append(
            f"{sel:>5.2f} {name:>14} {predicted:>10.1f} {simulated:>12.1f} "
            f"{wall:>9.1f}"
        )
    return "\n".join(lines)


@pytest.mark.parametrize(
    "strategy", list(Strategy), ids=lambda s: s.value
)
def test_fig10_point_accuracy(benchmark, bench_db, strategy):
    """At mid selectivity the a-priori prediction lands near the observation."""
    query = selection_query(0.5, "rle")
    projection = bench_db.projection("lineitem")
    observed = benchmark.pedantic(
        run_point, args=(bench_db, query, strategy), rounds=3, iterations=1
    )
    predicted = predict_select(projection, query, strategy).total_ms
    benchmark.extra_info["predicted_ms"] = round(predicted, 2)
    benchmark.extra_info["observed_ms"] = round(observed["sim_ms"], 2)
    assert predicted == pytest.approx(observed["sim_ms"], rel=0.6)


def test_fig10a_lm_validation(benchmark, bench_db):
    rows = benchmark.pedantic(
        _series, args=(bench_db, LM), rounds=1, iterations=1
    )
    record(
        "fig10a_model_validation_lm",
        _format("Figure 10(a): LM predicted vs observed (selection, RLE)", rows),
    )
    _assert_tracking(rows)


def test_fig10b_em_validation(benchmark, bench_db):
    rows = benchmark.pedantic(
        _series, args=(bench_db, EM), rounds=1, iterations=1
    )
    record(
        "fig10b_model_validation_em",
        _format("Figure 10(b): EM predicted vs observed (selection, RLE)", rows),
    )
    _assert_tracking(rows)


def _assert_tracking(rows):
    """Prediction and observation must rise together and stay within 2x."""
    by_strategy: dict[str, list] = {}
    for sel, name, predicted, simulated, _wall in rows:
        by_strategy.setdefault(name, []).append((sel, predicted, simulated))
    for name, series in by_strategy.items():
        for _sel, predicted, simulated in series[2:]:
            assert predicted < 2.5 * simulated + 5.0, (name, series)
            assert simulated < 2.5 * predicted + 5.0, (name, series)
        # Monotone-ish growth in both curves across the sweep.
        assert series[-1][1] > series[0][1]
        assert series[-1][2] > series[0][2]
