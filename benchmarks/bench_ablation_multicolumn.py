"""Ablation: the multi-column optimization (paper Section 3.6).

LM plans re-access their predicate columns to extract surviving values. With
multi-columns, the scan pins the blocks it read and extraction never touches
the buffer pool again — I/O-free *by construction*, not just
probably-cached. Without them, re-access goes back through the pool, which
is harmless while the pool holds the working set but turns into real disk
reads under memory pressure. This ablation runs the same LM-parallel query
both ways, with a generous pool and with a pool smaller than the scanned
columns (the situation Section 3.6's "even if the column size is larger than
available memory" sentence describes).
"""

from __future__ import annotations

import pytest

from repro import Database, Strategy
from repro.storage.block import BLOCK_SIZE

from .harness import (
    SWEEP,
    build_database,
    format_table,
    record,
    run_point,
    selection_query,
)


@pytest.fixture(scope="module")
def pressured_db(tmp_path_factory):
    """The bench database opened with a pool of only a few blocks."""
    db = build_database(tmp_path_factory.mktemp("mc_db"))
    return Database(
        db.catalog.root, pool_capacity_bytes=4 * BLOCK_SIZE
    )


@pytest.mark.parametrize("use_multicolumns", [True, False], ids=["mc", "no-mc"])
def test_lm_parallel_under_memory_pressure(
    benchmark, pressured_db, use_multicolumns
):
    query = selection_query(0.5, "uncompressed")
    pressured_db.use_multicolumns = use_multicolumns
    try:
        point = benchmark.pedantic(
            run_point,
            args=(pressured_db, query, Strategy.LM_PARALLEL),
            rounds=3,
            iterations=1,
            warmup_rounds=1,
        )
    finally:
        pressured_db.use_multicolumns = True
    benchmark.extra_info["simulated_ms"] = round(point["sim_ms"], 2)
    benchmark.extra_info["block_reads"] = point["stats"].block_reads


def test_multicolumn_report(benchmark, pressured_db):
    def sweep_both():
        out = {}
        for flag, name in ((True, "with multi-columns"), (False, "without")):
            pressured_db.use_multicolumns = flag
            series = []
            for sel in SWEEP:
                point = run_point(
                    pressured_db,
                    selection_query(sel, "uncompressed"),
                    Strategy.LM_PARALLEL,
                )
                series.append((sel, point["wall_ms"], point["sim_ms"]))
            out[name] = series
        pressured_db.use_multicolumns = True
        return out

    table = benchmark.pedantic(sweep_both, rounds=1, iterations=1)
    record(
        "ablation_multicolumn",
        format_table(
            "Ablation: LM-parallel with vs without multi-columns, pool of 4"
            " blocks (model-replay ms)",
            table,
        ),
    )
    # The optimization never loses, and once the position list spans more
    # blocks than the pool holds, re-access without pinning pays real I/O.
    for with_mc, without in zip(
        table["with multi-columns"], table["without"]
    ):
        assert with_mc[2] <= without[2] * 1.05
    assert table["without"][-1][2] > 1.2 * table["with multi-columns"][-1][2]
