"""Figure 11: selection query, four strategies x three LINENUM encodings.

    SELECT shipdate, linenum FROM lineitem
    WHERE shipdate < X AND linenum < 7

Sweeping X across the shipdate domain. Expected shapes (paper Section 4.1):

* (a) uncompressed: LM-pipelined wins at low selectivity (block skipping);
  EM-parallel wins at high selectivity and consistently beats LM-parallel.
* (b) RLE: both LM strategies beat both EM strategies (EM must decompress to
  construct tuples; LM operates on compressed data until the final merge).
* (c) bit-vector: LM-pipelined inapplicable (no DS3 position filtering);
  EM-parallel and LM-parallel perform similarly (decompression dominates).
"""

from __future__ import annotations

import pytest

from repro import Strategy
from repro.errors import UnsupportedOperationError

from .harness import (
    POINTS,
    crossover,
    format_table,
    geometric_mean_ratio,
    record,
    run_point,
    selection_query,
    sweep_table,
)

ENCODINGS = ("uncompressed", "rle", "bitvector")
PANEL = {"uncompressed": "a", "rle": "b", "bitvector": "c"}


@pytest.mark.parametrize("selectivity", POINTS)
@pytest.mark.parametrize("strategy", list(Strategy), ids=lambda s: s.value)
@pytest.mark.parametrize("encoding", ENCODINGS)
def test_fig11_point(benchmark, bench_db, encoding, strategy, selectivity):
    query = selection_query(selectivity, encoding)
    try:
        point = benchmark.pedantic(
            run_point,
            args=(bench_db, query, strategy),
            rounds=3,
            iterations=1,
            warmup_rounds=1,
        )
    except UnsupportedOperationError:
        pytest.skip("LM-pipelined cannot position-filter bit-vector data")
    benchmark.extra_info["simulated_ms"] = round(point["sim_ms"], 2)
    benchmark.extra_info["rows"] = point["rows"]


@pytest.mark.parametrize("encoding", ENCODINGS)
def test_fig11_series(benchmark, bench_db, encoding):
    """Regenerate one panel of Figure 11 and check its qualitative shape."""
    table = benchmark.pedantic(
        sweep_table,
        args=(
            bench_db,
            lambda sel: selection_query(sel, encoding),
            list(Strategy),
        ),
        rounds=1,
        iterations=1,
    )
    panel = PANEL[encoding]
    record(
        f"fig11{panel}_selection_{encoding}",
        format_table(
            f"Figure 11({panel}): selection, LINENUM {encoding} "
            "(model-replay ms per strategy)",
            table,
        )
        + "\n"
        + format_table("  (wall-clock ms)", table, metric=1),
        table=table,
    )

    lm_par = "lm-parallel"
    em_par = "em-parallel"
    if encoding == "uncompressed":
        # LM-pipelined leads at the lowest selectivity...
        first = {n: table[n][0][2] for n in table}
        assert first["lm-pipelined"] <= min(first.values()) * 1.15
        # ...EM-parallel wins at the highest, and beats LM-parallel throughout.
        last = {n: table[n][-1][2] for n in table}
        assert last[em_par] == min(v for v in last.values() if v is not None)
        assert geometric_mean_ratio(table, em_par, lm_par) < 1.0
        # The pipelined advantage crosses over somewhere inside the sweep.
        assert crossover(table, "lm-pipelined", em_par) is not None
    elif encoding == "rle":
        # Both LM strategies beat both EM strategies across the sweep.
        assert geometric_mean_ratio(table, lm_par, em_par) < 1.0
        assert geometric_mean_ratio(table, "lm-pipelined", "em-pipelined") < 1.0
    else:
        # EM-parallel ~ LM-parallel: decompression dominates both.
        ratio = geometric_mean_ratio(table, lm_par, em_par)
        assert 0.7 < ratio < 1.4
        # LM-pipelined is absent for most of the sweep.
        missing = sum(1 for row in table["lm-pipelined"] if row[2] is None)
        assert missing >= len(table["lm-pipelined"]) - 2
