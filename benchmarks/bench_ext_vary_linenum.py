"""Extension experiment: vary the LINENUM predicate (the paper's 'vary Y').

The paper fixes LINENUM < 7 (96% selectivity) and sweeps the SHIPDATE
constant, noting only that "in other experiments (not presented in this
paper) we varied Y and kept X constant and observed similar results", and
that "if both the LINENUM and the SHIPDATE predicate have medium
selectivities, LM-parallel can beat EM-parallel" (due to constructing only
surviving tuples). This bench produces that un-plotted sweep: fixed medium
SHIPDATE selectivity, Y = 1..7 over uncompressed LINENUM.
"""

from __future__ import annotations

import pytest

from repro import Predicate, SelectQuery, Strategy
from repro.errors import UnsupportedOperationError

from .harness import format_table, record, run_point, shipdate_constant

Y_SWEEP = (1, 2, 3, 4, 5, 6, 7)
X_SELECTIVITY = 0.5


def query(y: int, encoding: str = "uncompressed") -> SelectQuery:
    return SelectQuery(
        projection="lineitem",
        select=("shipdate", "linenum"),
        predicates=(
            Predicate("shipdate", "<", shipdate_constant(X_SELECTIVITY)),
            Predicate("linenum", "<", y),
        ),
        encodings=(("linenum", encoding),),
    )


@pytest.mark.parametrize("y", (2, 4, 7))
@pytest.mark.parametrize("strategy", list(Strategy), ids=lambda s: s.value)
def test_vary_linenum_point(benchmark, bench_db, strategy, y):
    point = benchmark.pedantic(
        run_point,
        args=(bench_db, query(y), strategy),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["simulated_ms"] = round(point["sim_ms"], 2)
    benchmark.extra_info["rows"] = point["rows"]


def _sweep(bench_db, encoding):
    out = {}
    for strategy in Strategy:
        series = []
        for y in Y_SWEEP:
            try:
                point = run_point(bench_db, query(y, encoding), strategy)
            except UnsupportedOperationError:  # pragma: no cover
                series.append((y, None, None))
                continue
            series.append((y, point["wall_ms"], point["sim_ms"]))
        out[strategy.value] = series
    return out


@pytest.mark.parametrize("encoding", ["uncompressed", "rle"])
def test_vary_linenum_series(benchmark, bench_db, encoding):
    table = benchmark.pedantic(
        _sweep, args=(bench_db, encoding), rounds=1, iterations=1
    )
    record(
        f"ext_vary_linenum_{encoding}",
        format_table(
            f"Extension: vary LINENUM < Y at SHIPDATE selectivity 0.5, "
            f"LINENUM {encoding} (model-replay ms; x-axis is Y)",
            table,
        ),
    )
    # At the selective end (Y=1 matches nothing), pipelined strategies skip
    # every LINENUM block and finish in ~no time.
    assert table["lm-pipelined"][0][2] < table["em-parallel"][0][2]
    if encoding == "rle":
        # The paper's medium-selectivity note ("LM-parallel can beat
        # EM-parallel") holds under the model when LINENUM stays compressed.
        medium = Y_SWEEP.index(4)
        assert table["lm-parallel"][medium][2] < table["em-parallel"][medium][2]