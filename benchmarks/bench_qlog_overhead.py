"""Query-log recorder overhead: the always-on flight recorder must be cheap.

The recorder (`repro.qlog.QueryLog`) sits at the tail of `Database.query`:
one sampled-in test, one JSON record serialized and appended per finished
query. Its contract is that recording every query costs < 5% of warm query
wall-clock — the recorder is **on by default**, so this bar is what every
user pays.

This benchmark runs the paper's selection query (Section 4.1) over the same
stored data through two engine configurations:

* ``baseline`` — ``Database(root, query_log=False)``: recorder off;
* ``recorded`` — ``Database(root)``: the default always-on recorder,
  sample=1.0, result hashing included.

Both configurations stay open simultaneously and each cell is measured
back-to-back (baseline, then recorded) so clock-frequency and cache drift
hit both sides equally — the recorder's cost is small enough that the two
5-minute-apart measurement blocks the fault-overhead bench uses would
drown it in machine noise. For each cell it records cold and best-of-N
warm wall milliseconds and asserts the **warm** totals stay within the 5%
acceptance bar. Cold ratios are recorded in the JSON artifact
(``benchmarks/results/BENCH_qlog_overhead.json``) but not asserted.
"""

from __future__ import annotations

import time

import pytest

from repro import Database

from .harness import record_json, selection_query

SELECTIVITY = 0.02

WARM_REPEATS = 9

CELLS = (
    ("rle", "em-parallel"),
    ("uncompressed", "em-pipelined"),
    ("uncompressed", "lm-parallel"),
)

#: Acceptance bar: full-sample recording costs < 5% warm wall-clock.
OVERHEAD_LIMIT = 1.05


def _measure(db: Database, query, strategy) -> dict:
    db.clear_cache()
    t0 = time.perf_counter()
    cold_result = db.query(query, strategy=strategy)
    cold_ms = (time.perf_counter() - t0) * 1000.0
    warm_ms = float("inf")
    for _ in range(WARM_REPEATS):
        t0 = time.perf_counter()
        result = db.query(query, strategy=strategy)
        warm_ms = min(warm_ms, (time.perf_counter() - t0) * 1000.0)
    return {
        "cold_wall_ms": cold_ms,
        "warm_wall_ms": warm_ms,
        "rows": result.n_rows,
        "sim_ms": result.simulated_ms,
        "cold_sim_ms": cold_result.simulated_ms,
    }


@pytest.fixture(scope="module")
def overhead_table(bench_db):
    root = bench_db.catalog.root
    table: dict[str, dict[str, dict]] = {"baseline": {}, "recorded": {}}
    baseline = Database(root, query_log=False)
    recorded = Database(root)  # the default: recorder on, sample=1.0
    try:
        for encoding, strategy in CELLS:
            query = selection_query(SELECTIVITY, encoding)
            cell = f"{encoding}/{strategy}"
            table["baseline"][cell] = _measure(baseline, query, strategy)
            table["recorded"][cell] = _measure(recorded, query, strategy)
    finally:
        recorded.close()
        baseline.close()
    return table


def test_recorder_identity(overhead_table):
    """Recording a query changes nothing about its result or cost model."""
    for cell_name, base in overhead_table["baseline"].items():
        recorded = overhead_table["recorded"][cell_name]
        assert recorded["rows"] == base["rows"], cell_name
        assert recorded["sim_ms"] == base["sim_ms"], cell_name
        assert recorded["cold_sim_ms"] == base["cold_sim_ms"], cell_name


def test_recorder_overhead(overhead_table):
    """Warm-scan cost of the always-on recorder stays under the 5% bar."""
    totals = {
        name: sum(cell["warm_wall_ms"] for cell in cells.values())
        for name, cells in overhead_table.items()
    }
    cold_totals = {
        name: sum(cell["cold_wall_ms"] for cell in cells.values())
        for name, cells in overhead_table.items()
    }
    ratio = totals["recorded"] / totals["baseline"]
    record_json(
        "BENCH_qlog_overhead",
        {
            "selectivity": SELECTIVITY,
            "warm_repeats": WARM_REPEATS,
            "limit": OVERHEAD_LIMIT,
            "warm_overhead_ratio": round(ratio, 4),
            "cold_overhead_ratio": round(
                cold_totals["recorded"] / cold_totals["baseline"], 4
            ),
            "cells": {
                config: {
                    cell: {
                        "cold_wall_ms": round(v["cold_wall_ms"], 3),
                        "warm_wall_ms": round(v["warm_wall_ms"], 3),
                        "rows": v["rows"],
                    }
                    for cell, v in cells.items()
                }
                for config, cells in overhead_table.items()
            },
        },
    )
    assert ratio < OVERHEAD_LIMIT, (
        f"query-log warm overhead {ratio:.3f}x exceeds "
        f"{OVERHEAD_LIMIT:.2f}x"
    )
