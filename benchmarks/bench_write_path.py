"""Write-path overhead: disabled crash hooks + fsync must be cheap warm.

The crash-consistent write path threads two pieces of machinery through
every mutation: the :class:`~repro.faults.CrashInjector` boundary hooks
(one ``is None`` test per write/fsync/rename when no injector is
installed) and WAL fsyncs under the default ``durability="fsync"`` knob.
The contract is that a database opened without an injector pays almost
nothing for the hooks, and that fsync durability — whose real cost is
charged to the *simulated* disk clock — stays cheap in wall-clock terms
on the warm path.

The benchmark runs an identical seeded insert/update/delete/merge
workload through three engine configurations over freshly cloned stores:

* ``baseline`` — ``durability="flush"``, no injector: the floor;
* ``fsync``    — the default knob, no injector;
* ``hooked``   — fsync plus ``CrashInjector([], seed=0)``: every boundary
  consults an empty schedule and matches nothing.

For each it records cold (first pass, includes the merge's projection
rebuild) and the *summed* warm milliseconds of N identical delta-store
passes (insert/update/delete, no merge — each pass runs the same offsets
in every config, so the cost growth from accumulating pending rows
cancels in the ratio), then asserts the **warm** hooked/baseline ratio
stays under the 10% acceptance bar. Cold ratios land in the JSON
artifact (``benchmarks/results/BENCH_write_path.json``) for
trend-watching but are not asserted — they are dominated by real
file-system work.
"""

from __future__ import annotations

import shutil
import time

import pytest

from repro import Database, MetricsRegistry, Predicate
from repro.faults import CrashInjector

from .harness import record_json

WARM_REPEATS = 7

#: Acceptance bar: disabled crash hooks + fsync cost < 10% warm wall-clock.
OVERHEAD_LIMIT = 1.10

#: Rows per insert batch in the warm loop.
BATCH = 64


def _rows(offset: int):
    from datetime import date

    return [
        {
            "shipdate": date(1999, 1, 1),
            "linenum": (offset + i) % 7 + 1,
            "quantity": (offset + i) % 50 + 1,
            "returnflag": "A",
        }
        for i in range(BATCH)
    ]


def _write_pass(db: Database, offset: int) -> None:
    """One warm unit: a batch insert, an update, a delete (no merge)."""
    db.insert("lineitem", _rows(offset))
    db.update(
        "lineitem",
        (Predicate("quantity", "=", offset % 50 + 1),),
        {"quantity": 50},
    )
    db.delete("lineitem", (Predicate("linenum", "=", offset % 7 + 1),))


def _measure(root, kwargs) -> dict:
    with Database(root, metrics=MetricsRegistry(), **kwargs) as db:
        t0 = time.perf_counter()
        _write_pass(db, 0)
        db.merge("lineitem")
        cold_ms = (time.perf_counter() - t0) * 1000.0
        warm_ms = 0.0
        for i in range(WARM_REPEATS):
            t0 = time.perf_counter()
            _write_pass(db, i + 1)
            warm_ms += (time.perf_counter() - t0) * 1000.0
        moved = db.merge("lineitem")
        fsyncs = db.disk.total_fsyncs
    return {
        "cold_wall_ms": cold_ms,
        "warm_wall_ms": warm_ms,
        "moved": moved,
        "simulated_fsyncs": fsyncs,
    }


@pytest.fixture(scope="module")
def write_table(bench_db, tmp_path_factory):
    source = bench_db.catalog.root
    configs = {
        "baseline": dict(durability="flush"),
        "fsync": dict(),
        "hooked": dict(crash_injector=CrashInjector([], seed=0)),
    }
    table = {}
    for name, kwargs in configs.items():
        root = tmp_path_factory.mktemp("write_path") / name
        shutil.copytree(source, root)
        table[name] = _measure(root, kwargs)
    return table


def test_write_configs_identical_effects(write_table):
    """Durability knob and empty hooks change no logical outcome."""
    moved = {name: cell["moved"] for name, cell in write_table.items()}
    assert len(set(moved.values())) == 1, moved
    # The staged-commit fsyncs are unconditional (atomicity is not a
    # knob); only the per-append WAL fsyncs follow the durability mode.
    assert (
        write_table["baseline"]["simulated_fsyncs"]
        < write_table["fsync"]["simulated_fsyncs"]
    )
    assert (
        write_table["hooked"]["simulated_fsyncs"]
        == write_table["fsync"]["simulated_fsyncs"]
    )


def test_write_path_overhead(write_table):
    """Warm write cost of hooks + fsync stays under the 10% bar."""
    ratio = (
        write_table["hooked"]["warm_wall_ms"]
        / write_table["baseline"]["warm_wall_ms"]
    )
    record_json(
        "BENCH_write_path",
        {
            "warm_repeats": WARM_REPEATS,
            "batch": BATCH,
            "limit": OVERHEAD_LIMIT,
            "warm_overhead_ratio": round(ratio, 4),
            "cold_overhead_ratio": round(
                write_table["hooked"]["cold_wall_ms"]
                / write_table["baseline"]["cold_wall_ms"],
                4,
            ),
            "configs": {
                name: {
                    "cold_wall_ms": round(cell["cold_wall_ms"], 3),
                    "warm_wall_ms": round(cell["warm_wall_ms"], 3),
                    "simulated_fsyncs": cell["simulated_fsyncs"],
                }
                for name, cell in write_table.items()
            },
        },
    )
    assert ratio < OVERHEAD_LIMIT, (
        f"write-path warm overhead {ratio:.3f}x exceeds "
        f"{OVERHEAD_LIMIT:.2f}x"
    )
