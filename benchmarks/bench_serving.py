"""Serving throughput scaling, tail latency and backpressure.

Closed-loop load (``repro.serving.loadgen``) against an in-process server
over the shared benchmark database, three cells:

* ``clients_1``  — one client, 4 workers: the single-stream baseline. A
  closed-loop client's throughput is bounded by ``1 / (think + response)``
  (the interactive response-time law), so the baseline mostly measures
  think time plus one warm query.
* ``clients_8``  — eight clients, same server: the server overlaps the
  clients' think time across its worker pool, so throughput must scale
  even on one core (the gated headline: >= 1.5x over ``clients_1``).
  CPU-bound service time is what caps this on a small machine —
  ``cpu_count`` is recorded alongside the ratio.
* ``overload``   — eight zero-think clients against one worker behind a
  2-deep admission queue: permanent saturation. The gate here is that
  backpressure engages (rejection rate > 0) while admitted work still
  completes — the queue rejects, it never buffers unboundedly.

Every cell reports throughput, p50/p95/p99/max latency, queue depth and
rejection rate; the machine-readable summary (plus a metrics-registry
snapshot with the ``serving.*`` and ``loadgen.*`` series) lands in
``benchmarks/results/BENCH_serving.json`` — the artifact CI uploads.

``REPRO_SERVING_DURATION`` shortens the per-cell measured window for smoke
runs (CI uses 1 s; the committed artifact uses the 4 s default).
"""

from __future__ import annotations

import os

import pytest

from repro.serving import run_loadgen

from .harness import record_json

DURATION_S = float(os.environ.get("REPRO_SERVING_DURATION", "4.0"))

#: Mean per-client think time. Large against warm service time so the
#: single-client baseline is think-dominated and the 8-client cell has
#: idle time to overlap — the regime the scaling gate measures.
THINK_MS = 40.0

SCALING_FLOOR = 1.5

SEED = 7


@pytest.fixture(scope="module")
def serving_cells(bench_db):
    """Run the three load cells once, share the reports across tests."""
    common = dict(
        duration_s=DURATION_S,
        think_ms=THINK_MS,
        seed=SEED,
        corpus_size=32,
        workers=4,
        max_queue=128,
    )
    one = run_loadgen(bench_db, clients=1, **common)
    eight = run_loadgen(bench_db, clients=8, **common)
    overload = run_loadgen(
        bench_db,
        clients=8,
        duration_s=min(DURATION_S, 2.0),
        think_ms=0.0,
        seed=SEED,
        corpus_size=32,
        workers=1,
        max_queue=2,
        warmup=False,
    )
    cells = {"clients_1": one, "clients_8": eight, "overload": overload}
    ratio = (
        eight.throughput_qps / one.throughput_qps
        if one.throughput_qps
        else 0.0
    )
    record_json(
        "BENCH_serving",
        {
            "duration_s": DURATION_S,
            "think_ms": THINK_MS,
            "cpu_count": os.cpu_count(),
            "scaling_1_to_8": round(ratio, 3),
            "scaling_floor": SCALING_FLOOR,
            "cells": {name: r.to_dict() for name, r in cells.items()},
        },
        registry=bench_db.metrics,
    )
    return cells


def test_throughput_scales_with_clients(serving_cells):
    one = serving_cells["clients_1"]
    eight = serving_cells["clients_8"]
    assert one.ok > 0 and eight.ok > 0
    ratio = eight.throughput_qps / one.throughput_qps
    assert ratio >= SCALING_FLOOR, (
        f"8 clients gave {eight.throughput_qps:.1f} qps vs "
        f"{one.throughput_qps:.1f} at 1 client ({ratio:.2f}x < "
        f"{SCALING_FLOOR}x)"
    )


def test_warm_mix_is_clean_and_tail_is_reported(serving_cells):
    for name in ("clients_1", "clients_8"):
        report = serving_cells[name]
        assert report.errors == 0 and report.timeouts == 0
        assert report.rejection_rate == 0.0
        assert report.p99_ms >= report.p95_ms >= report.p50_ms > 0.0
        assert report.max_ms >= report.p99_ms


def test_overload_engages_backpressure(serving_cells):
    overload = serving_cells["overload"]
    assert overload.rejection_rate > 0.0, (
        "8 zero-think clients vs a 2-deep queue must trip rejections"
    )
    assert overload.ok > 0, "admitted work must still complete"
    assert overload.errors == 0
    assert overload.queue_depth_max <= 2
