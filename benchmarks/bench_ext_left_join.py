"""Extension experiment: outer-table input strategies for joins.

The paper (end of Section 4.3) states but does not plot the rule for the
join's *left* input: "if the join is highly selective or if the join results
will be aggregated, a late materialization strategy should be used.
Otherwise, EM-parallel should be used." This bench produces the missing
figure: LATE vs EARLY outer input across the outer predicate's selectivity.
"""

from __future__ import annotations

import pytest

from repro import JoinQuery, Predicate, RightTableStrategy

from .harness import POINTS, SWEEP, format_table, record, run_point


def join_query(
    db, selectivity: float, left_strategy: str, aggregated: bool = False
) -> JoinQuery:
    from repro import AggSpec

    n_customer = db.projection("customer").n_rows
    x = max(int(selectivity * n_customer) + 1, 1)
    extra = (
        dict(
            group_by="nationcode",
            aggregates=(AggSpec("count", "nationcode"),),
        )
        if aggregated
        else {}
    )
    return JoinQuery(
        left="orders",
        right="customer",
        left_key="custkey",
        right_key="custkey",
        left_select=("shipdate",),
        right_select=("nationcode",),
        left_predicates=(Predicate("custkey", "<", x),),
        left_strategy=left_strategy,
        **extra,
    )


@pytest.mark.parametrize("selectivity", POINTS)
@pytest.mark.parametrize("left", ["late", "early"])
def test_left_strategy_point(benchmark, bench_db, left, selectivity):
    query = join_query(bench_db, selectivity, left)
    point = benchmark.pedantic(
        run_point,
        args=(bench_db, query, RightTableStrategy.MATERIALIZED),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["simulated_ms"] = round(point["sim_ms"], 2)


def test_left_strategy_series(benchmark, bench_db):
    def sweep():
        out = {}
        for aggregated in (False, True):
            for left in ("late", "early"):
                series = []
                for sel in SWEEP:
                    point = run_point(
                        bench_db,
                        join_query(bench_db, sel, left, aggregated),
                        RightTableStrategy.MATERIALIZED,
                    )
                    series.append((sel, point["wall_ms"], point["sim_ms"]))
                kind = "agg" if aggregated else "plain"
                out[f"{kind}/left-{left}"] = series
        return out

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(
        "ext_left_join_strategy",
        format_table(
            "Extension: outer-input strategy for the join, plain vs"
            " aggregated result (model-replay ms)",
            table,
        ),
        table=table,
    )
    # The paper's rule: LATE wins when the join is highly selective...
    assert table["plain/left-late"][0][2] < table["plain/left-early"][0][2]
    # ...and whenever the join result is aggregated, at every selectivity.
    for late, early in zip(table["agg/left-late"], table["agg/left-early"]):
        assert late[2] < early[2]
