"""Zone-map pruning benchmark: partitioned vs unpartitioned lineitem.

Loads the same TPC-H lineitem data twice — unpartitioned and 4-way
range-partitioned — and runs a selective sort-key predicate (``returnflag =
'R'``, the last quarter of the sort order, narrowed by a shipdate cut) cold
under each strategy. On the partitioned layout the planner's zone maps
discard every partition whose returnflag range excludes the constant, so the
query touches roughly a quarter of the stored blocks; the unpartitioned
layout scans them all.

The win shows on the **parallel** strategies: they evaluate every predicate
column independently, so the unpruned layout pays a full scan of the
uncompressed ``quantity`` column that pruning avoids. (The pipelined
strategies position-filter later columns to the sorted returnflag range and
therefore skip most of those blocks even without partitions.) The scale is
large enough that the saved block reads dominate the extra per-partition
file seeks, which is exactly the regime the paper's disk model targets.

Asserts the tentpole acceptance criterion — >= 2x simulated-time reduction
on the headline strategy with at least half the partitions pruned — and
records the full table (plus the EXPLAIN ANALYZE pruning report) in
``benchmarks/results/BENCH_partition_prune.json``.
"""

from __future__ import annotations

import pytest

from repro import Database, Predicate, SelectQuery, load_tpch
from repro.tpch.generator import (
    RETURNFLAG_DICTIONARY,
    SHIPDATE_MAX,
    SHIPDATE_MIN,
)

from .harness import record_json

#: 600 K lineitem rows: enough blocks per partition that the saved reads
#: dwarf the extra seeks a multi-file layout costs.
SCALE = 0.1
PARTITIONS = 4
SEED = 42

#: The headline cell the >= 2x acceptance criterion is judged on.
HEADLINE_STRATEGY = "em-parallel"

STRATEGIES = ("em-parallel", "em-pipelined", "lm-parallel", "lm-pipelined")


@pytest.fixture(scope="module")
def layout_pair(tmp_path_factory):
    root = tmp_path_factory.mktemp("bench_prune")
    plain = Database(root / "plain")
    load_tpch(plain.catalog, scale=SCALE, seed=SEED)
    partitioned = Database(root / "partitioned")
    load_tpch(partitioned.catalog, scale=SCALE, seed=SEED, partitions=PARTITIONS)
    return plain, partitioned


def _selective_query() -> SelectQuery:
    # returnflag is the primary sort key; 'R' is the last ~25% of rows, so
    # zone maps can discard the leading partitions outright. The shipdate
    # cut keeps the output small (scan cost, not tuple construction,
    # dominates) and `quantity != -1` forces the parallel strategies to
    # scan the uncompressed quantity column — fully on the unpruned layout,
    # only in surviving partitions on the pruned one.
    code = RETURNFLAG_DICTIONARY.index("R")
    cut = int(SHIPDATE_MIN + 0.05 * (SHIPDATE_MAX + 1 - SHIPDATE_MIN))
    return SelectQuery(
        projection="lineitem",
        select=("shipdate", "quantity"),
        predicates=(
            Predicate("returnflag", "=", code),
            Predicate("shipdate", "<", cut),
            Predicate("quantity", "!=", -1),
        ),
    )


def test_partition_prune_speedup(layout_pair):
    plain, partitioned = layout_pair
    query = _selective_query()

    table = {}
    for strategy in STRATEGIES:
        full = plain.query(query, strategy=strategy, cold=True, trace=True)
        pruned = partitioned.query(
            query, strategy=strategy, cold=True, trace=True
        )
        assert sorted(pruned.rows()) == sorted(full.rows())
        table[strategy] = {
            "full_sim_ms": full.simulated_ms,
            "pruned_sim_ms": pruned.simulated_ms,
            "speedup": full.simulated_ms / max(pruned.simulated_ms, 1e-9),
            "rows": pruned.n_rows,
        }

    # The pruning decision itself, as EXPLAIN ANALYZE surfaces it.
    report = partitioned.explain(
        query, analyze=True, strategy=HEADLINE_STRATEGY
    )
    parts = report["partitions"]
    assert parts["total"] == PARTITIONS
    assert parts["pruned"] >= PARTITIONS // 2, parts

    for strategy in ("em-parallel", "lm-parallel"):
        assert table[strategy]["speedup"] >= 2.0, (
            f"zone-map pruning gave only {table[strategy]['speedup']:.2f}x "
            f"on {strategy} (full {table[strategy]['full_sim_ms']:.2f} ms, "
            f"pruned {table[strategy]['pruned_sim_ms']:.2f} ms)"
        )

    record_json(
        "BENCH_partition_prune",
        {
            "scale": SCALE,
            "partitions": PARTITIONS,
            "predicate": "returnflag = 'R' AND shipdate < :cut "
            "AND quantity != -1",
            "pruning": parts,
            "strategies": table,
        },
    )
