"""Table 2: model constants, re-measured on this machine.

The paper calibrated BIC / TICTUP / TICCOL / FC by timing code segments that
perform only the operation in question; :mod:`repro.model.calibrate` does the
same against this substrate's unit operations. The benchmark cases time each
micro-operation; the report test prints the paper-vs-measured table.
"""

from __future__ import annotations

from repro.model import PAPER_CONSTANTS, calibrate_constants
from repro.model.calibrate import (
    measure_bic,
    measure_fc,
    measure_ticcol,
    measure_tictup,
)

from .harness import record


def test_fc_microbench(benchmark):
    us = benchmark(measure_fc, 20_000)
    assert us > 0


def test_ticcol_microbench(benchmark):
    us = benchmark(measure_ticcol, 400_000)
    assert us > 0


def test_tictup_microbench(benchmark):
    us = benchmark(measure_tictup, 100_000)
    assert us > 0


def test_bic_microbench(benchmark):
    us = benchmark(measure_bic, 10_000)
    assert us > 0


def test_table2_report(benchmark):
    measured = benchmark.pedantic(
        calibrate_constants, kwargs={"quick": True}, rounds=1, iterations=1
    )
    paper = PAPER_CONSTANTS.as_dict()
    mine = measured.as_dict()
    lines = ["Table 2: model constants (microseconds; PF in blocks)"]
    lines.append(f"{'constant':>10} {'paper':>12} {'this machine':>14}")
    for key in ("BIC", "TICTUP", "TICCOL", "FC", "PF", "SEEK", "READ"):
        lines.append(f"{key:>10} {paper[key]:>12.4g} {mine[key]:>14.4g}")
    lines.append(
        "(SEEK/READ stay at the paper's values: they parameterise the"
        " simulated disk, not the host.)"
    )
    record("table2_constants", "\n".join(lines))
    # All measured CPU constants are positive. Note the substrate inversion:
    # on numpy, a Python function call (FC) costs more than a per-tuple
    # vector operation (TICTUP) — the reason benchmarks replay observed
    # counters through the PAPER's constants rather than these.
    for key in ("BIC", "TICTUP", "TICCOL", "FC"):
        assert mine[key] > 0
