"""Shared benchmark harness.

Builds the benchmark database (TPC-H-style, scale from ``REPRO_BENCH_SCALE``,
default 0.05 = 300 K lineitem rows), runs selectivity sweeps, and prints /
records the per-figure tables in the same form the paper plots them: runtime
as a function of the shipdate predicate's selectivity, one series per
materialization strategy.

Two runtimes are reported for every point:

* ``wall``  — actual wall-clock milliseconds of this Python substrate;
* ``sim``   — the analytical model replayed over observed execution counters
  (block reads/seeks through the simulated disk, iterator steps, tuples
  constructed), which is the apples-to-apples number against the paper's
  C++/disk testbed (see DESIGN.md, substitutions).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro import (
    AggSpec,
    Database,
    Predicate,
    SelectQuery,
    load_tpch,
)
from repro.tpch.generator import SHIPDATE_MAX, SHIPDATE_MIN

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
RESULTS_DIR = Path(__file__).parent / "results"

#: Selectivity sweep used by the figure tables (the paper sweeps 0..1).
SWEEP = (0.02, 0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9, 0.98)

#: Coarse sweep for the per-point pytest-benchmark cases.
POINTS = (0.05, 0.5, 0.95)


def build_database(root) -> Database:
    """Create and load the benchmark database under *root*."""
    db = Database(root)
    load_tpch(db.catalog, scale=BENCH_SCALE, seed=42)
    return db


def shipdate_constant(selectivity: float) -> int:
    """The shipdate constant X giving roughly the requested selectivity.

    Shipdates are uniform over the TPC-H domain, so linear interpolation over
    the domain is accurate — the same knob the paper turns.
    """
    return int(SHIPDATE_MIN + selectivity * (SHIPDATE_MAX + 1 - SHIPDATE_MIN))


def selection_query(
    selectivity: float, linenum_encoding: str, linenum_max: int = 7
) -> SelectQuery:
    """The paper's selection query (Section 4.1)."""
    return SelectQuery(
        projection="lineitem",
        select=("shipdate", "linenum"),
        predicates=(
            Predicate("shipdate", "<", shipdate_constant(selectivity)),
            Predicate("linenum", "<", linenum_max),
        ),
        encodings=(("linenum", linenum_encoding),),
    )


def aggregation_query(
    selectivity: float, linenum_encoding: str, linenum_max: int = 7
) -> SelectQuery:
    """The paper's aggregation query (Section 4.2)."""
    return SelectQuery(
        projection="lineitem",
        select=("shipdate", "sum(linenum)"),
        predicates=(
            Predicate("shipdate", "<", shipdate_constant(selectivity)),
            Predicate("linenum", "<", linenum_max),
        ),
        group_by="shipdate",
        aggregates=(AggSpec("sum", "linenum"),),
        encodings=(("linenum", linenum_encoding),),
    )


def run_point(db: Database, query, strategy) -> dict:
    """Execute one (query, strategy) point cold and return its metrics."""
    result = db.query(query, strategy=strategy, cold=True)
    return {
        "wall_ms": result.wall_ms,
        "sim_ms": result.simulated_ms,
        "rows": result.n_rows,
        "stats": result.stats,
    }


def sweep_table(
    db: Database,
    make_query,
    strategies,
    selectivities=SWEEP,
) -> dict:
    """Run a full sweep; returns {strategy_name: [(sel, wall, sim), ...]}."""
    table: dict[str, list] = {}
    for strategy in strategies:
        name = getattr(strategy, "value", str(strategy))
        series = []
        for sel in selectivities:
            try:
                point = run_point(db, make_query(sel), strategy)
            except Exception:
                series.append((sel, None, None))
                continue
            series.append((sel, point["wall_ms"], point["sim_ms"]))
        table[name] = series
    return table


def format_table(title: str, table: dict, metric: int = 2) -> str:
    """Render a sweep as the paper-style series table.

    Args:
        metric: 1 for wall-clock ms, 2 for simulated (model-replay) ms.
    """
    names = list(table)
    lines = [title, f"{'selectivity':>12} " + " ".join(f"{n:>14}" for n in names)]
    sels = [row[0] for row in table[names[0]]]
    for i, sel in enumerate(sels):
        cells = []
        for n in names:
            value = table[n][i][metric]
            cells.append(f"{value:>14.1f}" if value is not None else f"{'n/a':>14}")
        lines.append(f"{sel:>12.2f} " + " ".join(cells))
    return "\n".join(lines)


def record(name: str, text: str, table: dict | None = None) -> None:
    """Print a figure table and persist it under benchmarks/results/.

    When *table* (a sweep dict) is given, a machine-readable CSV with wall
    and simulated columns per series is written alongside the text table.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    if table is not None:
        csv_path = RESULTS_DIR / f"{name}.csv"
        names = list(table)
        header = ["selectivity"]
        for n in names:
            header += [f"{n}_wall_ms", f"{n}_sim_ms"]
        lines = [",".join(header)]
        for i, (sel, *_rest) in enumerate(table[names[0]]):
            cells = [f"{sel}"]
            for n in names:
                _s, wall, sim = table[n][i]
                cells.append("" if wall is None else f"{wall:.3f}")
                cells.append("" if sim is None else f"{sim:.3f}")
            lines.append(",".join(cells))
        csv_path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    print(f"\n{text}\n[written to {path}]")


def record_json(name: str, payload: dict, registry=None) -> Path:
    """Persist a machine-readable benchmark summary under benchmarks/results/.

    Written as ``{name}.json`` with sorted keys and a trailing newline so CI
    artifacts diff cleanly run-over-run. A metrics-registry snapshot (the
    process-wide :data:`repro.metrics.REGISTRY` unless *registry* is given)
    is attached under ``"metrics"``, so every benchmark artifact records the
    query counts, latency histograms and cache states behind its numbers.
    """
    import json

    from repro.metrics import REGISTRY

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = dict(payload)
    payload.setdefault("metrics", (registry or REGISTRY).snapshot())
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"[written to {path}]")
    return path


def crossover(table: dict, a: str, b: str, metric: int = 2):
    """First selectivity at which series *a* stops beating series *b*."""
    for (sel, *_), row_a, row_b in zip(
        table[a], table[a], table[b]
    ):
        va, vb = row_a[metric], row_b[metric]
        if va is None or vb is None:
            continue
        if va > vb:
            return sel
    return None


def geometric_mean_ratio(table: dict, a: str, b: str, metric: int = 2) -> float:
    """Geomean of series a / series b across the sweep (skipping n/a)."""
    ratios = []
    for row_a, row_b in zip(table[a], table[b]):
        va, vb = row_a[metric], row_b[metric]
        if va and vb:
            ratios.append(va / vb)
    return float(np.exp(np.mean(np.log(ratios)))) if ratios else float("nan")
