"""Scaling behaviour: runtimes grow linearly with data size.

The paper's absolute numbers come from scale 10; ours from a configurable
scale. This bench verifies the bridge between the two: model-replay time for
every strategy grows essentially linearly in the row count, so shapes
measured at bench scale transfer to larger data. Also confirms the Figure
11(b) ordering (LM beats EM on RLE) holds at every scale tested.
"""

from __future__ import annotations

import pytest

from repro import Database, Strategy, load_tpch

from .harness import run_point, selection_query

SCALES = (0.01, 0.02, 0.04)


@pytest.fixture(scope="module")
def scaled_dbs(tmp_path_factory):
    dbs = {}
    for scale in SCALES:
        db = Database(tmp_path_factory.mktemp(f"scale_{scale}"))
        load_tpch(db.catalog, scale=scale, seed=42)
        dbs[scale] = db
    return dbs


@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize(
    "strategy",
    [Strategy.EM_PARALLEL, Strategy.LM_PARALLEL],
    ids=lambda s: s.value,
)
def test_scaling_point(benchmark, scaled_dbs, strategy, scale):
    query = selection_query(0.5, "rle")
    point = benchmark.pedantic(
        run_point,
        args=(scaled_dbs[scale], query, strategy),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["simulated_ms"] = round(point["sim_ms"], 2)
    benchmark.extra_info["rows"] = point["rows"]


def test_scaling_is_linear(benchmark, scaled_dbs):
    def measure():
        out = {}
        for strategy in Strategy:
            out[strategy] = [
                run_point(
                    scaled_dbs[scale], selection_query(0.5, "rle"), strategy
                )["sim_ms"]
                for scale in SCALES
            ]
        return out

    times = benchmark.pedantic(measure, rounds=1, iterations=1)
    for strategy, series in times.items():
        # Quadrupling the data must not grow replay time super-linearly
        # (allowing generous slack for fixed per-query costs).
        growth = series[-1] / series[0]
        assert growth < 4.0 * 1.5, (strategy, series)
        # And it must grow at all. Fixed per-query costs (seeks, plan
        # overheads, the tiny RLE shipdate column) dilute growth at these
        # scales, so the lower bound is loose.
        assert growth > 1.4, (strategy, series)
    # Figure 11(b)'s ordering emerges as CPU terms outgrow the fixed I/O
    # floor: it must hold from the second scale up (at 60 K rows the two
    # parallel strategies are within noise of each other).
    for i in range(1, len(SCALES)):
        assert (
            times[Strategy.LM_PARALLEL][i] < times[Strategy.EM_PARALLEL][i]
        ), (i, times)
        assert (
            times[Strategy.LM_PIPELINED][i] < times[Strategy.EM_PIPELINED][i]
        ), (i, times)
