"""Ablation: model-driven strategy selection (paper Section 6).

The paper proposes using the analytical model inside a query optimizer to
choose the materialization strategy. This ablation compares, across the
selectivity sweep and every encoding, the strategy the model picks against
the best strategy found by exhaustive execution — reporting regret (chosen /
best observed runtime).
"""

from __future__ import annotations

import pytest

from repro import Strategy, choose_strategy
from repro.errors import UnsupportedOperationError

from .harness import SWEEP, record, run_point, selection_query


def optimizer_regret(db, encoding):
    projection = db.projection("lineitem")
    rows = []
    for sel in SWEEP:
        query = selection_query(sel, encoding)
        chosen, _ = choose_strategy(projection, query)
        observed = {}
        for strategy in Strategy:
            try:
                observed[strategy] = run_point(db, query, strategy)["sim_ms"]
            except UnsupportedOperationError:
                continue
        best = min(observed, key=observed.get)
        rows.append(
            (
                sel,
                chosen.value,
                best.value,
                observed[chosen],
                observed[best],
            )
        )
    return rows


@pytest.mark.parametrize("encoding", ["uncompressed", "rle", "bitvector"])
def test_optimizer_regret(benchmark, bench_db, encoding):
    rows = benchmark.pedantic(
        optimizer_regret, args=(bench_db, encoding), rounds=1, iterations=1
    )
    lines = [
        f"Ablation: optimizer regret, LINENUM {encoding}",
        f"{'sel':>5} {'chosen':>14} {'best':>14} {'chosen ms':>10} "
        f"{'best ms':>9} {'regret':>7}",
    ]
    regrets = []
    for sel, chosen, best, chosen_ms, best_ms in rows:
        regret = chosen_ms / best_ms if best_ms else 1.0
        regrets.append(regret)
        lines.append(
            f"{sel:>5.2f} {chosen:>14} {best:>14} {chosen_ms:>10.1f} "
            f"{best_ms:>9.1f} {regret:>7.2f}"
        )
    worst = max(regrets)
    mean = sum(regrets) / len(regrets)
    lines.append(f"mean regret {mean:.2f}, worst {worst:.2f}")
    record(f"ablation_optimizer_{encoding}", "\n".join(lines))
    # The model's pick should rarely cost more than ~2x the best strategy.
    assert mean < 1.5
    assert worst < 2.5
