"""Scan fast-path: decoded-block cache and parallel scan leaves.

Runs the paper's selection query (Section 4.1) at low selectivity through
four engine configurations over the same stored data:

* ``serial``       — decoded cache off, no scan workers (the seed baseline);
* ``cached``       — decoded cache on, serial execution;
* ``parallel``     — decoded cache off, 4 scan workers;
* ``cached+par``   — decoded cache on, 4 scan workers.

For every (encoding, strategy) cell it records cold (first touch after
``clear_cache``) and warm (best-of-N repeats) wall-clock milliseconds, then
asserts the fast path's two contracts:

* **identity** — rows, ``simulated_ms`` and every ``QueryStats`` counter
  except the decode-cache hit/miss tallies are bit-identical across all four
  configurations (the fast path is a wall-clock optimisation only);
* **speedup** — warm queries with the decoded cache on beat the baseline by
  >= 2x on the headline RLE / uncompressed selection cells.

A machine-readable summary lands in
``benchmarks/results/BENCH_scan_fastpath.json``.
"""

from __future__ import annotations

import time

import pytest

from repro import Database

from .harness import record_json, selection_query

#: Low selectivity keeps result stitching cheap so the scan side — the part
#: the decoded cache and scan workers accelerate — dominates warm runtime.
SELECTIVITY = 0.02

WARM_REPEATS = 7

CONFIGS = {
    "serial": dict(decoded_cache_bytes=0, parallel_scans=0),
    "cached": dict(parallel_scans=0),
    "parallel": dict(decoded_cache_bytes=0, parallel_scans=4),
    "cached+par": dict(parallel_scans=4),
}

CELLS = (
    # (encoding, strategy); all four exercise the DS1/DS2/SPC fast paths.
    ("rle", "em-parallel"),
    ("rle", "em-pipelined"),
    ("rle", "lm-parallel"),
    ("uncompressed", "em-pipelined"),
    ("bitvector", "em-parallel"),
)

#: Cells the >= 2x acceptance criterion is judged on (the issue names the
#: RLE / uncompressed selection workload). The best cell must clear 2x;
#: best-of-N warm timing keeps the check robust to scheduler noise.
HEADLINE_CELLS = (
    ("rle", "em-parallel"),
    ("rle", "em-pipelined"),
    ("uncompressed", "em-pipelined"),
)
HEADLINE_SPEEDUP = 2.0

#: QueryStats fields that are *allowed* to differ across configurations:
#: cache-observability counters, not model terms.
NON_MODEL_FIELDS = ("decode_hits", "decode_misses")


def _comparable(stats) -> dict:
    d = stats.as_dict()
    for field in NON_MODEL_FIELDS:
        d.pop(field, None)
    return d


def _measure_cell(db: Database, query, strategy) -> dict:
    """Cold + best-of-N warm wall ms for one (query, strategy) on one config."""
    db.clear_cache()
    t0 = time.perf_counter()
    cold_result = db.query(query, strategy=strategy)
    cold_ms = (time.perf_counter() - t0) * 1000.0
    warm_ms = float("inf")
    for _ in range(WARM_REPEATS):
        t0 = time.perf_counter()
        result = db.query(query, strategy=strategy)
        warm_ms = min(warm_ms, (time.perf_counter() - t0) * 1000.0)
    return {
        "cold_wall_ms": cold_ms,
        "warm_wall_ms": warm_ms,
        "sim_ms": result.simulated_ms,
        "cold_sim_ms": cold_result.simulated_ms,
        "rows": result.n_rows,
        "stats": _comparable(result.stats),
        "cold_stats": _comparable(cold_result.stats),
        "decode_hits": result.stats.decode_hits,
        "decode_misses": result.stats.decode_misses,
    }


@pytest.fixture(scope="module")
def fastpath_table(bench_db):
    """The full configs x cells measurement table (measured once, checked
    by several tests)."""
    root = bench_db.catalog.root
    table: dict[str, dict[str, dict]] = {}
    for config_name, kwargs in CONFIGS.items():
        with Database(root, **kwargs) as db:
            cells = {}
            for encoding, strategy in CELLS:
                query = selection_query(SELECTIVITY, encoding)
                cells[f"{encoding}/{strategy}"] = _measure_cell(
                    db, query, strategy
                )
            table[config_name] = cells
    return table


def test_fastpath_identity(fastpath_table):
    """Same rows, simulated cost, and model counters in every configuration."""
    baseline = fastpath_table["serial"]
    for config_name, cells in fastpath_table.items():
        for cell_name, cell in cells.items():
            base = baseline[cell_name]
            assert cell["rows"] == base["rows"], (config_name, cell_name)
            assert cell["sim_ms"] == base["sim_ms"], (config_name, cell_name)
            assert cell["cold_sim_ms"] == base["cold_sim_ms"], (
                config_name,
                cell_name,
            )
            assert cell["stats"] == base["stats"], (config_name, cell_name)
            assert cell["cold_stats"] == base["cold_stats"], (
                config_name,
                cell_name,
            )


def test_fastpath_cache_effectiveness(fastpath_table):
    """Warm queries hit the decoded cache; cache-off configs never do."""
    for config_name, cells in fastpath_table.items():
        cached = "cached" in config_name
        for cell_name, cell in cells.items():
            if cached:
                assert cell["decode_hits"] > 0, (config_name, cell_name)
                assert cell["decode_misses"] == 0, (config_name, cell_name)
            else:
                assert cell["decode_hits"] == 0, (config_name, cell_name)
                assert cell["decode_misses"] == 0, (config_name, cell_name)


def test_fastpath_speedup(fastpath_table):
    """Best headline cell clears the >= 2x warm-query acceptance bar."""
    speedups = {}
    for encoding, strategy in HEADLINE_CELLS:
        cell_name = f"{encoding}/{strategy}"
        serial = fastpath_table["serial"][cell_name]["warm_wall_ms"]
        cached = fastpath_table["cached"][cell_name]["warm_wall_ms"]
        speedups[cell_name] = serial / cached
    payload = {
        "selectivity": SELECTIVITY,
        "warm_repeats": WARM_REPEATS,
        "headline_speedups": {k: round(v, 2) for k, v in speedups.items()},
        "configs": {
            config_name: {
                cell_name: {
                    "cold_wall_ms": round(cell["cold_wall_ms"], 3),
                    "warm_wall_ms": round(cell["warm_wall_ms"], 3),
                    "sim_ms": round(cell["sim_ms"], 3),
                    "rows": cell["rows"],
                    "decode_hits": cell["decode_hits"],
                }
                for cell_name, cell in cells.items()
            }
            for config_name, cells in fastpath_table.items()
        },
    }
    record_json("BENCH_scan_fastpath", payload)
    best = max(speedups.values())
    assert best >= HEADLINE_SPEEDUP, speedups


#: Acceptance bar for the observability layer: span tracing must cost less
#: than 10% warm wall-clock versus the untraced hot path.
TRACING_OVERHEAD_LIMIT = 1.10


def test_tracing_overhead(bench_db):
    """EXPLAIN ANALYZE instrumentation stays under the 10% overhead bar.

    Sums best-of-N warm wall times across every cell with tracing off and
    on; summing first (rather than asserting per cell) keeps the check
    robust to single-cell scheduler noise while still bounding the total
    cost a ``trace=True`` sweep pays.
    """
    root = bench_db.catalog.root
    totals = {False: 0.0, True: 0.0}
    per_cell = {}
    with Database(root) as db:
        for encoding, strategy in CELLS:
            query = selection_query(SELECTIVITY, encoding)
            db.query(query, strategy=strategy)  # warm both cache levels
            cell = {}
            for traced in (False, True):
                best = float("inf")
                for _ in range(WARM_REPEATS):
                    t0 = time.perf_counter()
                    db.query(query, strategy=strategy, trace=traced)
                    best = min(best, (time.perf_counter() - t0) * 1000.0)
                totals[traced] += best
                cell["traced_ms" if traced else "untraced_ms"] = round(best, 4)
            per_cell[f"{encoding}/{strategy}"] = cell
    ratio = totals[True] / totals[False]
    record_json(
        "BENCH_tracing_overhead",
        {
            "untraced_total_ms": round(totals[False], 3),
            "traced_total_ms": round(totals[True], 3),
            "overhead_ratio": round(ratio, 4),
            "limit": TRACING_OVERHEAD_LIMIT,
            "cells": per_cell,
        },
    )
    assert ratio < TRACING_OVERHEAD_LIMIT, (
        f"tracing overhead {ratio:.3f}x exceeds "
        f"{TRACING_OVERHEAD_LIMIT:.2f}x: {per_cell}"
    )
