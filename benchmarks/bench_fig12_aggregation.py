"""Figure 12: aggregation query, four strategies x three LINENUM encodings.

    SELECT shipdate, SUM(linenum) FROM lineitem
    WHERE shipdate < X AND linenum < 7
    GROUP BY shipdate

Expected shapes (paper Section 4.2): the EM curves track their Figure 11
counterparts (the output-iteration cost just moves into the aggregator),
while every LM curve drops well below — the aggregator radically reduces the
number of tuples ever constructed, and on compressed data it aggregates runs
directly.
"""

from __future__ import annotations

import pytest

from repro import Strategy
from repro.errors import UnsupportedOperationError

from .harness import (
    POINTS,
    aggregation_query,
    format_table,
    geometric_mean_ratio,
    record,
    run_point,
    sweep_table,
)

ENCODINGS = ("uncompressed", "rle", "bitvector")
PANEL = {"uncompressed": "a", "rle": "b", "bitvector": "c"}


@pytest.mark.parametrize("selectivity", POINTS)
@pytest.mark.parametrize("strategy", list(Strategy), ids=lambda s: s.value)
@pytest.mark.parametrize("encoding", ENCODINGS)
def test_fig12_point(benchmark, bench_db, encoding, strategy, selectivity):
    query = aggregation_query(selectivity, encoding)
    try:
        point = benchmark.pedantic(
            run_point,
            args=(bench_db, query, strategy),
            rounds=3,
            iterations=1,
            warmup_rounds=1,
        )
    except UnsupportedOperationError:
        pytest.skip("LM-pipelined cannot position-filter bit-vector data")
    benchmark.extra_info["simulated_ms"] = round(point["sim_ms"], 2)
    benchmark.extra_info["groups"] = point["rows"]


@pytest.mark.parametrize("encoding", ENCODINGS)
def test_fig12_series(benchmark, bench_db, encoding):
    table = benchmark.pedantic(
        sweep_table,
        args=(
            bench_db,
            lambda sel: aggregation_query(sel, encoding),
            list(Strategy),
        ),
        rounds=1,
        iterations=1,
    )
    panel = PANEL[encoding]
    record(
        f"fig12{panel}_aggregation_{encoding}",
        format_table(
            f"Figure 12({panel}): aggregation, LINENUM {encoding} "
            "(model-replay ms per strategy)",
            table,
        )
        + "\n"
        + format_table("  (wall-clock ms)", table, metric=1),
        table=table,
    )

    # The LM strategies must beat the EM strategies across the sweep — the
    # aggregation headline of the paper.
    assert geometric_mean_ratio(table, "lm-parallel", "em-parallel") < 0.95
    assert geometric_mean_ratio(table, "lm-parallel", "em-pipelined") < 0.95
    # At high selectivity the gap is substantial (aggregation avoids most
    # tuple construction entirely).
    last_lm = table["lm-parallel"][-1][2]
    last_em = table["em-parallel"][-1][2]
    assert last_lm < 0.75 * last_em


def test_fig12_em_curves_track_fig11(benchmark, bench_db):
    """Paper: 'the EM strategies perform similarly to their counterpart in
    Figure 11' — the aggregator absorbs the output-iteration cost."""
    from .harness import selection_query

    def both():
        sel = 0.75
        plain = run_point(
            bench_db, selection_query(sel, "uncompressed"), Strategy.EM_PARALLEL
        )
        agg = run_point(
            bench_db, aggregation_query(sel, "uncompressed"), Strategy.EM_PARALLEL
        )
        return plain, agg

    plain, agg = benchmark.pedantic(both, rounds=1, iterations=1)
    assert agg["sim_ms"] == pytest.approx(plain["sim_ms"], rel=0.25)
