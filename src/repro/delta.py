"""The writable store: inserts, updates, deletes, and the tuple mover.

C-Store pairs its read-optimized store (RS — the sorted, compressed
projections everything else in this library implements) with a small
writable store (WS) holding recent changes, plus a "tuple mover" that
periodically folds WS into RS. This module reproduces that architecture at
the scale this library needs:

* :class:`DeltaStore` — an in-memory WS keyed by logical table: pending
  *inserted* rows buffered column-wise, plus a multiset of *deleted* stored
  rows (the delete-bitmap analogue for a store whose projections are
  rebuilt, not patched, by the mover). Updates are delete+insert in one
  atomic WAL record.
* query-time merge — `Database.query` transparently folds pending changes
  into selection and aggregation results (see :func:`delta_select` /
  :func:`merge_aggregates`); joins require a merge first, as C-Store's
  early releases did.
* :meth:`Database.merge` — the tuple mover: rebuilds every projection of a
  table from (stored − deleted) + pending rows (re-sorting, re-encoding,
  re-indexing), publishes all the rebuilds in one atomic manifest commit,
  and only then truncates the WAL.

WAL format: one JSON line per record. A plain object is a single inserted
row (already schema-encoded), unchanged since the WAL was introduced;
``{"_op": "delete", ...}`` / ``{"_op": "update", ...}`` records carry the
full matched rows so recovery can replay them without consulting the read
store. Recovery tolerates a torn final line (that record was never
acknowledged) and honours the catalog's ``wal_applied`` marker: records a
committed merge already folded into the read store are discarded, which is
what makes a crash between manifest commit and WAL truncation harmless.

Durability: with ``durability="fsync"`` (the default) every append is
fsynced — one fsync per accepted batch, charged to the simulated disk
clock; ``"flush"`` restores the old buffered behaviour for callers that
prefer speed over crash-durability of the last few writes.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import replace
from pathlib import Path

import numpy as np

from .errors import CatalogError, ExecutionError
from .operators.aggregate import AggSpec, factorize_groups
from .operators.tuples import TupleSet
from .planner.logical import SelectQuery
from .storage.atomic import fsync_dir

#: Accepted values of the ``Database(durability=...)`` knob.
DURABILITY_MODES = ("fsync", "flush")


class DeltaStore:
    """Writable store: pending changes per logical table, with a WAL.

    When constructed with a directory, every accepted change is appended to
    a per-table write-ahead log before it becomes visible, and pending
    changes are recovered from the logs on startup. The tuple mover
    truncates a table's log only after the catalog has committed the merged
    projections (see :meth:`mark_applied`).
    """

    def __init__(self, wal_directory=None, catalog=None, disk=None,
                 durability: str = "fsync", crash=None):
        if durability not in DURABILITY_MODES:
            raise ValueError(
                f"durability must be one of {DURABILITY_MODES}, "
                f"got {durability!r}"
            )
        self._rows: dict[str, list[dict]] = {}
        #: Multiset of stored rows deleted ahead of the next merge, as full
        #: encoded row dicts (captured at delete time so every projection —
        #: whatever column subset it carries — can subtract them).
        self._deleted: dict[str, list[dict]] = {}
        #: WAL record-line count per table (the merge marker's unit).
        self._records: dict[str, int] = {}
        self._catalog = catalog
        self._disk = disk
        self._durability = durability
        self._crash = crash
        self._wal_dir = Path(wal_directory) if wal_directory else None
        if self._wal_dir is not None:
            self._wal_dir.mkdir(parents=True, exist_ok=True)
            self._recover()

    def _wal_path(self, table: str):
        return self._wal_dir / f"{table}.wal" if self._wal_dir else None

    # ------------------------------------------------------------- recovery

    def _recover(self) -> None:
        """Replay per-table logs, tolerating a torn final line.

        A crash mid-append can leave the last JSON line incomplete; that
        tail is skipped with a warning (the change never returned, so it
        was never acknowledged) and every complete record is recovered. A
        malformed line anywhere *before* the tail is real corruption and
        still raises.

        If the catalog carries a ``wal_applied`` marker for a table, a
        committed merge already folded that many records into the read
        store but crashed before truncating the log: the applied prefix is
        discarded, the log rewritten to the remainder, and the marker
        cleared — after which a re-merge is a no-op instead of a
        double-apply.
        """
        markers = dict(self._catalog.wal_applied) if self._catalog else {}
        for path in sorted(self._wal_dir.glob("*.wal")):
            table = path.stem
            lines = []
            with open(path, encoding="utf-8") as f:
                for line in f:
                    line = line.strip()
                    if line:
                        lines.append(line)
            records = []
            torn = False
            for i, line in enumerate(lines):
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    if i == len(lines) - 1:
                        torn = True
                        logging.getLogger(__name__).warning(
                            "%s: skipping torn final WAL line "
                            "(%d complete records recovered): %s",
                            path, len(records), exc,
                        )
                        break
                    raise CatalogError(
                        f"{path}: corrupt WAL line {i + 1} of {len(lines)} "
                        f"(not the torn-tail case): {exc}"
                    ) from exc
            applied = min(markers.pop(table, 0), len(records))
            live = records[applied:]
            if (torn or applied) and not live:
                # Nothing survives: the log is exactly the state a
                # completed merge would have left, so finish its unlink.
                path.unlink()
            elif torn or applied:
                # Drop the torn bytes (so later appends cannot land after
                # a malformed line) and the already-merged prefix, keeping
                # the surviving lines byte-identical.
                with open(path, "w", encoding="utf-8") as f:
                    for line in lines[applied:len(records)]:
                        f.write(line + "\n")
                    f.flush()
            if applied and self._catalog is not None:
                self._catalog.set_wal_applied(table, 0)
            for record in live:
                try:
                    self._apply_record(table, record)
                except CatalogError:
                    raise
                except (KeyError, TypeError, ValueError) as exc:
                    raise CatalogError(
                        f"{path}: malformed WAL record: {exc}"
                    ) from exc
            if live:
                self._records[table] = len(live)
        # A marker for a table whose WAL is already gone means the crash
        # hit between the log unlink and the marker-clearing commit.
        if self._catalog is not None:
            for table in markers:
                self._catalog.set_wal_applied(table, 0)

    def _apply_record(self, table: str, record: dict) -> None:
        op = record.get("_op") if isinstance(record, dict) else None
        if op is None:
            # Legacy/plain record: one inserted row.
            self._rows.setdefault(table, []).append(record)
        elif op == "insert":
            self._rows.setdefault(table, []).extend(record["rows"])
        elif op in ("delete", "update"):
            self._remove_pending(table, record.get("pending", []))
            stored = record.get("stored", [])
            if stored:
                self._deleted.setdefault(table, []).extend(stored)
            if op == "update":
                self._rows.setdefault(table, []).extend(record["rows"])
        else:
            raise CatalogError(f"unknown WAL record op {op!r}")

    def _remove_pending(self, table: str, targets: list[dict]) -> None:
        rows = self._rows.get(table, [])
        for target in targets:
            try:
                rows.remove(target)
            except ValueError:
                # The pending row is already gone (idempotent replay).
                pass

    # ---------------------------------------------------------------- write

    def _append_records(self, table: str, records: list[dict]) -> None:
        path = self._wal_path(table)
        if path is not None:
            payload = "".join(json.dumps(r) + "\n" for r in records)
            if self._crash is not None:
                self._crash.hook("wal.append", path)
            with open(path, "a", encoding="utf-8") as f:
                if self._crash is not None and self._crash.check(
                    "wal.torn", str(path)
                ):
                    # The crash landed mid-append: an arbitrary prefix of
                    # the payload reaches disk, its final line torn. The
                    # change was never acknowledged; recovery drops the
                    # torn tail.
                    f.write(payload[: max(1, len(payload) // 2)])
                    f.flush()
                    os.fsync(f.fileno())
                    raise self._crash.crash("wal.torn", str(path))
                f.write(payload)
                f.flush()
                if self._durability == "fsync":
                    if self._crash is not None:
                        self._crash.hook("wal.fsync", path)
                    os.fsync(f.fileno())
                    if self._disk is not None:
                        self._disk.charge_fsync()
        self._records[table] = self._records.get(table, 0) + len(records)

    def insert(self, table: str, rows: list[dict], schemas: dict) -> int:
        """Validate and buffer *rows* (each a column->value dict).

        Args:
            table: logical table (anchor) name.
            rows: one dict per row; every table column must be present.
            schemas: column name -> :class:`~repro.dtypes.ColumnSchema`;
                values are encoded through the schema (dates, dictionary
                strings) exactly as the loader encodes bulk data.
        """
        expected = set(schemas)
        encoded_rows = []
        for row in rows:
            if set(row) != expected:
                missing = expected - set(row)
                extra = set(row) - expected
                raise CatalogError(
                    f"insert into {table!r} must provide exactly columns "
                    f"{sorted(expected)} (missing {sorted(missing)}, "
                    f"unexpected {sorted(extra)})"
                )
            encoded_rows.append(
                {col: schemas[col].encode_value(row[col]) for col in row}
            )
        self._append_records(table, encoded_rows)
        self._rows.setdefault(table, []).extend(encoded_rows)
        return len(encoded_rows)

    def delete(self, table: str, stored_rows: list[dict],
               pending_rows: list[dict]) -> int:
        """Log and apply one delete: *stored_rows* (full encoded rows
        matched in the read store, subtracted at query time and dropped at
        merge time) plus *pending_rows* (matches in this store, removed
        immediately). One WAL record, so the delete is atomic."""
        record = {
            "_op": "delete", "stored": stored_rows, "pending": pending_rows,
        }
        self._append_records(table, [record])
        self._apply_record(table, record)
        return len(stored_rows) + len(pending_rows)

    def update(self, table: str, stored_rows: list[dict],
               pending_rows: list[dict], new_rows: list[dict]) -> int:
        """Log and apply one update as delete+insert in a single record."""
        record = {
            "_op": "update",
            "stored": stored_rows,
            "pending": pending_rows,
            "rows": new_rows,
        }
        self._append_records(table, [record])
        self._apply_record(table, record)
        return len(stored_rows) + len(pending_rows)

    # ----------------------------------------------------------------- read

    def count(self, table: str) -> int:
        return len(self._rows.get(table, []))

    def deleted_count(self, table: str) -> int:
        """How many stored rows are pending deletion for *table*."""
        return len(self._deleted.get(table, []))

    def dirty(self, table: str) -> bool:
        """True when *table* has any pending change (inserts or deletes)."""
        return bool(self._rows.get(table)) or bool(self._deleted.get(table))

    def rows(self, table: str) -> list[dict]:
        """The pending inserted rows (copies; encoded values)."""
        return [dict(r) for r in self._rows.get(table, [])]

    def deleted_rows(self, table: str) -> list[dict]:
        """The pending deleted stored rows (copies; encoded values)."""
        return [dict(r) for r in self._deleted.get(table, [])]

    def wal_records(self, table: str) -> int:
        """WAL record lines currently logged for *table* (the merge
        marker's unit — see :meth:`Catalog.set_wal_applied`)."""
        return self._records.get(table, 0)

    def columns(self, table: str, schemas: dict) -> dict[str, np.ndarray]:
        """Pending inserted rows as column arrays (typed per schema)."""
        rows = self._rows.get(table, [])
        return {
            col: np.array(
                [r[col] for r in rows], dtype=schema.ctype.numpy_dtype
            )
            for col, schema in schemas.items()
        }

    def deleted_columns(
        self, table: str, schemas: dict
    ) -> dict[str, np.ndarray]:
        """Pending deleted rows as column arrays (typed per schema)."""
        rows = self._deleted.get(table, [])
        return {
            col: np.array(
                [r[col] for r in rows], dtype=schema.ctype.numpy_dtype
            )
            for col, schema in schemas.items()
        }

    # ------------------------------------------------------------ lifecycle

    def mark_applied(self, table: str) -> None:
        """Truncate *table*'s WAL after the catalog committed its merge.

        Called strictly after :meth:`Catalog.commit_merge`: the manifest
        already both publishes the merged projections and records how many
        WAL records they absorbed, so whether the crash hits before the
        unlink, between unlink and marker clear, or never, recovery
        converges on the same state.
        """
        path = self._wal_path(table)
        if path is not None and path.exists():
            if self._crash is not None:
                self._crash.hook("wal.truncate", path)
            path.unlink()
            fsync_dir(self._wal_dir, crash=self._crash, disk=self._disk)
        self._rows.pop(table, None)
        self._deleted.pop(table, None)
        self._records.pop(table, None)
        if self._catalog is not None:
            self._catalog.set_wal_applied(table, 0)

    def clear(self, table: str) -> None:
        """Discard *table*'s pending changes and WAL (compat alias)."""
        self.mark_applied(table)

    def tables(self) -> list[str]:
        return sorted(
            set(t for t, rows in self._rows.items() if rows)
            | set(t for t, rows in self._deleted.items() if rows)
        )


def multiset_keep_mask(
    stored: dict[str, np.ndarray],
    deleted_rows: list[dict],
    columns: list[str],
) -> np.ndarray:
    """Which stored rows survive subtracting *deleted_rows* as a multiset.

    Restricted to *columns* (a projection may carry a subset of the table's
    columns): each deleted row cancels at most one stored row with equal
    values on those columns, duplicates cancelling one-for-one. Vectorized
    via row codes: ``np.unique`` over the stacked stored+deleted matrix
    yields per-row group codes, and within each code the first
    ``count(deleted)`` stored occurrences are dropped.
    """
    cols = list(columns)
    n = len(stored[cols[0]]) if cols else 0
    if not deleted_rows or n == 0:
        return np.ones(n, dtype=bool)
    smat = np.stack([stored[c].astype(np.int64) for c in cols], axis=1)
    dmat = np.array(
        [[int(r[c]) for c in cols] for r in deleted_rows], dtype=np.int64
    )
    _, inverse = np.unique(
        np.concatenate((smat, dmat)), axis=0, return_inverse=True
    )
    inverse = inverse.reshape(-1)  # 2.0 returned (n, 1) for axis=0 input
    scodes, dcodes = inverse[:n], inverse[n:]
    del_counts = np.bincount(dcodes, minlength=int(inverse.max()) + 1)
    order = np.argsort(scodes, kind="stable")
    sorted_codes = scodes[order]
    boundary = np.concatenate(([True], sorted_codes[1:] != sorted_codes[:-1]))
    starts = np.flatnonzero(boundary)
    run_id = np.cumsum(boundary) - 1
    occurrence = np.arange(n) - starts[run_id]
    keep = np.empty(n, dtype=bool)
    keep[order] = occurrence >= del_counts[sorted_codes]
    return keep


def expand_avg(specs: tuple[AggSpec, ...]) -> tuple[list[AggSpec], dict]:
    """Rewrite AVG into mergeable partials (SUM + COUNT).

    Returns the internal spec list (deduplicated) and a mapping from each
    original output name to how it is reconstructed after merging.
    """
    internal: list[AggSpec] = []
    plan: dict[str, tuple] = {}

    def ensure(spec: AggSpec) -> str:
        for existing in internal:
            if existing == spec:
                return existing.output_name
        internal.append(spec)
        return spec.output_name

    for spec in specs:
        if spec.func == "avg":
            s = ensure(AggSpec("sum", spec.column))
            c = ensure(AggSpec("count", spec.column))
            plan[spec.output_name] = ("avg", s, c)
        else:
            name = ensure(spec)
            plan[spec.output_name] = ("direct", name)
    return internal, plan


def delta_select(
    query: SelectQuery, columns: dict[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """Evaluate the query's predicates over pending rows; return survivors."""
    if not columns:
        return {}
    n = len(next(iter(columns.values())))
    if query.disjuncts:
        mask = np.zeros(n, dtype=bool)
        for group in query.disjuncts:
            group_mask = np.ones(n, dtype=bool)
            for pred in group:
                group_mask &= pred.mask(columns[pred.column])
            mask |= group_mask
    else:
        mask = np.ones(n, dtype=bool)
        for pred in query.predicates:
            mask &= pred.mask(columns[pred.column])
    return {col: values[mask] for col, values in columns.items()}


def delta_aggregate(
    internal_specs: list[AggSpec],
    group_columns: list[str],
    survivors: dict[str, np.ndarray],
) -> TupleSet:
    """Aggregate pending survivors into the same shape as a stored result."""
    from .operators.aggregate import _grouped_reduce

    group_arrays = [survivors[c].astype(np.int64) for c in group_columns]
    value_columns = {
        spec.column: survivors[spec.column].astype(np.int64)
        for spec in internal_specs
        if spec.func != "count"
    }
    reduced = _grouped_reduce(
        group_arrays, group_columns, value_columns, internal_specs
    )
    return TupleSet.stitch(reduced)


def merge_aggregates(
    stored: TupleSet,
    pending: TupleSet,
    group_columns: list[str],
    internal_specs: list[AggSpec],
    plan: dict,
    select: list[str],
) -> TupleSet:
    """Combine stored-side and delta-side partial aggregates by group."""
    both = TupleSet.concat([stored, pending])
    keys, inverse = factorize_groups(
        [both.column(c) for c in group_columns]
    )
    k = len(keys[0]) if keys else 0
    merged: dict[str, np.ndarray] = dict(zip(group_columns, keys))
    for spec in internal_specs:
        partial = both.column(spec.output_name)
        if spec.func in ("sum", "count"):
            merged[spec.output_name] = np.bincount(
                inverse, weights=partial, minlength=k
            ).astype(np.int64)
        elif spec.func in ("min", "max"):
            fill = (
                np.iinfo(np.int64).max
                if spec.func == "min"
                else np.iinfo(np.int64).min
            )
            acc = np.full(k, fill, dtype=np.int64)
            ufunc = np.minimum if spec.func == "min" else np.maximum
            ufunc.at(acc, inverse, partial)
            merged[spec.output_name] = acc
        else:  # pragma: no cover - internal specs never contain avg
            raise ExecutionError(f"unmergeable partial {spec.func}")
    out: dict[str, np.ndarray] = dict(zip(group_columns, keys))
    for output, how in plan.items():
        if how[0] == "avg":
            sums = merged[how[1]]
            counts = merged[how[2]]
            out[output] = sums // np.maximum(counts, 1)
        else:
            out[output] = merged[how[1]]
    result = TupleSet.stitch(out)
    return result.select(select)


def internal_query(query: SelectQuery) -> tuple[SelectQuery, dict]:
    """The stored-side query to run when pending rows must be merged in.

    Strips ORDER BY / LIMIT (applied after the merge) and rewrites AVG into
    mergeable partials. Returns the rewritten query plus the reconstruction
    plan (empty for plain selections).
    """
    if not query.aggregates:
        return replace(query, order_by=(), limit=None), {}
    internal_specs, plan = expand_avg(query.aggregates)
    select = tuple(query.group_columns) + tuple(
        s.output_name for s in internal_specs
    )
    rewritten = replace(
        query,
        select=select,
        aggregates=tuple(internal_specs),
        order_by=(),
        limit=None,
        having=(),  # applied after the merge, over final aggregates
    )
    return rewritten, plan
