"""The writable store: inserts, merge-on-read, and the tuple mover.

C-Store pairs its read-optimized store (RS — the sorted, compressed
projections everything else in this library implements) with a small
writable store (WS) holding recent inserts, plus a "tuple mover" that
periodically folds WS into RS. This module reproduces that architecture at
the scale this library needs:

* :class:`DeltaStore` — an in-memory WS keyed by logical table: rows are
  validated against the table's schemas and buffered column-wise.
* query-time merge — `Database.query` transparently folds pending rows into
  selection and aggregation results (see :func:`delta_select` /
  :func:`merge_aggregates`); joins require a merge first, as C-Store's early
  releases did.
* :meth:`Database.merge` — the tuple mover: rebuilds every projection of a
  table from stored + pending rows (re-sorting, re-encoding, re-indexing),
  then clears the WS.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from .errors import CatalogError, ExecutionError
from .operators.aggregate import AggSpec, factorize_groups
from .operators.tuples import TupleSet
from .planner.logical import SelectQuery


class DeltaStore:
    """Writable store: pending rows per logical table, with an optional WAL.

    When constructed with a directory, every accepted insert is appended to a
    per-table write-ahead log (one JSON line per row, already
    schema-encoded) before it becomes visible, and pending rows are recovered
    from the logs on startup. The tuple mover truncates a table's log after
    folding its rows into the read store.
    """

    def __init__(self, wal_directory=None):
        from pathlib import Path

        self._rows: dict[str, list[dict]] = {}
        self._wal_dir = Path(wal_directory) if wal_directory else None
        if self._wal_dir is not None:
            self._wal_dir.mkdir(parents=True, exist_ok=True)
            self._recover()

    def _wal_path(self, table: str):
        return self._wal_dir / f"{table}.wal" if self._wal_dir else None

    def _recover(self) -> None:
        """Replay per-table logs, tolerating a torn final line.

        A crash mid-append can leave the last JSON line incomplete; that
        tail is skipped with a warning (the insert never returned, so the
        row was never acknowledged) and every complete row is recovered. A
        malformed line anywhere *before* the tail is real corruption and
        still raises.
        """
        import json
        import logging

        for path in sorted(self._wal_dir.glob("*.wal")):
            lines = []
            with open(path, encoding="utf-8") as f:
                for line in f:
                    line = line.strip()
                    if line:
                        lines.append(line)
            rows = []
            torn = False
            for i, line in enumerate(lines):
                try:
                    rows.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    if i == len(lines) - 1:
                        torn = True
                        logging.getLogger(__name__).warning(
                            "%s: skipping torn final WAL line "
                            "(%d complete rows recovered): %s",
                            path, len(rows), exc,
                        )
                        break
                    raise CatalogError(
                        f"{path}: corrupt WAL line {i + 1} of {len(lines)} "
                        f"(not the torn-tail case): {exc}"
                    ) from exc
            if torn:
                # Drop the torn bytes so later appends cannot land after a
                # malformed line (which would read as mid-file corruption
                # at the *next* recovery).
                with open(path, "w", encoding="utf-8") as f:
                    for line in lines[:-1]:
                        f.write(line + "\n")
                    f.flush()
            if rows:
                self._rows[path.stem] = rows

    def _append_wal(self, table: str, encoded_rows: list[dict]) -> None:
        path = self._wal_path(table)
        if path is None:
            return
        import json

        with open(path, "a", encoding="utf-8") as f:
            for row in encoded_rows:
                f.write(json.dumps(row) + "\n")
            f.flush()

    def insert(self, table: str, rows: list[dict], schemas: dict) -> int:
        """Validate and buffer *rows* (each a column->value dict).

        Args:
            table: logical table (anchor) name.
            rows: one dict per row; every table column must be present.
            schemas: column name -> :class:`~repro.dtypes.ColumnSchema`;
                values are encoded through the schema (dates, dictionary
                strings) exactly as the loader encodes bulk data.
        """
        expected = set(schemas)
        encoded_rows = []
        for row in rows:
            if set(row) != expected:
                missing = expected - set(row)
                extra = set(row) - expected
                raise CatalogError(
                    f"insert into {table!r} must provide exactly columns "
                    f"{sorted(expected)} (missing {sorted(missing)}, "
                    f"unexpected {sorted(extra)})"
                )
            encoded_rows.append(
                {col: schemas[col].encode_value(row[col]) for col in row}
            )
        self._append_wal(table, encoded_rows)
        self._rows.setdefault(table, []).extend(encoded_rows)
        return len(encoded_rows)

    def count(self, table: str) -> int:
        return len(self._rows.get(table, []))

    def columns(self, table: str, schemas: dict) -> dict[str, np.ndarray]:
        """Pending rows as column arrays (typed per schema)."""
        rows = self._rows.get(table, [])
        return {
            col: np.array(
                [r[col] for r in rows], dtype=schema.ctype.numpy_dtype
            )
            for col, schema in schemas.items()
        }

    def clear(self, table: str) -> None:
        self._rows.pop(table, None)
        path = self._wal_path(table)
        if path is not None and path.exists():
            path.unlink()

    def tables(self) -> list[str]:
        return sorted(t for t, rows in self._rows.items() if rows)


def expand_avg(specs: tuple[AggSpec, ...]) -> tuple[list[AggSpec], dict]:
    """Rewrite AVG into mergeable partials (SUM + COUNT).

    Returns the internal spec list (deduplicated) and a mapping from each
    original output name to how it is reconstructed after merging.
    """
    internal: list[AggSpec] = []
    plan: dict[str, tuple] = {}

    def ensure(spec: AggSpec) -> str:
        for existing in internal:
            if existing == spec:
                return existing.output_name
        internal.append(spec)
        return spec.output_name

    for spec in specs:
        if spec.func == "avg":
            s = ensure(AggSpec("sum", spec.column))
            c = ensure(AggSpec("count", spec.column))
            plan[spec.output_name] = ("avg", s, c)
        else:
            name = ensure(spec)
            plan[spec.output_name] = ("direct", name)
    return internal, plan


def delta_select(
    query: SelectQuery, columns: dict[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """Evaluate the query's predicates over pending rows; return survivors."""
    if not columns:
        return {}
    n = len(next(iter(columns.values())))
    if query.disjuncts:
        mask = np.zeros(n, dtype=bool)
        for group in query.disjuncts:
            group_mask = np.ones(n, dtype=bool)
            for pred in group:
                group_mask &= pred.mask(columns[pred.column])
            mask |= group_mask
    else:
        mask = np.ones(n, dtype=bool)
        for pred in query.predicates:
            mask &= pred.mask(columns[pred.column])
    return {col: values[mask] for col, values in columns.items()}


def delta_aggregate(
    internal_specs: list[AggSpec],
    group_columns: list[str],
    survivors: dict[str, np.ndarray],
) -> TupleSet:
    """Aggregate pending survivors into the same shape as a stored result."""
    from .operators.aggregate import _grouped_reduce

    group_arrays = [survivors[c].astype(np.int64) for c in group_columns]
    value_columns = {
        spec.column: survivors[spec.column].astype(np.int64)
        for spec in internal_specs
        if spec.func != "count"
    }
    reduced = _grouped_reduce(
        group_arrays, group_columns, value_columns, internal_specs
    )
    return TupleSet.stitch(reduced)


def merge_aggregates(
    stored: TupleSet,
    pending: TupleSet,
    group_columns: list[str],
    internal_specs: list[AggSpec],
    plan: dict,
    select: list[str],
) -> TupleSet:
    """Combine stored-side and delta-side partial aggregates by group."""
    both = TupleSet.concat([stored, pending])
    keys, inverse = factorize_groups(
        [both.column(c) for c in group_columns]
    )
    k = len(keys[0]) if keys else 0
    merged: dict[str, np.ndarray] = dict(zip(group_columns, keys))
    for spec in internal_specs:
        partial = both.column(spec.output_name)
        if spec.func in ("sum", "count"):
            merged[spec.output_name] = np.bincount(
                inverse, weights=partial, minlength=k
            ).astype(np.int64)
        elif spec.func in ("min", "max"):
            fill = (
                np.iinfo(np.int64).max
                if spec.func == "min"
                else np.iinfo(np.int64).min
            )
            acc = np.full(k, fill, dtype=np.int64)
            ufunc = np.minimum if spec.func == "min" else np.maximum
            ufunc.at(acc, inverse, partial)
            merged[spec.output_name] = acc
        else:  # pragma: no cover - internal specs never contain avg
            raise ExecutionError(f"unmergeable partial {spec.func}")
    out: dict[str, np.ndarray] = dict(zip(group_columns, keys))
    for output, how in plan.items():
        if how[0] == "avg":
            sums = merged[how[1]]
            counts = merged[how[2]]
            out[output] = sums // np.maximum(counts, 1)
        else:
            out[output] = merged[how[1]]
    result = TupleSet.stitch(out)
    return result.select(select)


def internal_query(query: SelectQuery) -> tuple[SelectQuery, dict]:
    """The stored-side query to run when pending rows must be merged in.

    Strips ORDER BY / LIMIT (applied after the merge) and rewrites AVG into
    mergeable partials. Returns the rewritten query plus the reconstruction
    plan (empty for plain selections).
    """
    if not query.aggregates:
        return replace(query, order_by=(), limit=None), {}
    internal_specs, plan = expand_avg(query.aggregates)
    select = tuple(query.group_columns) + tuple(
        s.output_name for s in internal_specs
    )
    rewritten = replace(
        query,
        select=select,
        aggregates=tuple(internal_specs),
        order_by=(),
        limit=None,
        having=(),  # applied after the merge, over final aggregates
    )
    return rewritten, plan
