"""The workload flight recorder: a persistent, replayable query log.

Every query the engine finishes (or aborts) is appended as one JSON line to
a size-rotated segment file under ``<database root>/_qlog/``. The record
carries everything ROADMAP item 1's workload-adaptive advisor needs as
durable input — a normalized **query fingerprint** (template hash with
literals stripped), the resolved strategy and encoding overrides, observed
selectivity, partition scan/prune counts, cache and kernel counters, queue
wait / wall / simulated milliseconds, and the outcome (``ok`` / ``degraded``
/ ``error`` / ``cancelled`` / ``timeout`` / ``rejected``) — plus the full
logical query dict and a hash of the result tuples, which is what makes a
captured log *replayable*: ``repro replay --check`` re-executes each record
under its recorded strategy and asserts the re-computed hash matches bit
for bit (the sixth differential-style axis; see :mod:`repro.workload`).

Records are serialized and appended by a dedicated writer thread (the hot
path pays one sample test, one CRC over the result tuples, and one queue
hand-off); :meth:`QueryLog.flush` — and :meth:`QueryLog.close`, which
``Database.close`` calls — drains the backlog. Durability follows the WAL
pattern from :mod:`repro.delta`: the writer flushes line-by-line, a crash
can tear at most the final line of the active segment, and both the writer
(on re-open) and :func:`read_query_log`
tolerate exactly that torn tail — mid-file corruption anywhere else raises
:class:`~repro.errors.CatalogError` naming the file and line. Rotation
seals the active segment and opens the next numbered one; a monotonically
increasing ``seq`` stamped on every written record makes cross-segment
ordering checkable.

The recorder is **always on** by default (``Database(query_log=True)``)
and sampled (``qlog_sample``): the deterministic counter-based sampler
keeps exactly ``floor(n * sample)`` of the first *n* finished queries, so
two runs over the same workload log the same subset. The overhead of the
enabled recorder is gated below 5% warm by
``benchmarks/bench_qlog_overhead.py``.
"""

from __future__ import annotations

import atexit
import json
import logging
import os
import queue
import threading
import time
import zlib
from functools import lru_cache
from hashlib import blake2b
from pathlib import Path

from .errors import CatalogError

logger = logging.getLogger(__name__)

#: Default byte budget per segment file before rotation.
DEFAULT_SEGMENT_BYTES = 8 * 1024 * 1024

#: How long the writer thread lets a batch accumulate before draining.
_BATCH_DELAY_S = 0.02

_SEGMENT_GLOB = "qlog-*.jsonl"


def _segment_name(index: int) -> str:
    return f"qlog-{index:08d}.jsonl"


def _segment_index(path: Path) -> int:
    return int(path.stem.split("-", 1)[1])


# --------------------------------------------------------------------------
# Fingerprints and templates
# --------------------------------------------------------------------------


def _predicate_shape(pred) -> list:
    """A predicate with its literal stripped (column and operator only)."""
    if hasattr(pred, "in_values"):
        return [pred.column, "in"]
    return [pred.column, pred.op]


def _template_payload(query) -> dict:
    """The literal-stripped canonical structure of a logical query.

    Two queries that differ only in their predicate constants (or LIMIT
    value) share a payload — and therefore a fingerprint — while anything
    physical or structural (columns, operators, grouping, ordering, stored-
    encoding overrides, join shape) keeps them distinct.
    """
    kind = type(query).__name__
    if kind == "SelectQuery":
        return {
            "kind": "select",
            "projection": query.projection,
            "select": list(query.select),
            "predicates": [_predicate_shape(p) for p in query.predicates],
            "disjuncts": [
                [_predicate_shape(p) for p in group]
                for group in query.disjuncts
            ],
            "group_by": list(query.group_columns),
            "aggregates": [[a.func, a.column] for a in query.aggregates],
            "order_by": [[c, bool(d)] for c, d in query.order_by],
            "limit": query.limit is not None,
            "having": [_predicate_shape(p) for p in query.having],
            "encodings": sorted(list(pair) for pair in query.encodings),
        }
    if kind == "JoinQuery":
        return {
            "kind": "join",
            "left": query.left,
            "right": query.right,
            "on": [query.left_key, query.right_key],
            "select": [list(query.left_select), list(query.right_select)],
            "predicates": [
                _predicate_shape(p) for p in query.left_predicates
            ],
            "group_by": list(query.group_by) if query.group_by else [],
            "aggregates": [[a.func, a.column] for a in query.aggregates],
            "left_strategy": query.left_strategy,
            "encodings": sorted(list(pair) for pair in query.encodings),
        }
    return {"kind": kind}


def query_fingerprint(query) -> str:
    """Stable hex hash of the query's literal-stripped template."""
    payload = json.dumps(
        _template_payload(query), sort_keys=True, separators=(",", ":")
    )
    return blake2b(payload.encode("utf-8"), digest_size=8).hexdigest()


def query_template(query) -> str:
    """Human-readable SQL-ish template with ``?`` in literal positions."""

    def pred_text(pred) -> str:
        if hasattr(pred, "in_values"):
            return f"{pred.column} IN (?)"
        return f"{pred.column}{pred.op}?"

    kind = type(query).__name__
    if kind == "SelectQuery":
        parts = [f"SELECT {', '.join(query.select)} FROM {query.projection}"]
        if query.disjuncts:
            groups = [
                " AND ".join(pred_text(p) for p in group)
                for group in query.disjuncts
            ]
            parts.append("WHERE (" + ") OR (".join(groups) + ")")
        elif query.predicates:
            parts.append(
                "WHERE " + " AND ".join(pred_text(p) for p in query.predicates)
            )
        if query.group_columns:
            parts.append("GROUP BY " + ", ".join(query.group_columns))
        if query.having:
            parts.append(
                "HAVING " + " AND ".join(pred_text(p) for p in query.having)
            )
        if query.order_by:
            parts.append(
                "ORDER BY "
                + ", ".join(
                    f"{c} DESC" if d else c for c, d in query.order_by
                )
            )
        if query.limit is not None:
            parts.append("LIMIT ?")
        return " ".join(parts)
    if kind == "JoinQuery":
        cols = ", ".join(list(query.left_select) + list(query.right_select))
        text = (
            f"SELECT {cols} FROM {query.left} JOIN {query.right} "
            f"ON {query.left_key}={query.right_key}"
        )
        if query.left_predicates:
            text += " WHERE " + " AND ".join(
                pred_text(p) for p in query.left_predicates
            )
        if query.group_by:
            text += " GROUP BY " + ", ".join(query.group_by)
        return text
    return repr(query)[:120]


def _touched_columns(query) -> list[str]:
    """Every column the query reads — the advisor's column-touch signal."""
    kind = type(query).__name__
    if kind == "SelectQuery":
        return sorted(set(query.all_columns))
    if kind == "JoinQuery":
        cols = {query.left_key, query.right_key}
        cols.update(query.left_select)
        cols.update(query.right_select)
        cols.update(p.column for p in query.left_predicates)
        return sorted(cols)
    return []


@lru_cache(maxsize=512)
def _query_static(query) -> tuple:
    """The per-query record fields that don't vary across executions.

    Keyed by the query's **value** (logical queries are frozen dataclasses,
    so two structurally identical queries — e.g. rebuilt per request on the
    serving path — share one cache entry). The returned query dict is
    embedded in every record and must never be mutated.
    """
    from .serving.protocol import query_to_dict

    kind = "join" if type(query).__name__ == "JoinQuery" else "select"
    try:
        qdict = query_to_dict(query)
    except TypeError:
        qdict = None
    return (
        query_fingerprint(query),
        kind,
        query_template(query),
        tuple(_touched_columns(query)),
        qdict,
    )


def result_hash(tuples) -> str:
    """Order-sensitive hash of a result :class:`~repro.operators.TupleSet`.

    Hashes the column names plus the raw int64 tuple block, so two results
    are equal iff they carry the same columns and the same rows in the same
    order — executions are deterministic per (data, strategy, encodings),
    which is what makes the replay ``--check`` comparison sound.

    CRC32 rather than a cryptographic hash: the recorder runs inside every
    ``Database.query`` call and the warm-overhead bar is 5%, so the hash
    must be near-free on large results. The check defends against engine
    divergence, not an adversary — any single differing byte flips the CRC,
    and the header (columns + dtype + shape) is folded in separately.
    """
    data = tuples.data
    header = "|".join(tuples.columns) + f";{data.dtype.str};{data.shape}"
    head_crc = zlib.crc32(header.encode("utf-8"))
    buf = data if data.flags.c_contiguous else data.tobytes()
    return f"{head_crc:08x}{zlib.crc32(buf):08x}"


# --------------------------------------------------------------------------
# Writer
# --------------------------------------------------------------------------


class QueryLog:
    """Size-rotated, sampled JSONL query log (thread-safe append)."""

    def __init__(
        self,
        directory: str | Path,
        sample: float = 1.0,
        max_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        result_hashes: bool = True,
    ):
        """Open (or continue) the log under *directory*.

        Args:
            directory: segment directory, created if missing. Re-opening an
                existing log truncates a torn final line (the WAL recovery
                contract) and appends to the newest segment.
            sample: fraction of finished queries to record, in (0, 1].
                Deterministic: of the first *n* observed queries, exactly
                ``floor(n * sample)`` are written.
            max_segment_bytes: rotation threshold; a record that would push
                the active segment past it opens the next segment first.
            result_hashes: stamp each ``ok`` record with
                :func:`result_hash` so the log is checkably replayable.
        """
        if not (0.0 < sample <= 1.0):
            raise ValueError(f"sample must be in (0, 1], got {sample}")
        if max_segment_bytes < 1:
            raise ValueError("max_segment_bytes must be positive")
        # Warm the query-serialization import now so the first observed
        # query doesn't pay the serving-package import inside the hot path.
        from .serving import protocol as _protocol  # noqa: F401

        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.sample = sample
        self.max_segment_bytes = max_segment_bytes
        self.result_hashes = result_hashes
        self._lock = threading.Lock()
        self._seen = 0        # observe() calls, for the sampler
        self._written = 0     # records accepted into the log (this open)
        self._dropped = 0     # records lost to write errors (this open)
        self._closed = False
        self._fh = None
        self._open_active()
        # Records are serialized and written by a dedicated thread so the
        # engine's per-query cost is one sample test, one result hash, and
        # one enqueue — what keeps the always-on recorder under the 5%
        # warm-overhead bar. FIFO hand-off preserves ``seq`` ordering;
        # :meth:`flush` / :meth:`close` drain the queue.
        self._queue: queue.Queue = queue.Queue()
        self._drain_now = threading.Event()
        self._writer = threading.Thread(
            target=self._writer_loop, name="qlog-writer", daemon=True
        )
        self._writer.start()
        # The writer is a daemon thread, so a process that exits without
        # Database.close() (one-shot CLI commands, scripts) would drop its
        # final batch; drain at interpreter shutdown instead.
        atexit.register(self.close)

    # ------------------------------------------------------------- lifecycle

    def _open_active(self) -> None:
        """Continue the newest segment, recovering a torn tail first."""
        segments = sorted(self.directory.glob(_SEGMENT_GLOB))
        if not segments:
            self._index = 1
            self._size = 0
            self._next_seq = 0
        else:
            active = segments[-1]
            self._index = _segment_index(active)
            last_seq = self._recover_segment(active)
            self._next_seq = last_seq + 1
            self._size = active.stat().st_size
        self._fh = open(
            self.directory / _segment_name(self._index),
            "a",
            encoding="utf-8",
        )

    @staticmethod
    def _recover_segment(path: Path) -> int:
        """Truncate a torn final line; return the last intact record's seq.

        Mirrors :meth:`repro.delta.DeltaStore._recover`: the only write is
        an append, so a crash can tear at most the final line. That tail is
        dropped (the query's caller never saw the record acknowledged); a
        malformed line anywhere earlier is real corruption and raises.
        """
        lines = []
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if line:
                    lines.append(line)
        last_seq = -1
        torn = False
        for i, line in enumerate(lines):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if i == len(lines) - 1:
                    torn = True
                    logger.warning(
                        "%s: truncating torn final query-log line "
                        "(%d intact records kept): %s",
                        path, len(lines) - 1, exc,
                    )
                    break
                raise CatalogError(
                    f"{path}: corrupt query-log line {i + 1} of "
                    f"{len(lines)} (not the torn-tail case): {exc}"
                ) from exc
            last_seq = int(record.get("seq", last_seq + 1))
        if torn:
            with open(path, "w", encoding="utf-8") as f:
                for line in lines[:-1]:
                    f.write(line + "\n")
                f.flush()
        return last_seq

    def close(self) -> None:
        """Drain the writer and release the active segment (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(None)  # sentinel: writer exits after the backlog
        self._drain_now.set()
        self._writer.join()
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None
        atexit.unregister(self.close)

    def flush(self) -> None:
        """Block until every record enqueued so far is on disk."""
        self._drain_now.set()
        try:
            self._queue.join()
        finally:
            if not self._closed:
                self._drain_now.clear()

    def __enter__(self) -> "QueryLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --------------------------------------------------------------- writing

    def _sampled_in(self) -> bool:
        """Deterministic counter-based sampler (exact at every prefix)."""
        if self._closed:
            return False
        self._seen += 1
        return int(self._seen * self.sample) > int(
            (self._seen - 1) * self.sample
        )

    def _writer_loop(self) -> None:
        while True:
            record = self._queue.get()
            if record is None:
                self._queue.task_done()
                return
            # Let a batch accumulate so the writer wakes — and contends
            # with query threads for the GIL — once per interval, not once
            # per record. flush()/close() skip the pause via _drain_now.
            self._drain_now.wait(_BATCH_DELAY_S)
            batch = [record]
            while True:
                try:
                    batch.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            stop = False
            for rec in batch:
                if rec is None:
                    stop = True
                    continue
                try:
                    self._write(rec)
                except Exception:
                    logger.exception(
                        "query-log write failed; record dropped"
                    )
                    self._dropped += 1
            for _ in batch:
                self._queue.task_done()
            if stop:
                return

    def _write(self, record: dict) -> None:
        if self._fh is None:
            return
        record["seq"] = self._next_seq
        line = json.dumps(record, separators=(",", ":")) + "\n"
        payload = line.encode("utf-8")
        if self._size + len(payload) > self.max_segment_bytes and self._size:
            # Seal the full segment durably before rotating: once the next
            # segment exists, readers treat this one as immutable history.
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._index += 1
            self._size = 0
            self._fh = open(
                self.directory / _segment_name(self._index),
                "a",
                encoding="utf-8",
            )
        self._fh.write(line)
        self._fh.flush()
        self._size += len(payload)
        self._next_seq += 1

    def _enqueue(self, record: dict) -> None:
        self._written += 1
        self._queue.put(record)

    def _base_record(self, query, origin: str, session) -> dict:
        try:
            fingerprint, kind, template, columns, qdict = _query_static(query)
        except TypeError:  # unhashable query object: compute uncached
            fingerprint, kind, template, columns, qdict = (
                _query_static.__wrapped__(query)
            )
        record = {
            "ts": round(time.time(), 3),
            "fingerprint": fingerprint,
            "kind": kind,
            "template": template,
            "origin": origin,
            "columns": list(columns),
        }
        if session is not None:
            record["session"] = session
        record["query"] = qdict
        return record

    def observe(self, query, result, origin: str = "embedded",
                session=None) -> bool:
        """Record one finished query; returns whether it was sampled in."""
        with self._lock:
            if not self._sampled_in():
                return False
            record = self._base_record(query, origin, session)
            stats = result.stats
            record.update(
                strategy=result.strategy,
                encodings=dict(getattr(query, "encodings", ()) or ()),
                outcome="degraded" if result.degraded else "ok",
                rows=result.n_rows,
                wall_ms=round(result.wall_ms, 3),
                simulated_ms=round(result.simulated_ms, 3),
                queue_wait_ms=round(result.queue_wait_ms, 3),
                counters={
                    "block_reads": stats.block_reads,
                    "disk_seeks": stats.disk_seeks,
                    "buffer_hits": stats.buffer_hits,
                    "decode_hits": stats.decode_hits,
                    "decode_misses": stats.decode_misses,
                    "blocks_skipped": stats.blocks_skipped,
                    "compressed_scans": stats.compressed_scans,
                    "morphs": stats.morphs,
                    "io_retries": stats.io_retries,
                    "io_gave_up": stats.io_gave_up,
                    "values_scanned": stats.values_scanned,
                    "tuples_constructed": stats.tuples_constructed,
                    "positions_intersected": stats.positions_intersected,
                    "block_iterations": stats.block_iterations,
                    "column_iterations": stats.column_iterations,
                    "tuple_iterations": stats.tuple_iterations,
                    "function_calls": stats.function_calls,
                    "simulated_io_us": round(stats.simulated_io_us, 3),
                },
            )
            resolved = getattr(result, "projection", None)
            if resolved is not None:
                record["projection"] = resolved
            if result.base_rows and not getattr(query, "aggregates", ()):
                record["selectivity"] = round(
                    result.n_rows / result.base_rows, 6
                )
            extra = stats.extra
            if "partitions_total" in extra:
                record["partitions"] = {
                    "total": extra["partitions_total"],
                    "scanned": extra.get("partitions_scanned", 0),
                    "pruned": extra.get("partitions_pruned", 0),
                }
            if result.degraded:
                record["skipped_partitions"] = list(
                    result.skipped_partitions
                )
            if self.result_hashes and not result.degraded:
                record["result_hash"] = result_hash(result.tuples)
            self._enqueue(record)
            return True

    def observe_error(
        self,
        query,
        exc: BaseException,
        wall_ms: float,
        queue_wait_ms=None,
        origin: str = "embedded",
        session=None,
    ) -> bool:
        """Record an aborted query (error / cancelled / timeout outcome)."""
        from .errors import QueryCancelledError, QueryTimeoutError

        if isinstance(exc, QueryTimeoutError):
            outcome = "timeout"
        elif isinstance(exc, QueryCancelledError):
            outcome = "cancelled"
        else:
            outcome = "error"
        with self._lock:
            if not self._sampled_in():
                return False
            record = self._base_record(query, origin, session)
            record.update(
                outcome=outcome,
                error={
                    "type": type(exc).__name__,
                    "message": str(exc)[:200],
                },
                wall_ms=round(wall_ms, 3),
                queue_wait_ms=round(float(queue_wait_ms or 0.0), 3),
            )
            self._enqueue(record)
            return True

    def observe_rejected(self, query, reason: str,
                         origin: str = "served", session=None) -> bool:
        """Record a query the admission queue (or drain) turned away."""
        with self._lock:
            if not self._sampled_in():
                return False
            record = self._base_record(query, origin, session)
            record.update(
                outcome="rejected",
                error={"type": "Rejected", "message": reason[:200]},
                wall_ms=0.0,
                queue_wait_ms=0.0,
            )
            self._enqueue(record)
            return True

    # --------------------------------------------------------------- reading

    def segments(self) -> list[Path]:
        """Segment files, oldest first."""
        return sorted(self.directory.glob(_SEGMENT_GLOB))

    def metrics(self) -> dict:
        """Collector payload for :class:`~repro.metrics.MetricsRegistry`."""
        with self._lock:
            return {
                "seen": self._seen,
                "written": self._written,
                "dropped": self._dropped,
                "pending": self._queue.qsize(),
                "sample": self.sample,
                "segments": len(self.segments()),
                "active_segment_bytes": self._size,
            }


def read_query_log(path: str | Path) -> list[dict]:
    """Read every record from a query log, tolerating a torn tail.

    *path* may be the log directory or a single segment file. Segments are
    read oldest-first; a torn (half-written) final line of the **final**
    segment is skipped with a warning — the crash case the writer's
    line-by-line flush permits. A malformed line anywhere else is real
    corruption and raises :class:`~repro.errors.CatalogError` naming the
    file and line. Unlike the writer's recovery, reading never mutates the
    log, so it is safe against a live database.
    """
    path = Path(path)
    if path.is_dir():
        segments = sorted(path.glob(_SEGMENT_GLOB))
        if not segments and not list(path.glob("*.jsonl")):
            raise CatalogError(f"{path}: no query-log segments found")
    elif path.is_file():
        segments = [path]
    else:
        raise CatalogError(f"{path}: no such query log")
    records: list[dict] = []
    for si, segment in enumerate(segments):
        final_segment = si == len(segments) - 1
        lines = []
        with open(segment, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if line:
                    lines.append(line)
        for i, line in enumerate(lines):
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if final_segment and i == len(lines) - 1:
                    logger.warning(
                        "%s: skipping torn final query-log line: %s",
                        segment, exc,
                    )
                    break
                raise CatalogError(
                    f"{segment}: corrupt query-log line {i + 1} of "
                    f"{len(lines)} (not the torn-tail case): {exc}"
                ) from exc
    return records
