"""Column type system.

The engine stores every column as a fixed-width numpy array. Dates are stored
as int32 day offsets from 1970-01-01; low-cardinality strings are stored as
uint8 dictionary codes with the dictionary kept in column metadata. This
mirrors C-Store, where all columns are integer-coded on disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date, timedelta

import numpy as np

from .errors import EncodingError

_EPOCH = date(1970, 1, 1)


@dataclass(frozen=True)
class ColumnType:
    """A logical column type backed by a fixed-width numpy dtype."""

    name: str
    numpy_dtype: np.dtype

    @property
    def itemsize(self) -> int:
        """Width in bytes of one stored value."""
        return self.numpy_dtype.itemsize

    def validate(self, values: np.ndarray) -> np.ndarray:
        """Return *values* as a contiguous array of this type.

        Raises:
            EncodingError: if the values cannot be represented losslessly.
        """
        arr = np.ascontiguousarray(values)
        if arr.dtype == self.numpy_dtype:
            return arr
        cast = arr.astype(self.numpy_dtype)
        if not np.array_equal(cast.astype(arr.dtype, copy=False), arr):
            raise EncodingError(
                f"values of dtype {arr.dtype} do not fit column type {self.name}"
            )
        return cast

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"ColumnType({self.name})"


INT8 = ColumnType("int8", np.dtype("<i1"))
INT16 = ColumnType("int16", np.dtype("<i2"))
INT32 = ColumnType("int32", np.dtype("<i4"))
INT64 = ColumnType("int64", np.dtype("<i8"))
UINT8 = ColumnType("uint8", np.dtype("<u1"))
FLOAT64 = ColumnType("float64", np.dtype("<f8"))
DATE = ColumnType("date", np.dtype("<i4"))

_BY_NAME = {
    t.name: t for t in (INT8, INT16, INT32, INT64, UINT8, FLOAT64, DATE)
}


def type_by_name(name: str) -> ColumnType:
    """Look up a :class:`ColumnType` by its catalog name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise EncodingError(f"unknown column type {name!r}") from None


def date_to_int(d: date) -> int:
    """Encode a :class:`datetime.date` as days since the Unix epoch."""
    return (d - _EPOCH).days


def int_to_date(days: int) -> date:
    """Decode a days-since-epoch integer back to a date."""
    return _EPOCH + timedelta(days=int(days))


@dataclass(frozen=True)
class ColumnSchema:
    """Schema entry for one column of a projection.

    Attributes:
        name: column name, unique within its projection.
        ctype: logical type.
        dictionary: for dictionary-coded string columns, the code->string
            mapping (index = code). Empty for plain numeric columns.
    """

    name: str
    ctype: ColumnType
    dictionary: tuple[str, ...] = field(default=())

    def decode_value(self, raw: int | float):
        """Map a stored value back to its logical value (string for coded columns)."""
        if self.dictionary:
            return self.dictionary[int(raw)]
        if self.ctype is DATE:
            return int_to_date(int(raw))
        return raw

    def encode_value(self, value) -> int | float:
        """Map a logical value to its stored representation."""
        if self.dictionary:
            try:
                return self.dictionary.index(value)
            except ValueError:
                raise EncodingError(
                    f"value {value!r} not in dictionary of column {self.name}"
                ) from None
        if self.ctype is DATE and isinstance(value, date):
            return date_to_int(value)
        return value
