"""Constant calibration (reproduces Table 2 for the current machine).

The paper obtained Table 2 "by running the small segments of code that only
performed the variable in question". We do the same against this substrate's
actual unit operations: numpy per-value column work for TICCOL, row-major
tuple stitching for TICTUP, Python function call overhead for FC, and a
buffer-pool hit for BIC. SEEK/READ stay at the paper's values — they belong
to the simulated disk, not the host machine.
"""

from __future__ import annotations

import time

import numpy as np

from .constants import PAPER_CONSTANTS, ModelConstants


def _time_us(fn, repeats: int = 5) -> float:
    """Best-of-N wall time of ``fn()`` in microseconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1e6


def measure_fc(calls: int = 200_000) -> float:
    """Per-call overhead of a trivial function, in microseconds."""

    def noop():
        return None

    def loop():
        for _ in range(calls):
            noop()

    return _time_us(loop) / calls


def measure_ticcol(n: int = 4_000_000) -> float:
    """Per-value cost of vector-style column iteration (predicate + emit)."""
    values = np.arange(n, dtype=np.int64)

    def work():
        mask = values < (n // 2)
        _ = values[mask]

    return _time_us(work) / n


def measure_tictup(n: int = 1_000_000) -> float:
    """Per-tuple cost of constructing/iterating row-major 2-ary tuples."""
    a = np.arange(n, dtype=np.int64)
    b = np.arange(n, dtype=np.int64)

    def work():
        data = np.empty((n, 2), dtype=np.int64)
        data[:, 0] = a
        data[:, 1] = b
        _ = data[data[:, 0] < (n // 2)]

    return _time_us(work) / n


def measure_bic(lookups: int = 100_000) -> float:
    """Per-call overhead of a buffer-pool hit (block iterator getNext)."""
    from ..buffer import BufferPool
    from ..metrics import QueryStats

    pool = BufferPool()
    pool._cache[("calib", 0)] = b"x"  # direct fixture: a guaranteed hit

    class _FakeFile:
        path = "calib"
        n_blocks = 1

        @staticmethod
        def read_payload(index):  # pragma: no cover - never reached on hits
            return b"x"

    stats = QueryStats()
    fake = _FakeFile()

    def loop():
        for _ in range(lookups):
            pool.get(fake, 0, stats)

    return _time_us(loop) / lookups


def calibrate_constants(quick: bool = False) -> ModelConstants:
    """Measure this machine's CPU constants; keep the paper's disk constants.

    Args:
        quick: shrink the measurement sizes (for tests).
    """
    scale = 10 if quick else 1
    return PAPER_CONSTANTS.with_overrides(
        fc=measure_fc(calls=200_000 // scale),
        ticcol=measure_ticcol(n=4_000_000 // scale),
        tictup=measure_tictup(n=1_000_000 // scale),
        bic=measure_bic(lookups=100_000 // scale),
    )
