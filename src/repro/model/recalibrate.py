"""Online recalibration: re-fit Table-2 constants from query-log traces.

:func:`repro.model.calibrate.calibrate_constants` measures the CPU
constants with synthetic micro-benchmarks; this module instead fits them
to *observed* workload: for every ok select record in a query log it asks
the predictor how many of each priced event (block iterations, column
iterations, tuple iterations, function calls, seeks, block reads) the
recorded plan performs, and solves the least-squares system

    features · k  ≈  measured simulated_ms

for the six per-event prices ``k``. The trick that makes feature
extraction cheap is that :func:`repro.model.predictor.predict_select` is
*linear* in the constants (holding ``PF`` fixed): evaluating it six times
with one-hot constants — e.g. ``bic=1`` and every other price zero —
yields exactly the coefficient of each constant in milliseconds per unit
price. (The one non-linear term, ``and_cost``'s ``m·TICCOL·FC`` cross
term, vanishes under a one-hot basis and is negligible at Table-2
magnitudes.)

Fitted values are clamped positive and finite — any non-finite,
non-positive, or wildly out-of-range component falls back to its baseline
value — and the fit is only *adopted* when its mean absolute prediction
error over the trace is no worse than the baseline constants', so
``repro calibrate --from-log`` can never regress what-if scoring.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from .constants import ModelConstants

#: The constants fitted from traces, in ModelConstants field order. ``pf``
#: is held at its baseline value: it is an integer prefetch window that
#: changes *which* seeks the model counts, not a per-event price.
FITTED_FIELDS = ("bic", "ticcol", "tictup", "fc", "seek", "read")

#: Per-component sanity band around the baseline: a fitted price outside
#: ``[baseline/CLAMP, baseline*CLAMP]`` reverts to the baseline value.
_CLAMP = 1000.0

#: Below this many usable records the fit is underdetermined noise; keep
#: the baseline outright.
_MIN_RECORDS = 6


def _basis(baseline: ModelConstants) -> list[ModelConstants]:
    """One-hot constants: field i priced at 1 µs, every other at 0."""
    out = []
    for name in FITTED_FIELDS:
        overrides = {f: 0.0 for f in FITTED_FIELDS}
        overrides[name] = 1.0
        out.append(baseline.with_overrides(**overrides))
    return out


def _record_features(db, record, basis, cache):
    """Per-record feature row: predicted ms per unit price of each constant.

    Pins the record's resolved strategy and projection (when recorded and
    still present) so the features describe the plan that produced the
    measurement. Returns an ``len(FITTED_FIELDS)``-vector or None when the
    record is not a usable select trace.
    """
    if record.get("kind") != "select" or record.get("outcome") != "ok":
        return None
    qdict = record.get("query")
    strategy_name = record.get("strategy")
    if not qdict or not strategy_name or "simulated_ms" not in record:
        return None
    proj_name = record.get("projection") or qdict.get("projection")
    key = (
        record.get("fingerprint", "-"),
        strategy_name,
        proj_name,
        json.dumps(qdict, sort_keys=True),
    )
    if key in cache:
        return cache[key]
    from ..planner.projection_choice import resolve_projection
    from ..planner.strategies import Strategy
    from ..serving.protocol import query_from_dict
    from .predictor import predict_select

    try:
        query = query_from_dict(qdict)
        strategy = Strategy.from_name(strategy_name)
        if proj_name is not None and proj_name in db.catalog:
            projection = db.catalog.get(proj_name)
        else:
            projection = resolve_projection(db.catalog, query)
        row = np.array(
            [
                predict_select(projection, query, strategy, constants=k)
                .total_ms
                for k in basis
            ],
            dtype=np.float64,
        )
    except (ReproError, ValueError):
        row = None
    cache[key] = row
    return row


@dataclass
class CalibrationReport:
    """Outcome of :func:`recalibrate_from_log`."""

    #: The constants to use: the fitted set when it predicted the trace at
    #: least as well as the baseline, otherwise the baseline unchanged.
    constants: ModelConstants
    #: The raw (clamped) least-squares fit, regardless of adoption.
    fitted: ModelConstants
    baseline: ModelConstants
    #: Usable ok-select records the fit was computed over.
    n_records: int
    #: Mean absolute error (ms) of each constant set's linear prediction
    #: against the measured simulated_ms over the trace.
    mae_fitted_ms: float
    mae_baseline_ms: float
    used_fitted: bool

    def to_dict(self) -> dict:
        return {
            "constants": self.constants.as_dict(),
            "fitted": self.fitted.as_dict(),
            "baseline": self.baseline.as_dict(),
            "n_records": self.n_records,
            "mae_fitted_ms": round(self.mae_fitted_ms, 6),
            "mae_baseline_ms": round(self.mae_baseline_ms, 6),
            "used_fitted": self.used_fitted,
        }

    def render(self) -> str:
        lines = [
            f"records        {self.n_records}",
            f"mae ms         fitted={self.mae_fitted_ms:.4f} "
            f"baseline={self.mae_baseline_ms:.4f}",
            f"adopted        "
            f"{'fitted' if self.used_fitted else 'baseline'}",
            "",
            f"{'constant':>10} {'baseline':>12} {'fitted':>12} "
            f"{'adopted':>12}",
        ]
        base, fit, use = (
            self.baseline.as_dict(),
            self.fitted.as_dict(),
            self.constants.as_dict(),
        )
        for name in base:
            lines.append(
                f"{name:>10} {base[name]:>12g} {fit[name]:>12g} "
                f"{use[name]:>12g}"
            )
        return "\n".join(lines)


def _clamped(baseline: ModelConstants, solution) -> ModelConstants:
    """Fold a raw solution vector into positive, finite, sane constants."""
    overrides = {}
    for name, value in zip(FITTED_FIELDS, solution):
        default = getattr(baseline, name)
        value = float(value)
        if (
            not np.isfinite(value)
            or value <= 0.0
            or value < default / _CLAMP
            or value > default * _CLAMP
        ):
            value = default
        overrides[name] = value
    return baseline.with_overrides(**overrides)


def recalibrate_from_log(
    db, records, constants: ModelConstants | None = None
) -> CalibrationReport:
    """Fit Table-2 constants to a query-log trace captured on *db*.

    *records* is an iterable of query-log dicts (e.g. from
    :func:`repro.qlog.read_query_log`); only ok select records that still
    cost cleanly against the catalog participate. *constants* is the
    baseline (default ``db.constants``). The result always carries
    positive, finite constants, and ``constants`` only differs from the
    baseline when the fit's trace MAE is no worse.
    """
    baseline = constants if constants is not None else db.constants
    basis = _basis(baseline)
    cache: dict = {}
    rows, targets = [], []
    for record in records:
        row = _record_features(db, record, basis, cache)
        if row is None:
            continue
        rows.append(row)
        targets.append(float(record["simulated_ms"]))

    n = len(rows)
    base_vec = np.array(
        [getattr(baseline, f) for f in FITTED_FIELDS], dtype=np.float64
    )
    if n == 0:
        return CalibrationReport(
            constants=baseline, fitted=baseline, baseline=baseline,
            n_records=0, mae_fitted_ms=0.0, mae_baseline_ms=0.0,
            used_fitted=False,
        )
    A = np.vstack(rows)
    y = np.array(targets, dtype=np.float64)
    mae_baseline = float(np.mean(np.abs(A @ base_vec - y)))
    if n < _MIN_RECORDS:
        return CalibrationReport(
            constants=baseline, fitted=baseline, baseline=baseline,
            n_records=n, mae_fitted_ms=mae_baseline,
            mae_baseline_ms=mae_baseline, used_fitted=False,
        )
    solution, *_ = np.linalg.lstsq(A, y, rcond=None)
    fitted = _clamped(baseline, solution)
    fit_vec = np.array(
        [getattr(fitted, f) for f in FITTED_FIELDS], dtype=np.float64
    )
    mae_fitted = float(np.mean(np.abs(A @ fit_vec - y)))
    used_fitted = mae_fitted <= mae_baseline
    return CalibrationReport(
        constants=fitted if used_fitted else baseline,
        fitted=fitted,
        baseline=baseline,
        n_records=n,
        mae_fitted_ms=mae_fitted,
        mae_baseline_ms=mae_baseline,
        used_fitted=used_fitted,
    )
