"""The paper's analytical cost model (Section 3).

Three layers:

* :mod:`~repro.model.constants` — Table 2's calibrated CPU/disk constants.
* :mod:`~repro.model.cost` — per-operator cost formulas (Figures 1-6) plus
  the replay function that converts a finished query's observed counters into
  model milliseconds ("simulated time").
* :mod:`~repro.model.predictor` — a-priori end-to-end plan cost prediction
  from column metadata and estimated selectivities, used both for the
  Figure 10 validation and by the strategy-choosing optimizer.
* :mod:`~repro.model.morph` — per-block stay-compressed vs. morph decisions
  for the compressed-execution kernels, in the same microsecond currency.
* :mod:`~repro.model.recalibrate` — least-squares re-fit of the Table-2
  constants from observed query-log traces (``repro calibrate --from-log``).
"""

from .constants import ModelConstants, PAPER_CONSTANTS
from .cost import (
    AndCost,
    ColumnMeta,
    OperatorCost,
    and_cost,
    ds_case1_cost,
    ds_case2_cost,
    ds_case3_cost,
    ds_case4_cost,
    merge_cost,
    simulated_time_ms,
    spc_cost,
)
from .predictor import predict_join, predict_select
from .calibrate import calibrate_constants
from .recalibrate import CalibrationReport, recalibrate_from_log
from .morph import (
    MorphDecision,
    dictionary_scan_decision,
    for_scan_decision,
    morph_scan_us,
    rle_scan_decision,
)

__all__ = [
    "ModelConstants",
    "PAPER_CONSTANTS",
    "ColumnMeta",
    "OperatorCost",
    "AndCost",
    "ds_case1_cost",
    "ds_case2_cost",
    "ds_case3_cost",
    "ds_case4_cost",
    "and_cost",
    "merge_cost",
    "spc_cost",
    "simulated_time_ms",
    "predict_select",
    "predict_join",
    "calibrate_constants",
    "CalibrationReport",
    "recalibrate_from_log",
    "MorphDecision",
    "rle_scan_decision",
    "dictionary_scan_decision",
    "for_scan_decision",
    "morph_scan_us",
]
