"""The paper's analytical cost model (Section 3).

Three layers:

* :mod:`~repro.model.constants` — Table 2's calibrated CPU/disk constants.
* :mod:`~repro.model.cost` — per-operator cost formulas (Figures 1-6) plus
  the replay function that converts a finished query's observed counters into
  model milliseconds ("simulated time").
* :mod:`~repro.model.predictor` — a-priori end-to-end plan cost prediction
  from column metadata and estimated selectivities, used both for the
  Figure 10 validation and by the strategy-choosing optimizer.
"""

from .constants import ModelConstants, PAPER_CONSTANTS
from .cost import (
    AndCost,
    ColumnMeta,
    OperatorCost,
    and_cost,
    ds_case1_cost,
    ds_case2_cost,
    ds_case3_cost,
    ds_case4_cost,
    merge_cost,
    simulated_time_ms,
    spc_cost,
)
from .predictor import predict_join, predict_select
from .calibrate import calibrate_constants

__all__ = [
    "ModelConstants",
    "PAPER_CONSTANTS",
    "ColumnMeta",
    "OperatorCost",
    "AndCost",
    "ds_case1_cost",
    "ds_case2_cost",
    "ds_case3_cost",
    "ds_case4_cost",
    "and_cost",
    "merge_cost",
    "spc_cost",
    "simulated_time_ms",
    "predict_select",
    "predict_join",
    "calibrate_constants",
]
