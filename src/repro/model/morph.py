"""Cost hooks for the stay-compressed vs. morph decision.

Compressed execution (``repro.compressed``) must decide, per block, whether
to run the predicate in the encoded domain (RLE runs, dictionary codes, FOR
deltas) or to *morph* — decode to a value array and take the classic decoded
scan path. The decision is a cost comparison in the analytical model's own
currency (Table 1 microsecond constants), so the rules stay calibrated with
everything else in ``model/``:

* **stay** — work proportional to the encoding's unit count (runs or
  distinct codes) plus any per-value touch at the *narrow* stored width;
* **morph** — one predicate application and one column-iterator step per
  decoded value, the decoded fast path's per-block cost.

The practical upshot at the paper constants: RLE stays compressed while
runs actually compress (average run length above ~1.6 values) and morphs on
run-per-value blocks, where the run table is pure overhead; dictionary
always stays (the per-value touch is 1-4 narrow bytes vs. 8 decoded);
FOR stays whenever the predicate translates to offset space.
"""

from __future__ import annotations

from dataclasses import dataclass

from .constants import ModelConstants


@dataclass(frozen=True)
class MorphDecision:
    """Modelled microseconds for both choices on one block."""

    stay_us: float
    morph_us: float

    @property
    def stay(self) -> bool:
        return self.stay_us <= self.morph_us


def morph_scan_us(n_values: int, k: ModelConstants) -> float:
    """Modelled cost of the decoded path: per-value compare + emit."""
    return n_values * (k.ticcol + k.fc)


def rle_scan_decision(
    n_values: int, n_runs: int, k: ModelConstants
) -> MorphDecision:
    """Run-table kernel: one compare (FC) and one emitted boundary pair
    (two column-iterator touches) per run."""
    stay = n_runs * (k.fc + 2 * k.ticcol)
    return MorphDecision(stay_us=stay, morph_us=morph_scan_us(n_values, k))


def dictionary_scan_decision(
    n_values: int, n_distinct: int, code_width_bytes: int, k: ModelConstants
) -> MorphDecision:
    """Code-domain kernel: one compare per distinct value, then one touch
    per stored code at its narrow width (1-4 bytes vs. 8 decoded)."""
    stay = n_distinct * k.fc + n_values * k.ticcol * (code_width_bytes / 8.0)
    return MorphDecision(stay_us=stay, morph_us=morph_scan_us(n_values, k))


def for_scan_decision(
    n_values: int, width_bits: int, translatable: bool, k: ModelConstants
) -> MorphDecision:
    """Offset-space kernel: one touch per value at the packed width; only
    available when the predicate constant rebases exactly."""
    if not translatable:
        return MorphDecision(
            stay_us=float("inf"), morph_us=morph_scan_us(n_values, k)
        )
    stay = n_values * k.ticcol * (width_bits / 64.0)
    return MorphDecision(stay_us=stay, morph_us=morph_scan_us(n_values, k))
