"""Per-operator cost formulas (paper Figures 1-6) and stats replay.

Every function returns an :class:`OperatorCost` with separate CPU and I/O
microsecond components, computed exactly as the paper's figures specify. The
notation follows Table 1:

=============  =====================================================
``|C|``        number of disk blocks of a column      (``meta.blocks``)
``||C||``      number of tuples in a column           (``meta.tuples``)
``RL``         average run length (1 if uncompressed) (``meta.run_length``)
``F``          fraction of the column in the pool     (``meta.resident``)
``SF``         predicate selectivity factor
=============  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics import QueryStats
from .constants import ModelConstants


@dataclass(frozen=True)
class ColumnMeta:
    """The model's per-column inputs."""

    blocks: int
    tuples: int
    run_length: float = 1.0
    resident: float = 0.0  # the model's F

    @classmethod
    def from_file(cls, column_file, resident: float = 0.0) -> "ColumnMeta":
        return cls(
            blocks=column_file.n_blocks,
            tuples=column_file.n_values,
            run_length=column_file.avg_run_length,
            resident=resident,
        )


@dataclass(frozen=True)
class OperatorCost:
    """CPU and I/O microseconds for one operator application."""

    cpu_us: float = 0.0
    io_us: float = 0.0

    @property
    def total_us(self) -> float:
        return self.cpu_us + self.io_us

    def __add__(self, other: "OperatorCost") -> "OperatorCost":
        return OperatorCost(self.cpu_us + other.cpu_us, self.io_us + other.io_us)


def _scan_io(
    meta: ColumnMeta,
    k: ModelConstants,
    block_fraction: float = 1.0,
    sequential: bool = True,
):
    """The model's I/O term, matched to the executor's disk accounting.

    The paper writes ``(|C|/PF * SEEK + f*|C| * READ) * (1 - F)``; our disk
    model (like any properly pipelined scan) pays a seek only when the head
    actually moves, so sequential scans pay one seek per scan while scattered
    positional access pays one per touched block group.
    """
    blocks_read = block_fraction * meta.blocks
    if blocks_read <= 0:
        return 0.0
    seeks = max(blocks_read / k.pf, 1.0) if not sequential else 1.0
    return (seeks * k.seek + blocks_read * k.read) * (1.0 - meta.resident)


def _scan_read_fraction(meta: ColumnMeta, sf: float) -> float:
    """Fraction of blocks a predicate scan must read.

    Columns with substantial run structure are (semi-)sorted, so matches are
    localized and min/max block skipping prunes the rest — the effect that
    lets pipelined plans "skip entire LINENUM blocks" at low selectivity.
    """
    if meta.blocks == 0:
        return 0.0
    if meta.run_length > 4.0:
        return min(1.0, sf + 2.0 / meta.blocks)
    return 1.0


def ds_case1_cost(
    meta: ColumnMeta,
    sf: float,
    k: ModelConstants,
    read_fraction: float | None = None,
) -> OperatorCost:
    """DS_Scan-Case1 (Figure 1): scan + predicate -> positions.

    ``read_fraction`` overrides the run-length clusteredness heuristic with
    an exact block-overlap measurement when the caller has descriptors.
    """
    fraction = (
        read_fraction if read_fraction is not None
        else _scan_read_fraction(meta, sf)
    )
    cpu = (
        meta.blocks * k.bic
        + fraction * meta.tuples * (k.ticcol + k.fc) / meta.run_length
        + sf * meta.tuples * k.fc
    )
    return OperatorCost(cpu_us=cpu, io_us=_scan_io(meta, k, block_fraction=fraction))


def ds_case2_cost(
    meta: ColumnMeta,
    sf: float,
    k: ModelConstants,
    read_fraction: float | None = None,
) -> OperatorCost:
    """DS_Scan-Case2: as Case 1 but step 5 emits (pos, value) pair tuples."""
    fraction = (
        read_fraction if read_fraction is not None
        else _scan_read_fraction(meta, sf)
    )
    cpu = (
        meta.blocks * k.bic
        + fraction * meta.tuples * (k.ticcol + k.fc) / meta.run_length
        + sf * meta.tuples * (k.tictup + k.fc)
    )
    return OperatorCost(cpu_us=cpu, io_us=_scan_io(meta, k, block_fraction=fraction))


def ds_case3_cost(
    meta: ColumnMeta,
    poslist: int,
    pos_run_length: float,
    k: ModelConstants,
    reaccess: bool = False,
    seek_fragments: float | None = None,
) -> OperatorCost:
    """DS_Scan-Case3 (Figure 2): position-filtered value extraction.

    ``reaccess=True`` is the multi-column / pipelined case: the column's
    blocks were already touched earlier in the plan, so F = 1 and I/O -> 0.
    ``poslist`` approximates the SF * |C| block-read lower bound of step 2.
    ``seek_fragments`` caps the seek count when the positions are known to be
    localized into that many contiguous slabs (predicates over sorted
    columns); by default every touched block is assumed to need a seek.
    """
    groups = poslist / max(pos_run_length, 1.0)
    cpu = meta.blocks * k.bic + groups * k.ticcol + groups * (k.ticcol + k.fc)
    if reaccess or meta.tuples == 0:
        return OperatorCost(cpu_us=cpu, io_us=0.0)
    blocks_read = min(poslist / meta.tuples, 1.0) * meta.blocks
    if blocks_read <= 0:
        return OperatorCost(cpu_us=cpu, io_us=0.0)
    seeks = max(blocks_read / k.pf, 1.0)
    if seek_fragments is not None:
        seeks = min(seeks, max(float(seek_fragments), 1.0))
    io = (seeks * k.seek + blocks_read * k.read) * (1.0 - meta.resident)
    return OperatorCost(cpu_us=cpu, io_us=io)


def ds_case4_cost(
    meta: ColumnMeta, em_tuples: int, sf: float, k: ModelConstants
) -> OperatorCost:
    """DS_Scan-Case4 (Figure 3): extend EM tuples through a column."""
    cpu = (
        meta.blocks * k.bic
        + em_tuples * k.tictup
        + em_tuples * ((k.fc + k.tictup) + k.fc)
        + sf * em_tuples * k.tictup
    )
    # Input positions are ascending, so only blocks covering them are read
    # (in order) — EM-pipelined's block-skipping advantage.
    fraction = min(em_tuples / meta.tuples, 1.0) if meta.tuples else 0.0
    return OperatorCost(
        cpu_us=cpu, io_us=_scan_io(meta, k, block_fraction=fraction)
    )


@dataclass(frozen=True)
class AndCost:
    """Inputs for one AND operand: positions and their average run length."""

    poslist: int
    run_length: float = 1.0


def and_cost(inputs: list[AndCost], k: ModelConstants) -> OperatorCost:
    """AND (Figure 4): streaming intersection of k position lists.

    For bit-string inputs pass ``run_length=32`` (or 64): the paper's Case 2
    replaces ``||inpos||/RL`` with ``||inpos||/wordsize``.
    """
    groups = [i.poslist / max(i.run_length, 1.0) for i in inputs]
    m = max(groups, default=0.0)
    cpu = (
        sum(k.ticcol * g for g in groups)
        + m * (len(inputs) - 1) * k.fc
        + m * k.ticcol * k.fc
    )
    return OperatorCost(cpu_us=cpu, io_us=0.0)


def merge_cost(n_tuples: int, degree: int, k: ModelConstants) -> OperatorCost:
    """MERGE (Figure 5): stitch k value vectors into n k-ary tuples."""
    cpu = n_tuples * degree * k.fc + n_tuples * degree * k.fc
    return OperatorCost(cpu_us=cpu, io_us=0.0)


def spc_cost(
    metas: list[ColumnMeta], sfs: list[float], k: ModelConstants
) -> OperatorCost:
    """SPC (Figure 6): scan all columns, short-circuit predicates, construct.

    ``metas[i]`` and ``sfs[i]`` must be ordered as the predicates are applied;
    columns without a predicate carry ``sf = 1``.
    """
    cpu = 0.0
    io = 0.0
    running_sf = 1.0
    for meta, sf in zip(metas, sfs):
        cpu += meta.blocks * k.bic
        cpu += meta.tuples * k.fc * running_sf
        io += _scan_io(meta, k)
        running_sf *= sf
    if metas:
        cpu += metas[-1].tuples * k.tictup * running_sf
    return OperatorCost(cpu_us=cpu, io_us=io)


def output_cost(n_tuples: int, k: ModelConstants) -> OperatorCost:
    """Final result iteration: numOutTuples * TICTUP (Section 3.7)."""
    return OperatorCost(cpu_us=n_tuples * k.tictup, io_us=0.0)


def simulated_time_ms(stats: QueryStats, k: ModelConstants) -> float:
    """Replay observed execution counters through the model's constants.

    This is the "simulated time" benchmarks report alongside wall-clock: the
    model's per-unit costs applied to what the executor actually did (blocks
    read, iterator steps taken, tuples stitched), rather than to a-priori
    estimates.
    """
    cpu_us = (
        stats.block_iterations * k.bic
        + stats.column_iterations * k.ticcol
        + stats.tuple_iterations * k.tictup
        + stats.function_calls * k.fc
    )
    return (cpu_us + stats.simulated_io_us) / 1000.0


def replay_breakdown(stats: QueryStats, k: ModelConstants) -> dict[str, float]:
    """Per-term milliseconds of the simulated-time replay.

    The EXPLAIN ANALYZE renderer uses this to show *which* Table 1 term a
    span's simulated time comes from; the values sum to
    :func:`simulated_time_ms` exactly.
    """
    return {
        "BIC_ms": stats.block_iterations * k.bic / 1000.0,
        "TICCOL_ms": stats.column_iterations * k.ticcol / 1000.0,
        "TICTUP_ms": stats.tuple_iterations * k.tictup / 1000.0,
        "FC_ms": stats.function_calls * k.fc / 1000.0,
        "IO_ms": stats.simulated_io_us / 1000.0,
    }
