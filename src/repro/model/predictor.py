"""A-priori end-to-end plan cost prediction.

Composes the per-operator formulas of :mod:`repro.model.cost` into whole-plan
predictions for each materialization strategy, mirroring how Section 3.5's
example plans chain DS/AND/MERGE/SPC operators. Selectivities come from the
header-only estimator; nothing here reads block payloads.

The join predictor extends the paper's model (which stops at selection /
aggregation plans) with the obvious per-strategy terms; DESIGN.md lists it as
an extension.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..planner.estimate import (
    estimate_block_fragments,
    estimate_read_fraction,
    estimate_selectivity,
)
from ..errors import CatalogError, StorageError
from ..predicates import combine_column_predicates
from ..planner.logical import JoinQuery, SelectQuery
from ..planner.strategies import RightTableStrategy, Strategy
from ..storage.projection import Projection
from .constants import PAPER_CONSTANTS, ModelConstants
from .cost import (
    AndCost,
    ColumnMeta,
    OperatorCost,
    and_cost,
    ds_case1_cost,
    ds_case2_cost,
    ds_case3_cost,
    ds_case4_cost,
    merge_cost,
    output_cost,
    spc_cost,
)

_BITMAP_WORD = 64


@dataclass
class PlanPrediction:
    """Predicted cost of one strategy for one query."""

    strategy: str
    steps: list[tuple[str, OperatorCost]] = field(default_factory=list)

    def add(self, name: str, cost: OperatorCost) -> None:
        self.steps.append((name, cost))

    @property
    def cpu_ms(self) -> float:
        return sum(c.cpu_us for _n, c in self.steps) / 1000.0

    @property
    def io_ms(self) -> float:
        return sum(c.io_us for _n, c in self.steps) / 1000.0

    @property
    def total_ms(self) -> float:
        return self.cpu_ms + self.io_ms

    def breakdown(self) -> dict[str, float]:
        return {name: cost.total_us / 1000.0 for name, cost in self.steps}


def _position_run_length(meta: ColumnMeta, sf: float) -> float:
    """Estimated RLp of the positions a DS1 scan of this column produces.

    Predicates over run-length encoded columns pass or fail whole runs, so
    surviving positions inherit the column's run structure. Dense survivor
    sets over fine-grained columns become bitmaps (64 positions per word);
    sparse ones degrade to per-position lists.
    """
    if meta.run_length > 1.0:
        return meta.run_length
    return float(_BITMAP_WORD) if sf > 1.0 / _BITMAP_WORD else 1.0


def _query_metadata(
    projection: Projection, query: SelectQuery, resident: float
) -> tuple[dict[str, ColumnMeta], dict[str, float], list[str]]:
    enc = query.encoding_map
    metas: dict[str, ColumnMeta] = {}
    sfs: dict[str, float] = {}
    for col in query.all_columns:
        cf = projection.column(col).file(enc.get(col))
        metas[col] = ColumnMeta.from_file(cf, resident=resident)
    ordered: list[tuple[str, float]] = []
    by_column: dict[str, list] = {}
    for pred in query.predicates:
        by_column.setdefault(pred.column, []).append(pred)
    fragments = None
    fractions: dict[str, float] = {}
    indexed: dict[str, bool] = {}
    for col, preds in by_column.items():
        cf = projection.column(col).file(enc.get(col))
        combined = combine_column_predicates(preds)
        sf = 1.0
        for p in preds:
            sf *= estimate_selectivity(cf, p)
        sfs[col] = sf
        fractions[col] = estimate_read_fraction(cf, combined)
        indexed[col] = projection.column(col).index is not None and all(
            getattr(p, "in_values", None) is not None or p.op != "!="
            for p in preds
        )
        ordered.append((col, sf))
    ordered.sort(key=lambda item: item[1])
    ordered_names = [col for col, _sf in ordered]
    if ordered_names:
        first = ordered_names[0]
        cf = projection.column(first).file(enc.get(first))
        fragments = estimate_block_fragments(
            cf, combine_column_predicates(by_column[first])
        )
    return metas, sfs, ordered_names, fragments, fractions, indexed


def _estimated_groups(projection: Projection, query: SelectQuery, survivors: float) -> float:
    """Crude distinct-group estimate for aggregate output sizing."""
    bound = 1.0
    for col in query.group_columns:
        cf = projection.column(col).file(query.encoding_map.get(col))
        bound *= cf.total_runs if cf.encoding.supports_runs else cf.n_values
    return min(bound, survivors)


def predict_select(
    projection: Projection,
    query: SelectQuery,
    strategy: Strategy,
    constants: ModelConstants = PAPER_CONSTANTS,
    resident: float = 0.0,
) -> PlanPrediction:
    """Predict the end-to-end cost of *query* under *strategy*.

    Args:
        resident: the model's F for first-access columns (0 = cold cache).
    """
    if projection.is_partitioned:
        return _predict_partitioned(
            projection, query, strategy, constants, resident
        )
    k = constants
    metas, sfs, ordered, fragments, fractions, indexed = _query_metadata(
        projection, query, resident
    )

    def ds1(col):
        """DS1 prediction: index-derived positions when available."""
        if indexed.get(col):
            # Binary search over the index: no blocks touched at all.
            return OperatorCost(cpu_us=16 * k.fc, io_us=0.0)
        return ds_case1_cost(
            metas[col], sfs[col], k, read_fraction=fractions.get(col)
        )
    n = projection.n_rows
    sf_total = math.prod(sfs.values()) if sfs else 1.0
    survivors = sf_total * n
    pred = PlanPrediction(strategy=strategy.value)

    value_cols = query.value_columns
    if query.aggregates:
        out_tuples = _estimated_groups(projection, query, survivors)
    else:
        out_tuples = survivors

    if strategy is Strategy.LM_PARALLEL:
        rlp_out = math.inf
        for col in ordered:
            pred.add(f"DS1({col})", ds1(col))
            rlp_out = min(rlp_out, _position_run_length(metas[col], sfs[col]))
        if not ordered:
            rlp_out = float(n)
        if len(ordered) > 1:
            inputs = [
                AndCost(
                    poslist=int(sfs[col] * n),
                    run_length=_position_run_length(metas[col], sfs[col]),
                )
                for col in ordered
            ]
            pred.add("AND", and_cost(inputs, k))
        for col in value_cols:
            # Scanned earlier -> pinned mini-column; index-derived positions
            # never touched the column, so its extraction is a first access.
            reaccess = col in sfs and not indexed.get(col)
            # Extraction from run-length columns jumps per run, not per
            # position, whatever the position representation.
            extraction_rl = max(rlp_out, metas[col].run_length)
            pred.add(
                f"DS3({col})",
                ds_case3_cost(
                    metas[col],
                    int(survivors),
                    extraction_rl,
                    k,
                    reaccess=reaccess,
                    seek_fragments=fragments,
                ),
            )
        pred.add(*_lm_tail(query, survivors, out_tuples, len(value_cols), k))
    elif strategy is Strategy.LM_PIPELINED:
        running = float(n)
        rlp = float(n)
        for i, col in enumerate(ordered):
            if i == 0:
                pred.add(f"DS1({col})", ds1(col))
                rlp = _position_run_length(metas[col], sfs[col])
            else:
                cost = ds_case3_cost(
                    metas[col], int(running), rlp, k, seek_fragments=fragments
                )
                extra = OperatorCost(cpu_us=running * k.fc, io_us=0.0)
                pred.add(f"DS3+pred({col})", cost + extra)
                rlp = min(rlp, _position_run_length(metas[col], sfs[col]))
            running *= sfs[col]
        for col in value_cols:
            reaccess = (
                bool(ordered) and col == ordered[0] and not indexed.get(col)
            )
            extraction_rl = max(rlp, metas[col].run_length)
            pred.add(
                f"DS3({col})",
                ds_case3_cost(
                    metas[col],
                    int(survivors),
                    extraction_rl,
                    k,
                    reaccess=reaccess,
                    seek_fragments=fragments,
                ),
            )
        pred.add(*_lm_tail(query, survivors, out_tuples, len(value_cols), k))
    elif strategy is Strategy.EM_PIPELINED:
        running = float(n)
        cols = ordered or value_cols[:1]
        first = cols[0]
        pred.add(
            f"DS2({first})",
            ds_case2_cost(
                metas[first],
                sfs.get(first, 1.0),
                k,
                read_fraction=fractions.get(first),
            ),
        )
        running *= sfs.get(first, 1.0)
        remaining = cols[1:] + [c for c in value_cols if c not in cols]
        for col in remaining:
            pred.add(
                f"DS4({col})",
                ds_case4_cost(metas[col], int(running), sfs.get(col, 1.0), k),
            )
            running *= sfs.get(col, 1.0)
        pred.add(*_em_tail(query, survivors, out_tuples, k))
    elif strategy is Strategy.EM_PARALLEL:
        spc_cols = ordered + [c for c in value_cols if c not in ordered]
        pred.add(
            "SPC",
            spc_cost(
                [metas[c] for c in spc_cols],
                [sfs.get(c, 1.0) for c in spc_cols],
                k,
            ),
        )
        pred.add(*_em_tail(query, survivors, out_tuples, k))
    return pred


def _predict_partitioned(
    projection: Projection,
    query: SelectQuery,
    strategy: Strategy,
    constants: ModelConstants,
    resident: float,
) -> PlanPrediction:
    """Partitioned prediction: the sum over surviving partitions.

    Each survivor is predicted as an independent sub-plan over its child
    projection (whose block counts, run lengths and histograms describe
    exactly the rows the executor will touch), so the whole-query prediction
    — and EXPLAIN's per-step attribution — stays exact under pruning. A
    fully pruned query predicts (and costs) zero.
    """
    from ..planner.partitioned import prune_partitions

    survivors, _total = prune_partitions(projection, query)
    pred = PlanPrediction(strategy=strategy.value)
    for part in survivors:
        try:
            child = predict_select(
                part.open(),
                query,
                strategy,
                constants=constants,
                resident=resident,
            )
        except CatalogError:
            raise
        except (StorageError, OSError) as exc:
            # Prediction reads block headers; a lost partition file must
            # surface as a catalog failure naming the partition here too.
            raise CatalogError(
                f"partition {part.name!r} of projection "
                f"{projection.name!r} is unreadable: {exc}"
            ) from exc
        for name, cost in child.steps:
            pred.add(f"{part.name}:{name}", cost)
    return pred


def _lm_tail(
    query: SelectQuery,
    survivors: float,
    out_tuples: float,
    degree: int,
    k: ModelConstants,
) -> tuple[str, OperatorCost]:
    """Aggregation-or-merge plus output for LM plans."""
    if query.aggregates:
        agg = OperatorCost(cpu_us=survivors * k.ticcol, io_us=0.0)
        tail = agg + merge_cost(int(out_tuples), degree, k) + output_cost(
            int(out_tuples), k
        )
        return "aggregate+output", tail
    tail = merge_cost(int(survivors), degree, k) + output_cost(int(out_tuples), k)
    return "merge+output", tail


def _em_tail(
    query: SelectQuery, survivors: float, out_tuples: float, k: ModelConstants
) -> tuple[str, OperatorCost]:
    """Aggregation (tuple-iterator input) plus output for EM plans."""
    if query.aggregates:
        agg = OperatorCost(cpu_us=survivors * k.tictup, io_us=0.0)
        return "aggregate+output", agg + output_cost(int(out_tuples), k)
    return "output", output_cost(int(out_tuples), k)


def predict_join(
    left_projection: Projection,
    right_projection: Projection,
    query: JoinQuery,
    right_strategy: RightTableStrategy,
    constants: ModelConstants = PAPER_CONSTANTS,
    resident: float = 0.0,
) -> PlanPrediction:
    """Predict join cost per inner-table strategy (our model extension)."""
    k = constants
    enc = query.encoding_map
    pred = PlanPrediction(strategy=right_strategy.value)
    n_left = left_projection.n_rows
    n_right = right_projection.n_rows

    left_key_file = left_projection.column(query.left_key).file(
        enc.get(query.left_key)
    )
    sf = 1.0
    for p in query.left_predicates:
        sf *= estimate_selectivity(left_key_file, p)
    matches = sf * n_left

    left_meta = ColumnMeta.from_file(left_key_file, resident=resident)
    pred.add("DS1(left key)", ds_case1_cost(left_meta, sf, k))
    rlp = _position_run_length(left_meta, sf)
    pred.add(
        "DS3(left key)", ds_case3_cost(left_meta, int(matches), rlp, k, reaccess=True)
    )

    right_metas = {
        c: ColumnMeta.from_file(
            right_projection.column(c).file(enc.get(c)), resident=resident
        )
        for c in (query.right_key, *query.right_select)
    }
    probe = OperatorCost(
        cpu_us=n_right * k.ticcol + n_right * k.fc + matches * k.fc, io_us=0.0
    )
    if right_strategy is RightTableStrategy.MATERIALIZED:
        pred.add(
            "SPC(right)",
            spc_cost(list(right_metas.values()), [1.0] * len(right_metas), k),
        )
        pred.add("probe+emit", probe + OperatorCost(cpu_us=matches * k.tictup))
    elif right_strategy is RightTableStrategy.MULTI_COLUMN:
        io = sum(
            (m.blocks / k.pf * k.seek + m.blocks * k.read) * (1 - m.resident)
            for m in right_metas.values()
        )
        cpu = sum(m.blocks * k.bic for m in right_metas.values())
        pred.add("pin(right)", OperatorCost(cpu_us=cpu, io_us=io))
        extract = OperatorCost(
            cpu_us=matches * (len(query.right_select)) * (k.fc + k.ticcol)
        )
        pred.add("probe+extract", probe + extract)
    else:
        key_meta = right_metas[query.right_key]
        pred.add("DS3(right key)", ds_case3_cost(key_meta, n_right, n_right, k))
        # Out-of-order positional fetch: sort the match positions, then one
        # jump per match per column — the pure-LM penalty.
        log_n = math.log2(max(matches, 2.0))
        sort = OperatorCost(cpu_us=matches * log_n * k.fc)
        fetch = OperatorCost(
            cpu_us=matches
            * len(query.right_select)
            * (k.ticcol + 2 * k.fc)
        )
        io = sum(
            (m.blocks / k.pf * k.seek + m.blocks * k.read) * (1 - m.resident)
            for c, m in right_metas.items()
            if c != query.right_key
        )
        pred.add("probe", probe)
        pred.add("fetch out-of-order", sort + fetch + OperatorCost(io_us=io))

    fetch_left = ds_case3_cost(
        ColumnMeta.from_file(
            left_projection.column(query.left_select[0]).file(
                enc.get(query.left_select[0])
            ),
            resident=resident,
        )
        if query.left_select
        else left_meta,
        int(matches),
        rlp,
        k,
    )
    pred.add("DS3(left values)", fetch_left)
    pred.add(
        "merge+output",
        merge_cost(
            int(matches), len(query.left_select) + len(query.right_select), k
        )
        + output_cost(int(matches), k),
    )
    return pred
