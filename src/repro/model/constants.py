"""Model constants (paper Table 2).

The defaults are the paper's measured values on its 3.8 GHz Pentium 4
testbed. :func:`repro.model.calibrate.calibrate_constants` re-measures the
CPU constants on the current machine; the disk constants are part of the
simulated disk model and normally stay at the paper's values.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ModelConstants:
    """CPU and I/O cost constants, all in microseconds (PF in blocks).

    Attributes:
        bic: getNext() on a block iterator (BIC).
        tictup: getNext() on a tuple iterator (TICTUP).
        ticcol: getNext() on a column iterator (TICCOL).
        fc: one function call (FC).
        pf: prefetch window in blocks (PF).
        seek: one disk seek (SEEK).
        read: one 64 KB block transfer (READ).
    """

    bic: float = 0.020
    tictup: float = 0.065
    ticcol: float = 0.014
    fc: float = 0.009
    pf: int = 1
    seek: float = 2500.0
    read: float = 1000.0

    def with_overrides(self, **kwargs) -> "ModelConstants":
        return replace(self, **kwargs)

    def as_dict(self) -> dict:
        return {
            "BIC": self.bic,
            "TICTUP": self.tictup,
            "TICCOL": self.ticcol,
            "FC": self.fc,
            "PF": self.pf,
            "SEEK": self.seek,
            "READ": self.read,
        }


PAPER_CONSTANTS = ModelConstants()
"""Table 2 of the paper, verbatim."""
