"""A small SQL front-end for the paper's query subset.

Supports exactly the query shapes the paper evaluates::

    SELECT shipdate, linenum FROM lineitem
    WHERE shipdate < '1994-01-01' AND linenum < 7

    SELECT shipdate, SUM(linenum) FROM lineitem
    WHERE shipdate < '1994-01-01' AND linenum < 7
    GROUP BY shipdate

    SELECT o.shipdate, c.nationcode FROM orders o, customer c
    WHERE o.custkey = c.custkey AND o.custkey < 150

Statements are tokenized (:mod:`.lexer`), parsed into an AST (:mod:`.parser`,
:mod:`.ast`), then bound against the catalog (:mod:`.binder`) into the same
:class:`~repro.planner.logical.SelectQuery` / ``JoinQuery`` objects the
programmatic API uses — dates and dictionary strings are encoded using the
target column's schema during binding.
"""

from .ast import ColumnRef, Comparison, FuncCall, InList, JoinCondition, SelectStatement
from .lexer import Token, tokenize
from .parser import parse
from .binder import bind

__all__ = [
    "tokenize",
    "Token",
    "parse",
    "bind",
    "SelectStatement",
    "ColumnRef",
    "FuncCall",
    "Comparison",
    "InList",
    "JoinCondition",
]
