"""SQL tokenizer."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SQLError

KEYWORDS = frozenset(
    {"SELECT", "FROM", "WHERE", "AND", "OR", "GROUP", "BY", "AS",
     "BETWEEN", "IN", "ORDER", "ASC", "DESC", "LIMIT", "HAVING",
     "DISTINCT"}
)

OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">")
PUNCTUATION = (",", "(", ")", ".", "*")


@dataclass(frozen=True)
class Token:
    """One lexical token.

    Attributes:
        kind: "keyword", "ident", "number", "string", "op", "punct" or "eof".
        value: normalized token text (keywords uppercased).
        pos: character offset in the source, for error messages.
    """

    kind: str
    value: str
    pos: int


def tokenize(text: str) -> list[Token]:
    """Tokenize a statement; raises :class:`SQLError` on unknown characters."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            end = text.find("'", i + 1)
            if end < 0:
                raise SQLError(f"unterminated string literal at offset {i}")
            tokens.append(Token("string", text[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit() or (
            ch == "-" and i + 1 < n and text[i + 1].isdigit() and _number_context(tokens)
        ):
            j = i + 1
            while j < n and (text[j].isdigit() or text[j] == "."):
                j += 1
            tokens.append(Token("number", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, i))
            else:
                tokens.append(Token("ident", word.lower(), i))
            i = j
            continue
        matched = False
        for op in OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("op", op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in PUNCTUATION:
            tokens.append(Token("punct", ch, i))
            i += 1
            continue
        raise SQLError(f"unexpected character {ch!r} at offset {i}")
    tokens.append(Token("eof", "", n))
    return tokens


def _number_context(tokens: list[Token]) -> bool:
    """A '-' starts a negative number only after an operator/keyword/'('."""
    if not tokens:
        return True
    last = tokens[-1]
    return last.kind in ("op", "keyword") or last.value in (",", "(")
