"""Recursive-descent parser for the supported SQL subset."""

from __future__ import annotations

from ..errors import SQLError
from .ast import (
    ColumnRef,
    Comparison,
    FuncCall,
    InList,
    JoinCondition,
    SelectStatement,
    TableRef,
)
from .lexer import Token, tokenize

_AGG_FUNCS = frozenset({"sum", "count", "min", "max", "avg"})


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.i = 0

    @property
    def current(self) -> Token:
        return self.tokens[self.i]

    def advance(self) -> Token:
        tok = self.current
        self.i += 1
        return tok

    def expect(self, kind: str, value: str | None = None) -> Token:
        tok = self.current
        if tok.kind != kind or (value is not None and tok.value != value):
            want = value or kind
            raise SQLError(
                f"expected {want!r} at offset {tok.pos}, found {tok.value!r}"
            )
        return self.advance()

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        tok = self.current
        if tok.kind == kind and (value is None or tok.value == value):
            return self.advance()
        return None

    # Grammar ------------------------------------------------------------

    def statement(self) -> SelectStatement:
        self.expect("keyword", "SELECT")
        select = [self.select_item()]
        while self.accept("punct", ","):
            select.append(self.select_item())
        self.expect("keyword", "FROM")
        tables = [self.table_ref()]
        while self.accept("punct", ","):
            tables.append(self.table_ref())
        comparisons: list[Comparison] = []
        disjuncts: list[list] = []
        join = None
        if self.accept("keyword", "WHERE"):
            groups, join = self._normalize_where(self.or_expr())
            if len(groups) == 1:
                comparisons = groups[0]
            else:
                disjuncts = groups
        group_by: list[ColumnRef] = []
        if self.accept("keyword", "GROUP"):
            self.expect("keyword", "BY")
            group_by.append(self.column_ref())
            while self.accept("punct", ","):
                group_by.append(self.column_ref())
        having: list[tuple] = []
        if self.accept("keyword", "HAVING"):
            having.append(self.having_condition())
            while self.accept("keyword", "AND"):
                having.append(self.having_condition())
        order_by: list[tuple[ColumnRef, bool]] = []
        if self.accept("keyword", "ORDER"):
            self.expect("keyword", "BY")
            order_by.append(self.order_item())
            while self.accept("punct", ","):
                order_by.append(self.order_item())
        limit = None
        if self.accept("keyword", "LIMIT"):
            tok = self.expect("number")
            limit = int(float(tok.value))
        self.expect("eof")
        return SelectStatement(
            select=select,
            tables=tables,
            comparisons=comparisons,
            disjuncts=disjuncts,
            join=join,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
        )

    def having_condition(self) -> tuple:
        """``HAVING <item> <op> <number>`` with item a column or aggregate."""
        item = self.select_item()
        op = self.expect("op")
        value, is_string = self.literal()
        if is_string:
            raise SQLError("HAVING compares against numeric literals")
        return (item, op.value, value)

    # Boolean WHERE grammar: OR < AND < ( ) < condition. The tree is
    # normalized to disjunctive normal form; a join condition may only
    # appear at the top-level conjunction.

    def or_expr(self):
        node = self.and_expr()
        while self.accept("keyword", "OR"):
            right = self.and_expr()
            node = ("or", [node, right])
        return node

    def and_expr(self):
        node = self.where_term()
        while self.accept("keyword", "AND"):
            right = self.where_term()
            node = ("and", [node, right])
        return node

    def where_term(self):
        if self.accept("punct", "("):
            node = self.or_expr()
            self.expect("punct", ")")
            return node
        return ("leaf", self.condition())

    def _to_dnf(self, node) -> list[list]:
        """Expand an and/or/leaf tree into OR-of-AND groups."""
        kind, payload = node
        if kind == "leaf":
            if isinstance(payload, JoinCondition):
                return [[payload]]
            return [list(payload)]
        if kind == "or":
            groups: list[list] = []
            for child in payload:
                groups.extend(self._to_dnf(child))
            return groups
        # "and": cross product of the children's groups.
        groups = [[]]
        for child in payload:
            child_groups = self._to_dnf(child)
            groups = [
                g + cg for g in groups for cg in child_groups
            ]
        return groups

    def _normalize_where(self, node):
        """Return (conjunction groups, join condition)."""
        groups = self._to_dnf(node)
        join = None
        cleaned: list[list] = []
        for group in groups:
            conditions = []
            for item in group:
                if isinstance(item, JoinCondition):
                    if len(groups) > 1:
                        raise SQLError(
                            "a join condition cannot appear under OR"
                        )
                    if join is not None and join != item:
                        raise SQLError(
                            "at most one join condition is supported"
                        )
                    join = item
                else:
                    conditions.append(item)
            cleaned.append(conditions)
        if len(cleaned) > 1 and any(not g for g in cleaned):
            raise SQLError("every OR branch needs at least one condition")
        return cleaned, join

    def order_item(self) -> tuple[ColumnRef, bool]:
        ref = self.column_ref()
        if self.accept("keyword", "DESC"):
            return ref, True
        self.accept("keyword", "ASC")
        return ref, False

    def select_item(self) -> ColumnRef | FuncCall:
        tok = self.expect("ident")
        if self.accept("punct", "("):
            func = tok.value
            if func not in _AGG_FUNCS:
                raise SQLError(f"unknown aggregate function {func!r}")
            if self.accept("keyword", "DISTINCT"):
                if func != "count":
                    raise SQLError("DISTINCT is only supported inside COUNT")
                func = "count_distinct"
            arg = self.column_ref()
            self.expect("punct", ")")
            return FuncCall(func=func, arg=arg)
        return self._qualify(tok)

    def column_ref(self) -> ColumnRef:
        tok = self.expect("ident")
        return self._qualify(tok)

    def _qualify(self, tok: Token) -> ColumnRef:
        if self.accept("punct", "."):
            column = self.expect("ident")
            return ColumnRef(column=column.value, table=tok.value)
        return ColumnRef(column=tok.value)

    def table_ref(self) -> TableRef:
        name = self.expect("ident")
        alias = self.accept("ident")
        return TableRef(name=name.value, alias=alias.value if alias else None)

    def condition(self) -> JoinCondition | list:
        left = self.column_ref()
        if self.accept("keyword", "IN"):
            self.expect("punct", "(")
            values = [self.literal()]
            while self.accept("punct", ","):
                values.append(self.literal())
            self.expect("punct", ")")
            kinds = {is_string for _v, is_string in values}
            if len(kinds) > 1:
                raise SQLError("IN list mixes string and numeric literals")
            return [
                InList(
                    left,
                    tuple(v for v, _s in values),
                    is_string=kinds.pop(),
                )
            ]
        if self.accept("keyword", "BETWEEN"):
            lo = self.literal()
            self.expect("keyword", "AND")
            hi = self.literal()
            return [
                Comparison(left, ">=", lo[0], is_string=lo[1]),
                Comparison(left, "<=", hi[0], is_string=hi[1]),
            ]
        op = self.expect("op")
        if self.current.kind == "ident":
            right = self.column_ref()
            if op.value != "=":
                raise SQLError(
                    f"column-to-column comparison must use '=' (offset {op.pos})"
                )
            return JoinCondition(left=left, right=right)
        value, is_string = self.literal()
        return [Comparison(left, op.value, value, is_string=is_string)]

    def literal(self) -> tuple[str | float, bool]:
        tok = self.current
        if tok.kind == "number":
            self.advance()
            value = float(tok.value)
            return (int(value) if value.is_integer() else value), False
        if tok.kind == "string":
            self.advance()
            return tok.value, True
        raise SQLError(f"expected a literal at offset {tok.pos}")


def parse(text: str) -> SelectStatement:
    """Parse one SELECT statement; raises :class:`SQLError` on bad input."""
    return _Parser(tokenize(text)).statement()
