"""Bind a parsed SQL AST against the catalog into logical queries."""

from __future__ import annotations

from datetime import date

from ..dtypes import ColumnSchema
from ..errors import SQLError
from ..operators.aggregate import AggSpec
from ..planner.logical import JoinQuery, SelectQuery
from ..predicates import InPredicate, Predicate
from ..storage.catalog import Catalog
from .ast import ColumnRef, Comparison, FuncCall, InList, SelectStatement, TableRef


def _table_columns(catalog: Catalog, name: str) -> dict:
    """Union of column schemas over every projection of a table."""
    columns: dict = {}
    for projection in catalog.candidates(name):
        for col in projection.column_names:
            columns.setdefault(col, projection.schema(col))
    return columns


def _resolve_table(ref: ColumnRef, tables: list[TableRef], catalog: Catalog) -> TableRef:
    if ref.table is not None:
        for t in tables:
            if t.binding == ref.table or t.name == ref.table:
                return t
        raise SQLError(f"unknown table qualifier {ref.table!r}")
    owners = [
        t for t in tables if ref.column in _table_columns(catalog, t.name)
    ]
    if not owners:
        raise SQLError(f"unknown column {ref.column!r}")
    if len(owners) > 1:
        raise SQLError(f"ambiguous column {ref.column!r}; qualify it")
    return owners[0]


def _encode_literal(schema: ColumnSchema, comp: Comparison):
    if comp.is_string:
        value = str(comp.value)
        if schema.ctype.name == "date":
            try:
                parsed = date.fromisoformat(value)
            except ValueError:
                raise SQLError(
                    f"column {schema.name!r} expects a 'YYYY-MM-DD' date, "
                    f"got {value!r}"
                ) from None
            return schema.encode_value(parsed)
        if schema.dictionary:
            return schema.encode_value(value)
        raise SQLError(
            f"column {schema.name!r} is numeric; string literal {value!r} "
            "cannot be compared against it"
        )
    return comp.value


def bind(
    statement: SelectStatement,
    catalog: Catalog,
    encodings: dict[str, str] | None = None,
) -> SelectQuery | JoinQuery:
    """Turn a parsed statement into a :class:`SelectQuery` or :class:`JoinQuery`.

    Args:
        statement: the parsed AST.
        catalog: catalog used to resolve tables, columns and literal types.
        encodings: optional column -> encoding override (the experiments'
            "LINENUM stored as bit-vector" switch; SQL itself has no syntax
            for physical representation).
    """
    for t in statement.tables:
        if not catalog.has(t.name):
            raise SQLError(f"unknown projection or table {t.name!r}")
    if len(statement.tables) == 1:
        return _bind_select(statement, catalog, encodings)
    if len(statement.tables) == 2:
        if statement.join is None:
            raise SQLError("two-table queries need a join condition")
        if statement.order_by or statement.limit is not None:
            raise SQLError("ORDER BY / LIMIT are not supported on joins")
        if statement.disjuncts:
            raise SQLError("OR is not supported in join queries")
        return _bind_join(statement, catalog, encodings)
    raise SQLError("at most two tables are supported")


def _bind_select(
    statement: SelectStatement,
    catalog: Catalog,
    encodings: dict[str, str] | None,
) -> SelectQuery:
    table = statement.tables[0]
    table_schemas = _table_columns(catalog, table.name)

    predicates = []
    for comp in statement.comparisons:
        _resolve_table(comp.column, statement.tables, catalog)
        schema = _lookup(table_schemas, table.name, comp.column.column)
        predicates.append(_bind_condition(schema, comp))
    disjuncts = []
    for group in statement.disjuncts:
        bound_group = []
        for comp in group:
            _resolve_table(comp.column, statement.tables, catalog)
            schema = _lookup(table_schemas, table.name, comp.column.column)
            bound_group.append(_bind_condition(schema, comp))
        disjuncts.append(tuple(bound_group))

    select_names: list[str] = []
    aggregates: list[AggSpec] = []
    plain_columns: list[str] = []
    for item in statement.select:
        if isinstance(item, FuncCall):
            schema = _lookup(table_schemas, table.name, item.arg.column)
            spec = AggSpec(item.func, schema.name)
            aggregates.append(spec)
            select_names.append(spec.output_name)
        else:
            schema = _lookup(table_schemas, table.name, item.column)
            plain_columns.append(schema.name)
            select_names.append(schema.name)

    group_by = tuple(
        _lookup(table_schemas, table.name, ref.column).name
        for ref in statement.group_by
    )
    if aggregates:
        if not group_by:
            raise SQLError("aggregates require GROUP BY")
        stray = [c for c in plain_columns if c not in group_by]
        if stray:
            raise SQLError(
                f"non-aggregated columns {stray} must match GROUP BY"
            )
    elif group_by:
        raise SQLError("GROUP BY requires an aggregate in the select list")

    having = []
    for item, op, value in statement.having:
        if isinstance(item, FuncCall):
            name = AggSpec(item.func, item.arg.column).output_name
        else:
            name = item.column
        if name not in select_names:
            raise SQLError(
                f"HAVING item {name!r} must appear in the select list"
            )
        having.append(Predicate(name, op, value))

    order_by = []
    for ref, descending in statement.order_by:
        name = ref.column
        if name not in select_names:
            # Allow ordering by an aggregate via its output name, e.g.
            # "ORDER BY sum(linenum)" parses as a FuncCall-shaped ident; the
            # plain-column case must match the select list.
            raise SQLError(
                f"ORDER BY column {name!r} must appear in the select list"
            )
        order_by.append((name, descending))

    return SelectQuery(
        projection=table.name,
        select=tuple(select_names),
        predicates=tuple(predicates),
        group_by=group_by or None,
        aggregates=tuple(aggregates),
        encodings=tuple((encodings or {}).items()),
        order_by=tuple(order_by),
        limit=statement.limit,
        disjuncts=tuple(disjuncts),
        having=tuple(having),
    )


def _bind_join(
    statement: SelectStatement,
    catalog: Catalog,
    encodings: dict[str, str] | None,
) -> JoinQuery:
    join = statement.join
    t_a = _resolve_table(join.left, statement.tables, catalog)
    t_b = _resolve_table(join.right, statement.tables, catalog)
    if t_a.binding == t_b.binding:
        raise SQLError("join condition must reference both tables")

    # The side carrying WHERE predicates is the outer (left/FK) input; with
    # no predicates the first FROM table is the outer input.
    pred_tables = {
        _resolve_table(c.column, statement.tables, catalog).binding
        for c in statement.comparisons
    }
    if len(pred_tables) > 1:
        raise SQLError("join predicates must target a single (outer) table")
    if pred_tables and t_b.binding in pred_tables:
        t_a, t_b = t_b, t_a
        join_left, join_right = join.right, join.left
    else:
        join_left, join_right = join.left, join.right
    if _resolve_table(join_left, statement.tables, catalog).binding != t_a.binding:
        join_left, join_right = join_right, join_left

    left_schemas = _table_columns(catalog, t_a.name)
    right_schemas = _table_columns(catalog, t_b.name)

    predicates = []
    for comp in statement.comparisons:
        schema = _lookup(left_schemas, t_a.name, comp.column.column)
        predicates.append(_bind_condition(schema, comp))

    left_select: list[str] = []
    right_select: list[str] = []
    aggregates: list[AggSpec] = []
    plain_columns: list[str] = []

    def attribute(ref: ColumnRef) -> str:
        owner = _resolve_table(ref, statement.tables, catalog)
        name = ref.column
        if owner.binding == t_a.binding:
            _lookup(left_schemas, t_a.name, name)
            if name not in left_select:
                left_select.append(name)
        else:
            _lookup(right_schemas, t_b.name, name)
            if name not in right_select:
                right_select.append(name)
        return name

    for item in statement.select:
        if isinstance(item, FuncCall):
            aggregates.append(AggSpec(item.func, attribute(item.arg)))
        else:
            plain_columns.append(attribute(item))

    group_by = tuple(attribute(ref) for ref in statement.group_by)
    if aggregates:
        stray = [c for c in plain_columns if c not in group_by]
        if stray:
            raise SQLError(
                f"non-aggregated columns {stray} must match GROUP BY"
            )
    elif group_by:
        raise SQLError("GROUP BY requires an aggregate in the select list")
    if statement.having:
        raise SQLError("HAVING is not supported on joins")

    overlap = set(left_select) & set(right_select)
    if overlap:
        raise SQLError(f"output columns {sorted(overlap)} appear on both sides")

    return JoinQuery(
        left=t_a.name,
        right=t_b.name,
        left_key=join_left.column,
        right_key=join_right.column,
        left_select=tuple(left_select),
        right_select=tuple(right_select),
        left_predicates=tuple(predicates),
        encodings=tuple((encodings or {}).items()),
        group_by=group_by or None,
        aggregates=tuple(aggregates),
    )


def _bind_condition(schema: ColumnSchema, comp):
    """Bind one WHERE condition (comparison or IN list) to a predicate."""
    if isinstance(comp, InList):
        encoded = tuple(
            _encode_literal(
                schema,
                Comparison(comp.column, "=", value, is_string=comp.is_string),
            )
            for value in comp.values
        )
        return InPredicate(schema.name, encoded)
    return Predicate(schema.name, comp.op, _encode_literal(schema, comp))


def _lookup(table_schemas: dict, table: str, column: str) -> ColumnSchema:
    if column not in table_schemas:
        raise SQLError(f"table {table!r} has no column {column!r}")
    return table_schemas[column]
