"""Abstract syntax tree for the supported SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ColumnRef:
    """A possibly table-qualified column reference, e.g. ``o.custkey``."""

    column: str
    table: str | None = None

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class FuncCall:
    """An aggregate call in the select list, e.g. ``SUM(linenum)``."""

    func: str
    arg: ColumnRef

    def __str__(self) -> str:
        return f"{self.func}({self.arg})"


@dataclass(frozen=True)
class Comparison:
    """A column-vs-literal comparison in the WHERE clause."""

    column: ColumnRef
    op: str
    value: str | float
    is_string: bool = False


@dataclass(frozen=True)
class InList:
    """A column-vs-literal-set membership test in the WHERE clause."""

    column: ColumnRef
    values: tuple
    is_string: bool = False


@dataclass(frozen=True)
class JoinCondition:
    """A column-vs-column equality in the WHERE clause (the join predicate)."""

    left: ColumnRef
    right: ColumnRef


@dataclass(frozen=True)
class TableRef:
    """A FROM-clause table with optional alias."""

    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass
class SelectStatement:
    """One parsed SELECT statement."""

    select: list[ColumnRef | FuncCall]
    tables: list[TableRef]
    comparisons: list[Comparison] = field(default_factory=list)
    #: OR of conjunction groups (each a list of Comparison/InList); set only
    #: when the WHERE clause contains OR — ``comparisons`` is empty then.
    disjuncts: list[list] = field(default_factory=list)
    join: JoinCondition | None = None
    group_by: list[ColumnRef] = field(default_factory=list)
    #: HAVING conjuncts: (output item, operator, numeric literal).
    having: list[tuple] = field(default_factory=list)
    order_by: list[tuple[ColumnRef, bool]] = field(default_factory=list)
    limit: int | None = None
