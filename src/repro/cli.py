"""Command-line interface.

Installed as the ``repro`` console script::

    repro load-tpch ./db --scale 0.01
    repro info ./db
    repro query ./db "SELECT shipdate, linenum FROM lineitem \\
        WHERE shipdate < '1994-01-01' AND linenum < 7" --strategy lm-parallel
    repro explain ./db "SELECT ... "
    repro scrub ./db --deep
    repro serve ./db --port 7379 --workers 4
    repro loadgen ./db --clients 8 --duration 4
    repro advise ./db --apply
    repro calibrate
    repro calibrate ./db --from-log
"""

from __future__ import annotations

import argparse
import sys

from .engine import Database
from .errors import ReproError


def _add_db_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("db", help="database root directory")


def _parse_encodings(pairs: list[str]) -> dict[str, str]:
    out = {}
    for pair in pairs:
        column, sep, encoding = pair.partition("=")
        if not sep:
            raise SystemExit(
                f"--encoding expects column=encoding, got {pair!r}"
            )
        out[column] = encoding
    return out


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the `repro` console script."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Column-store engine reproducing 'Materialization Strategies in"
            " a Column-Oriented DBMS' (Abadi et al., ICDE 2007)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    load = sub.add_parser(
        "load-tpch", help="generate and load the TPC-H-style projections"
    )
    _add_db_argument(load)
    load.add_argument("--scale", type=float, default=0.01)
    load.add_argument("--seed", type=int, default=42)
    load.add_argument(
        "--partitions",
        type=int,
        default=1,
        help="range-partition the lineitem projection into N contiguous "
        "chunks with per-partition zone maps (default: 1, unpartitioned)",
    )

    info = sub.add_parser("info", help="list projections, columns, encodings")
    _add_db_argument(info)

    query = sub.add_parser("query", help="run a SQL statement")
    _add_db_argument(query)
    query.add_argument("sql", help="the SQL text")
    query.add_argument(
        "--strategy",
        default="auto",
        help="em-pipelined | em-parallel | lm-pipelined | lm-parallel | "
        "materialized | multi-column | single-column | auto",
    )
    query.add_argument(
        "--encoding",
        action="append",
        default=[],
        metavar="COLUMN=ENCODING",
        help="scan a column in a specific stored encoding (repeatable)",
    )
    query.add_argument("--cold", action="store_true", help="clear buffer pool")
    query.add_argument("--limit", type=int, default=20)
    query.add_argument(
        "--raw", action="store_true", help="print stored values, not decoded"
    )

    explain = sub.add_parser(
        "explain", help="show per-strategy model predictions for a query"
    )
    _add_db_argument(explain)
    explain.add_argument("sql")
    explain.add_argument(
        "--encoding", action="append", default=[], metavar="COLUMN=ENCODING"
    )
    explain.add_argument(
        "--verbose",
        action="store_true",
        help="show the per-operator cost breakdown of each strategy",
    )
    explain.add_argument(
        "--plan",
        action="store_true",
        help="also print the chosen strategy's physical operator tree",
    )
    explain.add_argument(
        "--analyze",
        action="store_true",
        help="execute the query and print the measured span tree "
        "(EXPLAIN ANALYZE)",
    )
    explain.add_argument(
        "--strategy",
        default="auto",
        help="strategy for --analyze (default: model-driven choice)",
    )
    explain.add_argument(
        "--json",
        action="store_true",
        help="with --analyze, emit the span tree as JSON instead of ASCII",
    )

    scrub = sub.add_parser(
        "scrub",
        help="verify every stored block's checksum and structure offline",
    )
    _add_db_argument(scrub)
    scrub.add_argument(
        "--deep",
        action="store_true",
        help="also decode each block and validate value counts and bounds",
    )
    scrub.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the human summary line (JSON report only)",
    )

    serve = sub.add_parser(
        "serve",
        help="serve the database over TCP (newline-delimited JSON protocol)",
    )
    _add_db_argument(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7379)
    serve.add_argument(
        "--workers", type=int, default=2,
        help="worker threads executing admitted queries (default: 2)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=64,
        help="admission queue bound; offers past it are rejected "
        "(default: 64)",
    )

    loadgen = sub.add_parser(
        "loadgen",
        help="closed-loop load generator: N clients over a Zipfian query mix",
    )
    _add_db_argument(loadgen)
    loadgen.add_argument("--clients", type=int, default=8)
    loadgen.add_argument(
        "--duration", type=float, default=4.0, help="seconds (default: 4)"
    )
    loadgen.add_argument(
        "--think-ms", type=float, default=20.0,
        help="mean per-client think time between queries (default: 20)",
    )
    loadgen.add_argument(
        "--theta", type=float, default=1.1, help="Zipf skew (default: 1.1)"
    )
    loadgen.add_argument("--seed", type=int, default=7)
    loadgen.add_argument(
        "--corpus", type=int, default=32,
        help="generated query corpus size (default: 32)",
    )
    loadgen.add_argument("--workers", type=int, default=4)
    loadgen.add_argument("--max-queue", type=int, default=64)
    loadgen.add_argument("--timeout-ms", type=float, default=None)
    loadgen.add_argument(
        "--host", default=None,
        help="target an already-running server instead of an in-process one",
    )
    loadgen.add_argument("--port", type=int, default=None)
    loadgen.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="emit the report as JSON: bare --json prints to stdout, "
        "--json PATH writes an artifact file (and still prints the "
        "human summary)",
    )

    workload = sub.add_parser(
        "workload",
        help="summarize a captured query log (templates, latency, mixes)",
    )
    workload.add_argument(
        "log", help="query-log directory (<db>/_qlog) or one segment file"
    )
    workload.add_argument(
        "--top", type=int, default=10,
        help="templates to list, by total wall time (default: 10)",
    )
    workload.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    workload.add_argument(
        "--db", default=None, metavar="PATH",
        help="database root: also cost each template through the model "
        "and report per-template predicted-vs-measured residuals",
    )

    advise = sub.add_parser(
        "advise",
        help="recommend physical design changes from the query log",
    )
    _add_db_argument(advise)
    advise.add_argument(
        "--log", default=None, metavar="PATH",
        help="query-log directory or segment to read (default: the "
        "database's own <db>/_qlog)",
    )
    advise.add_argument(
        "--apply", action="store_true",
        help="execute the plan: build/drop projections through the "
        "catalog (previously logged results stay bit-identical)",
    )
    advise.add_argument(
        "--top", type=int, default=3,
        help="maximum projections to recommend building (default: 3)",
    )
    advise.add_argument(
        "--recalibrate", action="store_true",
        help="first re-fit the model constants from the same log "
        "(calibrate --from-log) and score with the fitted constants",
    )
    advise.add_argument(
        "--json", action="store_true", help="emit the plan as JSON"
    )

    replay = sub.add_parser(
        "replay",
        help="re-execute a captured query log against a database",
    )
    _add_db_argument(replay)
    replay.add_argument(
        "log", help="query-log directory (<db>/_qlog) or one segment file"
    )
    replay.add_argument(
        "--check", action="store_true",
        help="assert each replayed result is bit-identical to the "
        "recorded result hash; exit 1 on any mismatch",
    )
    replay.add_argument(
        "--limit", type=int, default=None,
        help="replay at most N eligible records",
    )
    replay.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )

    metrics = sub.add_parser(
        "metrics",
        help="fetch Prometheus-format metrics from a running server",
    )
    metrics.add_argument("--host", default="127.0.0.1")
    metrics.add_argument("--port", type=int, default=7379)
    metrics.add_argument(
        "--json", action="store_true",
        help="raw registry export + serving stats instead of text format",
    )

    top = sub.add_parser(
        "top",
        help="live refreshing terminal view of a running server",
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=7379)
    top.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between refreshes (default: 2)",
    )
    top.add_argument(
        "--count", type=int, default=None,
        help="exit after N refreshes (default: run until Ctrl-C)",
    )
    top.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of clearing the screen",
    )

    calibrate = sub.add_parser(
        "calibrate",
        help="measure this machine's Table 2 model constants, or re-fit "
        "them from an observed query log with --from-log",
    )
    calibrate.add_argument(
        "db", nargs="?", default=None,
        help="database root (required with --from-log)",
    )
    calibrate.add_argument(
        "--from-log", nargs="?", const="", default=None, metavar="PATH",
        dest="from_log",
        help="fit constants to a captured query log instead of "
        "micro-benchmarking: bare --from-log reads the database's own "
        "<db>/_qlog, --from-log PATH reads a directory or segment",
    )
    calibrate.add_argument(
        "--json", action="store_true",
        help="with --from-log, emit the calibration report as JSON",
    )

    reproduce = sub.add_parser(
        "reproduce", help="regenerate one of the paper's evaluation figures"
    )
    reproduce.add_argument(
        "figure", help="11a | 11b | 11c | 12a | 12b | 12c | 13"
    )
    reproduce.add_argument("--scale", type=float, default=0.05)
    reproduce.add_argument("--seed", type=int, default=42)
    return parser


def cmd_load_tpch(args) -> int:
    """`repro load-tpch`: generate and load the TPC-H-style projections."""
    from .tpch import load_tpch

    db = Database(args.db)
    load_tpch(
        db.catalog,
        scale=args.scale,
        seed=args.seed,
        partitions=args.partitions,
    )
    for name in db.catalog.names():
        proj = db.projection(name)
        parts = (
            f" in {len(proj.partitions)} partitions"
            if proj.is_partitioned
            else ""
        )
        print(f"loaded projection {name}: {proj.n_rows} rows{parts}")
    return 0


def cmd_info(args) -> int:
    """`repro info`: list projections, columns, encodings, indexes."""
    db = Database(args.db)
    names = db.catalog.names()
    if not names:
        print("no projections")
        return 0
    for name in names:
        proj = db.projection(name)
        keys = ", ".join(proj.sort_keys) or "unsorted"
        print(f"{name}: {proj.n_rows} rows, sorted by ({keys})")
        if proj.is_partitioned:
            print(f"  range-partitioned: {len(proj.partitions)} partitions")
            for part in proj.partitions:
                zones = ", ".join(
                    f"{col}=[{zm.min_value},{zm.max_value}]"
                    for col, zm in part.zone_maps.items()
                )
                print(f"    {part.name}: {part.n_rows} rows, {zones}")
        for col in proj.column_names:
            pc = proj.physical_column(col)
            encodings = ", ".join(pc.encodings)
            indexed = "  [indexed]" if pc.index_path else ""
            print(f"  {col:>16} ({pc.schema.ctype.name}): {encodings}{indexed}")
    return 0


def cmd_query(args) -> int:
    """`repro query`: run a SQL statement and print rows + costs."""
    db = Database(args.db)
    result = db.sql(
        args.sql,
        strategy=args.strategy,
        encodings=_parse_encodings(args.encoding) or None,
        cold=args.cold,
    )
    rows = result.rows() if args.raw else result.decoded_rows()
    print(" | ".join(result.tuples.columns))
    for row in rows[: args.limit]:
        print(" | ".join(str(v) for v in row))
    if result.n_rows > args.limit:
        print(f"... ({result.n_rows - args.limit} more rows)")
    print(
        f"-- {result.n_rows} rows, strategy={result.strategy}, "
        f"wall={result.wall_ms:.1f} ms, model-replay={result.simulated_ms:.1f} ms"
    )
    if result.degraded:
        print(
            "-- DEGRADED: skipped quarantined partitions "
            + ", ".join(result.skipped_partitions),
            file=sys.stderr,
        )
    return 0


def cmd_explain(args) -> int:
    """`repro explain`: model predictions, or measured spans with --analyze."""
    import json

    from .sql import bind, parse

    db = Database(args.db)
    query = bind(
        parse(args.sql),
        db.catalog,
        encodings=_parse_encodings(args.encoding) or None,
    )
    if args.analyze:
        report = db.explain(query, analyze=True, strategy=args.strategy)
        if args.json:
            print(json.dumps(report["json"], indent=2))
        else:
            print(report["text"])
            summary = (
                f"-- {report['rows']} rows, strategy={report['strategy']}, "
                f"wall={report['wall_ms']:.2f} ms, "
                f"model-replay={report['simulated_ms']:.2f} ms"
            )
            if report.get("queue_wait_ms"):
                summary += (
                    f", queue-wait={report['queue_wait_ms']:.2f} ms "
                    f"(end-to-end {report['total_ms']:.2f} ms)"
                )
            parts = report.get("partitions")
            if parts:
                summary += (
                    f", partitions={parts['scanned']}/{parts['total']} "
                    f"scanned ({parts['pruned']} pruned)"
                )
            if report.get("degraded"):
                summary += (
                    ", DEGRADED (skipped "
                    + ", ".join(report["skipped_partitions"])
                    + ")"
                )
            print(summary)
        return 0
    plan = db.explain(query)
    parts = plan.get("partitions")
    if parts:
        print(
            f"partitions: {parts['scanned']}/{parts['total']} scanned, "
            f"{parts['pruned']} pruned by zone maps"
        )
    for name, ms in sorted(plan["predictions"].items(), key=lambda kv: kv[1]):
        marker = "  <- chosen" if name == plan["chosen"] else ""
        print(f"{name:>14}: {ms:9.2f} ms predicted{marker}")
        if args.verbose:
            detail = next(
                d for s, d in plan["details"].items() if s.value == name
            )
            for step, step_ms in detail.breakdown().items():
                print(f"{'':>18}{step:<24} {step_ms:8.2f} ms")
    if args.plan and hasattr(query, "projection"):
        print()
        print(db.describe(query, strategy=plan["chosen"]))
    return 0


def cmd_scrub(args) -> int:
    """`repro scrub`: offline checksum + structure verification.

    Prints a machine-readable JSON report naming each corrupt file/block;
    exits 0 when the store is clean, 1 when any damage was found.
    """
    import json

    db = Database(args.db)
    report = db.scrub(deep=args.deep)
    print(json.dumps(report.to_json(), indent=2))
    if not args.quiet:
        status = "clean" if report.clean else f"{len(report.issues)} issue(s)"
        print(
            f"-- scrubbed {report.projections_scanned} projections, "
            f"{report.files_scanned} files, {report.blocks_scanned} blocks: "
            f"{status}",
            file=sys.stderr,
        )
    return 0 if report.clean else 1


def cmd_serve(args) -> int:
    """`repro serve`: run the query server in the foreground until Ctrl-C."""
    import asyncio

    from .serving import QueryServer

    db = Database(args.db)

    async def main() -> None:
        server = QueryServer(
            db,
            host=args.host,
            port=args.port,
            workers=args.workers,
            max_queue=args.max_queue,
        )
        await server.start()
        print(
            f"serving {args.db} on {server.host}:{server.port} "
            f"({args.workers} workers, queue bound {args.max_queue}); "
            "Ctrl-C to drain and stop"
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.shutdown(drain=True)
            print("drained, bye", file=sys.stderr)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        # Runner semantics vary across Python versions: SIGINT may cancel
        # the main task (drain already ran above) or surface here.
        pass
    return 0


def cmd_loadgen(args) -> int:
    """`repro loadgen`: closed-loop clients over a seeded Zipfian mix."""
    import json

    from .serving import run_loadgen

    db = Database(args.db)
    report = run_loadgen(
        db,
        host=args.host,
        port=args.port,
        clients=args.clients,
        duration_s=args.duration,
        think_ms=args.think_ms,
        theta=args.theta,
        seed=args.seed,
        corpus_size=args.corpus,
        workers=args.workers,
        max_queue=args.max_queue,
        timeout_ms=args.timeout_ms,
    )
    if args.json == "-":
        print(json.dumps(report.to_dict(), indent=2))
        return 0
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(report.to_dict(), f, indent=2)
            f.write("\n")
        print(f"-- wrote load report to {args.json}", file=sys.stderr)
    d = report.to_dict()
    print(
        f"{d['clients']} clients x {d['duration_s']:.1f}s "
        f"(think {d['think_ms']:.0f} ms, zipf theta={d['theta']}): "
        f"{d['ok']}/{d['queries']} ok"
    )
    print(
        f"throughput {d['throughput_qps']:.1f} qps, latency p50 "
        f"{d['p50_ms']:.2f} ms / p95 {d['p95_ms']:.2f} ms / p99 "
        f"{d['p99_ms']:.2f} ms"
    )
    print(
        f"queue depth max {d['queue_depth_max']} "
        f"(mean {d['queue_depth_mean']:.2f}), rejection rate "
        f"{d['rejection_rate']:.1%}, {d['timeouts']} timeouts, "
        f"{d['errors']} errors"
    )
    return 0


def cmd_workload(args) -> int:
    """`repro workload`: aggregate a query log into a workload summary."""
    import json

    from .qlog import read_query_log
    from .workload import summarize_log

    records = read_query_log(args.log)
    if args.db:
        db = Database(args.db, query_log=False)
        try:
            summary = summarize_log(records, db=db)
        finally:
            db.close()
    else:
        summary = summarize_log(records)
    if args.json:
        print(json.dumps(summary.to_dict(top=args.top), indent=2))
    else:
        print(summary.render(top=args.top))
    return 0


def cmd_advise(args) -> int:
    """`repro advise`: workload-adaptive physical design recommendations.

    Reads the query log, scores candidate designs in what-if mode, prints
    the ranked plan, and with --apply builds/drops the recommended
    projections through the catalog. The advising database opens with its
    own recorder off so advice never contaminates the log it reads.
    """
    import json

    from .advisor import advise, apply_plan
    from .model import recalibrate_from_log
    from .qlog import read_query_log

    db = Database(args.db, query_log=False)
    try:
        log_path = args.log or str(db.catalog.root / "_qlog")
        records = list(read_query_log(log_path))
        constants = None
        calibration = None
        if args.recalibrate:
            calibration = recalibrate_from_log(db, records)
            constants = calibration.constants
        plan = advise(
            db, records, constants=constants, max_builds=args.top
        )
        if args.json:
            payload = plan.to_dict()
            if calibration is not None:
                payload["calibration"] = calibration.to_dict()
            print(json.dumps(payload, indent=2))
        else:
            if calibration is not None:
                fit = "fitted" if calibration.used_fitted else "baseline"
                print(
                    f"constants      {fit} "
                    f"(mae {calibration.mae_fitted_ms:.3f} vs "
                    f"{calibration.mae_baseline_ms:.3f} ms over "
                    f"{calibration.n_records} records)"
                )
            print(plan.render())
        if args.apply:
            applied = apply_plan(db, plan)
            if not args.json:
                for name in applied:
                    print(f"applied        {name}")
                if not applied:
                    print("applied        nothing (no actions)")
    finally:
        db.close()
    return 0


def cmd_replay(args) -> int:
    """`repro replay`: re-execute a captured log; --check gates bit-identity.

    The replay database opens with its own recorder off, so replaying a log
    never appends to it.
    """
    import json

    from .qlog import read_query_log
    from .workload import replay_log

    records = read_query_log(args.log)
    db = Database(args.db, query_log=False)
    try:
        report = replay_log(db, records, check=args.check, limit=args.limit)
    finally:
        db.close()
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if (not args.check or report.ok) else 1


def cmd_metrics(args) -> int:
    """`repro metrics`: scrape a running server's metrics exposition."""
    import asyncio
    import json

    from .serving import AsyncQueryClient

    async def fetch() -> dict:
        client = await AsyncQueryClient.connect(args.host, args.port)
        try:
            return await client.metrics(
                format="json" if args.json else "prometheus"
            )
        finally:
            await client.close()

    try:
        response = asyncio.run(fetch())
    except (ConnectionError, OSError) as exc:
        print(
            f"error: cannot reach {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 1
    if not response.get("ok"):
        print(f"error: {response.get('error')}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(
            {"metrics": response["metrics"], "stats": response["stats"]},
            indent=2,
        ))
    else:
        print(response["text"], end="")
    return 0


def _render_top_frame(payload: dict, previous: dict | None,
                      interval: float) -> tuple[str, dict]:
    """One `repro top` frame from a metrics-op JSON payload.

    Returns the frame text plus the counters carried to the next frame so
    rates (qps) can be computed as deltas.
    """
    stats = payload.get("stats", {})
    metrics = payload.get("metrics", {})
    counters = metrics.get("counters", {})
    admission = stats.get("admission", {})
    lines = []
    uptime = stats.get("uptime_s", 0.0)
    lines.append(
        f"repro top — up {uptime:8.1f}s   sessions {stats.get('sessions', 0)}"
        f"   active {stats.get('active', 0)}/{stats.get('workers', 0)} workers"
        + ("   DRAINING" if stats.get("draining") else "")
    )
    per_class = admission.get("per_class", {})
    depth_text = "  ".join(
        f"{cls}={per_class.get(cls, 0)}"
        for cls in ("interactive", "normal", "batch")
    )
    lines.append(
        f"queue   depth {admission.get('depth', 0)} "
        f"(peak {admission.get('peak_depth', 0)}, "
        f"bound {admission.get('max_depth', 0)})   {depth_text}   "
        f"rejected {admission.get('rejected', 0)}"
    )
    total = counters.get("queries_total", 0)
    carried = {"queries_total": total}
    if previous is not None and interval > 0:
        qps = max(0, total - previous.get("queries_total", 0)) / interval
        lines.append(f"queries {total} total   {qps:8.1f} qps")
    else:
        lines.append(f"queries {total} total")
    hist = (metrics.get("histograms") or {}).get("query_wall_ms")
    if hist and hist.get("count"):
        bounds, counts = hist.get("bounds", []), hist.get("counts", [])

        def pct(q: float) -> float:
            target, seen = q * hist["count"], 0
            for i, c in enumerate(counts):
                seen += c
                if seen >= target:
                    return bounds[i] if i < len(bounds) else float("inf")
            return float("inf")

        lines.append(
            f"latency p50<={pct(0.5):g} ms  p90<={pct(0.9):g} ms  "
            f"p99<={pct(0.99):g} ms  (n={hist['count']})"
        )
    strategies = sorted(
        (name.rsplit(".", 1)[1], value)
        for name, value in counters.items()
        if name.startswith("queries.strategy.")
    )
    if strategies:
        lines.append(
            "mix     " + "  ".join(f"{s}={v}" for s, v in strategies)
        )
    slow = metrics.get("slow_queries") or []
    if slow:
        lines.append(f"slow queries (last {min(len(slow), 5)}):")
        for entry in slow[-5:]:
            wait = entry.get("queue_wait_ms", 0.0)
            flag = "  DEGRADED" if entry.get("degraded") else ""
            lines.append(
                f"  {entry.get('wall_ms', 0.0):9.2f} ms "
                f"(queue {wait:7.2f} ms) {entry.get('strategy', '?'):>13} "
                f"{str(entry.get('query', ''))[:60]}{flag}"
            )
    return "\n".join(lines), carried


def cmd_top(args) -> int:
    """`repro top`: live refreshing view of a running server."""
    import asyncio

    async def run() -> int:
        from .serving import AsyncQueryClient

        try:
            client = await AsyncQueryClient.connect(args.host, args.port)
        except (ConnectionError, OSError) as exc:
            print(
                f"error: cannot reach {args.host}:{args.port}: {exc}",
                file=sys.stderr,
            )
            return 1
        previous: dict | None = None
        frames = 0
        try:
            while True:
                response = await client.metrics(format="json")
                if not response.get("ok"):
                    print(
                        f"error: {response.get('error')}", file=sys.stderr
                    )
                    return 1
                frame, previous = _render_top_frame(
                    response, previous, args.interval
                )
                if not args.no_clear and sys.stdout.isatty():
                    print("\x1b[2J\x1b[H", end="")
                print(frame)
                frames += 1
                if args.count is not None and frames >= args.count:
                    return 0
                await asyncio.sleep(args.interval)
        finally:
            await client.close()

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def cmd_calibrate(args) -> int:
    """`repro calibrate`: measure (or, with --from-log, fit) the constants.

    Without --from-log: micro-benchmark this machine's Table 2 CPU
    constants. With --from-log: least-squares-fit the constants to the
    measured simulated times of an observed query log (see
    :mod:`repro.model.recalibrate`); the fit is only adopted when its
    trace MAE is no worse than the baseline constants'.
    """
    import json

    from .model import PAPER_CONSTANTS, calibrate_constants

    if getattr(args, "from_log", None) is None:
        measured = calibrate_constants()
        paper = PAPER_CONSTANTS.as_dict()
        mine = measured.as_dict()
        print(f"{'constant':>10} {'paper':>12} {'this machine':>14}")
        for key in ("BIC", "TICTUP", "TICCOL", "FC", "PF", "SEEK", "READ"):
            print(f"{key:>10} {paper[key]:>12.4g} {mine[key]:>14.4g}")
        return 0

    from .model import recalibrate_from_log
    from .qlog import read_query_log

    if not args.db:
        print("error: calibrate --from-log needs a database root",
              file=sys.stderr)
        return 2
    db = Database(args.db, query_log=False)
    try:
        log_path = args.from_log or str(db.catalog.root / "_qlog")
        report = recalibrate_from_log(db, read_query_log(log_path))
    finally:
        db.close()
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0


def cmd_reproduce(args) -> int:
    """`repro reproduce`: regenerate one of the paper's figures."""
    from .reproduce import reproduce_figure

    reproduce_figure(args.figure, scale=args.scale, seed=args.seed)
    return 0


_COMMANDS = {
    "load-tpch": cmd_load_tpch,
    "info": cmd_info,
    "query": cmd_query,
    "explain": cmd_explain,
    "scrub": cmd_scrub,
    "serve": cmd_serve,
    "loadgen": cmd_loadgen,
    "workload": cmd_workload,
    "advise": cmd_advise,
    "replay": cmd_replay,
    "metrics": cmd_metrics,
    "top": cmd_top,
    "calibrate": cmd_calibrate,
    "reproduce": cmd_reproduce,
}


def main(argv: list[str] | None = None) -> int:
    """Console entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
