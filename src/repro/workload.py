"""Workload analysis and replay over captured query logs.

:func:`summarize_log` folds a :mod:`repro.qlog` record stream into a
:class:`WorkloadSummary` — per-template counts, exact latency percentiles,
strategy/encoding/outcome mixes, and column-touch frequencies — the durable
workload statistics ROADMAP item 1's physical-design advisor consumes.

:func:`replay_log` is the sixth differential-style axis: it re-executes a
captured log against a database, pinning each query to its **recorded**
resolved strategy (executions are deterministic per (data, strategy,
encodings), so row order reproduces exactly), and with ``check=True``
asserts the re-computed :func:`repro.qlog.result_hash` is bit-identical to
the one captured at record time. A log captured on one engine build that
replays hash-clean on another is end-to-end evidence that storage, the four
materialization strategies, compressed execution, and the serving path all
still agree.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .errors import ReproError, UnsupportedOperationError
from .qlog import result_hash


def _percentile(sorted_values: list[float], q: float) -> float:
    """Exact (nearest-rank, linear-interpolated) percentile of a sorted list."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = (len(sorted_values) - 1) * q
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


@dataclass
class TemplateStats:
    """Aggregated observations for one query fingerprint."""

    fingerprint: str
    template: str
    kind: str
    count: int = 0
    outcomes: dict = field(default_factory=dict)
    strategies: dict = field(default_factory=dict)
    origins: dict = field(default_factory=dict)
    rows_total: int = 0
    wall_ms_total: float = 0.0
    simulated_ms_total: float = 0.0
    queue_wait_ms_total: float = 0.0
    selectivities: list = field(default_factory=list)
    wall_samples: list = field(default_factory=list)
    #: Resolved-projection mix (``{projection_name: count}``) over records
    #: that carried one — what the advisor's drop analysis keys on.
    projections: dict = field(default_factory=dict)
    #: Full query dict of the first ok/degraded observation: a concrete
    #: representative the advisor can re-cost against hypothetical designs.
    example_query: dict | None = None
    #: Model-residual accounting, populated when :func:`summarize_log` is
    #: given a database to predict against. ``residual_ms_total`` is
    #: ``predicted - measured`` summed over exactly the records counted in
    #: ``predicted_count``; ``measured_on_predicted_ms_total`` is the
    #: measured simulated-ms sum over that same subset, so
    #: ``residual_ms_total == predicted_ms_total -
    #: measured_on_predicted_ms_total`` holds identically.
    predicted_count: int = 0
    predicted_ms_total: float = 0.0
    measured_on_predicted_ms_total: float = 0.0
    residual_ms_total: float = 0.0

    def percentiles(self) -> dict:
        ordered = sorted(self.wall_samples)
        return {
            "p50": round(_percentile(ordered, 0.50), 3),
            "p90": round(_percentile(ordered, 0.90), 3),
            "p99": round(_percentile(ordered, 0.99), 3),
        }

    def to_dict(self) -> dict:
        d = {
            "fingerprint": self.fingerprint,
            "template": self.template,
            "kind": self.kind,
            "count": self.count,
            "outcomes": dict(self.outcomes),
            "strategies": dict(self.strategies),
            "origins": dict(self.origins),
            "rows_total": self.rows_total,
            "wall_ms_total": round(self.wall_ms_total, 3),
            "simulated_ms_total": round(self.simulated_ms_total, 3),
            "queue_wait_ms_total": round(self.queue_wait_ms_total, 3),
            "latency_ms": self.percentiles(),
        }
        if self.selectivities:
            d["selectivity_avg"] = round(
                sum(self.selectivities) / len(self.selectivities), 6
            )
        if self.projections:
            d["projections"] = dict(self.projections)
        if self.predicted_count:
            d["predicted_count"] = self.predicted_count
            d["predicted_ms_total"] = round(self.predicted_ms_total, 3)
            d["residual_ms_total"] = round(self.residual_ms_total, 3)
        return d


@dataclass
class WorkloadSummary:
    """Whole-log aggregate: the advisor's input, the operator's overview."""

    total: int = 0
    by_outcome: dict = field(default_factory=dict)
    by_strategy: dict = field(default_factory=dict)
    by_origin: dict = field(default_factory=dict)
    by_encoding: dict = field(default_factory=dict)
    column_touches: dict = field(default_factory=dict)
    templates: dict = field(default_factory=dict)
    wall_ms_total: float = 0.0
    simulated_ms_total: float = 0.0
    queue_wait_ms_total: float = 0.0
    partitions_scanned: int = 0
    partitions_pruned: int = 0
    counters: dict = field(default_factory=dict)
    wall_samples: list = field(default_factory=list)

    def top_templates(self, n: int = 10) -> list[TemplateStats]:
        """Templates by descending total wall time (then count)."""
        return sorted(
            self.templates.values(),
            key=lambda t: (-t.wall_ms_total, -t.count, t.fingerprint),
        )[:n]

    def latency_percentiles(self) -> dict:
        ordered = sorted(self.wall_samples)
        return {
            "p50": round(_percentile(ordered, 0.50), 3),
            "p90": round(_percentile(ordered, 0.90), 3),
            "p99": round(_percentile(ordered, 0.99), 3),
        }

    def to_dict(self, top: int = 10) -> dict:
        return {
            "total": self.total,
            "by_outcome": dict(self.by_outcome),
            "by_strategy": dict(self.by_strategy),
            "by_origin": dict(self.by_origin),
            "by_encoding": dict(self.by_encoding),
            "column_touches": dict(
                sorted(
                    self.column_touches.items(),
                    key=lambda kv: (-kv[1], kv[0]),
                )
            ),
            "wall_ms_total": round(self.wall_ms_total, 3),
            "simulated_ms_total": round(self.simulated_ms_total, 3),
            "queue_wait_ms_total": round(self.queue_wait_ms_total, 3),
            "latency_ms": self.latency_percentiles(),
            "partitions": {
                "scanned": self.partitions_scanned,
                "pruned": self.partitions_pruned,
            },
            "counters": dict(self.counters),
            "distinct_templates": len(self.templates),
            "top_templates": [t.to_dict() for t in self.top_templates(top)],
        }

    def render(self, top: int = 10) -> str:
        """Plain-text report for the ``repro workload`` CLI."""
        lines = [
            f"records        {self.total}",
            f"templates      {len(self.templates)}",
        ]
        if self.by_outcome:
            mix = ", ".join(
                f"{k}={v}" for k, v in sorted(self.by_outcome.items())
            )
            lines.append(f"outcomes       {mix}")
        if self.by_strategy:
            mix = ", ".join(
                f"{k}={v}" for k, v in sorted(self.by_strategy.items())
            )
            lines.append(f"strategies     {mix}")
        if self.by_origin:
            mix = ", ".join(
                f"{k}={v}" for k, v in sorted(self.by_origin.items())
            )
            lines.append(f"origins        {mix}")
        pct = self.latency_percentiles()
        lines.append(
            f"latency ms     p50={pct['p50']} p90={pct['p90']} "
            f"p99={pct['p99']}"
        )
        lines.append(
            f"wall/sim ms    {self.wall_ms_total:.1f} / "
            f"{self.simulated_ms_total:.1f} "
            f"(queue wait {self.queue_wait_ms_total:.1f})"
        )
        if self.partitions_scanned or self.partitions_pruned:
            lines.append(
                f"partitions     scanned={self.partitions_scanned} "
                f"pruned={self.partitions_pruned}"
            )
        if self.column_touches:
            hot = sorted(
                self.column_touches.items(), key=lambda kv: (-kv[1], kv[0])
            )[:8]
            lines.append(
                "hot columns    "
                + ", ".join(f"{c}×{n}" for c, n in hot)
            )
        lines.append("")
        lines.append(f"top {min(top, len(self.templates))} templates by total wall time:")
        for t in self.top_templates(top):
            pt = t.percentiles()
            lines.append(
                f"  [{t.fingerprint}] ×{t.count:<5d} "
                f"wall={t.wall_ms_total:8.1f}ms p50={pt['p50']:<8g} "
                f"{t.template[:90]}"
            )
        return "\n".join(lines)


def _record_prediction(db, record, constants, cache):
    """Model-predicted simulated ms for one select record (None when n/a).

    The prediction pins the record's resolved strategy and, when recorded,
    its resolved projection — the same physical plan the measurement came
    from — so ``predicted - measured`` is a true model residual rather
    than a plan-choice delta. Keyed by (fingerprint, strategy, projection,
    literal query) so repeated templates cost one prediction each.
    """
    if record.get("kind") != "select":
        return None
    qdict = record.get("query")
    strategy_name = record.get("strategy")
    if not qdict or not strategy_name:
        return None
    proj_name = record.get("projection") or qdict.get("projection")
    key = (
        record.get("fingerprint", "-"),
        strategy_name,
        proj_name,
        json.dumps(qdict, sort_keys=True),
    )
    if key in cache:
        return cache[key]
    from .model import predict_select
    from .planner.projection_choice import resolve_projection
    from .planner.strategies import Strategy
    from .serving.protocol import query_from_dict

    try:
        query = query_from_dict(qdict)
        strategy = Strategy.from_name(strategy_name)
        if proj_name is not None and proj_name in db.catalog:
            projection = db.catalog.get(proj_name)
        else:
            projection = resolve_projection(
                db.catalog, query, constants=constants
            )
        value = predict_select(
            projection, query, strategy, constants=constants
        ).total_ms
    except (ReproError, ValueError):
        value = None
    cache[key] = value
    return value


def summarize_log(records, db=None, constants=None) -> WorkloadSummary:
    """Fold an iterable of query-log records into a :class:`WorkloadSummary`.

    When *db* is given, each ok/degraded select record is additionally
    costed through the analytical model (against the recorded projection
    and strategy, with *constants* defaulting to ``db.constants``) and the
    per-template predicted-vs-measured simulated-ms residuals are
    accumulated on :class:`TemplateStats` — the advisor's recalibration
    and what-if inputs. Without *db* the summary is purely observational,
    as before.
    """
    if db is not None and constants is None:
        constants = db.constants
    prediction_cache: dict = {}
    summary = WorkloadSummary()
    for record in records:
        summary.total += 1
        outcome = record.get("outcome", "ok")
        summary.by_outcome[outcome] = summary.by_outcome.get(outcome, 0) + 1
        origin = record.get("origin", "embedded")
        summary.by_origin[origin] = summary.by_origin.get(origin, 0) + 1
        strategy = record.get("strategy")
        if strategy:
            summary.by_strategy[strategy] = (
                summary.by_strategy.get(strategy, 0) + 1
            )
        for enc in (record.get("encodings") or {}).values():
            summary.by_encoding[enc] = summary.by_encoding.get(enc, 0) + 1
        for col in record.get("columns", ()):
            summary.column_touches[col] = (
                summary.column_touches.get(col, 0) + 1
            )
        wall = float(record.get("wall_ms", 0.0))
        sim = float(record.get("simulated_ms", 0.0))
        wait = float(record.get("queue_wait_ms", 0.0))
        summary.wall_ms_total += wall
        summary.simulated_ms_total += sim
        summary.queue_wait_ms_total += wait
        parts = record.get("partitions")
        if parts:
            summary.partitions_scanned += int(parts.get("scanned", 0))
            summary.partitions_pruned += int(parts.get("pruned", 0))
        for name, value in (record.get("counters") or {}).items():
            summary.counters[name] = summary.counters.get(name, 0) + value

        fp = record.get("fingerprint", "-")
        tmpl = summary.templates.get(fp)
        if tmpl is None:
            tmpl = TemplateStats(
                fingerprint=fp,
                template=record.get("template", ""),
                kind=record.get("kind", "select"),
            )
            summary.templates[fp] = tmpl
        tmpl.count += 1
        tmpl.outcomes[outcome] = tmpl.outcomes.get(outcome, 0) + 1
        if strategy:
            tmpl.strategies[strategy] = tmpl.strategies.get(strategy, 0) + 1
        tmpl.origins[origin] = tmpl.origins.get(origin, 0) + 1
        tmpl.rows_total += int(record.get("rows", 0))
        tmpl.wall_ms_total += wall
        tmpl.simulated_ms_total += sim
        tmpl.queue_wait_ms_total += wait
        if "selectivity" in record:
            tmpl.selectivities.append(float(record["selectivity"]))
        proj = record.get("projection")
        if proj:
            tmpl.projections[proj] = tmpl.projections.get(proj, 0) + 1
        if outcome in ("ok", "degraded"):
            tmpl.wall_samples.append(wall)
            summary.wall_samples.append(wall)
            if tmpl.example_query is None and record.get("query"):
                tmpl.example_query = record["query"]
            if db is not None:
                predicted = _record_prediction(
                    db, record, constants, prediction_cache
                )
                if predicted is not None:
                    tmpl.predicted_count += 1
                    tmpl.predicted_ms_total += predicted
                    tmpl.measured_on_predicted_ms_total += sim
                    # Derived, not independently accumulated, so the
                    # documented identity holds bit-exactly.
                    tmpl.residual_ms_total = (
                        tmpl.predicted_ms_total
                        - tmpl.measured_on_predicted_ms_total
                    )
    return summary


# --------------------------------------------------------------------------
# Replay: the sixth differential axis
# --------------------------------------------------------------------------


@dataclass
class ReplayMismatch:
    """One record whose replayed result hash differed from the captured one."""

    seq: int
    fingerprint: str
    template: str
    strategy: str
    recorded_hash: str
    replayed_hash: str
    recorded_rows: int
    replayed_rows: int

    def to_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class ReplayReport:
    """Outcome of :func:`replay_log`."""

    total: int = 0            # records in the input log
    eligible: int = 0         # ok records carrying a query + result hash
    replayed: int = 0         # eligible records actually re-executed
    matched: int = 0
    mismatched: int = 0
    skipped: int = 0          # non-ok / hashless / unsupported-on-this-db
    errors: int = 0           # replays that raised
    strategies: dict = field(default_factory=dict)
    origins: dict = field(default_factory=dict)
    mismatches: list = field(default_factory=list)
    error_detail: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.mismatched == 0 and self.errors == 0

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "eligible": self.eligible,
            "replayed": self.replayed,
            "matched": self.matched,
            "mismatched": self.mismatched,
            "skipped": self.skipped,
            "errors": self.errors,
            "strategies": dict(self.strategies),
            "origins": dict(self.origins),
            "ok": self.ok,
            "mismatches": [m.to_dict() for m in self.mismatches[:20]],
            "error_detail": self.error_detail[:20],
        }

    def render(self) -> str:
        status = "OK" if self.ok else "MISMATCH"
        lines = [
            f"replay         {status}",
            f"records        {self.total} total, {self.eligible} eligible",
            f"replayed       {self.replayed} "
            f"(matched={self.matched} mismatched={self.mismatched} "
            f"errors={self.errors} skipped={self.skipped})",
        ]
        if self.strategies:
            mix = ", ".join(
                f"{k}={v}" for k, v in sorted(self.strategies.items())
            )
            lines.append(f"strategies     {mix}")
        if self.origins:
            mix = ", ".join(
                f"{k}={v}" for k, v in sorted(self.origins.items())
            )
            lines.append(f"origins        {mix}")
        for m in self.mismatches[:5]:
            lines.append(
                f"  seq {m.seq} [{m.fingerprint}] {m.strategy}: "
                f"recorded {m.recorded_hash}/{m.recorded_rows} rows, "
                f"replayed {m.replayed_hash}/{m.replayed_rows} rows"
            )
        for e in self.error_detail[:5]:
            lines.append(f"  seq {e['seq']} raised {e['type']}: {e['message']}")
        return "\n".join(lines)


def replay_log(db, records, check: bool = True,
               limit: int | None = None) -> ReplayReport:
    """Re-execute a captured query log against *db*.

    Only ``ok`` records carrying the full query dict are replayed, each
    pinned to its recorded resolved strategy — and, for selects whose
    record carries the resolved projection name and the target catalog
    still has it, to that projection — so tuple order reproduces exactly
    even after the advisor has built or dropped anchored projections.
    With ``check=True`` every record must also carry a
    ``result_hash`` (captured with ``QueryLog(result_hashes=True)``, the
    default) and the replayed result's hash is compared bit for bit.

    Queries the target database cannot run (e.g. a projection or encoding
    that doesn't exist there, or an unsupported strategy/encoding pair)
    count as ``skipped``; any other exception counts as an error. The
    report's :attr:`ReplayReport.ok` is True iff nothing mismatched and
    nothing errored.
    """
    from .serving.protocol import query_from_dict

    report = ReplayReport()
    for record in records:
        report.total += 1
        if record.get("outcome") != "ok" or not record.get("query"):
            report.skipped += 1
            continue
        if check and "result_hash" not in record:
            report.skipped += 1
            continue
        report.eligible += 1
        if limit is not None and report.replayed >= limit:
            report.skipped += 1
            continue
        qdict = record["query"]
        # The planner resolved this select to a concrete projection at
        # record time; pin the replay to the same physical source so tuple
        # order (and therefore the hash) reproduces even if the advisor
        # has since changed the candidate set. Records without the field
        # (older logs) fall back to live routing, as before.
        pinned = record.get("projection")
        if not (
            pinned
            and qdict.get("kind", "select") == "select"
            and pinned in db.catalog
        ):
            pinned = None
        elif pinned not in {
            p.name for p in db.catalog.candidates(qdict.get("projection", ""))
        }:
            # The record's projection no longer serves the query's table
            # (renamed, re-anchored, or the record was hand-edited): fall
            # back to live routing so errors surface normally.
            pinned = None
        try:
            query = query_from_dict(qdict)
        except ReproError as exc:
            report.errors += 1
            report.error_detail.append({
                "seq": record.get("seq", -1),
                "type": type(exc).__name__,
                "message": str(exc)[:200],
            })
            continue
        strategy = record.get("strategy", "auto")
        try:
            result = db.query(query, strategy=strategy,
                              pin_projection=pinned)
        except UnsupportedOperationError:
            report.skipped += 1
            continue
        except ReproError as exc:
            report.errors += 1
            report.error_detail.append({
                "seq": record.get("seq", -1),
                "type": type(exc).__name__,
                "message": str(exc)[:200],
            })
            continue
        report.replayed += 1
        report.strategies[result.strategy] = (
            report.strategies.get(result.strategy, 0) + 1
        )
        origin = record.get("origin", "embedded")
        report.origins[origin] = report.origins.get(origin, 0) + 1
        if check:
            replayed = result_hash(result.tuples)
            if replayed == record["result_hash"]:
                report.matched += 1
            else:
                report.mismatched += 1
                report.mismatches.append(ReplayMismatch(
                    seq=record.get("seq", -1),
                    fingerprint=record.get("fingerprint", "-"),
                    template=record.get("template", ""),
                    strategy=result.strategy,
                    recorded_hash=record["result_hash"],
                    replayed_hash=replayed,
                    recorded_rows=int(record.get("rows", -1)),
                    replayed_rows=result.n_rows,
                ))
        else:
            report.matched += 1
    return report
