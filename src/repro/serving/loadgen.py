"""Closed-loop load generator for the query server.

N simulated clients each run the classic closed loop: pick a query from a
seeded **Zipfian** mix over a generated corpus, send it, wait for the full
response, *think* for a jittered interval, repeat. Throughput under this
model follows the interactive-response-time law — one client's throughput
is bounded by ``1 / (think + response)``, so a server that overlaps many
clients' think time across its worker pool scales throughput with client
count until the machine (or the admission queue) saturates. That scaling
curve — plus p50/p99 latency, queue depth and rejection rate — is exactly
what ``benchmarks/bench_serving.py`` records into ``BENCH_serving.json``.

Everything is seeded: the corpus, each client's query choices and think
jitter, so a run is reproducible end to end. The Zipfian skew (``theta``)
makes a handful of corpus queries dominate, which keeps the buffer pool and
decoded cache warm — the serving-layer analogue of the paper's warm-scan
measurements.
"""

from __future__ import annotations

import asyncio
import random
import time
from bisect import bisect_left
from dataclasses import dataclass, field

from ..planner import SelectQuery
from ..predicates import Predicate
from .client import AsyncQueryClient
from .protocol import query_to_dict
from .server import ServerThread

_OPS = ("<", "<=", ">", ">=", "=", "!=")
_AGG_FUNCS = ("sum", "count", "min", "max", "avg")


def build_corpus(
    db,
    projection: str = "lineitem",
    size: int = 32,
    seed: int = 7,
    limit: int | None = 1024,
) -> list[SelectQuery]:
    """Seeded random selection/aggregation corpus over one projection.

    A lighter sibling of the differential harness's ``QueryGenerator``
    (which lives in the test tree): predicates are drawn from observed
    value domains so selectivities span empty to full, a quarter of the
    corpus aggregates, and no stored-encoding overrides are used — every
    query is executable under every strategy, so the mix never trips the
    LM-pipelined/bit-vector limitation mid-benchmark.

    *limit* caps every selection's result set (an interactive client
    paginates; it does not pull the whole table per request). Without it a
    near-full-selectivity draw turns into a table dump whose serialization
    cost swamps the scan the benchmark is trying to measure. ``None``
    removes the cap. Aggregations are left uncapped — their outputs are
    group-count sized.
    """
    proj = db.projection(projection)
    rng = random.Random(seed)
    columns = list(proj.column_names)
    domains = {}
    for col in columns:
        values = proj.read_column_values(col)
        domains[col] = (int(values.min()), int(values.max()))

    def predicate(col: str) -> Predicate:
        lo, hi = domains[col]
        return Predicate(col, rng.choice(_OPS), rng.randint(lo, hi))

    corpus: list[SelectQuery] = []
    for _ in range(size):
        n_select = rng.randint(1, min(3, len(columns)))
        select = tuple(rng.sample(columns, n_select))
        pred_cols = rng.sample(columns, rng.randint(0, min(2, len(columns))))
        predicates = tuple(predicate(c) for c in pred_cols)
        if rng.random() < 0.25:
            group = rng.choice(columns)
            agg_col = rng.choice([c for c in columns if c != group])
            from ..operators.aggregate import AggSpec

            spec = AggSpec(rng.choice(_AGG_FUNCS), agg_col)
            corpus.append(
                SelectQuery(
                    projection=projection,
                    select=(group, spec.output_name),
                    predicates=predicates,
                    group_by=group,
                    aggregates=(spec,),
                )
            )
        else:
            corpus.append(
                SelectQuery(
                    projection=projection,
                    select=select,
                    predicates=predicates,
                    limit=limit,
                )
            )
    return corpus


def zipfian_cdf(n: int, theta: float) -> list[float]:
    """Cumulative Zipf weights for ranks 1..n (weight of rank k ∝ k^-theta)."""
    weights = [1.0 / (k ** theta) for k in range(1, n + 1)]
    total = sum(weights)
    cdf, acc = [], 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    cdf[-1] = 1.0
    return cdf


@dataclass
class LoadgenReport:
    """Outcome of one closed-loop run (JSON-safe via :meth:`to_dict`)."""

    clients: int = 0
    workers: int = 0
    duration_s: float = 0.0
    think_ms: float = 0.0
    theta: float = 0.0
    seed: int = 0
    corpus_size: int = 0
    queries: int = 0          # requests attempted
    ok: int = 0
    rejected: int = 0
    timeouts: int = 0
    errors: int = 0
    throughput_qps: float = 0.0
    mean_ms: float = 0.0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    max_ms: float = 0.0
    queue_depth_max: int = 0
    queue_depth_mean: float = 0.0
    rejection_rate: float = 0.0
    latencies_ms: list = field(default_factory=list, repr=False)

    def to_dict(self) -> dict:
        out = {
            k: getattr(self, k)
            for k in (
                "clients", "workers", "duration_s", "think_ms", "theta",
                "seed", "corpus_size", "queries", "ok", "rejected",
                "timeouts", "errors", "throughput_qps", "mean_ms", "p50_ms",
                "p95_ms", "p99_ms", "max_ms", "queue_depth_max",
                "queue_depth_mean", "rejection_rate",
            )
        }
        return {
            k: round(v, 4) if isinstance(v, float) else v
            for k, v in out.items()
        }


def _percentile(sorted_ms: list[float], q: float) -> float:
    """Exact (nearest-rank) percentile of an already-sorted sample."""
    if not sorted_ms:
        return 0.0
    rank = max(0, min(len(sorted_ms) - 1, int(q * len(sorted_ms) + 0.5) - 1))
    return sorted_ms[rank]


async def _client_loop(
    index: int,
    host: str,
    port: int,
    qdicts: list[dict],
    cdf: list[float],
    deadline: float,
    think_s: float,
    seed: int,
    timeout_ms,
    priority: str,
    report: LoadgenReport,
) -> None:
    rng = random.Random(seed * 10_007 + index)
    client = await AsyncQueryClient.connect(host, port)
    try:
        overrides: dict = {"priority": priority}
        if timeout_ms is not None:
            overrides["timeout_ms"] = timeout_ms
        while time.monotonic() < deadline:
            payload = {
                "op": "query",
                "query": qdicts[bisect_left(cdf, rng.random())],
                **overrides,
            }
            t0 = time.perf_counter()
            response = await client.request(payload)
            latency_ms = (time.perf_counter() - t0) * 1000.0
            report.queries += 1
            if response.get("ok"):
                report.ok += 1
                report.latencies_ms.append(latency_ms)
            elif response.get("rejected"):
                report.rejected += 1
            elif response.get("timeout"):
                report.timeouts += 1
            else:
                report.errors += 1
            if think_s > 0:
                # Jittered think time, mean == think_s, seeded per client.
                await asyncio.sleep(think_s * (0.5 + rng.random()))
    finally:
        await client.close()


async def _monitor_loop(
    host: str, port: int, stop: asyncio.Event, samples: list[int]
) -> None:
    """Sample the server's admission-queue depth until *stop* is set."""
    client = await AsyncQueryClient.connect(host, port)
    try:
        while not stop.is_set():
            response = await client.stats()
            if response.get("ok"):
                samples.append(response["stats"]["admission"]["depth"])
            try:
                await asyncio.wait_for(stop.wait(), timeout=0.05)
            except asyncio.TimeoutError:
                pass
    finally:
        await client.close()


async def _run_clients(
    host: str,
    port: int,
    corpus: list[SelectQuery],
    report: LoadgenReport,
    *,
    clients: int,
    duration_s: float,
    think_ms: float,
    theta: float,
    seed: int,
    timeout_ms,
    priority: str,
    warmup: bool,
) -> None:
    qdicts = [query_to_dict(q) for q in corpus]
    cdf = zipfian_cdf(len(qdicts), theta)
    if warmup:
        # One serial pass over the corpus so the measured window runs warm.
        client = await AsyncQueryClient.connect(host, port)
        try:
            for qd in qdicts:
                await client.request({"op": "query", "query": qd})
        finally:
            await client.close()
    stop = asyncio.Event()
    depth_samples: list[int] = []
    monitor = asyncio.ensure_future(
        _monitor_loop(host, port, stop, depth_samples)
    )
    deadline = time.monotonic() + duration_s
    start = time.perf_counter()
    await asyncio.gather(
        *(
            _client_loop(
                i, host, port, qdicts, cdf, deadline, think_ms / 1000.0,
                seed, timeout_ms, priority, report,
            )
            for i in range(clients)
        )
    )
    elapsed = time.perf_counter() - start
    stop.set()
    await monitor
    lat = sorted(report.latencies_ms)
    report.duration_s = elapsed
    report.throughput_qps = report.ok / elapsed if elapsed > 0 else 0.0
    report.mean_ms = sum(lat) / len(lat) if lat else 0.0
    report.p50_ms = _percentile(lat, 0.50)
    report.p95_ms = _percentile(lat, 0.95)
    report.p99_ms = _percentile(lat, 0.99)
    report.max_ms = lat[-1] if lat else 0.0
    report.queue_depth_max = max(depth_samples, default=0)
    report.queue_depth_mean = (
        sum(depth_samples) / len(depth_samples) if depth_samples else 0.0
    )
    report.rejection_rate = (
        report.rejected / report.queries if report.queries else 0.0
    )


def run_loadgen(
    db=None,
    host: str | None = None,
    port: int | None = None,
    *,
    clients: int = 8,
    duration_s: float = 4.0,
    think_ms: float = 20.0,
    theta: float = 1.1,
    seed: int = 7,
    corpus_size: int = 32,
    projection: str = "lineitem",
    workers: int = 4,
    max_queue: int = 64,
    timeout_ms: float | None = None,
    priority: str = "normal",
    warmup: bool = True,
    registry=None,
) -> LoadgenReport:
    """Run the closed loop and return a :class:`LoadgenReport`.

    Either pass *db* (a server is stood up in-process around it for the
    run, with *workers* threads and a *max_queue*-deep admission queue) or
    *host*/*port* of an already-running server — in the latter case *db*
    is still needed to build the corpus unless the corpus queries are
    known to exist server-side.

    The report is also folded into *registry* (default: the served
    database's registry) as ``loadgen.*`` counters and a latency histogram.
    """
    if db is None and (host is None or port is None):
        raise ValueError("need a Database or an explicit host/port")
    corpus = build_corpus(db, projection=projection, size=corpus_size,
                          seed=seed)
    report = LoadgenReport(
        clients=clients, workers=workers, think_ms=think_ms, theta=theta,
        seed=seed, corpus_size=corpus_size,
    )

    def _drive(target_host: str, target_port: int) -> None:
        asyncio.run(
            _run_clients(
                target_host, target_port, corpus, report,
                clients=clients, duration_s=duration_s, think_ms=think_ms,
                theta=theta, seed=seed, timeout_ms=timeout_ms,
                priority=priority, warmup=warmup,
            )
        )

    if host is not None and port is not None:
        _drive(host, port)
    else:
        with ServerThread(db, workers=workers, max_queue=max_queue) as st:
            _drive(st.host, st.port)

    reg = registry
    if reg is None and db is not None:
        reg = db.metrics
    if reg is not None:
        reg.counter("loadgen.queries_total").inc(report.queries)
        reg.counter("loadgen.rejected_total").inc(report.rejected)
        reg.counter("loadgen.timeouts_total").inc(report.timeouts)
        reg.counter("loadgen.errors_total").inc(report.errors)
        hist = reg.histogram("loadgen.latency_ms")
        for ms in report.latencies_ms:
            hist.record(ms)
    return report
