"""Bounded admission queue with priority classes and backpressure.

The serving layer's front door: every query a client submits is *offered*
to this queue, and a fixed pool of worker threads *takes* from it. The
queue is deliberately a plain synchronous data structure (a lock, a
condition variable, one deque per priority class) with no asyncio or
engine dependencies, so its invariants are directly checkable by the
Hypothesis property suite:

* **bounded depth** — :meth:`offer` never grows the queue past
  ``max_depth``; a full queue rejects (returns ``False``) instead of
  blocking, which is the backpressure signal the server turns into a
  ``rejected`` response.
* **strict priority** — :meth:`take` always returns the head of the
  highest non-empty priority class (``interactive`` > ``normal`` >
  ``batch``).
* **FIFO within a class** — two offers at the same priority are taken in
  offer order; no starvation *within* a class. (Across classes, strict
  priority means a saturated ``interactive`` stream can starve ``batch``
  — the conventional trade; bound the interactive share at the client.)
"""

from __future__ import annotations

import threading
from collections import deque

#: Priority classes, highest first. ``take`` drains them in this order.
PRIORITIES: tuple[str, ...] = ("interactive", "normal", "batch")

DEFAULT_MAX_DEPTH = 64


class AdmissionQueue:
    """Bounded multi-class FIFO queue; full means reject, never block."""

    def __init__(self, max_depth: int = DEFAULT_MAX_DEPTH):
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.max_depth = max_depth
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._queues: dict[str, deque] = {p: deque() for p in PRIORITIES}
        self._depth = 0
        self._closed = False
        # Lifetime tallies, read by metrics()/the server's stats op.
        self.admitted = 0
        self.rejected = 0
        self.taken = 0
        self.peak_depth = 0

    # ----------------------------------------------------------- producers

    def offer(self, item, priority: str = "normal") -> bool:
        """Enqueue *item*; False when full or closed (backpressure)."""
        if priority not in self._queues:
            raise ValueError(
                f"unknown priority {priority!r} (use one of {PRIORITIES})"
            )
        with self._not_empty:
            if self._closed or self._depth >= self.max_depth:
                self.rejected += 1
                return False
            self._queues[priority].append(item)
            self._depth += 1
            self.admitted += 1
            self.peak_depth = max(self.peak_depth, self._depth)
            self._not_empty.notify()
            return True

    # ----------------------------------------------------------- consumers

    def take(self, timeout: float | None = None):
        """Dequeue the highest-priority item, FIFO within its class.

        Blocks up to *timeout* seconds (forever when ``None``) and returns
        ``None`` on timeout. After :meth:`close`, remaining items are still
        drained; once empty, ``None`` is returned immediately — the worker
        shutdown signal.
        """
        with self._not_empty:
            while True:
                for priority in PRIORITIES:
                    queue = self._queues[priority]
                    if queue:
                        self._depth -= 1
                        self.taken += 1
                        return queue.popleft()
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return None

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Stop admitting; wake every blocked :meth:`take` (idempotent)."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def depth(self) -> int:
        """Items currently queued across all classes."""
        with self._lock:
            return self._depth

    def depths(self) -> dict[str, int]:
        """Per-class queued counts (one consistent snapshot)."""
        with self._lock:
            return {p: len(q) for p, q in self._queues.items()}

    def metrics(self) -> dict:
        """Collector payload for :class:`~repro.metrics.MetricsRegistry`."""
        with self._lock:
            return {
                "depth": self._depth,
                "max_depth": self.max_depth,
                "peak_depth": self.peak_depth,
                "admitted": self.admitted,
                "taken": self.taken,
                "rejected": self.rejected,
                "per_class": {p: len(q) for p, q in self._queues.items()},
                "closed": self._closed,
            }
