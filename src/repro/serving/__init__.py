"""Serving layer: sessions, admission control, and the query server.

Turns the single-process engine into a measurable serving system (the
ROADMAP's "heavy traffic" front door): an asyncio TCP server speaking a
newline-delimited JSON protocol over one shared
:class:`~repro.engine.Database`, with per-connection
:class:`~repro.serving.session.Session` state, a bounded
:class:`~repro.serving.admission.AdmissionQueue` with priority classes and
backpressure, per-query deadlines with cooperative cancellation, graceful
drain, and a seeded closed-loop Zipfian load generator. See
``docs/serving.md`` for the protocol and semantics.
"""

from .admission import PRIORITIES, AdmissionQueue
from .client import AsyncQueryClient
from .loadgen import LoadgenReport, build_corpus, run_loadgen, zipfian_cdf
from .protocol import query_from_dict, query_to_dict
from .server import QueryServer, ServerThread
from .session import DEFAULT_KNOBS, Session

__all__ = [
    "AdmissionQueue",
    "PRIORITIES",
    "AsyncQueryClient",
    "QueryServer",
    "ServerThread",
    "Session",
    "DEFAULT_KNOBS",
    "LoadgenReport",
    "build_corpus",
    "run_loadgen",
    "zipfian_cdf",
    "query_to_dict",
    "query_from_dict",
]
