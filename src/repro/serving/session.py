"""Per-connection session state: default knobs and query history.

A :class:`Session` is created when a client connects and lives until the
connection closes. It holds the client's default execution knobs (strategy,
priority class, timeout, tracing, decoded output) — individual requests may
override any of them — plus a bounded history of recent operations and the
set of in-flight cancel tokens, so a disconnect cancels everything the
session still has running.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from ..serving.admission import PRIORITIES

#: Knobs a session (or an individual request) may set, with defaults.
DEFAULT_KNOBS: dict = {
    "strategy": "auto",      # materialization strategy ("auto" = model)
    "priority": "normal",    # admission class: interactive | normal | batch
    "timeout_ms": None,      # per-query deadline (None = unlimited)
    "trace": False,          # EXPLAIN ANALYZE span tree on every query
    "decoded": False,        # return decoded (logical) values, not stored
}

HISTORY_CAPACITY = 64


class Session:
    """One client connection's serving state."""

    def __init__(self, session_id: int, knobs: dict | None = None):
        self.session_id = session_id
        self.created_at = time.time()
        self.knobs = dict(DEFAULT_KNOBS)
        if knobs:
            self.set_knobs(knobs)
        self.history: deque = deque(maxlen=HISTORY_CAPACITY)
        self.queries = 0
        self.errors = 0
        self.rejected = 0
        self._lock = threading.Lock()
        self._inflight: set = set()

    # ----------------------------------------------------------------- knobs

    def set_knobs(self, updates: dict) -> dict:
        """Validate and apply knob *updates*; returns the effective knobs."""
        for key, value in updates.items():
            if key not in DEFAULT_KNOBS:
                raise ValueError(
                    f"unknown session knob {key!r} "
                    f"(known: {sorted(DEFAULT_KNOBS)})"
                )
            if key == "priority" and value not in PRIORITIES:
                raise ValueError(
                    f"unknown priority {value!r} (use one of {PRIORITIES})"
                )
            if key == "timeout_ms" and value is not None:
                value = float(value)
                if value < 0:
                    raise ValueError("timeout_ms must be >= 0")
            if key in ("trace", "decoded"):
                value = bool(value)
            self.knobs[key] = value
        return dict(self.knobs)

    def effective(self, request: dict) -> dict:
        """Session knobs with any per-request overrides applied."""
        knobs = dict(self.knobs)
        for key in DEFAULT_KNOBS:
            if key in request:
                knobs[key] = request[key]
        return knobs

    # --------------------------------------------------------------- history

    def record(self, op: str, ok: bool, wall_ms: float | None = None,
               detail: str = "") -> None:
        """Append one finished operation to the bounded history."""
        self.queries += 1
        if not ok:
            self.errors += 1
        self.history.append(
            {
                "op": op,
                "ok": ok,
                "wall_ms": None if wall_ms is None else round(wall_ms, 3),
                "detail": detail[:120],
                "ts": time.time(),
            }
        )

    # -------------------------------------------------------- cancellation

    def track(self, token) -> None:
        """Register an in-flight cancel token for disconnect cleanup."""
        with self._lock:
            self._inflight.add(token)

    def untrack(self, token) -> None:
        with self._lock:
            self._inflight.discard(token)

    def cancel_inflight(self, reason: str = "client disconnected") -> int:
        """Trip every in-flight token (the disconnect path); returns count."""
        with self._lock:
            tokens = list(self._inflight)
        for token in tokens:
            token.cancel(reason)
        return len(tokens)

    # ------------------------------------------------------------- reporting

    def describe(self) -> dict:
        """JSON-safe session summary for the ``session`` op."""
        return {
            "session_id": self.session_id,
            "created_at": self.created_at,
            "knobs": dict(self.knobs),
            "queries": self.queries,
            "errors": self.errors,
            "rejected": self.rejected,
            "history": list(self.history),
        }
