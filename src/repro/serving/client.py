"""Asyncio client for the repro query server.

One connection, strictly request/response: :meth:`AsyncQueryClient.request`
writes a JSON line and awaits the matching response line. Convenience
wrappers cover the common ops; the raw :meth:`request` takes any protocol
dict. Used by the load generator, the concurrency differential harness and
the serving tests.

Read-only requests survive one transient connection reset: the client
reconnects after a capped exponential backoff and replays the request,
counting each recovery in the ``serving.reconnects_total`` metric.
Non-idempotent ops (``set``, ``close``) are never replayed — a reset there
surfaces as the original :class:`ConnectionError` because the server may
have acted on the request before the connection died.
"""

from __future__ import annotations

import asyncio
import json

from ..metrics import REGISTRY
from .protocol import query_to_dict
from .server import STREAM_LIMIT

#: Ops safe to replay after a connection reset: they read state (or, for
#: ``session``, re-establish it) without mutating the database or knobs.
IDEMPOTENT_OPS = frozenset(
    {"query", "sql", "explain", "session", "stats", "metrics", "ping"}
)

#: First-retry backoff and the cap it grows toward on repeated resets.
RECONNECT_BACKOFF_BASE = 0.05
RECONNECT_BACKOFF_CAP = 1.0


class AsyncQueryClient:
    """Line-protocol client bound to one server connection."""

    def __init__(self, reader, writer, greeting: dict, *,
                 host: str | None = None, port: int | None = None,
                 metrics=None):
        self._reader = reader
        self._writer = writer
        self.greeting = greeting
        self.session_id = greeting.get("session_id")
        self._host = host
        self._port = port
        self._metrics = metrics if metrics is not None else REGISTRY
        self._consecutive_resets = 0

    @classmethod
    async def connect(
        cls, host: str = "127.0.0.1", port: int = 0, metrics=None
    ) -> "AsyncQueryClient":
        """Open a connection and consume the server greeting."""
        reader, writer = await asyncio.open_connection(
            host, port, limit=STREAM_LIMIT
        )
        greeting = json.loads(await reader.readline())
        return cls(reader, writer, greeting,
                   host=host, port=port, metrics=metrics)

    async def request(self, payload: dict) -> dict:
        """Send one protocol dict, await and parse the response line.

        Idempotent (read-only) ops get one transparent retry on a
        transient reset; everything else propagates the failure.
        """
        try:
            result = await self._send(payload)
        except (ConnectionError, asyncio.IncompleteReadError):
            if (
                payload.get("op") not in IDEMPOTENT_OPS
                or self._host is None
            ):
                raise
            await self._reconnect()
            result = await self._send(payload)
        self._consecutive_resets = 0
        return result

    async def _send(self, payload: dict) -> dict:
        self._writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    async def _reconnect(self) -> None:
        """Replace the dead connection after a capped exponential backoff."""
        backoff = min(
            RECONNECT_BACKOFF_BASE * 2 ** self._consecutive_resets,
            RECONNECT_BACKOFF_CAP,
        )
        self._consecutive_resets += 1
        await asyncio.sleep(backoff)
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port, limit=STREAM_LIMIT
        )
        self.greeting = json.loads(await self._reader.readline())
        self.session_id = self.greeting.get("session_id")
        self._metrics.counter("serving.reconnects_total").inc()

    # ----------------------------------------------------------- conveniences

    async def sql(self, statement: str, **knobs) -> dict:
        return await self.request({"op": "sql", "sql": statement, **knobs})

    async def query(self, query, **knobs) -> dict:
        """Run a logical SelectQuery/JoinQuery object."""
        return await self.request(
            {"op": "query", "query": query_to_dict(query), **knobs}
        )

    async def explain(self, statement: str, analyze: bool = True, **knobs) -> dict:
        return await self.request(
            {"op": "explain", "sql": statement, "analyze": analyze, **knobs}
        )

    async def set_knobs(self, **knobs) -> dict:
        return await self.request({"op": "set", "knobs": knobs})

    async def session(self) -> dict:
        return await self.request({"op": "session"})

    async def stats(self) -> dict:
        return await self.request({"op": "stats"})

    async def metrics(self, format: str = "prometheus") -> dict:
        """Fetch the server's metrics exposition (``prometheus`` text or
        ``json`` registry export + live serving stats)."""
        return await self.request({"op": "metrics", "format": format})

    async def ping(self) -> dict:
        return await self.request({"op": "ping"})

    async def close(self) -> None:
        """Polite close: send the close op, then tear the socket down."""
        try:
            await self.request({"op": "close"})
        except (ConnectionError, json.JSONDecodeError):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
