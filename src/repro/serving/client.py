"""Asyncio client for the repro query server.

One connection, strictly request/response: :meth:`AsyncQueryClient.request`
writes a JSON line and awaits the matching response line. Convenience
wrappers cover the common ops; the raw :meth:`request` takes any protocol
dict. Used by the load generator, the concurrency differential harness and
the serving tests.
"""

from __future__ import annotations

import asyncio
import json

from .protocol import query_to_dict
from .server import STREAM_LIMIT


class AsyncQueryClient:
    """Line-protocol client bound to one server connection."""

    def __init__(self, reader, writer, greeting: dict):
        self._reader = reader
        self._writer = writer
        self.greeting = greeting
        self.session_id = greeting.get("session_id")

    @classmethod
    async def connect(
        cls, host: str = "127.0.0.1", port: int = 0
    ) -> "AsyncQueryClient":
        """Open a connection and consume the server greeting."""
        reader, writer = await asyncio.open_connection(
            host, port, limit=STREAM_LIMIT
        )
        greeting = json.loads(await reader.readline())
        return cls(reader, writer, greeting)

    async def request(self, payload: dict) -> dict:
        """Send one protocol dict, await and parse the response line."""
        self._writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    # ----------------------------------------------------------- conveniences

    async def sql(self, statement: str, **knobs) -> dict:
        return await self.request({"op": "sql", "sql": statement, **knobs})

    async def query(self, query, **knobs) -> dict:
        """Run a logical SelectQuery/JoinQuery object."""
        return await self.request(
            {"op": "query", "query": query_to_dict(query), **knobs}
        )

    async def explain(self, statement: str, analyze: bool = True, **knobs) -> dict:
        return await self.request(
            {"op": "explain", "sql": statement, "analyze": analyze, **knobs}
        )

    async def set_knobs(self, **knobs) -> dict:
        return await self.request({"op": "set", "knobs": knobs})

    async def session(self) -> dict:
        return await self.request({"op": "session"})

    async def stats(self) -> dict:
        return await self.request({"op": "stats"})

    async def metrics(self, format: str = "prometheus") -> dict:
        """Fetch the server's metrics exposition (``prometheus`` text or
        ``json`` registry export + live serving stats)."""
        return await self.request({"op": "metrics", "format": format})

    async def ping(self) -> dict:
        return await self.request({"op": "ping"})

    async def close(self) -> None:
        """Polite close: send the close op, then tear the socket down."""
        try:
            await self.request({"op": "close"})
        except (ConnectionError, json.JSONDecodeError):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
