"""Asyncio query server over one :class:`~repro.engine.Database`.

Architecture — a front-end/worker split (the BRAD pattern scaled down):

* The **asyncio event loop** owns every TCP connection. Each connection gets
  a :class:`~repro.serving.session.Session`; requests are newline-delimited
  JSON (:mod:`repro.serving.protocol`), handled strictly in order per
  connection (closed-loop clients; concurrency comes from many
  connections).
* Executable work (``sql`` / ``query`` / ``explain --analyze``) is bound to
  a query object, given a :class:`~repro.cancel.CancelToken` carrying the
  session's deadline, and *offered* to the bounded
  :class:`~repro.serving.admission.AdmissionQueue` under the session's
  priority class. A full queue rejects immediately — backpressure reaches
  the client as ``{"ok": false, "rejected": true}`` instead of unbounded
  buffering.
* A fixed pool of **worker threads** takes from the queue and runs
  ``Database.query(..., cancel=token, queue_wait_ms=wait)``; the engine's
  execute path is thread-safe (locked buffer pool / decoded cache /
  metrics, per-query stats), so workers share one Database. Results are
  delivered back to the event loop via ``loop.call_soon_threadsafe``.
* **Timeouts and cancellation** are cooperative: the token's deadline
  starts at admission, so time queued counts against the budget, and the
  engine checks the token at every block access. A disconnecting client
  trips the tokens of its in-flight queries. Either a complete result
  comes back or the query unwinds with a truncated-but-valid span tree —
  never a partial result.
* **Graceful drain**: :meth:`QueryServer.shutdown` stops accepting
  connections, rejects new work as ``draining``, waits for the queue and
  in-flight queries to empty, then closes the queue (workers exit) and the
  remaining connections.

:class:`ServerThread` wraps the whole thing in a background thread running
its own event loop — the handle tests, benchmarks and the differential
harness use to stand a server up around an existing Database.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass, field

from ..cancel import CancelToken
from ..errors import (
    QueryCancelledError,
    QueryTimeoutError,
    ReproError,
)
from ..serving.admission import AdmissionQueue, PRIORITIES
from ..serving.protocol import error_response, query_from_dict
from ..serving.session import Session

#: Big enough for a full result set on one JSON line (the stream reader's
#: default 64 KiB limit truncates anything non-trivial).
STREAM_LIMIT = 32 * 1024 * 1024


@dataclass
class _Work:
    """One admitted query: everything a worker needs to run and reply."""

    kind: str                      # "query" | "explain"
    session: Session
    query: object
    knobs: dict
    token: CancelToken | None
    future: asyncio.Future
    loop: asyncio.AbstractEventLoop
    enqueued_at: float = field(default_factory=time.monotonic)


class QueryServer:
    """Serve one Database over TCP with admission control and sessions."""

    def __init__(
        self,
        db,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        max_queue: int = 64,
        metrics=None,
    ):
        """Args:
            db: the :class:`~repro.engine.Database` to serve. Query
                execution is thread-safe; DDL (load/merge/drop) is not and
                must not run while the server is up.
            host / port: listen address; port 0 binds an ephemeral port
                (read it back from :attr:`port` after :meth:`start`).
            workers: worker threads executing admitted queries. On a
                single core this bounds queue-drain concurrency; the numpy
                kernels release the GIL, so extra workers overlap where
                cores exist.
            max_queue: admission-queue bound; offers past it are rejected.
            metrics: registry for serving counters/histograms (defaults to
                the database's registry).
        """
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.db = db
        self.host = host
        self._requested_port = port
        self.workers = workers
        self.metrics = metrics if metrics is not None else db.metrics
        self.admission = AdmissionQueue(max_depth=max_queue)
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._threads: list[threading.Thread] = []
        self._sessions: dict[int, Session] = {}
        self._writers: set = set()
        self._next_session = 0
        self._draining = False
        self._active = 0
        self._active_lock = threading.Lock()
        self.started_at: float | None = None

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        """Bind the listener and start the worker pool."""
        self._loop = asyncio.get_running_loop()
        self.metrics.register_collector("admission_queue", self.admission.metrics)
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-{i}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self._requested_port,
            limit=STREAM_LIMIT,
        )
        self.started_at = time.time()

    @property
    def port(self) -> int:
        """The bound port (resolves ephemeral port 0 after start)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Run until cancelled (the ``repro serve`` foreground path)."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, optionally drain in-flight work, release workers.

        With ``drain=True`` (default) every admitted query finishes and its
        response is delivered before workers are released; with ``False``
        queued work is dropped on the floor (in-flight queries still run to
        completion — workers are joined either way).
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            while self.admission.depth() > 0 or self._active_count() > 0:
                await asyncio.sleep(0.005)
        self.admission.close()
        for thread in self._threads:
            await asyncio.to_thread(thread.join)
        self._threads.clear()
        for writer in list(self._writers):
            writer.close()
        self.metrics.unregister_collector(
            "admission_queue", self.admission.metrics
        )

    def _active_count(self) -> int:
        with self._active_lock:
            return self._active

    # ------------------------------------------------------------ connections

    async def _handle_connection(self, reader, writer) -> None:
        self._next_session += 1
        session = Session(self._next_session)
        self._sessions[session.session_id] = session
        self._writers.add(writer)
        try:
            greeting = {
                "ok": True,
                "server": "repro",
                "session_id": session.session_id,
                "knobs": dict(session.knobs),
            }
            await self._send(writer, greeting)
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                    response = await self._dispatch(session, request)
                except Exception as exc:  # malformed request, never fatal
                    response = error_response(exc)
                await self._send(writer, response)
                if response.get("closing"):
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            session.cancel_inflight()
            self._writers.discard(writer)
            self._sessions.pop(session.session_id, None)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _send(self, writer, payload: dict) -> None:
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await writer.drain()

    # -------------------------------------------------------------- dispatch

    async def _dispatch(self, session: Session, request: dict) -> dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "close":
            return {"ok": True, "closing": True}
        if op == "set":
            try:
                knobs = session.set_knobs(request.get("knobs", {}))
            except ValueError as exc:
                return error_response(exc)
            return {"ok": True, "knobs": knobs}
        if op == "session":
            return {"ok": True, "session": session.describe()}
        if op == "stats":
            return {"ok": True, "stats": self.stats()}
        if op == "metrics":
            return self._metrics_response(request)
        if op in ("sql", "query", "explain"):
            return await self._submit(session, op, request)
        return error_response(ValueError(f"unknown op {op!r}"))

    def _metrics_response(self, request: dict) -> dict:
        """The ``metrics`` op: registry exposition plus live serving stats.

        ``format: "prometheus"`` (default) returns the text exposition
        format ready to write to a scrape endpoint; ``format: "json"``
        returns the raw registry export and server stats for programmatic
        consumers (``repro top``).
        """
        fmt = request.get("format", "prometheus")
        export = self.metrics.export()
        if fmt == "json":
            return {"ok": True, "metrics": export, "stats": self.stats()}
        if fmt != "prometheus":
            return error_response(
                ValueError(f"unknown metrics format {fmt!r}")
            )
        from ..exposition import render_prometheus

        return {
            "ok": True,
            "content_type": "text/plain; version=0.0.4",
            "text": render_prometheus(export, serving=self.stats()),
        }

    async def _submit(self, session: Session, op: str, request: dict) -> dict:
        """Bind, admit, and await one executable request."""
        if self._draining:
            session.rejected += 1
            qlog = getattr(self.db, "qlog", None)
            if qlog is not None:
                # Pre-bind rejection: no query object yet, log outcome only.
                qlog.observe_rejected(
                    None, "draining", session=str(session.session_id)
                )
            return error_response(
                ReproError("server is draining"), rejected=True
            )
        try:
            query = self._bind(request)
        except Exception as exc:
            session.record(op, ok=False, detail=str(exc))
            return error_response(exc)
        knobs = session.effective(request)
        if knobs["priority"] not in PRIORITIES:
            return error_response(
                ValueError(f"unknown priority {knobs['priority']!r}")
            )
        analyze = bool(request.get("analyze", True))
        if op == "explain" and not analyze:
            # Pure model predictions: no execution, no admission needed.
            plan = self.db.explain(query)
            plan.pop("details", None)
            return {"ok": True, "explain": plan}
        timeout_ms = knobs["timeout_ms"]
        token = CancelToken(timeout_ms=timeout_ms)
        work = _Work(
            kind="explain" if op == "explain" else "query",
            session=session,
            query=query,
            knobs=knobs,
            token=token,
            future=self._loop.create_future(),
            loop=self._loop,
        )
        session.track(token)
        try:
            if not self.admission.offer(work, priority=knobs["priority"]):
                session.rejected += 1
                self.metrics.counter("serving.rejected_total").inc()
                qlog = getattr(self.db, "qlog", None)
                if qlog is not None:
                    qlog.observe_rejected(
                        query,
                        f"queue full (depth {self.admission.max_depth})",
                        session=str(session.session_id),
                    )
                session.record(op, ok=False, detail="rejected (queue full)")
                return error_response(
                    ReproError(
                        f"admission queue full "
                        f"(depth {self.admission.max_depth})"
                    ),
                    rejected=True,
                )
            response = await work.future
        finally:
            session.untrack(token)
        session.record(
            op,
            ok=bool(response.get("ok")),
            wall_ms=response.get("total_ms"),
            detail=request.get("sql", "")
            or request.get("query", {}).get("projection", ""),
        )
        return response

    def _bind(self, request: dict):
        """Turn the request into a logical query object (event-loop side)."""
        if "sql" in request:
            from ..sql import bind, parse

            encodings = request.get("encodings") or None
            return bind(parse(request["sql"]), self.db.catalog,
                        encodings=encodings)
        if "query" in request:
            return query_from_dict(request["query"])
        raise ValueError("request needs 'sql' or 'query'")

    # --------------------------------------------------------------- workers

    def _worker_loop(self) -> None:
        while True:
            work = self.admission.take(timeout=0.1)
            if work is None:
                if self.admission.closed:
                    return
                continue
            with self._active_lock:
                self._active += 1
            try:
                response = self._execute(work)
            finally:
                with self._active_lock:
                    self._active -= 1
            work.loop.call_soon_threadsafe(
                self._deliver, work.future, response
            )

    @staticmethod
    def _deliver(future: asyncio.Future, response: dict) -> None:
        if not future.done():  # connection may have gone away meanwhile
            future.set_result(response)

    def _execute(self, work: _Work) -> dict:
        """Run one admitted query on this worker thread, build the response."""
        wait_ms = (time.monotonic() - work.enqueued_at) * 1000.0
        knobs = work.knobs
        self.metrics.histogram("serving.queue_wait_ms").record(wait_ms)
        try:
            if work.kind == "explain":
                report = self.db.explain(
                    work.query,
                    analyze=True,
                    strategy=knobs["strategy"],
                    cancel=work.token,
                    queue_wait_ms=wait_ms,
                )
                response = {
                    "ok": True,
                    "explain": {
                        k: report[k]
                        for k in (
                            "strategy", "rows", "wall_ms", "simulated_ms",
                            "queue_wait_ms", "total_ms", "text", "json",
                        )
                    },
                    "queue_wait_ms": report["queue_wait_ms"],
                    "total_ms": report["total_ms"],
                }
            else:
                result = self.db.query(
                    work.query,
                    strategy=knobs["strategy"],
                    trace=bool(knobs["trace"]),
                    cancel=work.token,
                    queue_wait_ms=wait_ms,
                    origin="served",
                    session=str(work.session.session_id),
                )
                rows = (
                    result.decoded_rows() if knobs["decoded"]
                    else result.rows()
                )
                response = {
                    "ok": True,
                    "columns": list(result.tuples.columns),
                    "rows": rows,
                    "n_rows": result.n_rows,
                    "strategy": result.strategy,
                    "wall_ms": result.wall_ms,
                    "simulated_ms": result.simulated_ms,
                    "queue_wait_ms": result.queue_wait_ms,
                    "total_ms": result.queue_wait_ms + result.wall_ms,
                }
                if result.degraded:
                    response["degraded"] = True
                    response["skipped_partitions"] = list(
                        result.skipped_partitions
                    )
                if result.spans is not None:
                    response["trace"] = result.spans.to_dict(
                        self.db.constants
                    )
            self.metrics.counter("serving.queries_total").inc()
            self.metrics.histogram("serving.total_ms").record(
                response["total_ms"]
            )
            return response
        except QueryTimeoutError as exc:
            self.metrics.counter("serving.timeouts_total").inc()
            return error_response(exc, timeout=True)
        except QueryCancelledError as exc:
            self.metrics.counter("serving.cancelled_total").inc()
            return error_response(exc)
        except Exception as exc:  # noqa: BLE001 - serialized to the client
            self.metrics.counter("serving.errors_total").inc()
            return error_response(exc)

    # ------------------------------------------------------------- reporting

    def stats(self) -> dict:
        """JSON-safe live server state (the ``stats`` op)."""
        return {
            "sessions": len(self._sessions),
            "workers": self.workers,
            "active": self._active_count(),
            "draining": self._draining,
            "admission": self.admission.metrics(),
            "started_at": self.started_at,
            "uptime_s": (
                round(time.time() - self.started_at, 3)
                if self.started_at
                else 0.0
            ),
        }


class ServerThread:
    """A QueryServer on a background event-loop thread (context manager).

    ::

        with ServerThread(db, workers=4) as server:
            # connect to ("127.0.0.1", server.port)
            ...
        # exiting drains and joins everything
    """

    def __init__(self, db, **kwargs):
        self._db = db
        self._kwargs = kwargs
        self.server: QueryServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-server-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server thread failed to start in time")
        if self._startup_error is not None:
            self._thread.join(timeout=5)
            raise self._startup_error
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self.server = QueryServer(self._db, **self._kwargs)
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surface to the spawning thread
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        self._loop.run_forever()
        self._loop.close()

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def __exit__(self, *exc_info) -> None:
        if self._loop is None or self.server is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(drain=True), self._loop
        )
        future.result(timeout=60)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
