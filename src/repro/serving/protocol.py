"""Wire format: newline-delimited JSON requests/responses, query (de)serialization.

One request per line, one response per line, each a single JSON object.
Requests carry an ``op`` plus op-specific fields; responses always carry
``ok`` and, on failure, an ``error`` object ``{"type", "message"}`` with
optional ``timeout`` / ``rejected`` markers so clients can distinguish a
deadline from backpressure from a genuine error.

Logical queries cross the wire as plain dicts via :func:`query_to_dict` /
:func:`query_from_dict`, covering every :class:`~repro.planner.SelectQuery`
and :class:`~repro.planner.JoinQuery` field (predicates, IN-lists,
aggregates, encodings, order/limit, disjuncts, having). All engine values
are integers or floats, so the JSON round trip is exact — which is what
makes bit-identical differential comparison over the wire sound.
"""

from __future__ import annotations

from ..operators.aggregate import AggSpec
from ..planner import JoinQuery, SelectQuery
from ..predicates import InPredicate, Predicate


def _predicate_to_dict(pred) -> dict:
    if isinstance(pred, InPredicate):
        return {"column": pred.column, "in": list(pred.in_values)}
    return {"column": pred.column, "op": pred.op, "value": pred.value}


def _predicate_from_dict(payload: dict):
    if "in" in payload:
        return InPredicate(payload["column"], tuple(payload["in"]))
    return Predicate(payload["column"], payload["op"], payload["value"])


def _agg_to_dict(spec: AggSpec) -> dict:
    return {"func": spec.func, "column": spec.column}


def _agg_from_dict(payload: dict) -> AggSpec:
    return AggSpec(payload["func"], payload["column"])


def query_to_dict(query) -> dict:
    """JSON-safe dict for a :class:`SelectQuery` or :class:`JoinQuery`."""
    if isinstance(query, SelectQuery):
        return {
            "kind": "select",
            "projection": query.projection,
            "select": list(query.select),
            "predicates": [_predicate_to_dict(p) for p in query.predicates],
            "group_by": list(query.group_by) if query.group_by else None,
            "aggregates": [_agg_to_dict(a) for a in query.aggregates],
            "encodings": [list(pair) for pair in query.encodings],
            "order_by": [[col, bool(desc)] for col, desc in query.order_by],
            "limit": query.limit,
            "disjuncts": [
                [_predicate_to_dict(p) for p in group]
                for group in query.disjuncts
            ],
            "having": [_predicate_to_dict(p) for p in query.having],
        }
    if isinstance(query, JoinQuery):
        return {
            "kind": "join",
            "left": query.left,
            "right": query.right,
            "left_key": query.left_key,
            "right_key": query.right_key,
            "left_select": list(query.left_select),
            "right_select": list(query.right_select),
            "left_predicates": [
                _predicate_to_dict(p) for p in query.left_predicates
            ],
            "encodings": [list(pair) for pair in query.encodings],
            "left_strategy": query.left_strategy,
            "group_by": list(query.group_by) if query.group_by else None,
            "aggregates": [_agg_to_dict(a) for a in query.aggregates],
        }
    raise TypeError(f"cannot serialize {type(query).__name__}")


def query_from_dict(payload: dict):
    """Inverse of :func:`query_to_dict`."""
    kind = payload.get("kind", "select")
    group_by = payload.get("group_by")
    if kind == "select":
        return SelectQuery(
            projection=payload["projection"],
            select=tuple(payload["select"]),
            predicates=tuple(
                _predicate_from_dict(p) for p in payload.get("predicates", ())
            ),
            group_by=tuple(group_by) if group_by else None,
            aggregates=tuple(
                _agg_from_dict(a) for a in payload.get("aggregates", ())
            ),
            encodings=tuple(
                (col, enc) for col, enc in payload.get("encodings", ())
            ),
            order_by=tuple(
                (col, bool(desc)) for col, desc in payload.get("order_by", ())
            ),
            limit=payload.get("limit"),
            disjuncts=tuple(
                tuple(_predicate_from_dict(p) for p in group)
                for group in payload.get("disjuncts", ())
            ),
            having=tuple(
                _predicate_from_dict(p) for p in payload.get("having", ())
            ),
        )
    if kind == "join":
        return JoinQuery(
            left=payload["left"],
            right=payload["right"],
            left_key=payload["left_key"],
            right_key=payload["right_key"],
            left_select=tuple(payload["left_select"]),
            right_select=tuple(payload["right_select"]),
            left_predicates=tuple(
                _predicate_from_dict(p)
                for p in payload.get("left_predicates", ())
            ),
            encodings=tuple(
                (col, enc) for col, enc in payload.get("encodings", ())
            ),
            left_strategy=payload.get("left_strategy", "late"),
            group_by=tuple(group_by) if group_by else None,
            aggregates=tuple(
                _agg_from_dict(a) for a in payload.get("aggregates", ())
            ),
        )
    raise ValueError(f"unknown query kind {kind!r}")


def error_response(
    exc: BaseException, *, timeout: bool = False, rejected: bool = False
) -> dict:
    """Uniform failure payload; markers distinguish deadline/backpressure."""
    out = {
        "ok": False,
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }
    if timeout:
        out["timeout"] = True
    if rejected:
        out["rejected"] = True
    return out
