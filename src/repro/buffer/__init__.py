"""Buffer management: an LRU block pool over a cost-accounted disk model.

Real payload bytes are read from real files, but every physical read is also
charged against the paper's I/O model (SEEK and READ costs, amortised by the
prefetch window PF), and buffer hits are tracked so the model's ``F`` — the
fraction of a column resident in the pool — can be observed rather than
assumed. This is the substitution that keeps the paper's I/O trade-offs
visible at laptop scale (see DESIGN.md section 2).
"""

from .decoded import DecodedBlockCache
from .disk import DiskModel
from .pool import BufferPool

__all__ = ["DiskModel", "BufferPool", "DecodedBlockCache"]
