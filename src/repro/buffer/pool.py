"""LRU buffer pool for encoded block payloads.

The pool caches raw (still-encoded) block payloads keyed by
``(file path, block index)``. A miss reads the payload from disk, charges the
disk model, and prefetches the next ``PF - 1`` blocks of the same file under
the same seek — matching the ``|C|/PF * SEEK + |C| * READ`` I/O formula. A hit
increments ``buffer_hits``; the hit fraction is the model's ``F``.

The pool is also where the fault-tolerance layer lives: every physical read
first consults an optional :class:`~repro.faults.FaultInjector`, and a
:class:`~repro.errors.TransientIOError` (injected or otherwise) is retried
under the pool's :class:`~repro.faults.RetryPolicy` — bounded attempts with
exponential backoff charged to ``simulated_io_us``, ``io_retries`` /
``io_gave_up`` counters on the caller's stats, and a ``RETRY`` span in the
observe tree when the query is traced. Cache hits never consult the
injector: a resident block cannot fail.

The pool is thread-safe: the concurrent scan scheduler runs independent
column scans from worker threads, and every cache/disk-model mutation happens
under one reentrant lock. Callers pass their own per-thread
:class:`~repro.metrics.QueryStats`, so counter accumulation itself never
races.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING

from ..errors import TransientIOError
from ..faults import FaultInjector, RetryPolicy
from ..metrics import QueryStats
from .disk import DiskModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..observe import SpanTracer
    from ..storage.column_file import ColumnFile

DEFAULT_CAPACITY_BYTES = 256 * 1024 * 1024


class BufferPool:
    """Byte-bounded LRU cache of encoded block payloads."""

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
        disk: DiskModel | None = None,
        injector: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
    ):
        self.capacity_bytes = capacity_bytes
        self.disk = disk if disk is not None else DiskModel()
        #: Optional fault schedule consulted before every physical read.
        self.injector = injector
        #: Retry budget for transient read failures (attempts + backoff).
        self.retry = retry if retry is not None else RetryPolicy()
        self._cache: OrderedDict[tuple[str, int], bytes] = OrderedDict()
        self._bytes = 0
        self._last_read_index: dict[str, int] = {}
        # Per-path resident block counts, so resident_fraction is O(1)
        # instead of a linear scan over the whole cache.
        self._resident_counts: dict[str, int] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.total_retries = 0
        self.total_give_ups = 0

    def get(
        self,
        column_file: "ColumnFile",
        index: int,
        stats: QueryStats,
        tracer: "SpanTracer | None" = None,
    ) -> bytes:
        """Return the payload of block *index*, reading through on a miss."""
        key = (str(column_file.path), index)
        with self._lock:
            payload = self._cache.get(key)
            if payload is not None:
                self._cache.move_to_end(key)
                self.hits += 1
                stats.buffer_hits += 1
                return payload
            self.misses += 1
            self._fault(column_file, index, stats, tracer)
            return self._cache[key]

    def contains(self, path: str, index: int) -> bool:
        """True when block *index* of *path* is resident (no LRU touch)."""
        with self._lock:
            return (path, index) in self._cache

    def _fault(
        self,
        column_file: "ColumnFile",
        index: int,
        stats: QueryStats,
        tracer: "SpanTracer | None" = None,
    ) -> None:
        """Read block *index* (plus prefetch window) into the pool."""
        path = str(column_file.path)
        sequential = self._last_read_index.get(path) == index - 1
        window = range(
            index,
            min(index + self.disk.prefetch_blocks, column_file.n_blocks),
        )
        for i, block_index in enumerate(window):
            key = (path, block_index)
            if key in self._cache:
                # The head still rides past a resident mid-window block, so
                # the next fault after it remains sequential. Without this
                # the following fault is misclassified and overcharges a
                # SEEK the model never intended.
                self._last_read_index[path] = block_index
                continue
            payload = self._read_with_retry(
                column_file, block_index, stats, tracer
            )
            # Only the first block of the window can pay a seek; the rest of
            # the prefetch window rides the same head position.
            self.disk.charge_read(stats, sequential=sequential or i > 0)
            self._insert(key, payload)
            self._last_read_index[path] = block_index

    def _read_with_retry(
        self,
        column_file: "ColumnFile",
        index: int,
        stats: QueryStats,
        tracer: "SpanTracer | None" = None,
    ) -> bytes:
        """One physical payload read under the fault hook and retry budget.

        Transient failures are retried up to ``retry.attempts`` total
        attempts, each retry charging its exponential backoff to the
        simulated disk clock. A traced recovery (or give-up) appears as one
        ``RETRY`` span covering every retried attempt. Non-transient errors
        (checksum corruption, short reads) propagate immediately — retrying
        cannot fix them.
        """
        path = str(column_file.path)
        span = None
        backoff_total = 0.0
        try:
            for attempt in range(1, self.retry.attempts + 1):
                try:
                    if self.injector is not None:
                        extra_us = self.injector.on_read(path, index, stats)
                        if extra_us:
                            stats.simulated_io_us += extra_us
                            stats.extra["slow_block_us"] = (
                                stats.extra.get("slow_block_us", 0) + extra_us
                            )
                    payload = column_file.read_payload(index)
                except TransientIOError:
                    if span is None and tracer is not None:
                        span = tracer.begin("RETRY")
                    if attempt >= self.retry.attempts:
                        stats.io_gave_up += 1
                        self.total_give_ups += 1
                        if span is not None:
                            tracer.end(
                                span,
                                file=path,
                                block=index,
                                attempts=attempt,
                                backoff_us=backoff_total,
                                outcome="gave_up",
                            )
                            span = None
                        raise
                    stats.io_retries += 1
                    self.total_retries += 1
                    backoff = self.retry.backoff_for(attempt)
                    backoff_total += backoff
                    stats.simulated_io_us += backoff
                    continue
                if span is not None:
                    tracer.end(
                        span,
                        file=path,
                        block=index,
                        attempts=attempt,
                        backoff_us=backoff_total,
                        outcome="recovered",
                    )
                    span = None
                return payload
        finally:
            # A non-transient error (e.g. injected corruption) mid-retry:
            # close the RETRY span so the tree stays well-formed.
            if span is not None and tracer is not None:
                tracer.end(
                    span, file=path, block=index, outcome="aborted"
                )
        raise AssertionError("unreachable")  # pragma: no cover

    def _insert(self, key: tuple[str, int], payload: bytes) -> None:
        self._cache[key] = payload
        self._bytes += len(payload)
        self._resident_counts[key[0]] = self._resident_counts.get(key[0], 0) + 1
        while self._bytes > self.capacity_bytes and len(self._cache) > 1:
            evicted_key, evicted = self._cache.popitem(last=False)
            self._bytes -= len(evicted)
            remaining = self._resident_counts[evicted_key[0]] - 1
            if remaining:
                self._resident_counts[evicted_key[0]] = remaining
            else:
                del self._resident_counts[evicted_key[0]]

    def resident_fraction(self, column_file: "ColumnFile") -> float:
        """The model's F for one column: fraction of its blocks in the pool."""
        if column_file.n_blocks == 0:
            return 1.0
        with self._lock:
            resident = self._resident_counts.get(str(column_file.path), 0)
        return resident / column_file.n_blocks

    def clear(self) -> None:
        """Drop all cached blocks (simulates a cold buffer cache)."""
        with self._lock:
            self._cache.clear()
            self._bytes = 0
            self._last_read_index.clear()
            self._resident_counts.clear()

    @property
    def resident_bytes(self) -> int:
        return self._bytes

    def metrics(self) -> dict:
        """Live pool state for the metrics registry's collector interface."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "resident_blocks": len(self._cache),
                "resident_bytes": self._bytes,
                "capacity_bytes": self.capacity_bytes,
                "io_retries": self.total_retries,
                "io_gave_up": self.total_give_ups,
            }

    def __len__(self) -> int:
        return len(self._cache)
