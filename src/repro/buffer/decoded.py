"""Decoded-block cache: the second level of the scan fast-path.

The raw :class:`~repro.buffer.pool.BufferPool` caches *encoded* block
payloads and owns all I/O accounting. This layer sits above it and caches
the CPU-expensive products of a payload — the decoded value array
(``Encoding.decode``), the parsed run table for run-length data
(``Encoding.runs``), and the compressed-execution views (dictionary code
tables, FOR spans) — so warm scans, compressed kernels and DS3 gathers skip
the parse/decode work. Entries are keyed by
``(path, block, dtype, encoding, kind)``;
column files are immutable until a projection is replaced, at which point
:meth:`~repro.engine.Database.clear_cache` drops both layers together.

The cache never touches the disk model: callers fetch the raw payload
through the buffer pool first (keeping ``block_reads`` / ``disk_seeks`` /
``buffer_hits`` identical with the cache on or off) and only then ask this
layer for the decoded form. The only observable accounting difference is the
pair of new :class:`~repro.metrics.QueryStats` counters ``decode_hits`` /
``decode_misses``, which do not feed the simulated-time replay.

Eviction is byte-budgeted LRU, coordinated with the raw pool: under
pressure the cache first looks (a bounded distance) down its LRU order for
an entry whose raw bytes have already left the buffer pool — a block the
lower layer has given up on is the cheapest one to re-derive later — and
only then falls back to strict LRU. All operations are thread-safe; decode
work itself runs outside the lock so concurrent column scans do not
serialize on the cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from itertools import islice
from typing import TYPE_CHECKING

import numpy as np

from ..metrics import QueryStats
from .pool import BufferPool

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..storage.block import BlockDescriptor
    from ..storage.column_file import ColumnFile

DEFAULT_DECODED_CAPACITY_BYTES = 128 * 1024 * 1024

#: How far down the LRU order the evictor searches for an entry whose raw
#: payload is no longer pool-resident before falling back to strict LRU.
_EVICTION_SCAN_LIMIT = 8


class DecodedBlockCache:
    """Byte-bounded LRU cache of decoded block value arrays and run tables."""

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_DECODED_CAPACITY_BYTES,
        pool: BufferPool | None = None,
    ):
        self.capacity_bytes = capacity_bytes
        self.pool = pool
        self._cache: OrderedDict[tuple, tuple] = OrderedDict()
        self._bytes = 0
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(
        column_file: "ColumnFile", index: int, kind: str
    ) -> tuple[str, int, str, str, str]:
        return (
            str(column_file.path),
            index,
            column_file.dtype.str,
            column_file.encoding.name,
            kind,
        )

    def values(
        self,
        column_file: "ColumnFile",
        desc: "BlockDescriptor",
        payload: bytes,
        stats: QueryStats,
    ) -> np.ndarray:
        """The block's decoded value array, decoding through on a miss."""
        key = self._key(column_file, desc.index, "values")
        cached = self._lookup(key, stats)
        if cached is not None:
            return cached[0]
        values = column_file.encoding.decode(payload, desc, column_file.dtype)
        values.setflags(write=False)
        self._insert(key, (values,), values.nbytes, stats)
        return values

    def runs(
        self,
        column_file: "ColumnFile",
        desc: "BlockDescriptor",
        payload: bytes,
        stats: QueryStats,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The block's ``(values, starts, lengths)`` run table (RLE data)."""
        key = self._key(column_file, desc.index, "runs")
        cached = self._lookup(key, stats)
        if cached is not None:
            return cached
        table = column_file.encoding.runs(payload, desc, column_file.dtype)
        for arr in table:
            arr.setflags(write=False)
        self._insert(key, table, sum(a.nbytes for a in table), stats)
        return table

    def codes(
        self,
        column_file: "ColumnFile",
        desc: "BlockDescriptor",
        payload: bytes,
        stats: QueryStats,
    ) -> tuple[np.ndarray, np.ndarray]:
        """The block's ``(distinct, codes)`` table (dictionary data)."""
        key = self._key(column_file, desc.index, "codes")
        cached = self._lookup(key, stats)
        if cached is not None:
            return cached
        table = column_file.encoding.code_table(payload)
        self._insert(key, table, sum(a.nbytes for a in table), stats)
        return table

    def for_span(
        self,
        column_file: "ColumnFile",
        desc: "BlockDescriptor",
        payload: bytes,
        stats: QueryStats,
    ):
        """The block's parsed FOR span (reference + packed offsets)."""
        key = self._key(column_file, desc.index, "for")
        cached = self._lookup(key, stats)
        if cached is not None:
            return cached[0]
        span = column_file.encoding.parse_span(payload)
        self._insert(key, (span,), span.offsets.nbytes + 24, stats)
        return span

    def _lookup(self, key: tuple, stats: QueryStats):
        with self._lock:
            entry = self._cache.get(key)
            if entry is None:
                return None
            self._cache.move_to_end(key)
            self.hits += 1
            stats.decode_hits += 1
            return entry[0]

    def _insert(
        self, key: tuple, value: tuple, nbytes: int, stats: QueryStats
    ) -> None:
        stats.decode_misses += 1
        with self._lock:
            self.misses += 1
            if key in self._cache:  # another thread decoded it concurrently
                return
            self._cache[key] = (value, nbytes)
            self._bytes += nbytes
            while self._bytes > self.capacity_bytes and len(self._cache) > 1:
                self._evict_one()

    def _evict_one(self) -> None:
        victim = None
        if self.pool is not None:
            for key in islice(self._cache, _EVICTION_SCAN_LIMIT):
                if not self.pool.contains(key[0], key[1]):
                    victim = key
                    break
        if victim is not None:
            _entry, nbytes = self._cache.pop(victim)
        else:
            _key, (_entry, nbytes) = self._cache.popitem(last=False)
        self._bytes -= nbytes

    def clear(self) -> None:
        """Drop every cached decode product (file replacement, cold runs)."""
        with self._lock:
            self._cache.clear()
            self._bytes = 0

    @property
    def resident_bytes(self) -> int:
        return self._bytes

    def metrics(self) -> dict:
        """Live cache state for the metrics registry's collector interface."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "resident_entries": len(self._cache),
                "resident_bytes": self._bytes,
                "capacity_bytes": self.capacity_bytes,
            }

    def __len__(self) -> int:
        return len(self._cache)
