"""Disk cost model.

Charges the analytical model's I/O terms for every physical block access:
``SEEK`` whenever the head must move (a non-sequential block request, at most
once per prefetch window) and ``READ`` per block transferred. Defaults come
from Table 2 of the paper (2500 us seek, 1000 us per 64 KB block).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..metrics import QueryStats


@dataclass
class DiskModel:
    """Accounting-only disk: real bytes come from the OS, time from the model.

    Attributes:
        seek_us: cost of one head movement (Table 2 SEEK).
        read_us: cost of transferring one 64 KB block (Table 2 READ).
        prefetch_blocks: the model's PF — consecutive blocks fetched per seek.
        fsync_us: cost of one durable flush (WAL append, staged-commit
            fsync); a seek plus device cache flush on 2006 hardware.
    """

    seek_us: float = 2500.0
    read_us: float = 1000.0
    prefetch_blocks: int = 1
    fsync_us: float = 3000.0

    total_seeks: int = field(default=0, init=False)
    total_reads: int = field(default=0, init=False)
    total_fsyncs: int = field(default=0, init=False)

    @classmethod
    def hdd_2006(cls, prefetch_blocks: int = 1) -> "DiskModel":
        """The paper's testbed: a 2006 spinning disk (Table 2 values)."""
        return cls(seek_us=2500.0, read_us=1000.0,
                   prefetch_blocks=prefetch_blocks)

    @classmethod
    def sata_ssd(cls, prefetch_blocks: int = 1) -> "DiskModel":
        """A SATA SSD: ~60 us access latency, ~500 MB/s (64 KB in ~130 us)."""
        return cls(seek_us=60.0, read_us=130.0,
                   prefetch_blocks=prefetch_blocks)

    @classmethod
    def nvme_ssd(cls, prefetch_blocks: int = 1) -> "DiskModel":
        """An NVMe SSD: ~15 us access latency, ~5 GB/s (64 KB in ~13 us)."""
        return cls(seek_us=15.0, read_us=13.0,
                   prefetch_blocks=prefetch_blocks)

    def charge_read(self, stats: QueryStats, sequential: bool) -> None:
        """Charge one block read; a seek too unless it follows the previous block."""
        self.total_reads += 1
        stats.block_reads += 1
        stats.simulated_io_us += self.read_us
        if not sequential:
            self.total_seeks += 1
            stats.disk_seeks += 1
            stats.simulated_io_us += self.seek_us

    def charge_fsync(self) -> None:
        """Charge one durable flush to the simulated clock (write path)."""
        self.total_fsyncs += 1

    def reset(self) -> None:
        self.total_seeks = 0
        self.total_reads = 0
        self.total_fsyncs = 0

    @property
    def simulated_us(self) -> float:
        return (
            self.total_seeks * self.seek_us
            + self.total_reads * self.read_us
            + self.total_fsyncs * self.fsync_us
        )
